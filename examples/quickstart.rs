//! Quickstart: embed a random binary tree into its optimal X-tree and
//! verify every guarantee of Theorem 1 — then upgrade to the injective
//! embedding of Theorem 2 and the hypercube embedding of Theorem 3.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::{evaluate, hypercube, theorem1, theorem2};
use xtree::trees::{theorem1_size, TreeFamily};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let r = 5;
    let n = theorem1_size(r); // 16 · (2^{r+1} − 1) = 1008
    let tree = TreeFamily::RandomBst.generate(n, &mut rng);
    println!(
        "guest: random BST shape with {n} nodes (height {})",
        tree.height()
    );

    // ---- Theorem 1: load 16, dilation ≤ 3, optimal expansion -----------
    let t1 = theorem1::embed(&tree);
    let stats = evaluate(&tree, &t1.emb);
    println!("\nTheorem 1 — X({r}) with {} vertices:", t1.emb.host_len());
    println!("  dilation        = {} (paper bound: 3)", stats.dilation);
    println!("  load factor     = {} (paper: exactly 16)", stats.max_load);
    println!(
        "  expansion       = {:.4} (optimal: {:.4})",
        stats.expansion,
        t1.emb.host_len() as f64 / n as f64
    );
    println!(
        "  condition (3')  = {} violations",
        stats.condition3_violations
    );
    println!("  dilation histogram: {:?}", stats.dilation_histogram);
    assert!(stats.dilation <= 3);
    assert_eq!(stats.max_load, 16);

    // ---- Theorem 2: injective into X(r+4), dilation ≤ 11 ---------------
    let inj = theorem2::injectivize(&t1.emb);
    let inj_stats = evaluate(&tree, &inj);
    println!("\nTheorem 2 — injective into X({}):", inj.height);
    println!("  injective       = {}", inj_stats.injective);
    println!(
        "  dilation        = {} (paper bound: 11)",
        inj_stats.dilation
    );
    assert!(inj_stats.injective && inj_stats.dilation <= 11);

    // ---- Theorem 3: optimal hypercube, load 16, dilation ≤ 4 -----------
    let n3 = xtree::trees::theorem3_size(r);
    let tree3 = TreeFamily::RandomAttach.generate(n3, &mut rng);
    let q = hypercube::embed_theorem3(&tree3);
    println!("\nTheorem 3 — {} nodes into Q_{}:", n3, q.dim);
    println!(
        "  dilation        = {} (paper bound: 4)",
        q.dilation(&tree3)
    );
    println!("  load factor     = {} (paper: 16)", q.max_load());
    assert!(q.dilation(&tree3) <= 4);

    let q8 = hypercube::embed_corollary8(&tree3);
    println!(
        "  corollary: injective into Q_{} with dilation {} (bound: 8)",
        q8.dim,
        q8.dilation(&tree3)
    );
    assert!(q8.is_injective() && q8.dilation(&tree3) <= 8);

    println!("\nall theorem bounds hold ✓");
}

//! One physical machine for every tree program (Theorem 4).
//!
//! Builds the degree-415 universal graph `G_n` for `n = 2^t − 16` and
//! demonstrates that wildly different binary trees — a path, a caterpillar,
//! a complete tree, random shapes — are all *spanning subgraphs* of the
//! same host: the machine can run any of them in real time, every tree
//! edge riding on a dedicated host wire.
//!
//! Run with: `cargo run --release --example universal_host`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::{theorem1, universal::UniversalGraph};
use xtree::topology::Graph;
use xtree::trees::{theorem1_size, TreeFamily};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let r = 4;
    let n = theorem1_size(r); // 16·(2^5 − 1) = 496 = 2^9 − 16
    println!(
        "building the universal graph G_n for n = {n} = 2^{} − 16",
        r + 5
    );
    let g = UniversalGraph::new(r);
    println!(
        "  {} vertices, {} edges, max degree {} (paper bound: 415)",
        g.graph().node_count(),
        g.graph().edge_count(),
        g.graph().max_degree()
    );
    assert!(g.graph().max_degree() <= 415);
    assert_eq!(g.graph().node_count(), n);

    println!("\nspanning-subgraph check across tree families:");
    for family in TreeFamily::ALL {
        let tree = family.generate(n, &mut rng);
        let emb = theorem1::embed(&tree).emb;
        let assignment = g.slot_assignment(&emb);
        let violations = g.subgraph_violations(&tree, &assignment);
        println!(
            "  {:<14} height {:>4}: {} of {} edges on host wires{}",
            family.name(),
            tree.height(),
            tree.len() - 1 - violations.len(),
            tree.len() - 1,
            if violations.is_empty() {
                "  ✓ spanning subgraph"
            } else {
                "  ✗"
            }
        );
        assert!(
            violations.is_empty(),
            "{family:?} is not a spanning subgraph: {violations:?}"
        );
    }
    println!("\nevery family embeds as a spanning subgraph of the same G_n ✓");
}

//! Host-network comparison: the same tree program simulated on an X-tree
//! and on a hypercube, with the embeddings the paper provides for each.
//!
//! Also prints the degree/diameter context table of the introduction: the
//! X-tree against the hypercube and the constant-degree hypercube
//! derivatives (cube-connected cycles, butterfly) into which X-trees
//! *cannot* be embedded with constant dilation.
//!
//! Run with: `cargo run --release --example network_sim`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::{hypercube, theorem1};
use xtree::sim::{simulate_all, Network};
use xtree::topology::{Butterfly, CubeConnectedCycles, Graph, Hypercube, XTree};
use xtree::trees::{theorem3_size, TreeFamily};

fn main() {
    // ---- network context table (paper introduction / experiment B2) ----
    println!("host networks at comparable sizes:");
    println!(
        "{:<22} {:>8} {:>8} {:>9}",
        "network", "nodes", "degree", "diameter"
    );
    let x = XTree::new(7);
    let q = Hypercube::new(8);
    let c = CubeConnectedCycles::new(6);
    let b = Butterfly::new(6);
    println!(
        "{:<22} {:>8} {:>8} {:>9}",
        "X-tree X(7)",
        x.node_count(),
        x.max_degree(),
        x.graph().diameter()
    );
    println!(
        "{:<22} {:>8} {:>8} {:>9}",
        "hypercube Q_8",
        q.node_count(),
        q.max_degree(),
        q.graph().diameter()
    );
    println!(
        "{:<22} {:>8} {:>8} {:>9}",
        "cube-conn. cycles(6)",
        c.node_count(),
        c.max_degree(),
        c.graph().diameter()
    );
    println!(
        "{:<22} {:>8} {:>8} {:>9}",
        "butterfly BF(6)",
        b.node_count(),
        b.max_degree(),
        b.graph().diameter()
    );

    // ---- same guest, two hosts ------------------------------------------
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let r = 5;
    let n = theorem3_size(r); // 16·(2^5 − 1) = 496
    let tree = TreeFamily::Caterpillar.generate(n, &mut rng);
    println!("\nguest: caterpillar with {n} nodes\n");

    // X-tree route (Theorem 1).
    let t1 = theorem1::embed(&tree);
    let xh = XTree::new(t1.emb.height);
    let xnet = Network::xtree(&xh);
    println!("on X({}) [{} processors]:", t1.emb.height, xnet.len());
    print_reports(&simulate_all(&xnet, &tree, &t1.emb).expect("simulation failed"));

    // Hypercube route (Theorem 3).
    let qemb = hypercube::embed_theorem3(&tree);
    let qh = Hypercube::new(qemb.dim);
    let qnet = Network::hypercube(&qh);
    println!("\non Q_{} [{} processors]:", qemb.dim, qnet.len());
    print_reports(&simulate_all(&qnet, &tree, &qemb).expect("simulation failed"));

    println!("\nboth hosts run the tree program within a small constant of the ideal ✓");
}

fn print_reports(reports: &[xtree::sim::SimReport]) {
    println!(
        "  {:<10} {:>8} {:>8} {:>9} {:>13}",
        "workload", "cycles", "ideal", "slowdown", "link traffic"
    );
    for r in reports {
        println!(
            "  {:<10} {:>8} {:>8} {:>8.2}x {:>13}",
            r.workload,
            r.cycles,
            r.ideal_cycles,
            r.cycles as f64 / r.ideal_cycles.max(1) as f64,
            r.max_link_traffic
        );
    }
}

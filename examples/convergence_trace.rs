//! Watching algorithm X-TREE converge.
//!
//! Prints the Δ(j, i) matrix — the maximum half-difference of "associated"
//! guest mass between sibling X-tree regions after each round — next to
//! the paper's bound `2^{r+j+3−2i}`, together with the construction log.
//! The geometric collapse of the matrix (by a factor 4 per round, to an
//! exact 0 once `2i ≥ r + j + 2`) is the heart of the Theorem-1 proof.
//!
//! Run with: `cargo run --release --example convergence_trace [family]`
//! where family is one of: path complete caterpillar broom random-bst
//! random-attach random-split leaning (default: path).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::theorem1;
use xtree::trees::{theorem1_size, TreeFamily};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "path".into());
    let family = TreeFamily::ALL
        .into_iter()
        .find(|f| f.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown family {name}, using path");
            TreeFamily::Path
        });
    let r = 7u8;
    let n = theorem1_size(r);
    let mut rng = ChaCha8Rng::seed_from_u64(1991);
    let tree = family.generate(n, &mut rng);
    println!(
        "guest: {} with {n} nodes (height {}), host X({r})\n",
        family.name(),
        tree.height()
    );

    let res = theorem1::embed_with(&tree, theorem1::EmbedOptions::default());

    println!("Δ(j, i) after each round (measured / paper bound):");
    print!("{:>8}", "");
    for j in 0..=r {
        print!("{:>12}", format!("j={j}"));
    }
    println!();
    for (idx, row) in res.trace.iter().enumerate() {
        let i = idx as u8 + 1;
        print!("{:>8}", format!("i={i}"));
        for (j, &m) in row.iter().enumerate() {
            let cell = match theorem1::paper_bound(r, j as u8, i) {
                Some(b) => format!("{m}/{b}"),
                None => format!("{m}/-"),
            };
            print!("{cell:>12}");
        }
        println!();
    }

    // Verify against the bound.
    let mut violations = 0;
    for (idx, row) in res.trace.iter().enumerate() {
        for (j, &m) in row.iter().enumerate() {
            if let Some(b) = theorem1::paper_bound(r, j as u8, idx as u8 + 1) {
                if m > b {
                    violations += 1;
                }
            }
        }
    }
    println!("\nconstruction log: {:#?}", res.log);
    println!(
        "bound check: {} violations across {} matrix entries {}",
        violations,
        res.trace.iter().map(Vec::len).sum::<usize>(),
        if violations == 0 { "✓" } else { "✗" }
    );
}

//! Divide and conquer on an X-tree machine.
//!
//! The paper motivates binary-tree embeddings with "the type of program
//! structure found in common divide-and-conquer algorithms". This example
//! simulates a mergesort-style computation — broadcast the problem down a
//! recursion tree, reduce the results back up — on an X-tree network, once
//! with the Theorem-1 embedding and once with naïve baselines, and reports
//! the clock cycles each needs.
//!
//! Run with: `cargo run --release --example divide_and_conquer`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::{baseline, evaluate, theorem1};
use xtree::sim::{run_rounds, workload, Network};
use xtree::topology::XTree;
use xtree::trees::{theorem1_size, TreeFamily};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let r = 5;
    let n = theorem1_size(r);
    // A recursion tree of a divide-and-conquer with uneven splits.
    let tree = TreeFamily::RandomSplit.generate(n, &mut rng);
    println!("recursion tree: {n} nodes, height {}", tree.height());

    let host = XTree::new(r);
    let net = Network::xtree(&host);
    println!("host: X({r}) with {} processors\n", net.len());

    let candidates = [
        ("theorem-1", theorem1::embed(&tree).emb),
        ("level-order", baseline::level_order(&tree)),
        ("dfs-order", baseline::dfs_order(&tree)),
        ("random", baseline::random_assignment(&tree, &mut rng)),
    ];

    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>10}",
        "embedding", "dilation", "dnc cycles", "ideal cycles", "slowdown"
    );
    let mut best = u32::MAX;
    for (name, emb) in &candidates {
        let stats = evaluate(&tree, emb);
        let rounds = workload::divide_and_conquer_rounds(&tree, emb);
        let batch = run_rounds(&net, &rounds).expect("simulation failed");
        let cycles: u32 = batch.iter().map(|b| b.cycles).sum();
        let ideal: u32 = batch.iter().map(|b| b.ideal_cycles).sum();
        println!(
            "{:<12} {:>8} {:>10} {:>12} {:>9.2}x",
            name,
            stats.dilation,
            cycles,
            ideal,
            cycles as f64 / ideal.max(1) as f64
        );
        if *name == "theorem-1" {
            best = stats.dilation;
        } else {
            // The paper's guarantee is about dilation (worst-case edge
            // latency), not total cycles: the constructed embedding must
            // dominate every baseline on it.
            assert!(
                stats.dilation >= best,
                "{name} achieved smaller dilation than the Theorem-1 embedding"
            );
        }
    }
    println!(
        "\nthe Theorem-1 embedding gives every recursion edge a ≤{best}-cycle latency;\n\
         no baseline matches that worst-case guarantee ✓"
    );
}

//! # xtree — Simulating Binary Trees on X-Trees
//!
//! A production-quality reproduction of **B. Monien, "Simulating Binary
//! Trees on X-Trees (Extended Abstract)", SPAA 1991**: embedding arbitrary
//! binary trees into X-trees with constant dilation and optimal expansion,
//! plus every substrate the paper touches (host networks, separator
//! lemmas, hypercube embeddings, the degree-415 universal graph, and a
//! cycle-accurate network simulator).
//!
//! ## Quickstart
//!
//! ```
//! use xtree::prelude::*;
//! use rand::SeedableRng;
//!
//! // A random binary tree of the exact Theorem-1 size for height r = 3.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let n = xtree::trees::theorem1_size(3); // 16 · (2^4 − 1) = 240
//! let tree = TreeFamily::RandomBst.generate(n, &mut rng);
//!
//! // Theorem 1: load 16, dilation ≤ 3, optimal expansion.
//! let t1 = xtree::core::embed_theorem1(&tree);
//! let stats = xtree::core::evaluate(&tree, &t1.emb);
//! assert!(stats.dilation <= 3);
//! assert_eq!(stats.max_load, 16);
//! ```
//!
//! The four theorems map to:
//! * [`core::theorem1::embed`] — algorithm X-TREE;
//! * [`core::theorem2::injectivize`] — injective, dilation ≤ 11;
//! * [`core::hypercube::embed_theorem3`] / `embed_corollary8` — hypercube;
//! * [`core::universal::UniversalGraph`] — the degree-415 universal graph.

pub use xtree_core as core;
pub use xtree_sim as sim;
pub use xtree_topology as topology;
pub use xtree_trees as trees;

/// The most common imports in one place.
pub mod prelude {
    pub use xtree_core::{
        evaluate, hypercube::embed_theorem3, theorem1::embed as embed_theorem1,
        theorem2::injectivize, EmbeddingStats, QEmbedding, XEmbedding,
    };
    pub use xtree_sim::{simulate_all, FaultPlan, FaultState, Network, SimError};
    pub use xtree_topology::{Address, Graph, Hypercube, XTree};
    pub use xtree_trees::{BinaryTree, NodeId, TreeFamily};
}

//! Property-based tests of the address algebra and the host networks'
//! metric structure.

use proptest::prelude::*;
use xtree_topology::{neighborhood, Address, Graph, Hypercube, XTree};

fn arb_address(max_len: u8) -> impl Strategy<Value = Address> {
    (0..=max_len, any::<u64>()).prop_map(|(len, bits)| {
        let mask = if len == 0 { 0 } else { (1u64 << len) - 1 };
        Address::new(len, bits & mask)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn heap_id_round_trip(a in arb_address(24)) {
        prop_assert_eq!(Address::from_heap_id(a.heap_id()), a);
    }

    #[test]
    fn parse_display_round_trip(a in arb_address(24)) {
        prop_assert_eq!(Address::parse(&format!("{a}")), Some(a));
    }

    #[test]
    fn parent_child_inverse(a in arb_address(23), b in 0u8..2) {
        prop_assert_eq!(a.child(b).parent(), Some(a));
        prop_assert_eq!(a.child(b).level(), a.level() + 1);
    }

    #[test]
    fn successor_predecessor_inverse(a in arb_address(24)) {
        if let Some(s) = a.successor() {
            prop_assert_eq!(s.predecessor(), Some(a));
            prop_assert_eq!(s.index(), a.index() + 1);
        } else {
            prop_assert!(a.is_rightmost());
        }
    }

    #[test]
    fn lca_is_common_ancestor(a in arb_address(16), b in arb_address(16)) {
        let l = a.lca(b);
        prop_assert!(l.is_ancestor_of(a));
        prop_assert!(l.is_ancestor_of(b));
        // Deepest: one level further down fails for at least one of them.
        if a.level() > l.level() && b.level() > l.level() {
            let da = a.ancestor_at(l.level() + 1).unwrap();
            let db = b.ancestor_at(l.level() + 1).unwrap();
            prop_assert_ne!(da, db);
        }
    }

    #[test]
    fn tree_distance_is_a_metric(a in arb_address(12), b in arb_address(12), c in arb_address(12)) {
        prop_assert_eq!(a.tree_distance(b), b.tree_distance(a));
        prop_assert_eq!(a.tree_distance(a), 0);
        prop_assert!(a.tree_distance(c) <= a.tree_distance(b) + b.tree_distance(c));
    }

    #[test]
    fn xtree_distance_at_most_tree_distance(a in arb_address(7), b in arb_address(7)) {
        // Horizontal edges only ever shorten paths.
        let x = XTree::new(7);
        let d = x.distance(a, b);
        prop_assert!(d <= a.tree_distance(b));
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn neighborhood_is_within_window(a in arb_address(8)) {
        for b in neighborhood::neighborhood(a, 8) {
            // N(a) never looks upward and never deeper than 2 levels.
            prop_assert!(b.level() >= a.level());
            prop_assert!(b.level() <= a.level() + 2);
            // Horizontal displacement is bounded by the construction.
            let scale = 1i64 << (b.level() - a.level());
            let base = a.index() as i64 * scale;
            let off = b.index() as i64 - base;
            prop_assert!((-3 * scale..=3 * scale + scale - 1).contains(&off));
        }
    }

    #[test]
    fn hypercube_distance_is_hamming(u in any::<u16>(), v in any::<u16>()) {
        let q = Hypercube::new(10);
        let (u, v) = (u64::from(u) & 0x3ff, u64::from(v) & 0x3ff);
        prop_assert_eq!(q.distance(u, v), (u ^ v).count_ones());
    }
}

#[test]
fn xtree_distance_matches_full_bfs() {
    // Deterministic exhaustive cross-check at a fixed size.
    let x = XTree::new(5);
    for src in 0..x.node_count() {
        let d = x.graph().bfs(src);
        for dst in (0..x.node_count()).step_by(7) {
            assert_eq!(
                x.distance(Address::from_heap_id(src), Address::from_heap_id(dst)),
                d[dst]
            );
        }
    }
}

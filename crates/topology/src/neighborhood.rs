//! The neighbourhood `N(a)` from Figure 2 of the paper.
//!
//! For a vertex `a` of the X-tree `X(i)`, `N(a)` is the set of vertices
//! reachable from `a` by a path consisting of
//!
//! * at most **three horizontal** edges, or
//! * at most **two downward** edges followed by at most **two horizontal**
//!   edges.
//!
//! Condition (3′) of the Theorem-1 construction guarantees that for every
//! tree edge `{u, v}` with `|δ(u)| ≤ |δ(v)|`, the deeper image lies in
//! `N(δ(u))`. The paper notes two counting facts that drive the Theorem-4
//! universal graph: `|N(a) − {a}| ≤ 20`, and there are at most 5 vertices
//! `β` with `a ∈ N(β)` but `β ∉ N(a)` — hence degree `25·16 + 15 = 415`.

use crate::address::Address;

/// Computes `N(a)` inside `X(height)`, including `a` itself.
///
/// The result is sorted (level, index) and duplicate-free.
pub fn neighborhood(a: Address, height: u8) -> Vec<Address> {
    assert!(a.level() <= height);
    let mut out = Vec::with_capacity(21);
    // ≤ 3 horizontal moves (either direction) on a's own level.
    for delta in -3i64..=3 {
        if let Some(b) = a.offset(delta) {
            out.push(b);
        }
    }
    // 1 downward edge, then ≤ 2 horizontal moves. The two children are
    // horizontally adjacent, so the union is a contiguous window of the
    // child level: indices 2·idx − 2 ..= 2·idx + 3.
    if a.level() < height {
        let c = a.child(0);
        for delta in -2i64..=3 {
            if let Some(b) = c.offset(delta) {
                out.push(b);
            }
        }
    }
    // 2 downward edges, then ≤ 2 horizontal moves: the grandchildren occupy
    // indices 4·idx .. 4·idx + 3, so the window is 4·idx − 2 ..= 4·idx + 5.
    if a.level() + 2 <= height {
        let g = a.child(0).child(0);
        for delta in -2i64..=5 {
            if let Some(b) = g.offset(delta) {
                out.push(b);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The vertices `β ≠ a` with `a ∈ N(β)` but `β ∉ N(a)` — the "asymmetric
/// in-neighbours" of `a` (at most 5, per the paper).
pub fn inverse_only(a: Address, height: u8) -> Vec<Address> {
    let n_a = neighborhood(a, height);
    let mut out = Vec::new();
    // β must be on a's level (symmetric — excluded), one level up, or two
    // levels up; enumerate the candidate windows directly.
    for up in 1..=2u8 {
        if a.level() < up {
            continue;
        }
        let anc = a.ancestor_at(a.level() - up).unwrap();
        // β on that level with a inside β's window: scan a small range
        // around the ancestor.
        for delta in -4i64..=4 {
            let Some(beta) = anc.offset(delta) else {
                continue;
            };
            if beta == a || n_a.binary_search(&beta).is_ok() {
                continue;
            }
            if neighborhood(beta, height).binary_search(&a).is_ok() {
                out.push(beta);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// True if `b ∈ N(a)` within `X(height)`.
pub fn in_neighborhood(a: Address, b: Address, height: u8) -> bool {
    neighborhood(a, height).binary_search(&b).is_ok()
}

/// Exhaustively verifies the two Figure-2 counting facts over all of
/// `X(height)`, returning the observed maxima `(max |N(a) − {a}|,
/// max #inverse-only)`.
pub fn verify_figure2(height: u8) -> (usize, usize) {
    let mut max_n = 0;
    let mut max_inv = 0;
    for a in Address::all_up_to(height) {
        let n = neighborhood(a, height).len() - 1;
        let inv = inverse_only(a, height).len();
        max_n = max_n.max(n);
        max_inv = max_inv.max(inv);
    }
    (max_n, max_inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xtree::XTree;
    use std::collections::BTreeSet;

    /// Brute-force N(a) straight from the definition, by walking edges.
    fn slow_neighborhood(a: Address, height: u8) -> BTreeSet<Address> {
        let mut out = BTreeSet::new();
        // ≤ 3 horizontal.
        let mut frontier = vec![a];
        out.insert(a);
        for _ in 0..3 {
            let mut next = Vec::new();
            for v in frontier {
                for w in [v.predecessor(), v.successor()].into_iter().flatten() {
                    if out.insert(w) {
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        // ≤ 2 down then ≤ 2 horizontal.
        let mut downs = vec![a];
        for _ in 0..2 {
            let mut next = Vec::new();
            for v in &downs {
                if v.level() < height {
                    next.extend(v.children());
                }
            }
            for d in &next {
                out.insert(*d);
                let mut l = *d;
                let mut r = *d;
                for _ in 0..2 {
                    if let Some(p) = l.predecessor() {
                        out.insert(p);
                        l = p;
                    }
                    if let Some(s) = r.successor() {
                        out.insert(s);
                        r = s;
                    }
                }
            }
            downs = next;
        }
        out
    }

    #[test]
    fn fast_matches_brute_force() {
        for height in 0..=6u8 {
            for a in Address::all_up_to(height) {
                let fast: BTreeSet<_> = neighborhood(a, height).into_iter().collect();
                let slow = slow_neighborhood(a, height);
                assert_eq!(fast, slow, "N({a}) in X({height})");
            }
        }
    }

    #[test]
    fn figure2_bounds() {
        // |N(a) − {a}| ≤ 20 and at most 5 asymmetric in-neighbours — and both
        // bounds are attained for interior vertices of a large enough X-tree.
        let (max_n, max_inv) = verify_figure2(8);
        assert_eq!(max_n, 20);
        assert_eq!(max_inv, 5);
        for height in 0..=7u8 {
            let (n, i) = verify_figure2(height);
            assert!(n <= 20 && i <= 5, "X({height}): {n}, {i}");
        }
    }

    #[test]
    fn members_are_close_in_the_xtree() {
        // Everything in N(a) is within X-tree distance 4 of a (3 horizontal,
        // or 2 down + 2 horizontal), so dilation-3 claims route through it.
        let height = 6;
        let x = XTree::new(height);
        for a in Address::all_up_to(height).step_by(3) {
            for b in neighborhood(a, height) {
                assert!(x.distance(a, b) <= 4, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn neighborhood_contains_self_children_grandchildren() {
        let a = Address::parse("01").unwrap();
        let n = neighborhood(a, 5);
        for b in ["01", "010", "011", "0100", "0111", "00", "10", "11"] {
            let b = Address::parse(b).unwrap();
            assert!(n.binary_search(&b).is_ok(), "missing {b}");
        }
        // Parent is NOT in N(a): no upward moves.
        assert!(n.binary_search(&Address::parse("0").unwrap()).is_err());
    }

    #[test]
    fn universal_degree_constant() {
        // 25 · 16 + 15 = 415: |N(a) ∪ inverse_only(a)| − {a} ≤ 25.
        for a in Address::all_up_to(7) {
            let total = neighborhood(a, 7).len() - 1 + inverse_only(a, 7).len();
            assert!(total <= 25, "{a}: {total}");
        }
    }
}

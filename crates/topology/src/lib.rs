//! Host interconnection networks for the SPAA'91 X-tree reproduction.
//!
//! This crate builds, from scratch, every network the paper mentions:
//!
//! * [`XTree`] — the star of the paper: a complete binary tree plus
//!   horizontal level edges (Figure 1);
//! * [`Hypercube`] — the Theorem-3 target;
//! * [`CompleteBinaryTree`] — baseline host / inorder-embedding domain;
//! * [`CubeConnectedCycles`] and [`Butterfly`] — the constant-degree
//!   hypercube derivatives the introduction contrasts X-trees with;
//! * [`Mesh2D`] — the grid, the introduction's other "common program
//!   structure" (and the other BCHLR'88 negative-result guest);
//! * [`neighborhood()`] — the `N(a)` sets of Figure 2 that drive both
//!   condition (3′) and the Theorem-4 universal graph.
//!
//! All networks expose a common [`Graph`] view backed by [`Csr`] storage,
//! plus exact distance oracles where the topology admits one.

pub mod address;
pub mod butterfly;
pub mod cbt;
pub mod ccc;
pub mod graph;
pub mod hypercube;
pub mod mesh;
pub mod neighborhood;
pub mod xtree;

pub use address::Address;
pub use butterfly::Butterfly;
pub use cbt::CompleteBinaryTree;
pub use ccc::CubeConnectedCycles;
pub use graph::{Csr, Graph};
pub use hypercube::Hypercube;
pub use mesh::Mesh2D;
pub use neighborhood::{in_neighborhood, inverse_only, neighborhood};
pub use xtree::{analytic_distance, xtree_edge_count, xtree_node_count, XTree};

/// Per-topology deterministic next-hop helpers (`O(1)` memory), re-exported
/// under one namespace for the simulator's structured routers.
pub mod routing {
    pub use crate::cbt::next_hop_towards as cbt_next_hop;
    pub use crate::hypercube::next_hop_towards as hypercube_next_hop;
    pub use crate::xtree::next_hop_towards as xtree_next_hop;
}

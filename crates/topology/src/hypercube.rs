//! The hypercube `Q_d`: vertices are the `2^d` bit strings of length `d`,
//! edges connect strings differing in exactly one bit.
//!
//! The paper's Theorem 3 routes the Theorem-1 X-tree embedding through the
//! Lemma-3 map into the optimal hypercube; this module provides the host.

use crate::graph::{Csr, Graph};

/// The hypercube of dimension `d` (vertex ids are the labels themselves).
#[derive(Clone, Debug)]
pub struct Hypercube {
    dim: u8,
    graph: Csr,
}

/// Deterministic next hop from `v` toward `dst` in any hypercube
/// containing both.
///
/// Picks the smallest-id neighbour of `v` that is one bit closer to
/// `dst` — the vertex a BFS next-hop table built with the
/// smallest-id-downhill rule selects. Clearing any differing bit yields an
/// id below `v` while setting one yields an id above, so: clear the
/// *highest* differing set bit when one exists (smallest result), else set
/// the *lowest* differing bit. Returns `v` when `v == dst`.
pub fn next_hop_towards(v: u64, dst: u64) -> u64 {
    let diff = v ^ dst;
    if diff == 0 {
        return v;
    }
    let clearable = diff & v;
    if clearable != 0 {
        v ^ (1u64 << (63 - clearable.leading_zeros()))
    } else {
        v ^ (diff & diff.wrapping_neg())
    }
}

impl Hypercube {
    /// Builds `Q_d`.
    pub fn new(dim: u8) -> Self {
        assert!(
            dim <= 24,
            "hypercube of dimension {dim} would not fit in memory"
        );
        let n = 1usize << dim;
        let mut edges = Vec::with_capacity(n * dim as usize / 2);
        for v in 0..n as u32 {
            for b in 0..dim {
                let w = v ^ (1 << b);
                if v < w {
                    edges.push((v, w));
                }
            }
        }
        Hypercube {
            dim,
            graph: Csr::from_edges(n, &edges),
        }
    }

    /// The dimension `d`.
    pub fn dim(&self) -> u8 {
        self.dim
    }

    /// Hamming distance — the exact hypercube distance, no BFS needed.
    pub fn distance(&self, u: u64, v: u64) -> u32 {
        debug_assert!(u < (1 << self.dim) && v < (1 << self.dim));
        (u ^ v).count_ones()
    }

    /// Underlying CSR graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }
}

impl Graph for Hypercube {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn neighbors(&self, v: usize) -> &[u32] {
        self.graph.neighbors(v)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math
mod tests {
    use super::*;

    #[test]
    fn counts() {
        for d in 0..=10u8 {
            let q = Hypercube::new(d);
            assert_eq!(q.node_count(), 1 << d);
            assert_eq!(q.edge_count(), (1usize << d) * d as usize / 2);
            assert!(q.graph().is_connected());
        }
    }

    #[test]
    fn regular_of_degree_d() {
        let q = Hypercube::new(6);
        for v in 0..q.node_count() {
            assert_eq!(q.degree(v), 6);
        }
    }

    #[test]
    fn hamming_distance_matches_bfs() {
        let q = Hypercube::new(5);
        let d0 = q.graph().bfs(0);
        for v in 0..q.node_count() {
            assert_eq!(d0[v], q.distance(0, v as u64));
        }
        assert_eq!(q.distance(0b10110, 0b01101), 4);
    }

    #[test]
    fn next_hop_matches_smallest_id_downhill_table() {
        let q = Hypercube::new(5);
        for dst in 0..q.node_count() {
            let d = q.graph().bfs(dst);
            for v in 0..q.node_count() {
                let hop = next_hop_towards(v as u64, dst as u64);
                if v == dst {
                    assert_eq!(hop, v as u64);
                    continue;
                }
                let table = *q
                    .graph()
                    .neighbors(v)
                    .iter()
                    .find(|&&w| d[w as usize] + 1 == d[v])
                    .unwrap();
                assert_eq!(hop, u64::from(table), "{v} -> {dst}");
            }
        }
    }

    #[test]
    fn diameter_is_dimension() {
        for d in 1..=7u8 {
            assert_eq!(Hypercube::new(d).graph().diameter(), u32::from(d));
        }
    }
}

//! The hypercube `Q_d`: vertices are the `2^d` bit strings of length `d`,
//! edges connect strings differing in exactly one bit.
//!
//! The paper's Theorem 3 routes the Theorem-1 X-tree embedding through the
//! Lemma-3 map into the optimal hypercube; this module provides the host.

use crate::graph::{Csr, Graph};

/// The hypercube of dimension `d` (vertex ids are the labels themselves).
#[derive(Clone, Debug)]
pub struct Hypercube {
    dim: u8,
    graph: Csr,
}

impl Hypercube {
    /// Builds `Q_d`.
    pub fn new(dim: u8) -> Self {
        assert!(
            dim <= 24,
            "hypercube of dimension {dim} would not fit in memory"
        );
        let n = 1usize << dim;
        let mut edges = Vec::with_capacity(n * dim as usize / 2);
        for v in 0..n as u32 {
            for b in 0..dim {
                let w = v ^ (1 << b);
                if v < w {
                    edges.push((v, w));
                }
            }
        }
        Hypercube {
            dim,
            graph: Csr::from_edges(n, &edges),
        }
    }

    /// The dimension `d`.
    pub fn dim(&self) -> u8 {
        self.dim
    }

    /// Hamming distance — the exact hypercube distance, no BFS needed.
    pub fn distance(&self, u: u64, v: u64) -> u32 {
        debug_assert!(u < (1 << self.dim) && v < (1 << self.dim));
        (u ^ v).count_ones()
    }

    /// Underlying CSR graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }
}

impl Graph for Hypercube {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn neighbors(&self, v: usize) -> &[u32] {
        self.graph.neighbors(v)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math
mod tests {
    use super::*;

    #[test]
    fn counts() {
        for d in 0..=10u8 {
            let q = Hypercube::new(d);
            assert_eq!(q.node_count(), 1 << d);
            assert_eq!(q.edge_count(), (1usize << d) * d as usize / 2);
            assert!(q.graph().is_connected());
        }
    }

    #[test]
    fn regular_of_degree_d() {
        let q = Hypercube::new(6);
        for v in 0..q.node_count() {
            assert_eq!(q.degree(v), 6);
        }
    }

    #[test]
    fn hamming_distance_matches_bfs() {
        let q = Hypercube::new(5);
        let d0 = q.graph().bfs(0);
        for v in 0..q.node_count() {
            assert_eq!(d0[v], q.distance(0, v as u64));
        }
        assert_eq!(q.distance(0b10110, 0b01101), 4);
    }

    #[test]
    fn diameter_is_dimension() {
        for d in 1..=7u8 {
            assert_eq!(Hypercube::new(d).graph().diameter(), u32::from(d));
        }
    }
}

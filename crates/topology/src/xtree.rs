//! The X-tree network `X(r)`.
//!
//! Definition (paper, §2): the X-tree of height `r` is the graph whose nodes
//! are all binary strings of length at most `r`. Each string `x` of length
//! `i < r` is connected to its children `x0` and `x1`, and — when
//! `binary(x) < 2^i − 1` — to `successor(x)`, the next string of the same
//! length. In other words: a complete binary tree plus horizontal edges
//! stringing each level together left to right (Figure 1 shows `X(3)`).

use crate::address::Address;
use crate::graph::{Csr, Graph};

/// The X-tree of height `r`, with vertices identified by [`Address`]es and
/// numbered in heap order (root = 0).
#[derive(Clone, Debug)]
pub struct XTree {
    height: u8,
    graph: Csr,
}

/// Number of vertices of `X(r)`: `2^{r+1} − 1`.
pub const fn xtree_node_count(r: u8) -> usize {
    (1usize << (r + 1)) - 1
}

/// Exact X-tree distance between two addresses, in closed form.
///
/// Every shortest path can be normalised to *ascend, walk horizontally,
/// descend*: horizontal progress per step doubles with every level climbed
/// (one step at level `m` spans `2^{ℓ−m}` positions of level `ℓ`), so
/// interleaving horizontal moves below the peak never beats doing them at
/// the peak, and dipping below the endpoints' levels only shrinks the
/// span a step covers. For a peak level `m ≤ min(|a|, |b|)` the cost is
/// therefore the two vertical legs plus the index gap of the ancestors at
/// `m`; minimising over `m` gives the distance. Validated against BFS on
/// every vertex pair of `X(0)..X(7)` in the tests.
pub fn analytic_distance(a: Address, b: Address) -> u32 {
    let (la, lb) = (a.level(), b.level());
    let top = la.min(lb);
    // Scan peaks from the deepest (m = top) upward with running ancestor
    // indices — each step up shifts both once and costs two more vertical
    // hops. Stop when the vertical legs alone exceed the best cost (they
    // only grow) or when the ancestors coincide (the gap stays 0 above, so
    // higher peaks only add vertical); the latter also ends m = 0.
    let mut ja = a.index() >> (la - top);
    let mut jb = b.index() >> (lb - top);
    let mut vertical = u64::from(la - top) + u64::from(lb - top);
    let mut d = u64::MAX;
    loop {
        if vertical > d {
            break;
        }
        d = d.min(vertical + ja.abs_diff(jb));
        if ja == jb {
            break;
        }
        ja >>= 1;
        jb >>= 1;
        vertical += 2;
    }
    d as u32
}

/// Deterministic next hop from `a` toward `b` in `X(height)`.
///
/// Among the X-tree neighbours of `a`, returns the one with the smallest
/// heap id whose [`analytic_distance`] to `b` is one hop shorter — the
/// same vertex a BFS next-hop table built with the smallest-id-downhill
/// rule selects, but computed in `O(height)` with no table. Returns `a`
/// itself when `a == b`.
pub fn next_hop_towards(a: Address, b: Address, height: u8) -> Address {
    debug_assert!(a.level() <= height && b.level() <= height);
    if a == b {
        return a;
    }
    let (la, lb) = (a.level(), b.level());
    // The parent shares every ancestor of `a` strictly above `a`'s level,
    // so `d(parent, b) = best_above − 1` where `best_above` is the best
    // cost over peaks above `a`. The parent — always the smallest-id
    // neighbour — is therefore downhill exactly when `best_above` attains
    // the distance, which replicates the BFS table's smallest-id-downhill
    // tie-break without probing any neighbour.
    if la > lb {
        // Every candidate peak (m ≤ lb < la) lies above `a`:
        // `best_above == d` unconditionally.
        return a.parent().expect("a is deeper than b, so not the root");
    }
    // Peak m = la, the only one not above `a`.
    let jb_la = b.index() >> (lb - la);
    let cost_la = u64::from(lb - la) + a.index().abs_diff(jb_la);
    // Peaks m < la, with running ancestor indices (same early exits as
    // `analytic_distance`: costs past the breaks exceed the running best,
    // so they can change neither the distance nor whether it is attained
    // above `a`).
    let mut best_above = u64::MAX;
    if la > 0 {
        let mut ja = a.index() >> 1;
        let mut jb = jb_la >> 1;
        let mut vertical = u64::from(lb - la) + 2;
        loop {
            if vertical > best_above.min(cost_la) {
                break;
            }
            best_above = best_above.min(vertical + ja.abs_diff(jb));
            if ja == jb {
                break;
            }
            ja >>= 1;
            jb >>= 1;
            vertical += 2;
        }
    }
    if best_above <= cost_la {
        return a.parent().expect("la > 0 whenever a peak above a exists");
    }
    // The only optimal peak is `a`'s own level: step horizontally toward
    // `b`'s ancestor at this level, or — when `a` *is* that ancestor —
    // descend onto `b`'s ancestor one level down.
    if jb_la < a.index() {
        a.predecessor()
            .expect("a gap to the left implies a predecessor")
    } else if jb_la > a.index() {
        a.successor()
            .expect("a gap to the right implies a successor")
    } else {
        a.child((b.index() >> (lb - la - 1) & 1) as u8)
    }
}

/// Number of edges of `X(r)`: `2^{r+1} − 2` tree edges plus
/// `∑_{j=1..r} (2^j − 1) = 2^{r+1} − 2 − r` horizontal edges.
pub const fn xtree_edge_count(r: u8) -> usize {
    if r == 0 {
        0
    } else {
        2 * ((1usize << (r + 1)) - 2) - r as usize
    }
}

impl XTree {
    /// Builds `X(r)`.
    pub fn new(height: u8) -> Self {
        assert!(
            height <= 24,
            "X-tree of height {height} would not fit in memory"
        );
        let n = xtree_node_count(height);
        let mut edges = Vec::with_capacity(xtree_edge_count(height));
        for a in Address::all_up_to(height) {
            let id = a.heap_id() as u32;
            if a.level() < height {
                edges.push((id, a.child(0).heap_id() as u32));
                edges.push((id, a.child(1).heap_id() as u32));
            }
            if let Some(s) = a.successor() {
                edges.push((id, s.heap_id() as u32));
            }
        }
        XTree {
            height,
            graph: Csr::from_edges(n, &edges),
        }
    }

    /// The height `r`.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// The address of vertex id `v`.
    pub fn address(&self, v: usize) -> Address {
        assert!(v < self.node_count());
        Address::from_heap_id(v)
    }

    /// The vertex id of `a`.
    ///
    /// # Panics
    /// Panics if `a` is deeper than the height.
    pub fn id(&self, a: Address) -> usize {
        assert!(
            a.level() <= self.height,
            "address {a} below X({})",
            self.height
        );
        a.heap_id()
    }

    /// Underlying CSR graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Exact distance between two addresses, via the closed form
    /// [`analytic_distance`] (validated exhaustively against BFS in the
    /// tests); `O(min level)` per query.
    pub fn distance(&self, a: Address, b: Address) -> u32 {
        debug_assert!(a.level() <= self.height && b.level() <= self.height);
        analytic_distance(a, b)
    }

    /// BFS-based distance — the oracle the closed form is checked against.
    pub fn distance_bfs(&self, a: Address, b: Address) -> u32 {
        self.graph
            .bounded_distance(self.id(a), self.id(b), 4 * u32::from(self.height) + 4)
            .expect("X-tree is connected")
    }

    /// ASCII rendering of the X-tree (small heights), used by the Figure-1
    /// reproduction to show the structure of `X(3)`.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for l in 0..=self.height {
            let pad = (1usize << (self.height - l)) - 1;
            let gap = (1usize << (self.height - l + 1)) - 1;
            out.push_str(&" ".repeat(2 * pad));
            let mut first = true;
            for _a in Address::level_iter(l) {
                if !first {
                    out.push_str(&"--".repeat(gap.min(6)).to_string());
                }
                out.push('o');
                first = false;
            }
            out.push('\n');
        }
        out
    }
}

impl Graph for XTree {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn neighbors(&self, v: usize) -> &[u32] {
        self.graph.neighbors(v)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math
mod tests {
    use super::*;

    #[test]
    fn counts_match_formulas() {
        for r in 0..=8u8 {
            let x = XTree::new(r);
            assert_eq!(x.node_count(), xtree_node_count(r), "nodes of X({r})");
            assert_eq!(x.edge_count(), xtree_edge_count(r), "edges of X({r})");
            assert!(x.graph().is_connected());
        }
    }

    #[test]
    fn figure_1_xtree_of_height_3() {
        // Figure 1 of the paper: X(3) has 15 vertices; 14 tree edges and
        // (1 + 3 + 7) = 11 horizontal edges.
        let x = XTree::new(3);
        assert_eq!(x.node_count(), 15);
        assert_eq!(x.edge_count(), 14 + 11);
    }

    #[test]
    fn adjacency_of_x2() {
        let x = XTree::new(2);
        let v = |s: &str| x.id(Address::parse(s).unwrap());
        // Root connects only to its two children.
        assert_eq!(x.degree(v("ε")), 2);
        // "0" – children 00, 01, parent ε, successor 1.
        assert!(x.has_edge(v("0"), v("00")));
        assert!(x.has_edge(v("0"), v("01")));
        assert!(x.has_edge(v("0"), v("ε")));
        assert!(x.has_edge(v("0"), v("1")));
        assert_eq!(x.degree(v("0")), 4);
        // Horizontal chain on the leaf level.
        assert!(x.has_edge(v("00"), v("01")));
        assert!(x.has_edge(v("01"), v("10")));
        assert!(x.has_edge(v("10"), v("11")));
        assert!(!x.has_edge(v("00"), v("10")));
        // 01 and 10 are not tree siblings but are X-tree neighbors.
        assert_eq!(
            Address::parse("01").unwrap().successor(),
            Address::parse("10")
        );
    }

    #[test]
    fn max_degree_is_six() {
        // Interior vertices: parent + 2 children + 2 horizontal = 5; plus
        // nothing else. Leaves: parent + 2 horizontal = 3. Degree ≤ 5 overall
        // (6 never occurs; check the true bound).
        for r in 2..=7u8 {
            let x = XTree::new(r);
            assert!(x.max_degree() <= 5, "X({r}) max degree {}", x.max_degree());
        }
        assert_eq!(XTree::new(5).max_degree(), 5);
    }

    #[test]
    fn distance_examples() {
        let x = XTree::new(3);
        let a = |s: &str| Address::parse(s).unwrap();
        assert_eq!(x.distance(a("000"), a("001")), 1);
        // Corner to corner: cross once at level 1 or 2 (e.g. 000-00-01, then
        // the horizontal 01-10 edge, then 10-11-111): 5 hops, far better than
        // the 7 horizontal leaf hops.
        assert_eq!(x.distance(a("000"), a("111")), 5);
        assert_eq!(x.distance(a("01"), a("10")), 1); // horizontal, non-sibling
        assert_eq!(x.distance(a("ε"), a("111")), 3);
        assert_eq!(x.distance(a("00"), a("00")), 0);
    }

    #[test]
    fn horizontal_shortcut_beats_tree_path() {
        // In the plain complete binary tree 011 and 100 are at distance 6;
        // X-tree horizontal edge makes them adjacent.
        let x = XTree::new(3);
        let u = Address::parse("011").unwrap();
        let v = Address::parse("100").unwrap();
        assert_eq!(u.tree_distance(v), 6);
        assert_eq!(x.distance(u, v), 1);
    }

    #[test]
    fn diameter_growth() {
        // The diameter of X(r) grows linearly in r (Θ(r)): 2r − 1 for the
        // heights checked here (corner-to-corner, crossing near the top).
        let expected = [0u32, 1, 3, 5, 7];
        for (r, &d) in expected.iter().enumerate() {
            assert_eq!(
                XTree::new(r as u8).graph().diameter(),
                d,
                "diameter of X({r})"
            );
        }
    }

    #[test]
    fn analytic_distance_matches_bfs_exhaustively() {
        // The load-bearing check: the closed form equals BFS on every
        // vertex pair of X(0) .. X(7) (up to 255² pairs).
        for r in 0..=7u8 {
            let x = XTree::new(r);
            for src in 0..x.node_count() {
                let d = x.graph().bfs(src);
                let a = Address::from_heap_id(src);
                for dst in 0..x.node_count() {
                    let b = Address::from_heap_id(dst);
                    assert_eq!(analytic_distance(a, b), d[dst], "X({r}): {a} – {b}");
                }
            }
        }
    }

    #[test]
    fn analytic_distance_is_symmetric_and_reflexive() {
        for a in Address::all_up_to(9) {
            assert_eq!(analytic_distance(a, a), 0);
        }
        let p = Address::parse("010110").unwrap();
        let q = Address::parse("11").unwrap();
        assert_eq!(analytic_distance(p, q), analytic_distance(q, p));
    }

    #[test]
    fn analytic_distance_works_beyond_bfs_scale() {
        // Deep addresses where building the graph would be infeasible.
        let a = Address::new(50, 0);
        let b = Address::new(50, (1u64 << 50) - 1);
        // Corner to corner: up to level 1, one horizontal, down: 2·49 + 1.
        assert_eq!(analytic_distance(a, b), 99);
        assert_eq!(analytic_distance(Address::ROOT, a), 50);
    }

    #[test]
    fn next_hop_matches_smallest_id_downhill_table() {
        // The structured router rule must be bit-identical to what a BFS
        // next-hop table with the smallest-id tie-break would contain.
        for r in 0..=4u8 {
            let x = XTree::new(r);
            for dst in 0..x.node_count() {
                let d = x.graph().bfs(dst);
                let b = Address::from_heap_id(dst);
                for v in 0..x.node_count() {
                    let a = Address::from_heap_id(v);
                    let hop = next_hop_towards(a, b, r);
                    if v == dst {
                        assert_eq!(hop, a);
                        continue;
                    }
                    let table = *x
                        .graph()
                        .neighbors(v)
                        .iter()
                        .find(|&&w| d[w as usize] + 1 == d[v])
                        .unwrap();
                    assert_eq!(hop.heap_id(), table as usize, "X({r}): {a} -> {b}");
                }
            }
        }
    }

    #[test]
    fn render_has_height_plus_one_rows() {
        let x = XTree::new(3);
        assert_eq!(x.render_ascii().lines().count(), 4);
    }
}

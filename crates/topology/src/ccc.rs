//! Cube-connected cycles `CCC(d)`.
//!
//! The paper's introduction contrasts X-trees with constant-degree hypercube
//! derivatives: Bhatt, Chung, Hong, Leighton and Rosenberg showed X-trees
//! *cannot* be embedded into cube-connected cycles or butterflies with
//! constant dilation and expansion (dilation `Ω(log log n)` is required).
//! We build `CCC(d)` to reproduce the degree/diameter context table (B2).
//!
//! `CCC(d)` replaces every vertex `w` of `Q_d` by a cycle of `d` vertices
//! `(w, 0) … (w, d−1)`; `(w, i)` is joined to its cycle neighbours and to
//! `(w ⊕ 2^i, i)` across dimension `i`.

use crate::graph::{Csr, Graph};

/// The cube-connected cycles network of dimension `d ≥ 3`.
#[derive(Clone, Debug)]
pub struct CubeConnectedCycles {
    dim: u8,
    graph: Csr,
}

impl CubeConnectedCycles {
    /// Builds `CCC(d)` with `d · 2^d` vertices.
    ///
    /// # Panics
    /// Panics for `d < 3` (smaller instances degenerate: cycles of length
    /// < 3 create parallel edges).
    pub fn new(dim: u8) -> Self {
        assert!((3..=20).contains(&dim), "CCC dimension must be in 3..=20");
        let d = dim as usize;
        let n = d << dim;
        let id = |w: usize, i: usize| (w * d + i) as u32;
        let mut edges = Vec::with_capacity(3 * n / 2);
        for w in 0..(1usize << dim) {
            for i in 0..d {
                // cycle edge to (w, i+1 mod d); indexing by the source slot i
                // emits each of the d cycle edges exactly once (d ≥ 3, so the
                // wrap edge (d−1, 0) is distinct from (0, 1))
                edges.push((id(w, i), id(w, (i + 1) % d)));
                // hypercube edge across dimension i
                let w2 = w ^ (1 << i);
                if w < w2 {
                    edges.push((id(w, i), id(w2, i)));
                }
            }
        }
        CubeConnectedCycles {
            dim,
            graph: Csr::from_edges(n, &edges),
        }
    }

    /// The dimension `d`.
    pub fn dim(&self) -> u8 {
        self.dim
    }

    /// Vertex id of `(w, i)`.
    pub fn id(&self, w: u64, i: u8) -> usize {
        assert!(w < (1 << self.dim) && i < self.dim);
        w as usize * self.dim as usize + i as usize
    }

    /// Underlying CSR graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }
}

impl Graph for CubeConnectedCycles {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn neighbors(&self, v: usize) -> &[u32] {
        self.graph.neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        for d in 3..=7u8 {
            let c = CubeConnectedCycles::new(d);
            assert_eq!(c.node_count(), (d as usize) << d);
            // Every vertex has degree exactly 3: two cycle + one cube edge.
            assert_eq!(c.edge_count(), c.node_count() * 3 / 2);
            assert!(c.graph().is_connected());
        }
    }

    #[test]
    fn three_regular() {
        let c = CubeConnectedCycles::new(4);
        for v in 0..c.node_count() {
            assert_eq!(c.degree(v), 3, "vertex {v}");
        }
    }

    #[test]
    fn cube_edges_cross_correct_dimension() {
        let c = CubeConnectedCycles::new(3);
        assert!(c.has_edge(c.id(0b000, 1), c.id(0b010, 1)));
        assert!(!c.has_edge(c.id(0b000, 1), c.id(0b001, 1)));
        assert!(c.has_edge(c.id(0b101, 0), c.id(0b100, 0)));
    }

    #[test]
    fn ccc3_diameter() {
        // CCC(3) has 24 vertices; its diameter is 6.
        assert_eq!(CubeConnectedCycles::new(3).graph().diameter(), 6);
    }
}

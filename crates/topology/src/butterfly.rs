//! The butterfly network `BF(d)` (with distinct levels, no wraparound).
//!
//! Vertices are pairs `(w, l)` with `w ∈ {0,1}^d` and level `l ∈ 0..=d`;
//! `(w, l)` is joined to `(w, l+1)` (straight edge) and `(w ⊕ 2^l, l+1)`
//! (cross edge). Like [`crate::ccc::CubeConnectedCycles`], this is one of
//! the constant-degree hypercube derivatives the paper's introduction
//! contrasts with X-trees: X-trees need dilation `Ω(log log n)` on it.

use crate::graph::{Csr, Graph};

/// The (ordinary, non-wrapped) butterfly of dimension `d`.
#[derive(Clone, Debug)]
pub struct Butterfly {
    dim: u8,
    graph: Csr,
}

impl Butterfly {
    /// Builds `BF(d)` with `(d + 1) · 2^d` vertices.
    pub fn new(dim: u8) -> Self {
        assert!(
            (1..=20).contains(&dim),
            "butterfly dimension must be in 1..=20"
        );
        let d = dim as usize;
        let rows = 1usize << dim;
        let n = (d + 1) * rows;
        let id = |w: usize, l: usize| (l * rows + w) as u32;
        let mut edges = Vec::with_capacity(2 * d * rows);
        for l in 0..d {
            for w in 0..rows {
                edges.push((id(w, l), id(w, l + 1)));
                edges.push((id(w, l), id(w ^ (1 << l), l + 1)));
            }
        }
        Butterfly {
            dim,
            graph: Csr::from_edges(n, &edges),
        }
    }

    /// The dimension `d`.
    pub fn dim(&self) -> u8 {
        self.dim
    }

    /// Vertex id of `(w, l)`.
    pub fn id(&self, w: u64, level: u8) -> usize {
        assert!(w < (1 << self.dim) && level <= self.dim);
        level as usize * (1usize << self.dim) + w as usize
    }

    /// Underlying CSR graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }
}

impl Graph for Butterfly {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn neighbors(&self, v: usize) -> &[u32] {
        self.graph.neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        for d in 1..=7u8 {
            let b = Butterfly::new(d);
            assert_eq!(b.node_count(), ((d as usize) + 1) << d);
            assert_eq!(b.edge_count(), (d as usize) << (d + 1));
            assert!(b.graph().is_connected());
        }
    }

    #[test]
    fn degrees() {
        // End levels have degree 2, middle levels degree 4.
        let b = Butterfly::new(4);
        for w in 0..16u64 {
            assert_eq!(b.degree(b.id(w, 0)), 2);
            assert_eq!(b.degree(b.id(w, 4)), 2);
            for l in 1..4u8 {
                assert_eq!(b.degree(b.id(w, l)), 4);
            }
        }
        assert_eq!(b.max_degree(), 4);
    }

    #[test]
    fn cross_edges_flip_level_bit() {
        let b = Butterfly::new(3);
        assert!(b.has_edge(b.id(0b000, 0), b.id(0b001, 1)));
        assert!(b.has_edge(b.id(0b000, 1), b.id(0b010, 2)));
        assert!(b.has_edge(b.id(0b000, 2), b.id(0b100, 3)));
        assert!(!b.has_edge(b.id(0b000, 0), b.id(0b010, 1)));
    }

    #[test]
    fn butterfly_routes_any_row_pair() {
        // From (w, 0) one can reach (w', d) in exactly d steps: diameter ≤ 2d.
        let b = Butterfly::new(4);
        let d = b.graph().bfs(b.id(0b0000, 0));
        for w in 0..16u64 {
            assert!(d[b.id(w, 4)] == 4);
        }
        assert!(b.graph().diameter() <= 8);
    }
}

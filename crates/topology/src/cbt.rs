//! The complete binary tree `B_r` — the X-tree without its horizontal
//! edges. Used as a baseline host and by the inorder hypercube embedding.

use crate::address::Address;
use crate::graph::{Csr, Graph};

/// The complete binary tree of height `r`, vertices in heap order.
#[derive(Clone, Debug)]
pub struct CompleteBinaryTree {
    height: u8,
    graph: Csr,
}

/// Next hop from `a` toward `b` in a complete binary tree.
///
/// Tree shortest paths are unique — descend toward `b` when it sits in
/// `a`'s subtree, otherwise climb to the parent — so this trivially agrees
/// with any deterministic BFS routing table. Returns `a` when `a == b`.
pub fn next_hop_towards(a: Address, b: Address) -> Address {
    if a == b {
        return a;
    }
    if a.is_ancestor_of(b) {
        b.ancestor_at(a.level() + 1)
            .expect("b is a strict descendant of a")
    } else {
        a.parent()
            .expect("a is not an ancestor of b, so not the root")
    }
}

impl CompleteBinaryTree {
    /// Builds `B_r`.
    pub fn new(height: u8) -> Self {
        assert!(
            height <= 24,
            "tree of height {height} would not fit in memory"
        );
        let n = (1usize << (height + 1)) - 1;
        let mut edges = Vec::with_capacity(n - 1);
        for a in Address::all_up_to(height) {
            if a.level() < height {
                edges.push((a.heap_id() as u32, a.child(0).heap_id() as u32));
                edges.push((a.heap_id() as u32, a.child(1).heap_id() as u32));
            }
        }
        CompleteBinaryTree {
            height,
            graph: Csr::from_edges(n, &edges),
        }
    }

    /// The height `r`.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Exact distance: up to the LCA and back down (no search needed).
    pub fn distance(&self, a: Address, b: Address) -> u32 {
        a.tree_distance(b)
    }

    /// Underlying CSR graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }
}

impl Graph for CompleteBinaryTree {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn neighbors(&self, v: usize) -> &[u32] {
        self.graph.neighbors(v)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math
mod tests {
    use super::*;

    #[test]
    fn counts_and_connectivity() {
        for r in 0..=8u8 {
            let t = CompleteBinaryTree::new(r);
            assert_eq!(t.node_count(), (1 << (r + 1)) - 1);
            assert_eq!(t.edge_count(), t.node_count() - 1);
            assert!(t.graph().is_connected());
        }
    }

    #[test]
    fn analytic_distance_matches_bfs() {
        let t = CompleteBinaryTree::new(4);
        let src = Address::parse("0110").unwrap();
        let d = t.graph().bfs(src.heap_id());
        for v in 0..t.node_count() {
            assert_eq!(
                d[v],
                t.distance(src, Address::from_heap_id(v)),
                "vertex {v}"
            );
        }
    }

    #[test]
    fn diameter_is_2r() {
        for r in 0..=6u8 {
            assert_eq!(
                CompleteBinaryTree::new(r).graph().diameter(),
                2 * u32::from(r)
            );
        }
    }

    #[test]
    fn next_hop_walks_the_unique_path() {
        let t = CompleteBinaryTree::new(4);
        for src in 0..t.node_count() {
            for dst in 0..t.node_count() {
                let (mut at, b) = (Address::from_heap_id(src), Address::from_heap_id(dst));
                let mut hops = 0;
                while at != b {
                    let next = next_hop_towards(at, b);
                    assert!(t.graph().has_edge(at.heap_id(), next.heap_id()));
                    at = next;
                    hops += 1;
                }
                assert_eq!(hops, t.distance(Address::from_heap_id(src), b));
            }
        }
    }

    #[test]
    fn degree_at_most_three() {
        let t = CompleteBinaryTree::new(6);
        assert_eq!(t.max_degree(), 3);
        assert_eq!(t.degree(0), 2); // root
    }
}

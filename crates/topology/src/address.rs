//! Binary-string addresses for tree-structured networks.
//!
//! The paper (Monien, SPAA '91) addresses the vertices of the X-tree `X(r)`
//! by *binary strings of length at most `r`*: the empty string `ε` is the
//! root, and a string `x` of length `i` has children `x0` and `x1` on level
//! `i + 1`. `binary(x)` is the integer the string represents, so the
//! horizontal ("cross") edges connect `x` with `successor(x)` — the unique
//! string of the same length with `binary(successor(x)) = binary(x) + 1`.
//!
//! [`Address`] packs such a string into a `(len, bits)` pair, supporting
//! strings of up to 60 bits — far more than any host network that fits in
//! memory.

use std::fmt;

/// Maximum supported string length. `4^60` leaves is unreachable in memory,
/// so this is not a practical restriction; it keeps `bits` in a `u64` with
/// headroom for arithmetic.
pub const MAX_LEN: u8 = 60;

/// A binary string of bounded length, i.e. a vertex address in a complete
/// binary tree or X-tree.
///
/// Ordered first by length (level), then by `binary(x)` — exactly the
/// left-to-right, top-to-bottom reading order of the tree levels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address {
    len: u8,
    bits: u64,
}

impl Address {
    /// The empty string `ε` (the root).
    pub const ROOT: Address = Address { len: 0, bits: 0 };

    /// Builds an address from a level and the integer value of the string.
    ///
    /// # Panics
    /// Panics if `bits >= 2^len` or `len > MAX_LEN`.
    #[inline]
    pub fn new(len: u8, bits: u64) -> Self {
        assert!(len <= MAX_LEN, "address length {len} exceeds MAX_LEN");
        assert!(
            len == 64 || bits < (1u64 << len),
            "bits {bits} do not fit in a string of length {len}"
        );
        Address { len, bits }
    }

    /// Parses a string of `'0'`/`'1'` characters; the empty string is the root.
    pub fn parse(s: &str) -> Option<Self> {
        if s == "ε" {
            return Some(Self::ROOT);
        }
        if s.len() > MAX_LEN as usize {
            return None;
        }
        let mut bits = 0u64;
        for c in s.chars() {
            match c {
                '0' => bits <<= 1,
                '1' => bits = (bits << 1) | 1,
                _ => return None,
            }
        }
        Some(Address {
            len: s.len() as u8,
            bits,
        })
    }

    /// The string length, i.e. the level of the vertex (root = 0).
    #[inline]
    pub fn level(self) -> u8 {
        self.len
    }

    /// `binary(x)`: the integer this string denotes, i.e. the position of the
    /// vertex within its level, counted from the left starting at 0.
    #[inline]
    pub fn index(self) -> u64 {
        self.bits
    }

    /// Number of vertices on this address's level (`2^len`).
    #[inline]
    pub fn level_width(self) -> u64 {
        1u64 << self.len
    }

    /// True for the root `ε`.
    #[inline]
    pub fn is_root(self) -> bool {
        self.len == 0
    }

    /// The parent string (drops the last symbol); `None` for the root.
    #[inline]
    pub fn parent(self) -> Option<Address> {
        if self.len == 0 {
            None
        } else {
            Some(Address {
                len: self.len - 1,
                bits: self.bits >> 1,
            })
        }
    }

    /// The child `x·b` for `b ∈ {0, 1}`.
    ///
    /// # Panics
    /// Panics if the result would exceed [`MAX_LEN`] or `b > 1`.
    #[inline]
    pub fn child(self, b: u8) -> Address {
        assert!(b <= 1, "child bit must be 0 or 1");
        assert!(self.len < MAX_LEN, "address too long");
        Address {
            len: self.len + 1,
            bits: (self.bits << 1) | u64::from(b),
        }
    }

    /// Both children, left then right.
    #[inline]
    pub fn children(self) -> [Address; 2] {
        [self.child(0), self.child(1)]
    }

    /// `successor(x)`: the next string of the same length in left-to-right
    /// order, if any. This is the other endpoint of the horizontal X-tree
    /// edge leaving `x` to the right.
    #[inline]
    pub fn successor(self) -> Option<Address> {
        if self.len > 0 && self.bits + 1 < (1u64 << self.len) {
            Some(Address {
                len: self.len,
                bits: self.bits + 1,
            })
        } else {
            None
        }
    }

    /// The previous string of the same length, if any.
    #[inline]
    pub fn predecessor(self) -> Option<Address> {
        if self.bits > 0 {
            Some(Address {
                len: self.len,
                bits: self.bits - 1,
            })
        } else {
            None
        }
    }

    /// Moves `delta` positions within the level, staying in bounds.
    #[inline]
    pub fn offset(self, delta: i64) -> Option<Address> {
        let idx = self.bits as i64 + delta;
        if idx < 0 || idx as u64 >= self.level_width() {
            None
        } else {
            Some(Address {
                len: self.len,
                bits: idx as u64,
            })
        }
    }

    /// True if this is the all-zeros string `0^len` (leftmost on its level).
    #[inline]
    pub fn is_leftmost(self) -> bool {
        self.bits == 0
    }

    /// True if this is the all-ones string `1^len` (rightmost on its level).
    #[inline]
    pub fn is_rightmost(self) -> bool {
        self.len == 0 || self.bits == (1u64 << self.len) - 1
    }

    /// Appends `count` copies of bit `b`: `x · b^count`.
    pub fn extend(self, b: u8, count: u8) -> Address {
        let mut a = self;
        for _ in 0..count {
            a = a.child(b);
        }
        a
    }

    /// Concatenates another string onto this one: `x · y`.
    pub fn concat(self, suffix: Address) -> Address {
        assert!(
            self.len + suffix.len <= MAX_LEN,
            "concatenated address too long"
        );
        Address {
            len: self.len + suffix.len,
            bits: (self.bits << suffix.len) | suffix.bits,
        }
    }

    /// The ancestor at `level`; `None` if `level > self.level()`.
    #[inline]
    pub fn ancestor_at(self, level: u8) -> Option<Address> {
        if level > self.len {
            None
        } else {
            Some(Address {
                len: level,
                bits: self.bits >> (self.len - level),
            })
        }
    }

    /// True if `self` is an ancestor of (or equal to) `other`.
    #[inline]
    pub fn is_ancestor_of(self, other: Address) -> bool {
        other.ancestor_at(self.len) == Some(self)
    }

    /// The leftmost descendant of `self` on `level` (appends `0`s).
    #[inline]
    pub fn leftmost_descendant(self, level: u8) -> Address {
        assert!(level >= self.len);
        self.extend(0, level - self.len)
    }

    /// The rightmost descendant of `self` on `level` (appends `1`s).
    #[inline]
    pub fn rightmost_descendant(self, level: u8) -> Address {
        assert!(level >= self.len);
        self.extend(1, level - self.len)
    }

    /// Heap-order id: addresses enumerated level by level, left to right.
    /// The root is 0; level `l` occupies ids `2^l − 1 .. 2^{l+1} − 1`.
    #[inline]
    pub fn heap_id(self) -> usize {
        ((1u64 << self.len) - 1 + self.bits) as usize
    }

    /// Inverse of [`heap_id`](Self::heap_id).
    #[inline]
    pub fn from_heap_id(id: usize) -> Address {
        let id = id as u64;
        let len = u64::BITS - (id + 1).leading_zeros() - 1;
        Address {
            len: len as u8,
            bits: id + 1 - (1u64 << len),
        }
    }

    /// Iterates over all addresses of length exactly `len`, left to right.
    pub fn level_iter(len: u8) -> impl Iterator<Item = Address> {
        (0..(1u64 << len)).map(move |bits| Address { len, bits })
    }

    /// Iterates over all addresses of length at most `max_len`, in heap order.
    pub fn all_up_to(max_len: u8) -> impl Iterator<Item = Address> {
        (0..=max_len).flat_map(Address::level_iter)
    }

    /// The individual bits, most significant (first symbol) first.
    pub fn bits_msb_first(self) -> impl Iterator<Item = u8> {
        let (len, bits) = (self.len, self.bits);
        (0..len).map(move |i| ((bits >> (len - 1 - i)) & 1) as u8)
    }

    /// Distance in the *complete binary tree* (no horizontal edges): up to
    /// the lowest common ancestor and back down.
    pub fn tree_distance(self, other: Address) -> u32 {
        let common = self.lca(other);
        u32::from(self.len - common.len) + u32::from(other.len - common.len)
    }

    /// Lowest common ancestor in the complete binary tree.
    pub fn lca(self, other: Address) -> Address {
        let mut a = self;
        let mut b = other;
        while a.len > b.len {
            a = a.parent().unwrap();
        }
        while b.len > a.len {
            b = b.parent().unwrap();
        }
        while a != b {
            a = a.parent().unwrap();
            b = b.parent().unwrap();
        }
        a
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for b in self.bits_msb_first() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let r = Address::ROOT;
        assert_eq!(r.level(), 0);
        assert_eq!(r.index(), 0);
        assert!(r.is_root());
        assert!(r.is_leftmost());
        assert!(r.is_rightmost());
        assert_eq!(r.parent(), None);
        assert_eq!(r.successor(), None);
        assert_eq!(r.predecessor(), None);
        assert_eq!(r.heap_id(), 0);
        assert_eq!(format!("{r}"), "ε");
    }

    #[test]
    fn parse_round_trips() {
        for s in ["0", "1", "01", "10", "1101", "000", "111111"] {
            let a = Address::parse(s).unwrap();
            assert_eq!(format!("{a}"), s);
        }
        assert_eq!(Address::parse("ε"), Some(Address::ROOT));
        assert_eq!(Address::parse(""), Some(Address::ROOT));
        assert_eq!(Address::parse("012"), None);
    }

    #[test]
    fn children_and_parent() {
        let a = Address::parse("10").unwrap();
        assert_eq!(a.child(0), Address::parse("100").unwrap());
        assert_eq!(a.child(1), Address::parse("101").unwrap());
        assert_eq!(a.child(1).parent(), Some(a));
        assert_eq!(a.children()[0].index(), 4);
    }

    #[test]
    fn successor_matches_binary_plus_one() {
        // successor(x) is defined only when binary(x) < 2^|x| − 1.
        for len in 1..=6u8 {
            for a in Address::level_iter(len) {
                match a.successor() {
                    Some(s) => {
                        assert_eq!(s.level(), len);
                        assert_eq!(s.index(), a.index() + 1);
                        assert_eq!(s.predecessor(), Some(a));
                    }
                    None => assert!(a.is_rightmost()),
                }
            }
        }
    }

    #[test]
    fn heap_id_round_trips() {
        for id in 0..1023usize {
            assert_eq!(Address::from_heap_id(id).heap_id(), id);
        }
        // Heap order equals (level, index) lexicographic order.
        let mut prev = None;
        for a in Address::all_up_to(6) {
            if let Some(p) = prev {
                assert!(a > p);
                assert_eq!(a.heap_id(), Address::heap_id(p) + 1);
            }
            prev = Some(a);
        }
    }

    #[test]
    fn level_iter_counts() {
        for len in 0..=10u8 {
            assert_eq!(Address::level_iter(len).count() as u64, 1 << len);
        }
        assert_eq!(Address::all_up_to(4).count(), 31);
    }

    #[test]
    fn extend_and_descendants() {
        let a = Address::parse("01").unwrap();
        assert_eq!(a.extend(1, 3), Address::parse("01111").unwrap());
        assert_eq!(a.leftmost_descendant(4), Address::parse("0100").unwrap());
        assert_eq!(a.rightmost_descendant(4), Address::parse("0111").unwrap());
        assert_eq!(a.leftmost_descendant(2), a);
    }

    #[test]
    fn concat_appends() {
        let a = Address::parse("01").unwrap();
        let b = Address::parse("110").unwrap();
        assert_eq!(a.concat(b), Address::parse("01110").unwrap());
        assert_eq!(a.concat(Address::ROOT), a);
        assert_eq!(Address::ROOT.concat(b), b);
    }

    #[test]
    fn ancestors() {
        let a = Address::parse("10110").unwrap();
        assert_eq!(a.ancestor_at(0), Some(Address::ROOT));
        assert_eq!(a.ancestor_at(2), Address::parse("10"));
        assert_eq!(a.ancestor_at(5), Some(a));
        assert_eq!(a.ancestor_at(6), None);
        assert!(Address::parse("10").unwrap().is_ancestor_of(a));
        assert!(!Address::parse("11").unwrap().is_ancestor_of(a));
        assert!(a.is_ancestor_of(a));
    }

    #[test]
    fn lca_and_tree_distance() {
        let a = Address::parse("000").unwrap();
        let b = Address::parse("001").unwrap();
        assert_eq!(a.lca(b), Address::parse("00").unwrap());
        assert_eq!(a.tree_distance(b), 2);
        let c = Address::parse("111").unwrap();
        assert_eq!(a.lca(c), Address::ROOT);
        assert_eq!(a.tree_distance(c), 6);
        assert_eq!(a.tree_distance(a), 0);
        assert_eq!(Address::ROOT.tree_distance(c), 3);
    }

    #[test]
    fn offset_moves_within_level() {
        let a = Address::parse("010").unwrap(); // index 2 of 8
        assert_eq!(a.offset(3), Address::parse("101"));
        assert_eq!(a.offset(-2), Address::parse("000"));
        assert_eq!(a.offset(-3), None);
        assert_eq!(a.offset(6), None);
        assert_eq!(a.offset(0), Some(a));
    }

    #[test]
    #[should_panic]
    fn new_rejects_oversized_bits() {
        let _ = Address::new(2, 4);
    }
}

//! A minimal graph abstraction for host interconnection networks.
//!
//! All host networks in this crate (X-tree, hypercube, complete binary tree,
//! cube-connected cycles, butterfly) are small, static, undirected, and
//! regular enough that a compressed sparse row ([`Csr`]) representation plus
//! a handful of traversal helpers covers every need of the embedding and
//! simulation layers.

use std::collections::VecDeque;

/// An undirected graph over vertices `0 .. node_count()`.
pub trait Graph {
    /// Number of vertices.
    fn node_count(&self) -> usize;

    /// Number of (undirected) edges.
    fn edge_count(&self) -> usize;

    /// Neighbors of vertex `v`, without duplicates.
    fn neighbors(&self, v: usize) -> &[u32];

    /// Degree of `v`.
    fn degree(&self, v: usize) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// True if `{u, v}` is an edge.
    fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).contains(&(v as u32))
    }
}

/// Compressed-sparse-row storage of an undirected graph.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    edges: usize,
}

impl Csr {
    /// Builds a CSR graph from an undirected edge list.
    ///
    /// Self-loops and duplicate edges are rejected; they never occur in the
    /// regular networks this crate constructs and tolerating them silently
    /// would mask construction bugs.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    pub fn from_edges(n: usize, edge_list: &[(u32, u32)]) -> Self {
        let mut deg = vec![0u32; n];
        for &(u, v) in edge_list {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            assert_ne!(u, v, "self-loop {u}");
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut targets = vec![0u32; offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v) in edge_list {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        let mut g = Csr {
            offsets,
            targets,
            edges: edge_list.len(),
        };
        for v in 0..n {
            let s = g.offsets[v] as usize;
            let e = g.offsets[v + 1] as usize;
            g.targets[s..e].sort_unstable();
            assert!(
                g.targets[s..e].windows(2).all(|w| w[0] != w[1]),
                "duplicate edge at vertex {v}"
            );
        }
        g
    }

    /// Single-source BFS distances; unreachable vertices get `u32::MAX`.
    pub fn bfs(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count()];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src as u32);
        while let Some(u) = q.pop_front() {
            let d = dist[u as usize] + 1;
            for &w in self.neighbors(u as usize) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = d;
                    q.push_back(w);
                }
            }
        }
        dist
    }

    /// Exact distance between two vertices via bidirectional-ish bounded BFS.
    ///
    /// Returns `None` if the distance exceeds `cap` (or the vertices are
    /// disconnected). Embedding verification only ever asks about distances
    /// of a few hops, so a capped search keeps dilation checks linear.
    pub fn bounded_distance(&self, src: usize, dst: usize, cap: u32) -> Option<u32> {
        if src == dst {
            return Some(0);
        }
        let mut dist = std::collections::HashMap::new();
        let mut q = VecDeque::new();
        dist.insert(src as u32, 0u32);
        q.push_back(src as u32);
        while let Some(u) = q.pop_front() {
            let d = dist[&u] + 1;
            if d > cap {
                return None;
            }
            for &w in self.neighbors(u as usize) {
                if w as usize == dst {
                    return Some(d);
                }
                if d < cap && !dist.contains_key(&w) {
                    dist.insert(w, d);
                    q.push_back(w);
                }
            }
        }
        None
    }

    /// Eccentricity of `src` (max finite BFS distance).
    ///
    /// # Panics
    /// Panics if the graph is disconnected.
    pub fn eccentricity(&self, src: usize) -> u32 {
        let d = self.bfs(src);
        let m = *d.iter().max().unwrap();
        assert_ne!(m, u32::MAX, "graph is disconnected");
        m
    }

    /// Exact diameter by running BFS from every vertex. Fine for the sizes
    /// this workspace benchmarks (≤ a few hundred thousand vertices only via
    /// sampled variants; exact use stays ≤ ~2^14 vertices).
    pub fn diameter(&self) -> u32 {
        (0..self.node_count())
            .map(|v| self.eccentricity(v))
            .max()
            .unwrap_or(0)
    }

    /// True if the graph is connected (empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        self.bfs(0).iter().all(|&d| d != u32::MAX)
    }

    /// Connected-component labels and the component count.
    ///
    /// Labels are dense in `0..count`, assigned in ascending order of each
    /// component's smallest vertex id, so they are deterministic.
    pub fn component_ids(&self) -> (Vec<u32>, usize) {
        let n = self.node_count();
        let mut label = vec![u32::MAX; n];
        let mut count = 0u32;
        let mut q = VecDeque::new();
        for src in 0..n {
            if label[src] != u32::MAX {
                continue;
            }
            label[src] = count;
            q.push_back(src as u32);
            while let Some(u) = q.pop_front() {
                for &w in self.neighbors(u as usize) {
                    if label[w as usize] == u32::MAX {
                        label[w as usize] = count;
                        q.push_back(w);
                    }
                }
            }
            count += 1;
        }
        (label, count as usize)
    }

    /// The survivor subgraph after faults: keeps every edge `{u, v}` whose
    /// endpoints are both alive and for which `edge_alive(u, v)` holds
    /// (called once per undirected edge, with `u < v`). Downed vertices
    /// remain in the vertex set but become isolated, so vertex ids are
    /// stable between the original and the survivor graph.
    pub fn survivor(
        &self,
        node_alive: impl Fn(u32) -> bool,
        mut edge_alive: impl FnMut(u32, u32) -> bool,
    ) -> Csr {
        let edges: Vec<(u32, u32)> = self
            .edges()
            .filter(|&(u, v)| node_alive(u) && node_alive(v) && edge_alive(u, v))
            .collect();
        Csr::from_edges(self.node_count(), &edges)
    }

    /// A shortest path from `src` to `dst` inclusive, or `None` if
    /// unreachable.
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<u32>> {
        let mut parent = vec![u32::MAX; self.node_count()];
        let mut seen = vec![false; self.node_count()];
        let mut q = VecDeque::new();
        seen[src] = true;
        q.push_back(src as u32);
        while let Some(u) = q.pop_front() {
            if u as usize == dst {
                let mut path = vec![u];
                let mut cur = u;
                while cur as usize != src {
                    cur = parent[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &w in self.neighbors(u as usize) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parent[w as usize] = u;
                    q.push_back(w);
                }
            }
        }
        None
    }

    /// Dense index of the directed edge `u -> v` in
    /// `0..directed_edge_count()`, or `None` when `{u, v}` is not an edge.
    ///
    /// The indices enumerate each vertex's out-edges contiguously in
    /// neighbor order, so flat per-edge state (claim tables, traffic
    /// counters) can live in a `Vec` instead of a hash map keyed by
    /// `(u, v)`. Degrees are tiny on every host we simulate (≤ 5 on
    /// X-trees), so a branch-light linear scan of the sorted neighbor
    /// list beats a binary search here.
    #[inline]
    pub fn directed_edge_index(&self, u: u32, v: u32) -> Option<u32> {
        let s = self.offsets[u as usize] as usize;
        let e = self.offsets[u as usize + 1] as usize;
        self.targets[s..e]
            .iter()
            .position(|&t| t == v)
            .map(|i| (s + i) as u32)
    }

    /// Number of directed edge slots (`2 * edge_count()`).
    #[inline]
    pub fn directed_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-edges of `v` as `(directed_edge_index, target)` pairs, in
    /// ascending target order — the zero-cost way to walk a vertex's links
    /// together with their dense indices.
    #[inline]
    pub fn out_edges(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let s = self.offsets[v] as usize;
        self.targets[s..self.offsets[v + 1] as usize]
            .iter()
            .enumerate()
            .map(move |(k, &w)| ((s + k) as u32, w))
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u as u32, v))
        })
    }
}

impl Graph for Csr {
    fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn neighbors(&self, v: usize) -> &[u32] {
        let s = self.offsets[v] as usize;
        let e = self.offsets[v + 1] as usize;
        &self.targets[s..e]
    }

    fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let edges: Vec<_> = (1..n as u32).map(|v| (v - 1, v)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn csr_basics() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.degree(2), 2);
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn bfs_on_cycle() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let d = g.bfs(0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(g.diameter(), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn bounded_distance_agrees_with_bfs() {
        let g = path_graph(10);
        for s in 0..10 {
            let d = g.bfs(s);
            for t in 0..10 {
                assert_eq!(g.bounded_distance(s, t, 20), Some(d[t]));
            }
        }
        assert_eq!(g.bounded_distance(0, 9, 8), None);
        assert_eq!(g.bounded_distance(0, 9, 9), Some(9));
        assert_eq!(g.bounded_distance(4, 4, 0), Some(0));
    }

    #[test]
    fn disconnected_detection() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.bounded_distance(0, 3, 10), None);
        assert_eq!(g.bfs(0)[3], u32::MAX);
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let p = g.shortest_path(1, 4).unwrap();
        assert_eq!(p.first(), Some(&1));
        assert_eq!(p.last(), Some(&4));
        assert_eq!(p.len(), 3); // 1-0-4
        assert_eq!(g.shortest_path(2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn edges_iterator_unique() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), g.edge_count());
        for (u, v) in es {
            assert!(u < v);
        }
    }

    #[test]
    fn directed_edge_indices_are_dense_and_unique() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (0, 2)]);
        assert_eq!(g.directed_edge_count(), 2 * g.edge_count());
        let mut seen = vec![false; g.directed_edge_count()];
        for u in 0..g.node_count() as u32 {
            for &v in g.neighbors(u as usize) {
                let idx = g.directed_edge_index(u, v).unwrap() as usize;
                assert!(!seen[idx], "index {idx} reused");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(g.directed_edge_index(1, 4), None);
        assert_ne!(g.directed_edge_index(0, 1), g.directed_edge_index(1, 0));
    }

    #[test]
    fn component_ids_label_every_piece() {
        let g = Csr::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]);
        let (label, count) = g.component_ids();
        assert_eq!(count, 3);
        assert_eq!(label[0], label[1]);
        assert_eq!(label[1], label[2]);
        assert_eq!(label[3], label[4]);
        assert_eq!(label[5], label[6]);
        assert_ne!(label[0], label[3]);
        assert_ne!(label[3], label[5]);
        // Deterministic dense labels in first-vertex order.
        assert_eq!((label[0], label[3], label[5]), (0, 1, 2));
        let (single, one) = path_graph(4).component_ids();
        assert_eq!(one, 1);
        assert!(single.iter().all(|&c| c == 0));
    }

    #[test]
    fn survivor_drops_dead_edges_and_isolates_dead_nodes() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        // Kill vertex 2 and the edge {0, 4}: the cycle breaks into 0-1 and 3-4.
        let s = g.survivor(|v| v != 2, |u, v| (u, v) != (0, 4));
        assert_eq!(s.node_count(), 5);
        assert_eq!(s.edge_count(), 2);
        assert!(s.has_edge(0, 1) && s.has_edge(3, 4));
        assert_eq!(s.degree(2), 0);
        let (_, count) = s.component_ids();
        assert_eq!(count, 3); // {0,1}, {2}, {3,4}
    }

    #[test]
    #[should_panic]
    fn rejects_self_loop() {
        let _ = Csr::from_edges(3, &[(1, 1)]);
    }

    #[test]
    #[should_panic]
    fn rejects_duplicate_edge() {
        let _ = Csr::from_edges(3, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 0);
    }
}

//! The 2-D mesh (grid) network.
//!
//! Grids appear in the paper's introduction alongside trees as "common
//! program structures" a universal network should simulate, and in the
//! negative results of BCHLR'88: grids need dilation `Ω(log n)` on
//! cube-connected cycles and butterflies even though they embed
//! efficiently into hypercubes. We build the mesh as a context host for
//! the B2 comparison table and as an extra simulator target.

use crate::graph::{Csr, Graph};

/// The `rows × cols` grid graph with 4-neighbour connectivity.
#[derive(Clone, Debug)]
pub struct Mesh2D {
    rows: usize,
    cols: usize,
    graph: Csr,
}

impl Mesh2D {
    /// Builds the grid; vertex `(r, c)` has id `r · cols + c`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "mesh must be non-empty");
        assert!(rows * cols <= 1 << 22, "mesh too large");
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::with_capacity(2 * rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        Mesh2D {
            rows,
            cols,
            graph: Csr::from_edges(rows * cols, &edges),
        }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Vertex id of `(r, c)`.
    pub fn id(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Exact distance — the Manhattan metric.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        let (ra, ca) = (a / self.cols, a % self.cols);
        let (rb, cb) = (b / self.cols, b % self.cols);
        (ra.abs_diff(rb) + ca.abs_diff(cb)) as u32
    }

    /// Underlying CSR graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }
}

impl Graph for Mesh2D {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn neighbors(&self, v: usize) -> &[u32] {
        self.graph.neighbors(v)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let m = Mesh2D::new(4, 5);
        assert_eq!(m.node_count(), 20);
        assert_eq!(m.edge_count(), 4 * 4 + 3 * 5); // horizontal + vertical
        assert!(m.graph().is_connected());
    }

    #[test]
    fn manhattan_distance_matches_bfs() {
        let m = Mesh2D::new(5, 7);
        let d = m.graph().bfs(m.id(2, 3));
        for v in 0..m.node_count() {
            assert_eq!(d[v], m.distance(m.id(2, 3), v));
        }
    }

    #[test]
    fn degrees() {
        let m = Mesh2D::new(3, 3);
        assert_eq!(m.degree(m.id(1, 1)), 4); // interior
        assert_eq!(m.degree(m.id(0, 0)), 2); // corner
        assert_eq!(m.degree(m.id(0, 1)), 3); // edge
    }

    #[test]
    fn degenerate_line() {
        let m = Mesh2D::new(1, 6);
        assert_eq!(m.edge_count(), 5);
        assert_eq!(m.graph().diameter(), 5);
    }

    #[test]
    fn diameter_is_perimeter_sum() {
        assert_eq!(Mesh2D::new(4, 6).graph().diameter(), 3 + 5);
    }
}

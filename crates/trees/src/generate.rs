//! Binary-tree workload generators.
//!
//! Theorem 1 holds for *arbitrary* binary trees of the right size, so the
//! experiment harness sweeps several structurally extreme families plus two
//! random models, all parameterised by an exact node count `n` (the
//! theorems need `n = 16·(2^{r+1} − 1)` exactly).

use crate::tree::{BinaryTree, NodeId};
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Default lean of [`TreeFamily::Skewed`]: noticeably deeper than the
/// random models, not yet a path (the [`TreeFamily::Leaning`] preset sits
/// at 224).
pub const DEFAULT_SKEW_BIAS: u8 = 240;

/// The tree families used across the experiment sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeFamily {
    /// Degenerate path: every node has one child.
    Path,
    /// Left-complete binary tree (complete levels, last level filled left
    /// to right) — the best case for any level-order host.
    LeftComplete,
    /// A path ("spine") with a leaf hanging off every other spine node.
    Caterpillar,
    /// A long path ending in a complete binary tree — sweeps from the
    /// path extreme to the bushy extreme inside one tree.
    Broom,
    /// Random binary search tree shape: recursive uniform budget splits,
    /// distribution-equivalent to inserting a random permutation.
    RandomBst,
    /// Random attachment: repeatedly attach a new leaf to a uniformly
    /// chosen node that still has a free child slot.
    RandomAttach,
    /// Skewed random split: recursively divide the remaining node budget
    /// with a split point biased toward unbalanced divisions (minimum of two
    /// uniform draws) — deeper and lopsided compared to [`Self::RandomBst`].
    RandomSplit,
    /// Biased attachment leaning hard toward the most recent slot
    /// (lean 224/256): long vine-like runs with occasional branching.
    Leaning,
    /// Perfectly height-balanced: every budget is split as evenly as
    /// possible, so the height is exactly `⌈log2(n+1)⌉ − 1`.
    Balanced,
    /// Uniformly random over *all* binary-tree shapes with `n` nodes
    /// (each of the `Catalan(n)` shapes equally likely), via Rémy's
    /// algorithm on `n + 1` leaves and the leaf-contraction bijection.
    UniformRandom,
    /// Literal insertion-order BST: a seeded uniform permutation is
    /// inserted key by key, so the shape is checkable against a reference
    /// insertion of the same permutation (unlike [`Self::RandomBst`],
    /// which only matches in distribution).
    BstInsertion,
    /// Biased attachment with a configurable lean `bias`/256 toward the
    /// most recent open slot — the generalisation of [`Self::Leaning`],
    /// sweeping from bushy (`bias = 0`) to a path (`bias = 255`).
    Skewed {
        /// Probability (out of 256) of attaching at the newest slot.
        bias: u8,
    },
}

impl TreeFamily {
    /// All families, for sweep loops. The order is a wire/cache contract:
    /// `family` bytes in the serving protocol index this array, so new
    /// entries are only ever appended ([`Self::Skewed`] appears with its
    /// default bias).
    pub const ALL: [TreeFamily; 12] = [
        TreeFamily::Path,
        TreeFamily::LeftComplete,
        TreeFamily::Caterpillar,
        TreeFamily::Broom,
        TreeFamily::RandomBst,
        TreeFamily::RandomAttach,
        TreeFamily::RandomSplit,
        TreeFamily::Leaning,
        TreeFamily::Balanced,
        TreeFamily::UniformRandom,
        TreeFamily::BstInsertion,
        TreeFamily::Skewed {
            bias: DEFAULT_SKEW_BIAS,
        },
    ];

    /// Short machine-readable name for report rows. Parameters are not
    /// encoded — see [`Self::label`] for the round-trippable form.
    pub fn name(self) -> &'static str {
        match self {
            TreeFamily::Path => "path",
            TreeFamily::LeftComplete => "complete",
            TreeFamily::Caterpillar => "caterpillar",
            TreeFamily::Broom => "broom",
            TreeFamily::RandomBst => "random-bst",
            TreeFamily::RandomAttach => "random-attach",
            TreeFamily::RandomSplit => "random-split",
            TreeFamily::Leaning => "leaning",
            TreeFamily::Balanced => "balanced",
            TreeFamily::UniformRandom => "uniform",
            TreeFamily::BstInsertion => "bst-insertion",
            TreeFamily::Skewed { .. } => "skewed",
        }
    }

    /// Round-trippable label: [`Self::name`] plus parameters
    /// (`skewed:200`), accepted back by [`Self::parse`].
    pub fn label(self) -> String {
        match self {
            TreeFamily::Skewed { bias } => format!("skewed:{bias}"),
            other => other.name().to_string(),
        }
    }

    /// Parses a family label: any [`Self::name`], or `skewed:<bias>` with
    /// a bias in `0..=255` (`skewed` alone uses [`DEFAULT_SKEW_BIAS`]).
    pub fn parse(s: &str) -> Option<TreeFamily> {
        if let Some(found) = Self::ALL.into_iter().find(|f| f.name() == s) {
            return Some(found);
        }
        let bias = s.strip_prefix("skewed:")?.parse().ok()?;
        Some(TreeFamily::Skewed { bias })
    }

    /// Generates a tree of this family with exactly `n ≥ 1` nodes.
    pub fn generate<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> BinaryTree {
        match self {
            TreeFamily::Path => path(n),
            TreeFamily::LeftComplete => left_complete(n),
            TreeFamily::Caterpillar => caterpillar(n),
            TreeFamily::Broom => broom(n),
            TreeFamily::RandomBst => random_bst(n, rng),
            TreeFamily::RandomAttach => random_attach(n, rng),
            TreeFamily::RandomSplit => random_split(n, rng),
            TreeFamily::Leaning => random_leaning(n, 224, rng),
            TreeFamily::Balanced => balanced(n),
            TreeFamily::UniformRandom => uniform_random(n, rng),
            TreeFamily::BstInsertion => bst_insertion(n, rng),
            TreeFamily::Skewed { bias } => random_leaning(n, bias, rng),
        }
    }

    /// The canonical seeded generation path: every CLI flag, bench
    /// workload, and serving-layer request that turns `(family, n, seed)`
    /// into a tree goes through here, so a given triple means the same
    /// tree everywhere.
    pub fn generate_seeded(self, n: usize, seed: u64) -> BinaryTree {
        self.generate(n, &mut ChaCha8Rng::seed_from_u64(seed))
    }
}

/// A path of `n` nodes.
pub fn path(n: usize) -> BinaryTree {
    assert!(n >= 1);
    let mut t = BinaryTree::singleton();
    let mut tip = t.root();
    for _ in 1..n {
        tip = t.add_child(tip);
    }
    t
}

/// Left-complete binary tree with exactly `n` nodes (heap shape).
pub fn left_complete(n: usize) -> BinaryTree {
    assert!(n >= 1);
    let parents: Vec<Option<usize>> = (0..n)
        .map(|v| if v == 0 { None } else { Some((v - 1) / 2) })
        .collect();
    BinaryTree::from_parents(&parents)
}

/// Caterpillar: a spine path with one extra leaf on alternating spine nodes.
pub fn caterpillar(n: usize) -> BinaryTree {
    assert!(n >= 1);
    let mut t = BinaryTree::singleton();
    let mut tip = t.root();
    let mut made = 1;
    let mut hang = true;
    while made < n {
        if hang && made + 1 < n {
            t.add_child(tip); // leaf off the spine
            made += 1;
        }
        hang = !hang;
        if made < n {
            tip = t.add_child(tip);
            made += 1;
        }
    }
    t
}

/// Broom: a path of `n/2` nodes whose tip carries a left-complete tree with
/// the remaining budget.
pub fn broom(n: usize) -> BinaryTree {
    assert!(n >= 1);
    let handle = (n / 2).max(1);
    let mut t = path(handle);
    let mut frontier = vec![last_path_node(&t)];
    let mut made = handle;
    // Grow the head breadth-first so it forms a complete-ish tree.
    while made < n {
        let mut new_frontier = Vec::new();
        for &v in &frontier {
            for _ in 0..2 {
                if made == n {
                    break;
                }
                new_frontier.push(t.add_child(v));
                made += 1;
            }
        }
        frontier = new_frontier;
    }
    t
}

fn last_path_node(t: &BinaryTree) -> NodeId {
    let mut v = t.root();
    while let Some(c) = t.children(v).first().copied() {
        v = c;
    }
    v
}

/// Random BST shape: the shape of inserting a uniform random permutation of
/// `0..n` into a binary search tree. Expected height `Θ(log n)`, but with
/// long unary stretches — a good "typical divide and conquer" model.
pub fn random_bst<R: Rng + ?Sized>(n: usize, rng: &mut R) -> BinaryTree {
    assert!(n >= 1);
    // Random-permutation BST shape is equivalent to recursive uniform
    // splitting of the node budget (the root's rank is uniform).
    random_split_rec(n, rng, true)
}

/// Random attachment model: new leaves attach to uniform random nodes with
/// spare capacity. Produces bushier trees than the BST model.
pub fn random_attach<R: Rng + ?Sized>(n: usize, rng: &mut R) -> BinaryTree {
    assert!(n >= 1);
    let mut t = BinaryTree::singleton();
    // `open` holds nodes with < 2 children, each listed once per free slot.
    let mut open = vec![t.root(), t.root()];
    for _ in 1..n {
        let i = rng.random_range(0..open.len());
        let p = open.swap_remove(i);
        // Drop the *other* listing of p lazily: add_child panics only when
        // both slots are used, and each listing corresponds to one slot.
        let c = t.add_child(p);
        open.push(c);
        open.push(c);
    }
    t
}

/// Skewed split model: like the BST model but the split point is the
/// *minimum* of two uniform draws, biasing every division toward lopsided
/// subtrees (deeper trees, heavier separator work).
pub fn random_split<R: Rng + ?Sized>(n: usize, rng: &mut R) -> BinaryTree {
    assert!(n >= 1);
    random_split_rec(n, rng, false)
}

fn random_split_rec<R: Rng + ?Sized>(n: usize, rng: &mut R, uniform: bool) -> BinaryTree {
    let mut t = BinaryTree::singleton();
    // Explicit work stack of (node, subtree budget excluding the node).
    let mut stack = vec![(t.root(), n - 1)];
    while let Some((v, budget)) = stack.pop() {
        if budget == 0 {
            continue;
        }
        let left = if uniform {
            // BST shape: the root key's rank is uniform among budget+1
            // positions, giving a uniform split of the remaining budget.
            rng.random_range(0..=budget)
        } else {
            // Skewed: min of two uniforms concentrates mass near the edges.
            rng.random_range(0..=budget)
                .min(rng.random_range(0..=budget))
        };
        let right = budget - left;
        if left > 0 {
            let c = t.add_child(v);
            stack.push((c, left - 1));
        }
        if right > 0 {
            let c = t.add_child(v);
            stack.push((c, right - 1));
        }
    }
    t
}

/// Fibonacci tree of order `k`: `F_0` and `F_1` are single nodes, `F_k`
/// has subtrees `F_{k−1}` and `F_{k−2}` — the classic minimal AVL tree and
/// the canonical "maximally unbalanced yet logarithmic" shape. Its size is
/// `fib(k+2) − 1` nodes, so it does not hit the exact theorem sizes; the
/// embedding's padding extension covers it.
pub fn fibonacci(order: u32) -> BinaryTree {
    assert!(order <= 30, "fibonacci tree of order {order} too large");
    let mut t = BinaryTree::singleton();
    // Iterative expansion with an explicit stack of (node, order).
    let mut stack = vec![(t.root(), order)];
    while let Some((v, k)) = stack.pop() {
        if k < 2 {
            continue;
        }
        let a = t.add_child(v);
        let b = t.add_child(v);
        stack.push((a, k - 1));
        stack.push((b, k - 2));
    }
    t
}

/// Number of nodes of the Fibonacci tree of order `k`.
pub fn fibonacci_size(order: u32) -> usize {
    // size(k) = 1 + size(k−1) + size(k−2), size(0) = size(1) = 1.
    let (mut a, mut b) = (1usize, 1usize);
    for _ in 2..=order {
        let c = 1 + a + b;
        a = b;
        b = c;
    }
    b
}

/// Biased attachment: new leaves attach to the *most recently added* open
/// slot with probability `lean`/256, otherwise to a uniform one — sweeping
/// from [`random_attach`] (lean = 0) toward [`path`] (lean = 255).
pub fn random_leaning<R: Rng + ?Sized>(n: usize, lean: u8, rng: &mut R) -> BinaryTree {
    assert!(n >= 1);
    let mut t = BinaryTree::singleton();
    let mut open = vec![t.root(), t.root()];
    for _ in 1..n {
        let i = if rng.random_range(0..256) < u32::from(lean) {
            open.len() - 1
        } else {
            rng.random_range(0..open.len())
        };
        let p = open.swap_remove(i);
        let c = t.add_child(p);
        open.push(c);
        open.push(c);
    }
    t
}

/// The Rémy scaffold shared by [`remy_full`] and [`uniform_random`]: the
/// parent/child scratch arrays of a uniformly random full binary tree
/// with `leaves` leaves (`2·leaves − 1` nodes).
fn remy_scaffold<R: Rng + ?Sized>(
    leaves: usize,
    rng: &mut R,
) -> (Vec<Option<usize>>, Vec<[Option<usize>; 2]>) {
    let n = 2 * leaves - 1;
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut used = 1usize; // node 0 is the initial single leaf / root
    let mut children: Vec<[Option<usize>; 2]> = vec![[None, None]; n];
    for _ in 1..leaves {
        // Pick a uniform existing node to graft above.
        let target = rng.random_range(0..used);
        let internal = used;
        let leaf = used + 1;
        used += 2;
        let side = rng.random_range(0..2usize);
        // Splice `internal` into target's parent slot.
        if let Some(p) = parent[target] {
            let slot = children[p]
                .iter()
                .position(|&c| c == Some(target))
                .expect("consistent links");
            children[p][slot] = Some(internal);
            parent[internal] = Some(p);
        }
        children[internal][side] = Some(target);
        children[internal][1 - side] = Some(leaf);
        parent[target] = Some(internal);
        parent[leaf] = Some(internal);
    }
    debug_assert_eq!(used, n);
    (parent, children)
}

/// Uniformly random *full* binary tree (every node has 0 or 2 children)
/// with `leaves` leaves — `2·leaves − 1` nodes — via **Rémy's algorithm**:
/// repeatedly pick a uniform node (or the root position), splice a new
/// internal node above it, and hang a fresh leaf on a uniform side. Each
/// of the `Catalan(leaves−1)` shapes is produced with equal probability.
pub fn remy_full<R: Rng + ?Sized>(leaves: usize, rng: &mut R) -> BinaryTree {
    assert!(leaves >= 1);
    let (parent, _) = remy_scaffold(leaves, rng);
    BinaryTree::from_parents(&parent)
}

/// Uniformly random binary tree with exactly `n` nodes: each of the
/// `Catalan(n)` shapes is equally likely. Uses the classic bijection —
/// a uniform *full* tree with `n + 1` leaves (Rémy), with the leaves
/// contracted away, is a uniform binary tree on the `n` internal nodes.
pub fn uniform_random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> BinaryTree {
    assert!(n >= 1);
    let (parent, children) = remy_scaffold(n + 1, rng);
    // Internal nodes (those with children) survive; the parent of an
    // internal node is always internal, so they form a tree by themselves.
    let mut new_id = vec![usize::MAX; parent.len()];
    let mut next = 0usize;
    for (v, kids) in children.iter().enumerate() {
        if kids[0].is_some() {
            new_id[v] = next;
            next += 1;
        }
    }
    debug_assert_eq!(next, n);
    let mut contracted = vec![None; n];
    for (v, &p) in parent.iter().enumerate() {
        if new_id[v] != usize::MAX {
            contracted[new_id[v]] = p.map(|p| new_id[p]);
        }
    }
    BinaryTree::from_parents(&contracted)
}

/// Perfectly height-balanced tree: every node budget is split as evenly
/// as possible (left gets the larger half), so the height is exactly
/// `⌈log2(n + 1)⌉ − 1` and sibling subtrees differ by at most one node.
pub fn balanced(n: usize) -> BinaryTree {
    assert!(n >= 1);
    let mut t = BinaryTree::singleton();
    let mut stack = vec![(t.root(), n - 1)];
    while let Some((v, budget)) = stack.pop() {
        if budget == 0 {
            continue;
        }
        let left = budget - budget / 2;
        let right = budget / 2;
        let c = t.add_child(v);
        stack.push((c, left - 1));
        if right > 0 {
            let c = t.add_child(v);
            stack.push((c, right - 1));
        }
    }
    t
}

/// A uniformly random permutation of `0..n`, by Fisher–Yates. Exposed so
/// tests can replay the exact permutation [`bst_insertion`] consumed.
pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The BST shape of inserting `keys` in order (duplicates go right).
/// Node `i` of the result is the `i`-th inserted key, so the shape is a
/// pure function of the key sequence — the reference the insertion-order
/// family is pinned against.
pub fn bst_shape(keys: &[u32]) -> BinaryTree {
    assert!(!keys.is_empty());
    let mut parent: Vec<Option<usize>> = vec![None; keys.len()];
    // (left child, right child) per node, walked like a real BST insert.
    let mut kids: Vec<[Option<usize>; 2]> = vec![[None, None]; keys.len()];
    for (i, &key) in keys.iter().enumerate().skip(1) {
        let mut at = 0usize;
        loop {
            let side = usize::from(key >= keys[at]);
            match kids[at][side] {
                Some(next) => at = next,
                None => {
                    kids[at][side] = Some(i);
                    parent[i] = Some(at);
                    break;
                }
            }
        }
    }
    BinaryTree::from_parents(&parent)
}

/// Literal insertion-order BST: draws a uniform permutation of `0..n`
/// with [`random_permutation`] and inserts it with [`bst_shape`]. Same
/// distribution as [`random_bst`], but per-seed checkable against a
/// reference insertion.
pub fn bst_insertion<R: Rng + ?Sized>(n: usize, rng: &mut R) -> BinaryTree {
    assert!(n >= 1);
    bst_shape(&random_permutation(n, rng))
}

/// Picks a uniformly random node of `t`.
pub fn random_node<R: Rng + ?Sized>(t: &BinaryTree, rng: &mut R) -> NodeId {
    let ids: Vec<NodeId> = t.nodes().collect();
    *ids.choose(rng).expect("tree is non-empty")
}

/// The exact guest size Theorem 1 needs for the X-tree of height `r`:
/// `n = 16 · (2^{r+1} − 1)`.
pub const fn theorem1_size(r: u8) -> usize {
    16 * ((1usize << (r + 1)) - 1)
}

/// The exact guest size Theorem 3 needs for the hypercube `Q_r`:
/// `n = 16 · (2^r − 1)`.
pub const fn theorem3_size(r: u8) -> usize {
    16 * ((1usize << r) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_sizes_for_all_families() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for family in TreeFamily::ALL {
            for n in [1usize, 2, 3, 7, 16, 48, 113, 240, theorem1_size(3)] {
                let t = family.generate(n, &mut rng);
                assert_eq!(t.len(), n, "{family:?} n={n}");
                t.validate();
            }
        }
    }

    #[test]
    fn path_is_a_path() {
        let t = path(10);
        assert_eq!(t.height(), 9);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn left_complete_shape() {
        let t = left_complete(15);
        assert_eq!(t.height(), 3);
        assert_eq!(t.leaf_count(), 8);
        let t = left_complete(10);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn caterpillar_has_long_spine() {
        let t = caterpillar(20);
        assert!(t.height() >= 12, "height {}", t.height());
        assert!(t.leaf_count() >= 5);
    }

    #[test]
    fn broom_mixes_path_and_bush() {
        let t = broom(64);
        assert!(t.height() >= 32);
        assert!(t.leaf_count() >= 8);
    }

    #[test]
    fn random_models_are_reproducible() {
        let t1 = random_bst(100, &mut ChaCha8Rng::seed_from_u64(1));
        let t2 = random_bst(100, &mut ChaCha8Rng::seed_from_u64(1));
        for v in t1.nodes() {
            assert_eq!(t1.parent(v), t2.parent(v));
        }
    }

    #[test]
    fn random_models_vary_by_seed() {
        let t1 = random_attach(200, &mut ChaCha8Rng::seed_from_u64(1));
        let t2 = random_attach(200, &mut ChaCha8Rng::seed_from_u64(2));
        let differs = t1.nodes().any(|v| t1.parent(v) != t2.parent(v));
        assert!(differs);
    }

    #[test]
    fn random_attach_respects_arity() {
        let t = random_attach(500, &mut ChaCha8Rng::seed_from_u64(3));
        for v in t.nodes() {
            assert!(t.children(v).len() <= 2);
        }
    }

    #[test]
    fn fibonacci_shapes() {
        assert_eq!(fibonacci(0).len(), 1);
        assert_eq!(fibonacci(1).len(), 1);
        assert_eq!(fibonacci(2).len(), 3);
        for k in 0..=12u32 {
            let t = fibonacci(k);
            assert_eq!(t.len(), fibonacci_size(k), "order {k}");
            t.validate();
            // Height of F_k is k−1 for k ≥ 1 (the minimal AVL profile).
            if k >= 1 {
                assert_eq!(t.height(), (k - 1) as usize);
            }
        }
    }

    #[test]
    fn leaning_sweeps_toward_a_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let bushy = random_leaning(300, 0, &mut rng);
        let liney = random_leaning(300, 255, &mut rng);
        assert!(
            liney.height() > 2 * bushy.height(),
            "{} vs {}",
            liney.height(),
            bushy.height()
        );
        assert_eq!(liney.height(), 299); // lean = 255 is deterministic: a path
        bushy.validate();
        liney.validate();
    }

    #[test]
    fn remy_produces_full_binary_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        for leaves in [1usize, 2, 3, 10, 100, 500] {
            let t = remy_full(leaves, &mut rng);
            assert_eq!(t.len(), 2 * leaves - 1);
            assert_eq!(t.leaf_count(), leaves);
            t.validate();
            for v in t.nodes() {
                let c = t.children(v).len();
                assert!(c == 0 || c == 2, "node with one child in a full tree");
            }
        }
    }

    #[test]
    fn remy_growth_statistics() {
        // For 3 leaves: the root was grafted over (rather than a leaf) with
        // probability exactly 1/3 in Rémy's algorithm; that event is
        // visible as "the smaller-id child of the root is internal".
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut over_root = 0;
        let trials = 3000;
        for _ in 0..trials {
            let t = remy_full(3, &mut rng);
            let kids = t.children(t.root());
            if !t.children(kids[0]).is_empty() {
                over_root += 1;
            }
        }
        let expect = trials / 3;
        assert!(
            (expect * 8 / 10..=expect * 12 / 10).contains(&over_root),
            "graft-over-root count {over_root}, expected ≈ {expect}"
        );
    }

    #[test]
    fn balanced_height_is_optimal() {
        for n in [1usize, 2, 3, 4, 7, 10, 15, 16, 100, 1023, 1024] {
            let t = balanced(n);
            t.validate();
            assert_eq!(t.len(), n);
            // `⌈log2(n+1)⌉ − 1`, with ⌈log2 m⌉ = trailing_zeros(next_pow2(m)).
            let want = (n + 1).next_power_of_two().trailing_zeros() as usize - 1;
            assert_eq!(t.height(), want, "n={n}");
        }
    }

    #[test]
    fn balanced_subtrees_differ_by_at_most_one() {
        let t = balanced(500);
        let sizes = t.subtree_sizes();
        for v in t.nodes() {
            let kids = t.children(v);
            let (l, r) = match kids.as_slice() {
                [l, r] => (sizes[l.index()], sizes[r.index()]),
                [l] => (sizes[l.index()], 0),
                _ => continue,
            };
            assert!(l >= r && l - r <= 1, "node {v:?}: {l} vs {r}");
        }
    }

    #[test]
    fn uniform_random_exact_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for n in [1usize, 2, 3, 5, 10, 100, 777] {
            let t = uniform_random(n, &mut rng);
            assert_eq!(t.len(), n);
            t.validate();
        }
    }

    #[test]
    fn uniform_random_matches_catalan_statistics() {
        // n = 3 has Catalan(3) = 5 ordered shapes: one balanced, four
        // chains. Uniform over ordered shapes ⇒ the balanced one appears
        // with probability exactly 1/5.
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let trials = 5000;
        let mut bal = 0usize;
        for _ in 0..trials {
            let t = uniform_random(3, &mut rng);
            if t.children(t.root()).len() == 2 {
                bal += 1;
            }
        }
        let expect = trials / 5;
        assert!(
            (expect * 8 / 10..=expect * 12 / 10).contains(&bal),
            "balanced count {bal}, expected ≈ {expect}"
        );
    }

    #[test]
    fn bst_insertion_matches_reference_insertion() {
        for seed in 0..10u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let t = bst_insertion(200, &mut rng);
            // Replay the same permutation and insert it naively.
            let perm = random_permutation(200, &mut ChaCha8Rng::seed_from_u64(seed));
            let r = bst_shape(&perm);
            for v in t.nodes() {
                assert_eq!(t.parent(v), r.parent(v), "seed {seed}");
            }
        }
    }

    #[test]
    fn bst_shape_sorted_keys_make_a_path() {
        let keys: Vec<u32> = (0..50).collect();
        let t = bst_shape(&keys);
        assert_eq!(t.height(), 49);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn skewed_family_bias_sweeps_depth() {
        let shallow = TreeFamily::Skewed { bias: 0 }.generate_seeded(300, 9);
        let deep = TreeFamily::Skewed { bias: 255 }.generate_seeded(300, 9);
        assert_eq!(deep.height(), 299);
        assert!(shallow.height() < 150);
    }

    #[test]
    fn parse_round_trips_every_family() {
        for f in TreeFamily::ALL {
            assert_eq!(TreeFamily::parse(&f.label()), Some(f), "{f:?}");
            assert_eq!(TreeFamily::parse(f.name()), Some(f), "{f:?}");
        }
        assert_eq!(
            TreeFamily::parse("skewed:13"),
            Some(TreeFamily::Skewed { bias: 13 })
        );
        assert_eq!(
            TreeFamily::parse("skewed"),
            Some(TreeFamily::Skewed {
                bias: DEFAULT_SKEW_BIAS
            })
        );
        assert_eq!(TreeFamily::parse("skewed:300"), None);
        assert_eq!(TreeFamily::parse("no-such"), None);
    }

    #[test]
    fn generate_seeded_matches_manual_rng() {
        let a = TreeFamily::UniformRandom.generate_seeded(97, 5);
        let b = TreeFamily::UniformRandom.generate(97, &mut ChaCha8Rng::seed_from_u64(5));
        for v in a.nodes() {
            assert_eq!(a.parent(v), b.parent(v));
        }
    }

    #[test]
    fn wire_indices_are_stable() {
        // The serving protocol indexes ALL by byte; the first eight
        // entries are frozen (old clients), new ones only append.
        assert_eq!(TreeFamily::ALL[4], TreeFamily::RandomBst);
        assert_eq!(TreeFamily::ALL[7], TreeFamily::Leaning);
        assert_eq!(TreeFamily::ALL[8], TreeFamily::Balanced);
        assert_eq!(TreeFamily::ALL[11].name(), "skewed");
    }

    #[test]
    fn theorem_sizes() {
        assert_eq!(theorem1_size(0), 16);
        assert_eq!(theorem1_size(3), 240);
        assert_eq!(theorem3_size(3), 112);
        // n = 16(2^{r+1} − 1) = 2^{r+5} − 16, Theorem 4's 2^t − 16 form.
        assert_eq!(theorem1_size(3), (1 << 8) - 16);
    }
}

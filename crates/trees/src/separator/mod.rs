//! The separator lemmas of the paper (§2, Lemmas 1 and 2).
//!
//! Both lemmas take a connected piece `T` of a binary tree with two
//! designated nodes `r1, r2` and a target `Δ`, and split `T` into forests
//! `T1, T2` by deleting only edges that run between two small boundary sets
//! `S1 ⊂ T1` and `S2 ⊂ T2`, such that
//!
//! * `{r1, r2} ⊆ S1 ∪ S2` — the designated nodes are laid out with the cut;
//! * `|T2|` approximates `Δ`: within `⌊(Δ+1)/3⌋` for Lemma 1 and
//!   `⌊(Δ+4)/9⌋` for Lemma 2;
//! * `S_i` is *collinear* in `T_i`: every tree of the forest `T_i − S_i`
//!   is connected by at most two edges to `S_i` — so after placing
//!   `S1 ∪ S2` on host vertices, every remaining fragment is again an
//!   *interval* (≤ 2 designated nodes), keeping the construction iterable.
//!
//! Bound on boundary sizes: Lemma 1 gives `|S1| ≤ 4`, `|S2| ≤ 2`; Lemma 2
//! gives `|S1|, |S2| ≤ 4`. Deviation (documented in DESIGN.md): in one
//! sub-case whose details the extended abstract omits (two disjoint
//! carvings on the same side), this implementation adds the junction node
//! of the two carving paths to preserve collinearity, allowing one
//! boundary set to reach 5 nodes (`|S1|`, or `|S2|` after the `Δ > 3n/4`
//! role swap).

mod lemma1;
mod lemma2;
mod orient;

pub use lemma1::{lemma1, lemma1_with};
pub use lemma2::{lemma2, lemma2_with};
pub use orient::{find1, Orientation, SeparatorScratch};

use crate::tree::{BinaryTree, NodeId};
use std::collections::{HashSet, VecDeque};

/// Result of a separator-lemma application.
#[derive(Clone, Debug, Default)]
pub struct Separation {
    /// Boundary set inside part 1 (the complement of [`part2`](Self::part2)).
    pub s1: Vec<NodeId>,
    /// Boundary set inside part 2.
    pub s2: Vec<NodeId>,
    /// All nodes of part 2 — the side whose cardinality approximates `Δ`.
    pub part2: Vec<NodeId>,
    /// The deleted edges, each written as `(node in part 1, node in part 2)`.
    pub cut: Vec<(NodeId, NodeId)>,
}

impl Separation {
    /// Lemma 1's guarantee on `| |T2| − Δ |`.
    pub fn lemma1_bound(delta: u32) -> u32 {
        (delta + 1) / 3
    }

    /// Lemma 2's guarantee on `| |T2| − Δ |`.
    pub fn lemma2_bound(delta: u32) -> u32 {
        (delta + 4) / 9
    }
}

/// Exhaustively checks every post-condition of a [`Separation`] against the
/// piece containing `r1` (the component of un-`placed` nodes, minus
/// `excluded`). Used by unit/property tests and by the embedding verifier.
///
/// # Panics
/// Panics with a description of the first violated condition.
#[allow(clippy::too_many_arguments)] // a checker mirroring the lemma statement
pub fn check_separation(
    tree: &BinaryTree,
    placed: &[bool],
    excluded: &[NodeId],
    r1: NodeId,
    r2: NodeId,
    delta: u32,
    sep: &Separation,
    size_bound: u32,
    max_s1: usize,
    max_s2: usize,
) {
    let blocked = |v: NodeId| placed[v.index()] || excluded.contains(&v);
    // Reconstruct the piece by BFS from r1.
    let mut piece = HashSet::new();
    let mut q = VecDeque::from([r1]);
    piece.insert(r1);
    while let Some(v) = q.pop_front() {
        for w in tree.neighbors(v) {
            if !blocked(w) && piece.insert(w) {
                q.push_back(w);
            }
        }
    }
    assert!(piece.contains(&r2), "r2 not in the piece of r1");

    let part2: HashSet<NodeId> = sep.part2.iter().copied().collect();
    assert_eq!(part2.len(), sep.part2.len(), "duplicate nodes in part2");
    for &v in &sep.part2 {
        assert!(piece.contains(&v), "{v:?} in part2 but outside the piece");
    }
    let s1: HashSet<NodeId> = sep.s1.iter().copied().collect();
    let s2: HashSet<NodeId> = sep.s2.iter().copied().collect();
    assert_eq!(s1.len(), sep.s1.len(), "duplicates in s1");
    assert_eq!(s2.len(), sep.s2.len(), "duplicates in s2");
    assert!(s1.len() <= max_s1, "|S1| = {} > {max_s1}", s1.len());
    assert!(s2.len() <= max_s2, "|S2| = {} > {max_s2}", s2.len());

    // Sides: s1 in part1, s2 in part2; designated nodes covered.
    for &v in &sep.s1 {
        assert!(
            piece.contains(&v) && !part2.contains(&v),
            "{v:?} of s1 not in part1"
        );
    }
    for &v in &sep.s2 {
        assert!(part2.contains(&v), "{v:?} of s2 not in part2");
    }
    assert!(
        s1.contains(&r1) || s2.contains(&r1),
        "designated r1 not laid out by the separation"
    );
    assert!(
        s1.contains(&r2) || s2.contains(&r2),
        "designated r2 not laid out by the separation"
    );

    // Size condition.
    let n2 = sep.part2.len() as u32;
    assert!(
        u32::abs_diff(n2, delta) <= size_bound,
        "|T2| = {n2}, Δ = {delta}: off by more than {size_bound}"
    );

    // Every piece edge crossing the part1/part2 boundary must run between
    // s1 and s2, and must be listed in `cut` (and vice versa).
    let mut crossing = HashSet::new();
    for &v in &piece {
        for w in tree.neighbors(v) {
            if !piece.contains(&w) {
                continue;
            }
            if part2.contains(&v) != part2.contains(&w) {
                let (a, b) = if part2.contains(&w) { (v, w) } else { (w, v) };
                crossing.insert((a, b));
                assert!(
                    s1.contains(&a) && s2.contains(&b),
                    "boundary edge ({a:?}, {b:?}) does not run between S1 and S2"
                );
            }
        }
    }
    let listed: HashSet<(NodeId, NodeId)> = sep.cut.iter().copied().collect();
    assert_eq!(
        listed, crossing,
        "cut list does not match the boundary edges"
    );

    // Collinearity of s1 in part1 and s2 in part2.
    let part1: HashSet<NodeId> = piece.difference(&part2).copied().collect();
    check_collinear(tree, &part1, &s1, "S1");
    check_collinear(tree, &part2, &s2, "S2");
}

/// Asserts that every component of `side − s` has at most two edges to `s`.
fn check_collinear(tree: &BinaryTree, side: &HashSet<NodeId>, s: &HashSet<NodeId>, label: &str) {
    let mut seen: HashSet<NodeId> = HashSet::new();
    for &start in side {
        if s.contains(&start) || seen.contains(&start) {
            continue;
        }
        // Flood one component of side − s, counting edges into s.
        let mut q = VecDeque::from([start]);
        seen.insert(start);
        let mut edges_to_s = 0;
        while let Some(v) = q.pop_front() {
            for w in tree.neighbors(v) {
                if !side.contains(&w) {
                    continue;
                }
                if s.contains(&w) {
                    edges_to_s += 1;
                } else if seen.insert(w) {
                    q.push_back(w);
                }
            }
        }
        assert!(
            edges_to_s <= 2,
            "{label} not collinear: component of {start:?} has {edges_to_s} edges to it"
        );
    }
}

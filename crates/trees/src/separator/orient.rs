//! Piece orientation: rooting a connected fragment of a binary tree at a
//! designated node and computing subtree sizes, as required by the
//! separator procedures `find1` / `find2`.
//!
//! During the Theorem-1 embedding, the *unplaced* nodes of the guest tree
//! form a forest; each lemma call works on one component ("piece") of that
//! forest. The orientation directs the piece away from the designated node
//! `r1` ("we replace `T` with a directed tree containing the same vertices,
//! each edge directed away from the designated node `r1`").
//!
//! Reusable buffers with epoch stamps keep a lemma call `O(|piece|)` without
//! per-call allocation of tree-sized arrays.

use crate::tree::{Adjacency, BinaryTree, NodeId};

const NONE: u32 = u32::MAX;

/// A reusable orientation of one piece of a tree.
#[derive(Debug)]
pub struct Orientation {
    stamp: Vec<u32>,
    epoch: u32,
    par: Vec<u32>,
    size: Vec<u32>,
    order: Vec<u32>,
    /// Root-path stamps for [`Self::junction`], on their own epoch.
    jstamp: Vec<u32>,
    jepoch: u32,
}

impl Orientation {
    /// Allocates buffers for a tree with `n` nodes.
    pub fn new(n: usize) -> Self {
        Orientation {
            stamp: vec![0; n],
            epoch: 0,
            par: vec![NONE; n],
            size: vec![0; n],
            order: Vec::new(),
            jstamp: vec![0; n],
            jepoch: 0,
        }
    }

    /// Grows the buffers to cover a tree with `n` nodes; a no-op when they
    /// already do, which is what makes reuse across lemma calls free.
    pub fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            *self = Orientation::new(n);
        }
    }

    /// Orients the piece containing `root`: the component of nodes that are
    /// neither placed nor listed in `excluded`, reachable from `root`.
    /// Computes parents (toward `root`) and subtree sizes.
    ///
    /// # Panics
    /// Panics if `root` itself is placed or excluded.
    pub fn orient(
        &mut self,
        tree: &BinaryTree,
        placed: &[bool],
        excluded: &[NodeId],
        root: NodeId,
    ) {
        let blocked = |v: NodeId| placed[v.index()] || excluded.contains(&v);
        assert!(!blocked(root), "orientation root is not part of the piece");
        self.epoch += 1;
        if self.epoch == u32::MAX {
            // Stamp wrap: reset all stamps once every 4 billion calls.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.order.clear();
        // Preorder DFS.
        let mut stack = vec![root.0];
        self.stamp[root.index()] = self.epoch;
        self.par[root.index()] = NONE;
        while let Some(v) = stack.pop() {
            self.order.push(v);
            self.size[v as usize] = 1;
            for w in tree.neighbors(NodeId(v)) {
                if blocked(w) || self.stamp[w.index()] == self.epoch {
                    continue;
                }
                self.stamp[w.index()] = self.epoch;
                self.par[w.index()] = v;
                stack.push(w.0);
            }
        }
        // Accumulate sizes bottom-up (reverse preorder).
        for i in (1..self.order.len()).rev() {
            let v = self.order[i] as usize;
            let p = self.par[v] as usize;
            self.size[p] += self.size[v];
        }
    }

    /// True if `v` belongs to the currently oriented piece.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    /// Subtree size of `v` within the oriented piece.
    #[inline]
    pub fn size(&self, v: NodeId) -> u32 {
        debug_assert!(self.contains(v));
        self.size[v.index()]
    }

    /// Size of the whole piece.
    #[inline]
    pub fn piece_len(&self) -> usize {
        self.order.len()
    }

    /// Parent of `v` toward the orientation root; `None` at the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        debug_assert!(self.contains(v));
        let p = self.par[v.index()];
        (p != NONE).then_some(NodeId(p))
    }

    /// Children of `v` in the oriented piece.
    pub fn children(&self, tree: &BinaryTree, v: NodeId) -> Adjacency<3> {
        debug_assert!(self.contains(v));
        let mut out = Adjacency::default();
        for w in tree.neighbors(v) {
            if self.contains(w) && self.par[w.index()] == v.0 {
                out.push(w);
            }
        }
        out
    }

    /// All nodes of the oriented piece, in preorder.
    pub fn piece_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().map(|&v| NodeId(v))
    }

    /// The nodes of `v`'s oriented subtree, in preorder.
    pub fn subtree_nodes(&self, tree: &BinaryTree, v: NodeId) -> Vec<NodeId> {
        debug_assert!(self.contains(v));
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children(tree, u));
        }
        debug_assert_eq!(out.len() as u32, self.size(v));
        out
    }

    /// The path from `from` up to `to` (both inclusive), following parents.
    ///
    /// # Panics
    /// Panics if `to` is not an ancestor of `from` in the orientation.
    pub fn path_up(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            cur = self
                .parent(cur)
                .unwrap_or_else(|| panic!("{to:?} is not an ancestor of {from:?}"));
            path.push(cur);
        }
        path
    }

    /// The deepest node common to the root paths of `a` and `b` — the
    /// junction point where the two paths from the orientation root part.
    pub fn junction(&mut self, a: NodeId, b: NodeId) -> NodeId {
        // Mark a's root path with a fresh stamp epoch, then climb from b —
        // O(depth) and allocation-free (a Vec scan would be quadratic on
        // path-shaped pieces; the old HashSet allocated per call).
        self.jepoch += 1;
        if self.jepoch == u32::MAX {
            self.jstamp.fill(0);
            self.jepoch = 1;
        }
        let mut cur = Some(a);
        while let Some(v) = cur {
            self.jstamp[v.index()] = self.jepoch;
            cur = self.parent(v);
        }
        let mut cur = b;
        loop {
            if self.jstamp[cur.index()] == self.jepoch {
                return cur;
            }
            cur = self.parent(cur).expect("nodes are in the same piece");
        }
    }
}

/// Reusable orientation buffers for the separator lemmas.
///
/// One Lemma-2 call needs up to three simultaneous orientations (the main
/// piece plus two correction carves); allocating them per call is the
/// dominant cost of a lemma application on large trees (DESIGN.md §9).
/// Hold one `SeparatorScratch` for the whole embedding and pass it to
/// [`lemma1_with`](super::lemma1_with) / [`lemma2_with`](super::lemma2_with).
#[derive(Debug)]
pub struct SeparatorScratch {
    pub(crate) o1: Orientation,
    pub(crate) o2: Orientation,
    pub(crate) o3: Orientation,
}

impl Default for SeparatorScratch {
    /// An empty scratch; `ensure` (called by every lemma entry point)
    /// grows it on first use.
    fn default() -> Self {
        SeparatorScratch::new(0)
    }
}

impl SeparatorScratch {
    /// Allocates scratch for a tree with `n` nodes.
    pub fn new(n: usize) -> Self {
        SeparatorScratch {
            o1: Orientation::new(n),
            o2: Orientation::new(n),
            o3: Orientation::new(n),
        }
    }

    /// Grows the scratch to cover a tree with `n` nodes.
    pub fn ensure(&mut self, n: usize) {
        self.o1.ensure(n);
        self.o2.ensure(n);
        self.o3.ensure(n);
    }
}

/// Procedure `find1` of the paper: starting from `u`, repeatedly descend to
/// the child of maximal subtree cardinality while `|T(u)| > 4Δ/3`
/// (implemented exactly as `3·|T(u)| > 4·Δ`).
///
/// On return, `|T(u)| ≤ ⌊4Δ/3⌋` and `| |T(u)| − Δ | ≤ ⌊(Δ+1)/3⌋`, and the
/// returned node differs from `start`.
///
/// # Preconditions (asserted)
/// * `Δ ≥ 1` and `3·size(start) > 4·Δ`;
/// * `start` has at most 2 children in the oriented piece (true whenever
///   `start` is a designated node: one of its ≤ 3 tree neighbours is
///   already placed). A third child would weaken the heavy-child bound.
pub fn find1(o: &Orientation, tree: &BinaryTree, start: NodeId, delta: u32) -> NodeId {
    assert!(delta >= 1, "find1 needs Δ ≥ 1");
    assert!(
        3 * o.size(start) > 4 * delta,
        "find1 precondition |T| > 4Δ/3"
    );
    // Hard assert (the documented bounds silently degrade otherwise): a
    // third child weakens the heavy-child lower bound. Designated nodes
    // always satisfy this (one neighbour is placed).
    assert!(
        o.children(tree, start).len() <= 2,
        "find1 start must have ≤ 2 children in the piece"
    );
    let mut u = start;
    while 3 * o.size(u) > 4 * delta {
        u = o
            .children(tree, u)
            .into_iter()
            .max_by_key(|&c| o.size(c))
            .expect("a subtree larger than 4Δ/3 ≥ 1 has children");
    }
    debug_assert_ne!(u, start);
    debug_assert!(u32::abs_diff(o.size(u), delta) <= (delta + 1) / 3);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn orient_whole_tree_from_root() {
        let t = generate::left_complete(15);
        let mut o = Orientation::new(t.len());
        o.orient(&t, &[false; 15], &[], t.root());
        assert_eq!(o.piece_len(), 15);
        assert_eq!(o.size(t.root()), 15);
        for v in t.nodes() {
            assert!(o.contains(v));
            assert_eq!(o.parent(v), t.parent(v));
        }
    }

    #[test]
    fn orient_from_interior_reroots() {
        // Path 0-1-2-3-4 rooted at 2: both directions become children.
        let t = generate::path(5);
        let mut o = Orientation::new(5);
        o.orient(&t, &[false; 5], &[], NodeId(2));
        assert_eq!(o.size(NodeId(2)), 5);
        assert_eq!(o.parent(NodeId(2)), None);
        assert_eq!(o.parent(NodeId(1)), Some(NodeId(2)));
        assert_eq!(o.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(o.size(NodeId(1)), 2);
        assert_eq!(o.size(NodeId(3)), 2);
        assert_eq!(o.children(&t, NodeId(2)).len(), 2);
    }

    #[test]
    fn placed_nodes_block_the_piece() {
        let t = generate::path(7);
        let mut placed = vec![false; 7];
        placed[3] = true;
        let mut o = Orientation::new(7);
        o.orient(&t, &placed, &[], NodeId(0));
        assert_eq!(o.piece_len(), 3); // 0,1,2
        assert!(!o.contains(NodeId(3)));
        assert!(!o.contains(NodeId(5)));
        o.orient(&t, &placed, &[], NodeId(5));
        assert_eq!(o.piece_len(), 3); // 4,5,6
    }

    #[test]
    fn excluded_acts_like_placed() {
        let t = generate::left_complete(7);
        let mut o = Orientation::new(7);
        // Excluding child 1 restricts the piece to {0, 2, 5, 6}.
        o.orient(&t, &[false; 7], &[NodeId(1)], NodeId(0));
        assert_eq!(o.piece_len(), 4);
        assert!(!o.contains(NodeId(3)));
    }

    #[test]
    fn subtree_nodes_and_path() {
        let t = generate::left_complete(15);
        let mut o = Orientation::new(15);
        o.orient(&t, &[false; 15], &[], t.root());
        let sub = o.subtree_nodes(&t, NodeId(1));
        assert_eq!(sub.len(), 7);
        let path = o.path_up(NodeId(9), NodeId(0));
        assert_eq!(path, vec![NodeId(9), NodeId(4), NodeId(1), NodeId(0)]);
    }

    #[test]
    fn junction_points() {
        let t = generate::left_complete(15);
        let mut o = Orientation::new(15);
        o.orient(&t, &[false; 15], &[], t.root());
        assert_eq!(o.junction(NodeId(9), NodeId(10)), NodeId(4));
        assert_eq!(o.junction(NodeId(9), NodeId(3)), NodeId(1));
        assert_eq!(o.junction(NodeId(9), NodeId(14)), NodeId(0));
        assert_eq!(o.junction(NodeId(9), NodeId(4)), NodeId(4));
        assert_eq!(o.junction(NodeId(9), NodeId(9)), NodeId(9));
    }

    #[test]
    fn find1_bound_on_random_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for n in [50usize, 200, 1000] {
            let t = generate::random_bst(n, &mut rng);
            let mut o = Orientation::new(n);
            o.orient(&t, &vec![false; n], &[], t.root());
            for delta in [1u32, 2, 5, 10, (n as u32) / 3, (3 * n as u32) / 4 - 1] {
                if delta == 0 || 3 * (n as u32) <= 4 * delta {
                    continue;
                }
                if o.children(&t, t.root()).len() > 2 {
                    continue;
                }
                let u = find1(&o, &t, t.root(), delta);
                let got = o.size(u);
                assert!(
                    u32::abs_diff(got, delta) <= (delta + 1) / 3,
                    "n={n} Δ={delta}: |T(u)|={got}"
                );
            }
        }
    }

    #[test]
    fn find1_on_path_is_exact_enough() {
        let t = generate::path(100);
        let mut o = Orientation::new(100);
        o.orient(&t, &[false; 100], &[], t.root());
        for delta in [1u32, 7, 30, 60] {
            let u = find1(&o, &t, t.root(), delta);
            // On a path every subtree size is hit exactly: |T(u)| = ⌊4Δ/3⌋.
            assert_eq!(o.size(u), 4 * delta / 3);
        }
    }
}

//! Lemma 2 of the paper.
//!
//! Same interface as Lemma 1, but with tighter balance: for any `1 ≤ Δ ≤ n`
//! the piece splits into `T1, T2` with `| |T2| − Δ | ≤ ⌊(Δ+4)/9⌋` and
//! `|S1|, |S2| ≤ 4`. The construction first walks the path from `r1`
//! toward `r2` (procedure `find2`) and then distinguishes the paper's three
//! cases; the `find1` carvings are applied twice (a main carve plus a
//! correction carve) which is what squeezes the error from `Δ/3` to `Δ/9`.
//!
//! Documented deviation (see DESIGN.md): when the correction carve must be
//! a second *disjoint* subtree on the same side, preserving collinearity
//! requires also laying out the junction vertex of the two carving paths —
//! a detail the extended abstract leaves to the full version. This can push
//! `|S1|` to 5.

use super::lemma1::{dedup, lemma1_ex};
use super::orient::{find1, Orientation, SeparatorScratch};
use super::Separation;
use crate::tree::{BinaryTree, NodeId};
use std::collections::HashSet;

/// Applies Lemma 2 to the piece containing `r1`, allocating fresh
/// orientation buffers. Callers in a loop should hold a
/// [`SeparatorScratch`] and use [`lemma2_with`].
///
/// # Preconditions (asserted)
/// * `r1`, `r2` un-placed, same component; `1 ≤ Δ ≤ n`;
/// * designated nodes have at most two un-placed neighbours.
pub fn lemma2(
    tree: &BinaryTree,
    placed: &[bool],
    r1: NodeId,
    r2: NodeId,
    delta: u32,
) -> Separation {
    lemma2_with(
        &mut SeparatorScratch::new(tree.len()),
        tree,
        placed,
        r1,
        r2,
        delta,
    )
}

/// [`lemma2`] on reusable buffers: no allocation of tree-sized arrays once
/// `scratch` has reached the tree's size (a call needs up to three live
/// orientations — the main piece and two correction carves).
pub fn lemma2_with(
    scratch: &mut SeparatorScratch,
    tree: &BinaryTree,
    placed: &[bool],
    r1: NodeId,
    r2: NodeId,
    delta: u32,
) -> Separation {
    scratch.ensure(tree.len());
    let SeparatorScratch { o1: o, o2, o3 } = scratch;
    o.orient(tree, placed, &[], r1);
    assert!(o.contains(r2), "r2 must lie in the piece of r1");
    let n = o.piece_len() as u32;
    assert!(
        delta >= 1 && delta <= n,
        "lemma 2 needs 1 ≤ Δ ≤ n (Δ = {delta}, n = {n})"
    );

    if delta == n {
        // Take the whole piece: lay out the designated nodes, cut nothing.
        return Separation {
            s1: Vec::new(),
            s2: dedup(vec![r1, r2]),
            part2: o.piece_nodes().collect(),
            cut: Vec::new(),
        };
    }
    if 3 * n > 4 * delta {
        main_split(tree, placed, o, o2, o3, r1, r2, delta)
    } else {
        // Δ < n ≤ 4Δ/3: solve for Δ' = n − Δ < Δ/3 and swap the roles of
        // the two sides (paper's closing remark in the proof).
        let piece: Vec<NodeId> = o.piece_nodes().collect();
        let inner = main_split(tree, placed, o, o2, o3, r1, r2, n - delta);
        invert(piece, inner)
    }
}

/// Swaps part1 and part2 of a separation.
fn invert(piece: Vec<NodeId>, sep: Separation) -> Separation {
    let old2: HashSet<NodeId> = sep.part2.iter().copied().collect();
    let part2 = piece.into_iter().filter(|v| !old2.contains(v)).collect();
    Separation {
        s1: sep.s2,
        s2: sep.s1,
        part2,
        cut: sep.cut.into_iter().map(|(a, b)| (b, a)).collect(),
    }
}

/// The main construction, assuming `3n > 4Δ` and `Δ ≥ 1`.
/// `o` is oriented from `r1` over the full piece; `o2`, `o3` are spare
/// buffers for the correction carves.
#[allow(clippy::too_many_arguments)] // mirrors the lemma's case analysis
fn main_split(
    tree: &BinaryTree,
    placed: &[bool],
    o: &mut Orientation,
    o2: &mut Orientation,
    o3: &mut Orientation,
    r1: NodeId,
    r2: NodeId,
    delta: u32,
) -> Separation {
    // Procedure find2: walk from r1 along the path toward r2 while the
    // subtree stays larger than 4Δ/3.
    let path_down: Vec<NodeId> = {
        let mut p = o.path_up(r2, r1);
        p.reverse(); // r1 … r2
        p
    };
    let mut v = r1;
    let mut it = path_down.iter().skip(1);
    while 3 * o.size(v) > 4 * delta && v != r2 {
        match it.next() {
            Some(&next) => v = next,
            None => break, // v == r2 with a large subtree
        }
    }

    if v == r2 && 3 * o.size(r2) > 4 * delta {
        case_both_in_s1(tree, placed, o, o2, r1, r2, delta)
    } else if o.size(v) < delta {
        case_small_subtree(tree, placed, o, o2, o3, r1, r2, delta, v)
    } else {
        case_medium_subtree(tree, placed, o, o2, r1, r2, delta, v)
    }
}

/// Case 1: the walk reached `r2` and `|T(r2)| > 4Δ/3`. Both designated
/// nodes go to `S1`; the mass for `T2` is carved out of `T(r2)` by find1,
/// applied twice.
fn case_both_in_s1(
    tree: &BinaryTree,
    placed: &[bool],
    o: &mut Orientation,
    o2: &mut Orientation,
    r1: NodeId,
    r2: NodeId,
    delta: u32,
) -> Separation {
    let u1 = find1(o, tree, r2, delta);
    let s_u1 = o.size(u1);
    let pu1 = o.parent(u1).expect("find1 result has a father");

    if s_u1 == delta {
        return Separation {
            s1: dedup(vec![r1, r2, pu1]),
            s2: vec![u1],
            part2: o.subtree_nodes(tree, u1),
            cut: vec![(pu1, u1)],
        };
    }
    if s_u1 > delta {
        // Overshoot: carve a correction subtree T(w) back out of T(u1).
        let e = s_u1 - delta;
        let w = find1(o, tree, u1, e);
        let pw = o.parent(w).expect("find1 result has a father");
        let wset: HashSet<NodeId> = o.subtree_nodes(tree, w).into_iter().collect();
        let part2 = o
            .subtree_nodes(tree, u1)
            .into_iter()
            .filter(|x| !wset.contains(x))
            .collect();
        return Separation {
            s1: dedup(vec![r1, r2, pu1, w]),
            s2: dedup(vec![u1, pw]),
            part2,
            cut: vec![(pu1, u1), (w, pw)],
        };
    }
    // Undershoot: carve a second subtree, disjoint from T(u1), out of the
    // remainder of T(r2).
    let e = delta - s_u1;
    let part2a = o.subtree_nodes(tree, u1);
    o2.orient(tree, placed, &[u1], r1);
    assert!(
        3 * o2.size(r2) > 4 * e,
        "case-1 second carve precondition (guaranteed by |T(r2)| > 4Δ/3)"
    );
    let w = find1(o2, tree, r2, e);
    if o.junction(w, u1) == w {
        // w is an ancestor of u1: the two carvings merge into T(w).
        let pw = o.parent(w).expect("w is below r2");
        return Separation {
            s1: dedup(vec![r1, r2, pw]),
            s2: vec![w],
            part2: o.subtree_nodes(tree, w),
            cut: vec![(pw, w)],
        };
    }
    let pw = o2.parent(w).expect("w is below r2");
    let mut part2 = part2a;
    part2.extend(o2.subtree_nodes(tree, w));
    // The junction of the two carving paths must be laid out too, or the
    // component between r2, pu1 and pw would have three edges into S1.
    let j = o.junction(u1, w);
    Separation {
        s1: dedup(vec![r1, r2, pu1, pw, j]),
        s2: dedup(vec![u1, w]),
        part2,
        cut: vec![(pu1, u1), (pw, w)],
    }
}

/// Case 2: the walk stopped at `v` with `|T(v)| < Δ` (and `r2 ∈ T(v)`).
/// `T2 = T(v)` plus `Δ − |T(v)|` nodes carved out of `T(x, v)`, the part of
/// the father's subtree avoiding `v`.
#[allow(clippy::too_many_arguments)] // mirrors the lemma's case analysis
fn case_small_subtree(
    tree: &BinaryTree,
    placed: &[bool],
    o: &Orientation,
    o2: &mut Orientation,
    o3: &mut Orientation,
    r1: NodeId,
    r2: NodeId,
    delta: u32,
    v: NodeId,
) -> Separation {
    let x = o.parent(v).expect("the walk moved at least one step");
    let delta1 = delta - o.size(v);
    debug_assert!(delta1 >= 1);
    let base = o.subtree_nodes(tree, v);
    debug_assert!(base.contains(&r2), "the walk follows the path to r2");

    o2.orient(tree, placed, &[v], r1);
    assert!(
        3 * o2.size(x) > 4 * delta1,
        "case-2 carve precondition (guaranteed by |T(x)| > 4Δ/3)"
    );
    let u1 = find1(o2, tree, x, delta1);
    let pu1 = o2.parent(u1).expect("find1 result has a father");
    let s_u1 = o2.size(u1);

    if s_u1 == delta1 {
        let mut part2 = base;
        part2.extend(o2.subtree_nodes(tree, u1));
        return Separation {
            s1: dedup(vec![r1, x, pu1]),
            s2: dedup(vec![r2, v, u1]),
            part2,
            cut: vec![(x, v), (pu1, u1)],
        };
    }
    if s_u1 > delta1 {
        let e = s_u1 - delta1;
        let w = find1(o2, tree, u1, e);
        let pw = o2.parent(w).expect("find1 result has a father");
        let wset: HashSet<NodeId> = o2.subtree_nodes(tree, w).into_iter().collect();
        let mut part2 = base;
        part2.extend(
            o2.subtree_nodes(tree, u1)
                .into_iter()
                .filter(|y| !wset.contains(y)),
        );
        return Separation {
            s1: dedup(vec![r1, x, pu1, w]),
            s2: dedup(vec![r2, v, u1, pw]),
            part2,
            cut: vec![(x, v), (pu1, u1), (w, pw)],
        };
    }
    // Undershoot: second disjoint carve from T(x, v) − T(u1).
    let e = delta1 - s_u1;
    o3.orient(tree, placed, &[v, u1], r1);
    assert!(3 * o3.size(x) > 4 * e, "case-2 second carve precondition");
    let u2 = find1(o3, tree, x, e);
    if o2.junction(u2, u1) == u2 {
        // u2 is an ancestor of u1: the carvings merge into T(u2) − T(v).
        let pu2 = o2
            .parent(u2)
            .expect("u2 is below x or equals a child of it");
        let mut part2 = base;
        part2.extend(o2.subtree_nodes(tree, u2));
        return Separation {
            s1: dedup(vec![r1, x, pu2]),
            s2: dedup(vec![r2, v, u2]),
            part2,
            cut: vec![(x, v), (pu2, u2)],
        };
    }
    let pu2 = o3.parent(u2).expect("find1 result has a father");
    let mut part2 = base;
    part2.extend(o2.subtree_nodes(tree, u1));
    part2.extend(o3.subtree_nodes(tree, u2));
    let j = o2.junction(u1, u2);
    Separation {
        s1: dedup(vec![r1, x, pu1, pu2, j]),
        s2: dedup(vec![r2, v, u1, u2]),
        part2,
        cut: vec![(x, v), (pu1, u1), (pu2, u2)],
    }
}

/// Case 3: the walk stopped at `v` with `Δ ≤ |T(v)| ≤ 4Δ/3`. Apply Lemma 1
/// *inside* `T(v)` with `Δ' = |T(v)| − Δ` and designated nodes `v, r2`; the
/// piece Lemma 1 carves off returns to `T1`.
#[allow(clippy::too_many_arguments)] // mirrors the lemma's case analysis
fn case_medium_subtree(
    tree: &BinaryTree,
    placed: &[bool],
    o: &Orientation,
    o2: &mut Orientation,
    r1: NodeId,
    r2: NodeId,
    delta: u32,
    v: NodeId,
) -> Separation {
    let x = o.parent(v).expect("the walk moved at least one step");
    let dp = o.size(v) - delta;
    if dp == 0 {
        return Separation {
            s1: dedup(vec![r1, x]),
            s2: dedup(vec![v, r2]),
            part2: o.subtree_nodes(tree, v),
            cut: vec![(x, v)],
        };
    }
    let inner = lemma1_ex(o2, tree, placed, &[x], v, r2, dp);
    let removed: HashSet<NodeId> = inner.part2.iter().copied().collect();
    let part2 = o
        .subtree_nodes(tree, v)
        .into_iter()
        .filter(|y| !removed.contains(y))
        .collect();
    let mut s1 = vec![r1, x];
    s1.extend(inner.s2);
    let mut cut = vec![(x, v)];
    cut.extend(inner.cut.into_iter().map(|(a, b)| (b, a)));
    Separation {
        s1: dedup(s1),
        s2: inner.s1,
        part2,
        cut,
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math
mod tests {
    use super::*;
    use crate::generate::{self, TreeFamily};
    use crate::separator::check_separation;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check(tree: &BinaryTree, r1: NodeId, r2: NodeId, delta: u32) -> Separation {
        let placed = vec![false; tree.len()];
        let sep = lemma2(tree, &placed, r1, r2, delta);
        check_separation(
            tree,
            &placed,
            &[],
            r1,
            r2,
            delta,
            &sep,
            Separation::lemma2_bound(delta),
            5, // 4 + the documented junction-vertex deviation
            5,
        );
        sep
    }

    #[test]
    fn whole_piece_when_delta_is_n() {
        let t = generate::path(20);
        let sep = check(&t, NodeId(0), NodeId(19), 20);
        assert_eq!(sep.part2.len(), 20);
        assert!(sep.cut.is_empty());
    }

    #[test]
    fn splits_paths_tightly() {
        let t = generate::path(1000);
        for delta in [1u32, 10, 100, 333, 500, 750, 900, 999] {
            let sep = check(&t, NodeId(0), NodeId(999), delta);
            // On a path, every target is achievable exactly.
            assert!(
                u32::abs_diff(sep.part2.len() as u32, delta) <= Separation::lemma2_bound(delta)
            );
        }
    }

    #[test]
    fn splits_complete_trees() {
        let t = generate::left_complete(511);
        for delta in [1u32, 16, 100, 170, 256, 400, 511] {
            check(&t, NodeId(0), NodeId(300), delta);
            check(&t, NodeId(510), NodeId(255), delta);
        }
    }

    #[test]
    fn sweeps_all_families_and_deltas() {
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        for family in TreeFamily::ALL {
            for n in [16usize, 97, 400] {
                let t = family.generate(n, &mut rng);
                let candidates: Vec<NodeId> = t.nodes().filter(|&v| t.degree(v) <= 2).collect();
                for _ in 0..10 {
                    let r1 = candidates[rng.random_range(0..candidates.len())];
                    let r2 = candidates[rng.random_range(0..candidates.len())];
                    let delta = rng.random_range(1..=n as u32);
                    check(&t, r1, r2, delta);
                }
            }
        }
    }

    #[test]
    fn same_designated_node_twice() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = generate::random_attach(300, &mut rng);
        let leaf = t.nodes().find(|&v| t.degree(v) == 1).unwrap();
        for delta in [1u32, 50, 150, 299, 300] {
            check(&t, leaf, leaf, delta);
        }
    }

    #[test]
    fn respects_placed_blocks() {
        let t = generate::path(200);
        let mut placed = vec![false; 200];
        for i in 100..110 {
            placed[i] = true;
        }
        let sep = lemma2(&t, &placed, NodeId(0), NodeId(99), 40);
        check_separation(
            &t,
            &placed,
            &[],
            NodeId(0),
            NodeId(99),
            40,
            &sep,
            Separation::lemma2_bound(40),
            5,
            5,
        );
        for &v in &sep.part2 {
            assert!(v.index() < 100);
        }
    }

    #[test]
    fn nine_fold_improvement_over_lemma1() {
        // The point of Lemma 2: error ⌊(Δ+4)/9⌋ instead of ⌊(Δ+1)/3⌋.
        assert_eq!(Separation::lemma2_bound(90), 10);
        assert_eq!(Separation::lemma1_bound(90), 30);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let t = generate::random_bst(5000, &mut rng);
        let leaf = t.nodes().find(|&v| t.degree(v) == 1).unwrap();
        let placed = vec![false; 5000];
        for delta in [900u32, 1800, 2500] {
            let sep = lemma2(&t, &placed, leaf, leaf, delta);
            assert!(
                u32::abs_diff(sep.part2.len() as u32, delta) <= (delta + 4) / 9,
                "Δ={delta}, |T2|={}",
                sep.part2.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "1 ≤ Δ ≤ n")]
    fn rejects_delta_zero() {
        let t = generate::path(10);
        let _ = lemma2(&t, &[false; 10], NodeId(0), NodeId(9), 0);
    }

    #[test]
    #[should_panic(expected = "1 ≤ Δ ≤ n")]
    fn rejects_delta_above_n() {
        let t = generate::path(10);
        let _ = lemma2(&t, &[false; 10], NodeId(0), NodeId(9), 11);
    }
}

//! Lemma 1 of the paper.
//!
//! Given a piece `T` with `n` nodes, designated nodes `r1, r2`, and a target
//! `Δ` with `n > 4Δ/3`, split `T` into `T1, T2` with
//! `| |T2| − Δ | ≤ ⌊(Δ+1)/3⌋`, cutting a single edge, with boundary sets
//! `|S1| ≤ 4` and `|S2| ≤ 2`.
//!
//! Construction (following the paper's proof): run `find1` from `r1` to
//! locate a node `u` whose subtree has cardinality close to `Δ`; let `z` be
//! the father of `u`. If `T(u)` contains `r2`, take `S1 = {r1, z}`,
//! `S2 = {u, r2}`. Otherwise let `y` be the node where the path from `r1`
//! to `u` and the path from `r1` to `r2` part, and take
//! `S1 = {r1, r2, z, y}`, `S2 = {u}`.

use super::orient::{find1, Orientation, SeparatorScratch};
use super::Separation;
use crate::tree::{BinaryTree, NodeId};

/// Applies Lemma 1 to the piece containing `r1` (the component of nodes not
/// marked in `placed`), allocating fresh orientation buffers. Callers in a
/// loop should hold a [`SeparatorScratch`] and use [`lemma1_with`].
///
/// # Preconditions (asserted)
/// * `r1` and `r2` are un-placed and in the same component;
/// * `Δ ≥ 1` and the piece has more than `4Δ/3` nodes;
/// * `r1` has at most two un-placed neighbours (true for designated nodes).
pub fn lemma1(
    tree: &BinaryTree,
    placed: &[bool],
    r1: NodeId,
    r2: NodeId,
    delta: u32,
) -> Separation {
    lemma1_ex(
        &mut Orientation::new(tree.len()),
        tree,
        placed,
        &[],
        r1,
        r2,
        delta,
    )
}

/// [`lemma1`] on reusable buffers: no allocation beyond the returned
/// [`Separation`] once `scratch` has reached the tree's size.
pub fn lemma1_with(
    scratch: &mut SeparatorScratch,
    tree: &BinaryTree,
    placed: &[bool],
    r1: NodeId,
    r2: NodeId,
    delta: u32,
) -> Separation {
    scratch.ensure(tree.len());
    lemma1_ex(&mut scratch.o1, tree, placed, &[], r1, r2, delta)
}

/// Lemma 1 restricted to the piece that remains after additionally treating
/// `excluded` as placed, oriented in the caller-provided buffer. Used by
/// Lemma 2's case 3, which applies Lemma 1 inside the subtree `T(v)` by
/// excluding `v`'s father.
pub(crate) fn lemma1_ex(
    o: &mut Orientation,
    tree: &BinaryTree,
    placed: &[bool],
    excluded: &[NodeId],
    r1: NodeId,
    r2: NodeId,
    delta: u32,
) -> Separation {
    o.ensure(tree.len());
    o.orient(tree, placed, excluded, r1);
    let n = o.piece_len() as u32;
    assert!(o.contains(r2), "r2 must lie in the piece of r1");
    assert!(delta >= 1, "lemma 1 needs Δ ≥ 1");
    assert!(
        3 * n > 4 * delta,
        "lemma 1 needs n > 4Δ/3 (n = {n}, Δ = {delta})"
    );

    let u = find1(o, tree, r1, delta);
    let z = o
        .parent(u)
        .expect("find1 never returns the orientation root");
    let part2 = o.subtree_nodes(tree, u);

    let mut s1: Vec<NodeId>;
    let s2: Vec<NodeId>;
    if part2.contains(&r2) {
        // Case 1: T(u) contains r2.
        s1 = vec![r1, z];
        s2 = dedup(vec![u, r2]);
    } else {
        // Case 2: r2 stays on r1's side; y is where the paths to u and to
        // r2 part (possibly r1, r2 or z themselves).
        let y = o.junction(u, r2);
        debug_assert_ne!(y, u, "junction in T(u) would imply r2 ∈ T(u)");
        s1 = vec![r1, r2, z, y];
        s2 = vec![u];
    }
    s1 = dedup(s1);
    debug_assert!(u32::abs_diff(part2.len() as u32, delta) <= Separation::lemma1_bound(delta));
    Separation {
        s1,
        s2,
        part2,
        cut: vec![(z, u)],
    }
}

pub(crate) fn dedup(mut v: Vec<NodeId>) -> Vec<NodeId> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, TreeFamily};
    use crate::separator::check_separation;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check(tree: &BinaryTree, r1: NodeId, r2: NodeId, delta: u32) {
        let placed = vec![false; tree.len()];
        let sep = lemma1(tree, &placed, r1, r2, delta);
        check_separation(
            tree,
            &placed,
            &[],
            r1,
            r2,
            delta,
            &sep,
            Separation::lemma1_bound(delta),
            4,
            2,
        );
    }

    #[test]
    fn splits_a_path() {
        let t = generate::path(100);
        check(&t, NodeId(0), NodeId(99), 30);
        check(&t, NodeId(0), NodeId(0), 30);
        check(&t, NodeId(50), NodeId(10), 20);
    }

    #[test]
    fn splits_complete_trees() {
        let t = generate::left_complete(255);
        // Designated nodes must have degree ≤ 2 (root or leaves here), as in
        // the embedding where every designated node has a placed neighbour.
        check(&t, NodeId(0), NodeId(254), 60);
        check(&t, NodeId(130), NodeId(130), 40);
        check(&t, NodeId(254), NodeId(0), 100);
    }

    #[test]
    fn splits_all_families_many_deltas() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for family in TreeFamily::ALL {
            for n in [20usize, 97, 256] {
                let t = family.generate(n, &mut rng);
                // Pick designated nodes with degree ≤ 2 (the usage pattern:
                // designated nodes always have a placed neighbour).
                let candidates: Vec<NodeId> = t.nodes().filter(|&v| t.degree(v) <= 2).collect();
                for _ in 0..8 {
                    let r1 = candidates[rng.random_range(0..candidates.len())];
                    let r2 = candidates[rng.random_range(0..candidates.len())];
                    let max_delta = (3 * n as u32 - 1) / 4; // largest Δ with 3n > 4Δ
                    let delta = rng.random_range(1..=max_delta.max(1));
                    check(&t, r1, r2, delta);
                }
            }
        }
    }

    #[test]
    fn respects_designated_on_both_sides() {
        // r2 deep inside the carved subtree lands in S2.
        let t = generate::path(60);
        let placed = vec![false; 60];
        let sep = lemma1(&t, &placed, NodeId(0), NodeId(59), 10);
        // part2 is the far end of the path; r2 = 59 must be laid out.
        assert!(sep.s1.contains(&NodeId(0)));
        assert!(sep.s2.contains(&NodeId(59)) || sep.s1.contains(&NodeId(59)));
    }

    #[test]
    fn single_cut_edge() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let t = generate::random_bst(500, &mut rng);
        let placed = vec![false; 500];
        let leaf = t.nodes().find(|&v| t.degree(v) == 1).unwrap();
        let sep = lemma1(&t, &placed, leaf, leaf, 100);
        assert_eq!(sep.cut.len(), 1, "lemma 1 cuts exactly one edge");
    }

    #[test]
    fn works_on_pieces_with_placed_nodes() {
        // Place a block in the middle of a path; the lemma must stay on one
        // side of it.
        let t = generate::path(100);
        let mut placed = vec![false; 100];
        placed[40] = true;
        let sep = lemma1(&t, &placed, NodeId(0), NodeId(39), 12);
        check_separation(
            &t,
            &placed,
            &[],
            NodeId(0),
            NodeId(39),
            12,
            &sep,
            Separation::lemma1_bound(12),
            4,
            2,
        );
        for &v in &sep.part2 {
            assert!(v.index() < 40);
        }
    }

    #[test]
    #[should_panic(expected = "n > 4Δ/3")]
    fn rejects_oversized_delta() {
        let t = generate::path(10);
        let placed = vec![false; 10];
        let _ = lemma1(&t, &placed, NodeId(0), NodeId(9), 9);
    }
}

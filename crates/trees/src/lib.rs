//! Guest binary trees for the SPAA'91 X-tree reproduction: the tree arena,
//! workload generators, and the paper's separator lemmas.
//!
//! The separator lemmas ([`separator::lemma1`], [`separator::lemma2`]) are
//! the combinatorial engine behind Theorem 1: they peel off sub-forests of
//! near-prescribed size while only ever exposing boundary sets of ≤ 4–5
//! nodes, each remaining fragment again having at most two *designated*
//! nodes (an "interval").

pub mod generate;
pub mod paramtest;
pub mod separator;
pub mod tree;

pub use generate::{theorem1_size, theorem3_size, TreeFamily, DEFAULT_SKEW_BIAS};
pub use separator::{
    check_separation, find1, lemma1, lemma1_with, lemma2, lemma2_with, Orientation, Separation,
    SeparatorScratch,
};
pub use tree::{Adjacency, BinaryTree, NodeId};

//! Arbitrary binary trees — the *guest* graphs of the paper.
//!
//! A binary tree here is a rooted tree in which every node has at most two
//! children (so every vertex has degree ≤ 3, the root degree ≤ 2). This is
//! the class the paper embeds: "binary trees reflect common data structures
//! and the type of program structure found in common divide-and-conquer
//! algorithms".

use std::fmt;

/// Index of a node within a [`BinaryTree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

pub(crate) const NONE: u32 = u32::MAX;

/// A fixed-capacity inline adjacency list.
///
/// A binary-tree node has at most two children and three neighbours, so
/// adjacency queries never need the heap: this is a plain array plus a
/// length, `Copy`, and dereferences to a slice. (It replaced a vendored
/// `SmallVec` stand-in that heap-allocated on every call.)
#[derive(Clone, Copy)]
pub struct Adjacency<const N: usize> {
    buf: [NodeId; N],
    len: u8,
}

impl<const N: usize> Default for Adjacency<N> {
    fn default() -> Self {
        Adjacency {
            buf: [NodeId(0); N],
            len: 0,
        }
    }
}

impl<const N: usize> Adjacency<N> {
    #[inline]
    fn new() -> Self {
        Adjacency::default()
    }

    #[inline]
    pub(crate) fn push(&mut self, v: NodeId) {
        self.buf[usize::from(self.len)] = v;
        self.len += 1;
    }

    /// The entries as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.buf[..usize::from(self.len)]
    }
}

impl<const N: usize> std::ops::Deref for Adjacency<N> {
    type Target = [NodeId];
    #[inline]
    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl<const N: usize> PartialEq for Adjacency<N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> Eq for Adjacency<N> {}

impl<const N: usize> fmt::Debug for Adjacency<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<const N: usize> IntoIterator for Adjacency<N> {
    type Item = NodeId;
    type IntoIter = std::iter::Take<std::array::IntoIter<NodeId, N>>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(usize::from(self.len))
    }
}

impl<'a, const N: usize> IntoIterator for &'a Adjacency<N> {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A rooted binary tree stored as an arena of parent / child links.
#[derive(Clone)]
pub struct BinaryTree {
    parent: Vec<u32>,
    children: Vec<[u32; 2]>,
    root: u32,
}

impl BinaryTree {
    /// A tree with a single root node.
    pub fn singleton() -> Self {
        BinaryTree {
            parent: vec![NONE],
            children: vec![[NONE, NONE]],
            root: 0,
        }
    }

    /// Builds a tree from a parent array (`None` exactly at the root).
    ///
    /// # Panics
    /// Panics if the array does not describe a binary tree: no or several
    /// roots, a node with three children, cycles, or out-of-range parents.
    pub fn from_parents(parents: &[Option<usize>]) -> Self {
        let n = parents.len();
        assert!(n > 0, "tree must have at least one node");
        assert!(n < NONE as usize, "tree too large");
        let mut tree = BinaryTree {
            parent: vec![NONE; n],
            children: vec![[NONE, NONE]; n],
            root: NONE,
        };
        for (v, &p) in parents.iter().enumerate() {
            match p {
                None => {
                    assert_eq!(tree.root, NONE, "multiple roots");
                    tree.root = v as u32;
                }
                Some(p) => {
                    assert!(p < n && p != v, "invalid parent {p} of {v}");
                    tree.parent[v] = p as u32;
                    let slot = tree.children[p]
                        .iter()
                        .position(|&c| c == NONE)
                        .unwrap_or_else(|| panic!("node {p} has more than two children"));
                    tree.children[p][slot] = v as u32;
                }
            }
        }
        assert_ne!(tree.root, NONE, "no root");
        // Reject cycles / forests: everything must be reachable from the root.
        let mut seen = 0usize;
        let mut stack = vec![tree.root];
        let mut visited = vec![false; n];
        while let Some(v) = stack.pop() {
            assert!(!visited[v as usize], "cycle at node {v}");
            visited[v as usize] = true;
            seen += 1;
            for c in tree.children[v as usize] {
                if c != NONE {
                    stack.push(c);
                }
            }
        }
        assert_eq!(seen, n, "parent array describes a forest, not a tree");
        tree
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Always false: trees have at least one node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(self.root)
    }

    /// The parent, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v.index()];
        (p != NONE).then_some(NodeId(p))
    }

    /// The (up to two) children.
    #[inline]
    pub fn children(&self, v: NodeId) -> Adjacency<2> {
        let mut out = Adjacency::new();
        for c in self.children[v.index()] {
            if c != NONE {
                out.push(NodeId(c));
            }
        }
        out
    }

    /// All tree neighbours (parent + children): at most 3.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> Adjacency<3> {
        let mut out = Adjacency::new();
        if let Some(p) = self.parent(v) {
            out.push(p);
        }
        for c in self.children[v.index()] {
            if c != NONE {
                out.push(NodeId(c));
            }
        }
        out
    }

    /// Degree of `v` in the (undirected) tree.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let kids = &self.children[v.index()];
        usize::from(self.parent[v.index()] != NONE)
            + usize::from(kids[0] != NONE)
            + usize::from(kids[1] != NONE)
    }

    /// True if `{u, v}` is a tree edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.parent[u.index()] == v.0 || self.parent[v.index()] == u.0
    }

    /// Adds a child to `p`, returning the new node's id.
    ///
    /// # Panics
    /// Panics if `p` already has two children.
    pub fn add_child(&mut self, p: NodeId) -> NodeId {
        let slot = self.children[p.index()]
            .iter()
            .position(|&c| c == NONE)
            .expect("node already has two children");
        let v = self.parent.len() as u32;
        assert!(v != NONE, "tree too large");
        self.parent.push(p.0);
        self.children.push([NONE, NONE]);
        self.children[p.index()][slot] = v;
        NodeId(v)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.parent.len() as u32).map(NodeId)
    }

    /// Iterates over all undirected edges as `(parent, child)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().filter_map(|v| self.parent(v).map(|p| (p, v)))
    }

    /// Nodes in preorder from the root.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            out.push(NodeId(v));
            for c in self.children[v as usize].iter().rev() {
                if *c != NONE {
                    stack.push(*c);
                }
            }
        }
        out
    }

    /// Subtree sizes (number of descendants including self), indexed by node.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut size = vec![1u32; self.len()];
        let order = self.preorder();
        for &v in order.iter().rev() {
            if let Some(p) = self.parent(v) {
                size[p.index()] += size[v.index()];
            }
        }
        size
    }

    /// Height of the tree (edges on the longest root-to-leaf path).
    pub fn height(&self) -> usize {
        let mut depth = vec![0usize; self.len()];
        let mut best = 0;
        for v in self.preorder() {
            if let Some(p) = self.parent(v) {
                depth[v.index()] = depth[p.index()] + 1;
                best = best.max(depth[v.index()]);
            }
        }
        best
    }

    /// Number of leaves (nodes without children).
    pub fn leaf_count(&self) -> usize {
        self.nodes()
            .filter(|&v| self.children(v).is_empty())
            .count()
    }

    /// Checks the structural invariants; used by generator tests.
    pub fn validate(&self) {
        assert!(self.root != NONE);
        assert_eq!(self.parent[self.root as usize], NONE);
        let mut count = 0;
        for v in self.preorder() {
            count += 1;
            for c in self.children(v) {
                assert_eq!(self.parent(c), Some(v));
            }
            assert!(self.degree(v) <= 3);
        }
        assert_eq!(count, self.len(), "unreachable nodes");
    }
}

impl fmt::Debug for BinaryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BinaryTree(n={}, root={:?})", self.len(), self.root())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BinaryTree {
        //        0
        //       / \
        //      1   2
        //     / \   \
        //    3   4   5
        BinaryTree::from_parents(&[None, Some(0), Some(0), Some(1), Some(1), Some(2)])
    }

    #[test]
    fn from_parents_builds_links() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(1)));
        assert_eq!(t.children(NodeId(1)).as_slice(), &[NodeId(3), NodeId(4)]);
        assert_eq!(t.children(NodeId(5)).len(), 0);
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.degree(NodeId(1)), 3);
        assert_eq!(t.degree(NodeId(3)), 1);
        t.validate();
    }

    #[test]
    fn neighbors_are_symmetric() {
        let t = sample();
        for v in t.nodes() {
            for w in t.neighbors(v) {
                assert!(t.neighbors(w).contains(&v));
                assert!(t.has_edge(v, w));
            }
        }
        assert!(!t.has_edge(NodeId(3), NodeId(4)));
    }

    #[test]
    fn preorder_and_sizes() {
        let t = sample();
        let order = t.preorder();
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], NodeId(0));
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 6);
        assert_eq!(sizes[1], 3);
        assert_eq!(sizes[2], 2);
        assert_eq!(sizes[3], 1);
    }

    #[test]
    fn height_and_leaves() {
        let t = sample();
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(BinaryTree::singleton().height(), 0);
        assert_eq!(BinaryTree::singleton().leaf_count(), 1);
    }

    #[test]
    fn add_child_grows() {
        let mut t = BinaryTree::singleton();
        let a = t.add_child(t.root());
        let b = t.add_child(t.root());
        let c = t.add_child(a);
        assert_eq!(t.len(), 4);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.children(t.root()).as_slice(), &[a, b]);
        t.validate();
    }

    #[test]
    #[should_panic(expected = "more than two children")]
    fn rejects_ternary_node() {
        let _ = BinaryTree::from_parents(&[None, Some(0), Some(0), Some(0)]);
    }

    #[test]
    #[should_panic(expected = "multiple roots")]
    fn rejects_two_roots() {
        let _ = BinaryTree::from_parents(&[None, None]);
    }

    #[test]
    #[should_panic]
    fn rejects_cycle() {
        let _ = BinaryTree::from_parents(&[Some(1), Some(0)]);
    }

    #[test]
    fn edges_count() {
        let t = sample();
        assert_eq!(t.edges().count(), 5);
        for (p, c) in t.edges() {
            assert_eq!(t.parent(c), Some(p));
        }
    }
}

//! Printed-seed parametric test harness.
//!
//! Every iteration of a parametric test prints its seed *before* the body
//! runs, so when an iteration panics the failing seed is the last line of
//! the captured output and the failure reproduces as a one-liner:
//!
//! ```text
//! XTREE_PARAM_SEED=0xDEADBEEF cargo test -p xtree-trees --test param_separators
//! ```
//!
//! Seeds found that way belong in the test's `regressions` list, which is
//! replayed first on every run so a fixed bug stays fixed. The default
//! seed stream is itself deterministic — derived from the test name, so
//! distinct tests explore distinct streams but CI runs are reproducible —
//! and `XTREE_PARAM_ITERS` scales the stream length without touching code.

use crate::tree::{BinaryTree, NodeId};
use crate::{generate, TreeFamily};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Environment override: run exactly one seed (hex with `0x` prefix, or
/// decimal) instead of the regression list and the seed stream.
pub const ENV_SEED: &str = "XTREE_PARAM_SEED";

/// Environment override: how many fresh-stream iterations to run.
pub const ENV_ITERS: &str = "XTREE_PARAM_ITERS";

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_seed(s: &str) -> u64 {
    let s = s.trim();
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|e| panic!("{ENV_SEED}={s:?} is not a u64: {e}"))
}

/// Runs `body` once per seed: first every seed in `regressions` (past
/// failures, pinned forever), then `iters` seeds from the test's own
/// deterministic stream. Each seed is printed before the body runs, with
/// the one-liner that reproduces it.
///
/// `XTREE_PARAM_SEED=<seed>` runs only that seed; `XTREE_PARAM_ITERS=<n>`
/// overrides the stream length.
pub fn start_parametric_test<F>(name: &str, regressions: &[u64], iters: usize, mut body: F)
where
    F: FnMut(&mut ChaCha8Rng),
{
    let mut run = |seed: u64, label: &str| {
        println!("[{name}] {label} seed {seed:#018x}  (rerun: {ENV_SEED}={seed:#x})");
        body(&mut ChaCha8Rng::seed_from_u64(seed));
    };

    if let Ok(s) = std::env::var(ENV_SEED) {
        run(parse_seed(&s), "pinned");
        return;
    }
    for &seed in regressions {
        run(seed, "regression");
    }
    let iters = std::env::var(ENV_ITERS)
        .ok()
        .map(|s| s.parse().unwrap_or_else(|e| panic!("{ENV_ITERS}: {e}")))
        .unwrap_or(iters);
    let base = fnv1a(name);
    for i in 0..iters {
        run(
            splitmix64(base ^ i as u64),
            &format!("iter {}/{iters}", i + 1),
        );
    }
}

/// A random guest drawn across every generator family (plus the leaning
/// family the enum does not cover), sized `4..max_nodes` — the shared
/// "arbitrary tree" strategy of the parametric tests.
pub fn arbitrary_tree(rng: &mut ChaCha8Rng, max_nodes: usize) -> BinaryTree {
    let n = rng.random_range(4..max_nodes.max(5));
    let f = rng.random_range(0..TreeFamily::ALL.len() + 1);
    match TreeFamily::ALL.get(f) {
        Some(fam) => fam.generate(n, rng),
        None => {
            let lean = rng.random_range(0u8..=255);
            generate::random_leaning(n, lean, rng)
        }
    }
}

/// A uniformly random node of `t` with degree ≤ 2 — a valid designated
/// node (in the embedding, designated nodes always have a placed
/// neighbour, so degree 3 never occurs).
pub fn designated_node(rng: &mut ChaCha8Rng, t: &BinaryTree) -> NodeId {
    let cands: Vec<NodeId> = t.nodes().filter(|&v| t.degree(v) <= 2).collect();
    cands[rng.random_range(0..cands.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seed_stream_is_deterministic_and_name_dependent() {
        let mut a = Vec::new();
        start_parametric_test("alpha", &[], 4, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        start_parametric_test("alpha", &[], 4, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b, "same name must replay the same stream");
        let mut c = Vec::new();
        start_parametric_test("beta", &[], 4, |rng| c.push(rng.next_u64()));
        assert_ne!(a, c, "different tests must explore different streams");
    }

    #[test]
    fn regressions_run_before_the_stream() {
        let mut seen = Vec::new();
        start_parametric_test("regression-order", &[7, 9], 1, |rng| {
            seen.push(rng.next_u64());
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], ChaCha8Rng::seed_from_u64(7).next_u64());
        assert_eq!(seen[1], ChaCha8Rng::seed_from_u64(9).next_u64());
    }

    #[test]
    fn parse_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0xff"), 255);
        assert_eq!(parse_seed("255"), 255);
    }
}

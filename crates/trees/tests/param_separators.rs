//! Parametric verification of the separator lemmas on the printed-seed
//! harness ([`xtree_trees::paramtest`]): for *arbitrary* binary trees,
//! designated nodes, targets, and pre-placed regions, every post-condition
//! of Lemmas 1 and 2 must hold. `check_separation` verifies designated
//! coverage, the size bound, the cut structure (every boundary edge runs
//! S1–S2) and collinearity of both boundary sets.
//!
//! Each iteration prints its seed before running; a failure reproduces
//! with `XTREE_PARAM_SEED=<seed> cargo test -p xtree-trees --test
//! param_separators <name>`. Seeds that ever failed go into the test's
//! `regressions` slice so they are replayed on every run.

use rand::Rng;
use xtree_trees::paramtest::{arbitrary_tree, designated_node, start_parametric_test};
use xtree_trees::{check_separation, lemma1, lemma2, NodeId, Separation};

const ITERS: usize = 256;

#[test]
fn lemma1_always_within_bound() {
    start_parametric_test("lemma1_always_within_bound", &[], ITERS, |rng| {
        let t = arbitrary_tree(rng, 800);
        let (r1, r2) = (designated_node(rng, &t), designated_node(rng, &t));
        let n = t.len() as u32;
        // Any Δ with 3n > 4Δ, Δ ≥ 1.
        let max_delta = (3 * n - 1) / 4;
        if max_delta < 1 {
            return;
        }
        let delta = rng.random_range(1..=max_delta);
        let placed = vec![false; t.len()];
        let sep = lemma1(&t, &placed, r1, r2, delta);
        check_separation(
            &t,
            &placed,
            &[],
            r1,
            r2,
            delta,
            &sep,
            Separation::lemma1_bound(delta),
            4,
            2,
        );
        // Lemma 1 cuts exactly one edge.
        assert_eq!(sep.cut.len(), 1);
    });
}

#[test]
fn lemma2_always_within_bound() {
    start_parametric_test("lemma2_always_within_bound", &[], ITERS, |rng| {
        let t = arbitrary_tree(rng, 800);
        let (r1, r2) = (designated_node(rng, &t), designated_node(rng, &t));
        let n = t.len() as u32;
        let delta = rng.random_range(1..=n);
        let placed = vec![false; t.len()];
        let sep = lemma2(&t, &placed, r1, r2, delta);
        check_separation(
            &t,
            &placed,
            &[],
            r1,
            r2,
            delta,
            &sep,
            Separation::lemma2_bound(delta),
            5,
            5,
        );
        // Lemma 2 cuts at most three edges (base cut + two carvings).
        assert!(sep.cut.len() <= 3, "cut {:?}", sep.cut.len());
    });
}

#[test]
fn lemma2_respects_placed_regions() {
    start_parametric_test("lemma2_respects_placed_regions", &[], ITERS, |rng| {
        let t = arbitrary_tree(rng, 800);
        let (r1, r2) = (designated_node(rng, &t), designated_node(rng, &t));
        // Pre-place a random subtree and split what remains around r1.
        let mut placed = vec![false; t.len()];
        let victim = NodeId(rng.random_range(0..t.len() as u32));
        // Mark victim's subtree (in the rooted orientation) as placed,
        // unless that would swallow r1 or r2.
        let mut stack = vec![victim];
        let mut marked = Vec::new();
        while let Some(v) = stack.pop() {
            marked.push(v);
            stack.extend(t.children(v));
        }
        if marked.contains(&r1) || marked.contains(&r2) {
            return;
        }
        for &v in &marked {
            placed[v.index()] = true;
        }
        // The piece of r1 after blocking; r2 must still be reachable.
        let reach = {
            use std::collections::HashSet;
            let mut seen = HashSet::from([r1]);
            let mut q = vec![r1];
            while let Some(v) = q.pop() {
                for w in t.neighbors(v) {
                    if !placed[w.index()] && seen.insert(w) {
                        q.push(w);
                    }
                }
            }
            seen
        };
        if !reach.contains(&r2) || reach.len() < 2 {
            return;
        }
        let delta = rng.random_range(1..=reach.len() as u32);
        let sep = lemma2(&t, &placed, r1, r2, delta);
        check_separation(
            &t,
            &placed,
            &[],
            r1,
            r2,
            delta,
            &sep,
            Separation::lemma2_bound(delta),
            5,
            5,
        );
        // Nothing placed may appear in the output.
        for &v in sep.part2.iter().chain(&sep.s1).chain(&sep.s2) {
            assert!(!placed[v.index()]);
        }
    });
}

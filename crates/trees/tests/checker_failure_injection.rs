//! Failure injection: `check_separation` is itself load-bearing (every
//! lemma test and property test trusts it), so verify that it *rejects*
//! deliberately corrupted separations — a checker that accepts anything
//! would make the whole suite vacuous.

use xtree_trees::{check_separation, generate, lemma2, NodeId, Separation};

fn valid_setup() -> (
    xtree_trees::BinaryTree,
    Vec<bool>,
    NodeId,
    NodeId,
    u32,
    Separation,
) {
    let t = generate::path(100);
    let placed = vec![false; 100];
    let (r1, r2) = (NodeId(0), NodeId(99));
    let delta = 30;
    let sep = lemma2(&t, &placed, r1, r2, delta);
    (t, placed, r1, r2, delta, sep)
}

fn check(
    t: &xtree_trees::BinaryTree,
    placed: &[bool],
    r1: NodeId,
    r2: NodeId,
    delta: u32,
    sep: &Separation,
) {
    check_separation(
        t,
        placed,
        &[],
        r1,
        r2,
        delta,
        sep,
        Separation::lemma2_bound(delta),
        5,
        5,
    );
}

#[test]
fn accepts_the_genuine_article() {
    let (t, placed, r1, r2, delta, sep) = valid_setup();
    check(&t, &placed, r1, r2, delta, &sep);
}

#[test]
#[should_panic(expected = "off by more than")]
fn rejects_wrong_part2_size() {
    let (t, placed, r1, r2, _, sep) = valid_setup();
    // Lie about the target: the same split must fail a far-away Δ.
    check(&t, &placed, r1, r2, 90, &sep);
}

#[test]
#[should_panic]
fn rejects_missing_designated() {
    let (t, placed, _, _, delta, mut sep) = valid_setup();
    // Drop r1 from whichever boundary set holds it.
    sep.s1.retain(|&v| v != NodeId(0));
    sep.s2.retain(|&v| v != NodeId(0));
    check(&t, &placed, NodeId(0), NodeId(99), delta, &sep);
}

#[test]
#[should_panic(expected = "cut list does not match")]
fn rejects_missing_cut_edge() {
    let (t, placed, r1, r2, delta, mut sep) = valid_setup();
    sep.cut.pop();
    check(&t, &placed, r1, r2, delta, &sep);
}

#[test]
#[should_panic]
fn rejects_part2_with_foreign_node() {
    let (t, placed, r1, r2, delta, mut sep) = valid_setup();
    // Move one node from part1 into part2 without adjusting anything
    // else: either the boundary-edge structure or collinearity breaks.
    let part2: std::collections::HashSet<NodeId> = sep.part2.iter().copied().collect();
    let foreign = t.nodes().find(|v| !part2.contains(v)).unwrap();
    sep.part2.push(foreign);
    check(&t, &placed, r1, r2, delta, &sep);
}

#[test]
#[should_panic(expected = "duplicates")]
fn rejects_duplicate_boundary_nodes() {
    let (t, placed, r1, r2, delta, mut sep) = valid_setup();
    let v = sep.s1[0];
    sep.s1.push(v);
    check(&t, &placed, r1, r2, delta, &sep);
}

#[test]
#[should_panic(expected = "not collinear")]
fn rejects_non_collinear_boundary() {
    // Construct a separation by hand on a star-of-paths tree where one
    // component touches S1 three times.
    //        0
    //      / |
    //     1  2        (0 has children 1, 2; 1 has children 3, 4)
    //    / \
    //   3   4
    let t = xtree_trees::BinaryTree::from_parents(&[None, Some(0), Some(0), Some(1), Some(1)]);
    let placed = vec![false; 5];
    // part2 = {2}; cut edge (0, 2); declare S1 = {0, 3, 4}: the component
    // {1} of part1 − S1 touches 0, 3 and 4 → three edges into S1.
    let sep = Separation {
        s1: vec![NodeId(0), NodeId(3), NodeId(4)],
        s2: vec![NodeId(2)],
        part2: vec![NodeId(2)],
        cut: vec![(NodeId(0), NodeId(2))],
    };
    check_separation(&t, &placed, &[], NodeId(3), NodeId(2), 1, &sep, 0, 5, 5);
}

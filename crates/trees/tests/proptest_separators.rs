//! Property-based verification of the separator lemmas: for *arbitrary*
//! binary trees, designated nodes, targets, and pre-placed regions, every
//! post-condition of Lemmas 1 and 2 must hold. `check_separation` verifies
//! designated coverage, the size bound, the cut structure (every boundary
//! edge runs S1–S2) and collinearity of both boundary sets.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree_trees::{
    check_separation, generate, lemma1, lemma2, BinaryTree, NodeId, Separation, TreeFamily,
};

/// An arbitrary tree plus two valid designated nodes (degree ≤ 2, as in
/// the embedding where designated nodes always have a placed neighbour).
fn tree_with_designated() -> impl Strategy<Value = (BinaryTree, NodeId, NodeId)> {
    (
        4usize..800,
        any::<u64>(),
        0..8usize,
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(n, seed, f, i1, i2)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let t = if f < 7 {
                TreeFamily::ALL[f].generate(n, &mut rng)
            } else {
                generate::random_leaning(n, (seed % 256) as u8, &mut rng)
            };
            let cands: Vec<NodeId> = t.nodes().filter(|&v| t.degree(v) <= 2).collect();
            let r1 = cands[i1 as usize % cands.len()];
            let r2 = cands[i2 as usize % cands.len()];
            (t, r1, r2)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lemma1_always_within_bound((t, r1, r2) in tree_with_designated(), frac in 1u32..100) {
        let n = t.len() as u32;
        // Any Δ with 3n > 4Δ, Δ ≥ 1.
        let max_delta = (3 * n - 1) / 4;
        prop_assume!(max_delta >= 1);
        let delta = 1 + (frac * 7919) % max_delta;
        let placed = vec![false; t.len()];
        let sep = lemma1(&t, &placed, r1, r2, delta);
        check_separation(
            &t, &placed, &[], r1, r2, delta, &sep,
            Separation::lemma1_bound(delta), 4, 2,
        );
        // Lemma 1 cuts exactly one edge.
        prop_assert_eq!(sep.cut.len(), 1);
    }

    #[test]
    fn lemma2_always_within_bound((t, r1, r2) in tree_with_designated(), frac in 1u32..100) {
        let n = t.len() as u32;
        let delta = 1 + (frac * 104729) % n;
        let placed = vec![false; t.len()];
        let sep = lemma2(&t, &placed, r1, r2, delta);
        check_separation(
            &t, &placed, &[], r1, r2, delta, &sep,
            Separation::lemma2_bound(delta), 5, 5,
        );
        // Lemma 2 cuts at most three edges (base cut + two carvings).
        prop_assert!(sep.cut.len() <= 3, "cut {:?}", sep.cut.len());
    }

    #[test]
    fn lemma2_respects_placed_regions((t, r1, r2) in tree_with_designated(), block in any::<u16>()) {
        // Pre-place a random subtree and split what remains around r1.
        let mut placed = vec![false; t.len()];
        let victim = NodeId(u32::from(block) % t.len() as u32);
        // Mark victim's subtree (in the rooted orientation) as placed,
        // unless that would swallow r1 or r2.
        let mut stack = vec![victim];
        let mut marked = Vec::new();
        while let Some(v) = stack.pop() {
            marked.push(v);
            stack.extend(t.children(v));
        }
        if marked.contains(&r1) || marked.contains(&r2) {
            return Ok(());
        }
        for &v in &marked {
            placed[v.index()] = true;
        }
        // The piece of r1 after blocking; r2 must still be reachable.
        let reach = {
            use std::collections::HashSet;
            let mut seen = HashSet::from([r1]);
            let mut q = vec![r1];
            while let Some(v) = q.pop() {
                for w in t.neighbors(v) {
                    if !placed[w.index()] && seen.insert(w) {
                        q.push(w);
                    }
                }
            }
            seen
        };
        prop_assume!(reach.contains(&r2));
        prop_assume!(reach.len() >= 2);
        let delta = 1 + (u32::from(block) % reach.len() as u32);
        let sep = lemma2(&t, &placed, r1, r2, delta);
        check_separation(
            &t, &placed, &[], r1, r2, delta, &sep,
            Separation::lemma2_bound(delta), 5, 5,
        );
        // Nothing placed may appear in the output.
        for &v in sep.part2.iter().chain(&sep.s1).chain(&sep.s2) {
            prop_assert!(!placed[v.index()]);
        }
    }
}

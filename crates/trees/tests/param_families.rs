//! Parametric shape invariants for every [`TreeFamily`], on the
//! printed-seed harness ([`xtree_trees::paramtest`]): each iteration draws
//! a size and checks the family's structural contract — the path is a
//! chain of depth `n − 1`, the balanced family hits exactly
//! `⌈log2(n + 1)⌉ − 1`, the insertion-order BST reproduces a naive
//! reference insertion of the same permutation, and so on. Every family
//! also round-trips through [`TreeFamily::parse`] and regenerates
//! byte-identically from the same `(n, seed)` via `generate_seeded` — the
//! contract the CLI, benches, and serving layer all lean on.
//!
//! A failing iteration reproduces with
//! `XTREE_PARAM_SEED=<seed> cargo test -p xtree-trees --test
//! param_families <name>`.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use xtree_trees::generate::{self, DEFAULT_SKEW_BIAS};
use xtree_trees::paramtest::start_parametric_test;
use xtree_trees::{BinaryTree, TreeFamily};

const ITERS: usize = 128;

/// Depth of every node (root = 0), walked parent-first in preorder.
fn depths(t: &BinaryTree) -> Vec<usize> {
    let mut d = vec![0usize; t.len()];
    for v in t.preorder() {
        if let Some(p) = t.parent(v) {
            d[v.index()] = d[p.index()] + 1;
        }
    }
    d
}

fn depth(t: &BinaryTree) -> usize {
    depths(t).into_iter().max().unwrap_or(0)
}

/// The parent vector — the whole shape, used to compare trees for
/// byte-identity ([`BinaryTree`] itself carries no `PartialEq`).
fn parents(t: &BinaryTree) -> Vec<Option<usize>> {
    t.nodes().map(|v| t.parent(v).map(|p| p.index())).collect()
}

fn draw_n(rng: &mut ChaCha8Rng) -> usize {
    rng.random_range(1..600)
}

#[test]
fn every_family_is_sized_valid_and_seed_deterministic() {
    start_parametric_test(
        "every_family_is_sized_valid_and_seed_deterministic",
        &[],
        ITERS,
        |rng| {
            let n = draw_n(rng);
            let seed = rng.next_u64();
            for family in TreeFamily::ALL {
                let t = family.generate_seeded(n, seed);
                assert_eq!(t.len(), n, "{family:?} must hit the exact size");
                t.validate();
                let again = family.generate_seeded(n, seed);
                assert_eq!(
                    parents(&t),
                    parents(&again),
                    "{family:?} must regenerate byte-identically from (n, seed)"
                );
                assert_eq!(
                    TreeFamily::parse(&family.label()),
                    Some(family),
                    "{family:?} label must round-trip through parse"
                );
            }
        },
    );
}

#[test]
fn path_family_is_a_chain() {
    start_parametric_test("path_family_is_a_chain", &[], ITERS, |rng| {
        let n = draw_n(rng);
        let t = TreeFamily::Path.generate_seeded(n, rng.next_u64());
        assert_eq!(depth(&t), n - 1, "a path of {n} nodes has depth n − 1");
        assert!(t.nodes().all(|v| t.children(v).len() <= 1));
    });
}

#[test]
fn complete_family_is_heap_shaped() {
    start_parametric_test("complete_family_is_heap_shaped", &[], ITERS, |rng| {
        let n = draw_n(rng);
        let t = TreeFamily::LeftComplete.generate_seeded(n, rng.next_u64());
        for v in t.nodes() {
            let i = v.index();
            assert_eq!(
                t.parent(v).map(|p| p.index()),
                if i == 0 { None } else { Some((i - 1) / 2) },
                "node {i} must sit at its heap slot"
            );
        }
    });
}

#[test]
fn caterpillar_internal_nodes_form_a_spine() {
    start_parametric_test(
        "caterpillar_internal_nodes_form_a_spine",
        &[],
        ITERS,
        |rng| {
            let n = draw_n(rng);
            let t = TreeFamily::Caterpillar.generate_seeded(n, rng.next_u64());
            // Contracting the leaves must leave a path: every internal
            // node has at most one internal child.
            for v in t.nodes() {
                let internal_kids = t
                    .children(v)
                    .into_iter()
                    .filter(|&c| !t.children(c).is_empty())
                    .count();
                assert!(
                    internal_kids <= 1,
                    "caterpillar spine must be a path (node {} branches)",
                    v.index()
                );
            }
        },
    );
}

#[test]
fn balanced_family_has_minimum_depth_and_even_splits() {
    start_parametric_test(
        "balanced_family_has_minimum_depth_and_even_splits",
        &[],
        ITERS,
        |rng| {
            let n = draw_n(rng);
            let t = TreeFamily::Balanced.generate_seeded(n, rng.next_u64());
            // ⌈log2(n + 1)⌉ − 1, with the n = 1 root-only tree at depth 0.
            let want = ((n + 1).next_power_of_two().trailing_zeros() as usize).saturating_sub(1);
            assert_eq!(
                depth(&t),
                want,
                "balanced tree of {n} nodes must have depth ⌈log2(n + 1)⌉ − 1"
            );
            // Sibling subtrees differ by at most one node everywhere.
            let sizes = t.subtree_sizes();
            for v in t.nodes() {
                let kids = t.children(v);
                if let [a, b] = kids[..] {
                    let (sa, sb) = (sizes[a.index()], sizes[b.index()]);
                    assert!(
                        sa.abs_diff(sb) <= 1,
                        "siblings under node {} differ by {}",
                        v.index(),
                        sa.abs_diff(sb)
                    );
                }
            }
        },
    );
}

/// Naive O(n²) reference BST insertion: node `i` is the `i`-th key.
fn reference_bst(keys: &[u32]) -> Vec<Option<usize>> {
    let mut parent = vec![None; keys.len()];
    let mut left = vec![None; keys.len()];
    let mut right = vec![None; keys.len()];
    for i in 1..keys.len() {
        let mut at = 0usize;
        loop {
            let slot = if keys[i] < keys[at] {
                &mut left[at]
            } else {
                &mut right[at]
            };
            match *slot {
                Some(next) => at = next,
                None => {
                    *slot = Some(i);
                    parent[i] = Some(at);
                    break;
                }
            }
        }
    }
    parent
}

#[test]
fn bst_insertion_matches_reference_insertion() {
    start_parametric_test(
        "bst_insertion_matches_reference_insertion",
        &[],
        ITERS,
        |rng| {
            let n = draw_n(rng);
            let seed = rng.next_u64();
            let t = TreeFamily::BstInsertion.generate_seeded(n, seed);
            // The family consumes exactly one permutation from the seeded
            // stream; replay it and insert naively.
            let perm = generate::random_permutation(n, &mut ChaCha8Rng::seed_from_u64(seed));
            let reference = reference_bst(&perm);
            for v in t.nodes() {
                assert_eq!(
                    t.parent(v).map(|p| p.index()),
                    reference[v.index()],
                    "node {} must hang where a real BST insert puts key {}",
                    v.index(),
                    perm[v.index()]
                );
            }
        },
    );
}

#[test]
fn skewed_family_generalises_leaning() {
    start_parametric_test("skewed_family_generalises_leaning", &[], ITERS, |rng| {
        let n = draw_n(rng);
        let seed = rng.next_u64();
        // The legacy `leaning` family is exactly bias 224 of the sweep.
        assert_eq!(
            parents(&TreeFamily::Skewed { bias: 224 }.generate_seeded(n, seed)),
            parents(&TreeFamily::Leaning.generate_seeded(n, seed)),
            "skewed:224 must reproduce the leaning family byte for byte"
        );
        // The wire slot ALL[11] carries the default bias.
        assert_eq!(
            parents(
                &TreeFamily::Skewed {
                    bias: DEFAULT_SKEW_BIAS
                }
                .generate_seeded(n, seed)
            ),
            parents(&TreeFamily::ALL[11].generate_seeded(n, seed)),
            "ALL[11] must carry the default bias"
        );
    });
}

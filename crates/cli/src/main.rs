//! `xtree-cli` — embed and simulate binary trees on X-tree and hypercube
//! hosts from the command line.
//!
//! ```text
//! xtree-cli embed    --family random-bst --nodes 1008 [--host xtree|hypercube|universal] [--target xtree|xtree-injective|hypercube|hypercube-injective] [--seed N] [--traffic MODEL] [--json] [--map]
//! xtree-cli simulate --family caterpillar --nodes 496 [--host xtree|hypercube|universal] [--workload broadcast|reduce|exchange|dnc|all] [--seed N] [--traffic MODEL] [--fault-rate P --node-fault-rate P --fault-seed S --repair-after K] [--recover --max-retries N --backoff fixed:K|exp:B:C] [--checkpoint FILE --checkpoint-after K] [--trace FILE] [--verify-trace FILE] [--metrics FILE --metrics-format jsonl|prom] [--json]
//! xtree-cli resume   FILE [--workload W|all] [--trace FILE] [--verify-trace FILE] [--metrics FILE] [--json]
//! xtree-cli info     --height 3 [--network xtree|hypercube|ccc|butterfly|mesh]
//! xtree-cli sizes    --max-r 10
//! xtree-cli serve    [--addr HOST:PORT] [--host xtree|hypercube|universal] [--workers N] [--queue-cap N] [--cache-cap N] [--io-timeout-ms T] [--chaos-seed S --chaos-profile P] [--metrics FILE --metrics-format jsonl|prom]
//! xtree-cli cluster  [--shards M] [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N] [--vnodes V] [--ring-seed S] [--probe-interval-ms I] [--fail-after K] [--max-retries N] [--backoff fixed:K|exp:B:C] [--restart-backoff fixed:K|exp:B:C] [--io-timeout-ms T] [--chaos-seed S --chaos-profile P] [--metrics FILE --metrics-format jsonl|prom]
//! xtree-cli request  OP --addr HOST:PORT [--family F --nodes N --seed S --theorem 1|2 --workload W|all] [--host xtree|hypercube|universal] [--deadline-ms T] [--json]
//! ```

mod args;

use args::Args;
use std::time::Duration;
use xtree_core::{evaluate, hypercube, metrics, theorem1, theorem2, XEmbedding};
use xtree_json::Value;
use xtree_scenario::TrafficModel;
use xtree_server::cluster::{spawn_shard, ShardCommand};
use xtree_server::{
    Client, HashRing, ReconnectPolicy, Request, Response, Router, RouterConfig, Server,
    ServerConfig, Supervisor,
};
use xtree_sim::host::{guest_map, parse_host_label, HOST_LABELS, HOST_XTREE};
use xtree_sim::telemetry::{Event, MetricsSink, NopSink, Sink, Tee, TraceRecorder};
use xtree_sim::workload::WORKLOADS;
use xtree_sim::{
    compute_load, congestion, decode_checkpoint, encode_checkpoint, simulate_all_faulted_with,
    simulate_all_with, weighted_congestion, AnyHost, Backoff, Checkpoint, FaultPlan,
    FaultSimReport, Host, HostMap, Network, RecoveryPolicy, RecoveryTotals, Session, SessionStatus,
    SimReport,
};
use xtree_topology::{Butterfly, Csr, CubeConnectedCycles, Graph, Hypercube, Mesh2D, XTree};
use xtree_trees::{generate, BinaryTree, TreeFamily};

/// What went wrong, carrying the process exit code: bad invocations exit
/// 2 (and reprint the usage), runtime failures exit 1, and I/O failures
/// (files, sockets) exit 3 — so scripts can tell "fix the command line"
/// from "the run failed" from "the environment failed".
#[derive(Debug)]
enum CliError {
    /// The invocation itself is wrong; exits 2 and shows the usage.
    Usage(String),
    /// The command was well-formed but the operation failed; exits 1.
    Runtime(String),
    /// A file or socket operation failed; exits 3.
    Io(String),
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
            CliError::Io(_) => 3,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) | CliError::Io(m) => m,
        }
    }
}

/// Bare-string errors are invocation problems: every parse/validation
/// helper returns `Err(String)`, and `?` lifts them to [`CliError::Usage`].
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.into())
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    match run(argv) {
        Ok(out) => {
            // Tolerate a closed pipe (e.g. `xtree-cli … | head`): the
            // reader leaving early is not an error.
            use std::io::Write;
            let mut stdout = std::io::stdout().lock();
            if writeln!(stdout, "{out}").is_err() {
                std::process::exit(0);
            }
        }
        Err(e) => {
            match &e {
                CliError::Usage(m) => eprintln!("error: {m}\n\n{USAGE}"),
                _ => eprintln!("error: {}", e.message()),
            }
            std::process::exit(e.exit_code());
        }
    }
}

const USAGE: &str = "usage:
  xtree-cli embed    --family F --nodes N [--host xtree|hypercube|universal] [--target xtree|xtree-injective|hypercube|hypercube-injective] [--seed S] [--traffic MODEL] [--json] [--map]
  xtree-cli simulate --family F --nodes N [--host xtree|hypercube|universal] [--workload W|all] [--seed S] [--traffic MODEL] [--fault-rate P] [--node-fault-rate P] [--fault-seed S] [--repair-after K] [--recover] [--max-retries N] [--backoff fixed:K|exp:B:C] [--checkpoint FILE] [--checkpoint-after K] [--trace FILE] [--verify-trace FILE] [--metrics FILE] [--metrics-format jsonl|prom] [--json]
  xtree-cli resume   FILE [--workload W|all] [--trace FILE] [--verify-trace FILE] [--metrics FILE] [--metrics-format jsonl|prom] [--json]
  xtree-cli info     --height R [--network xtree|hypercube|ccc|butterfly|mesh]
  xtree-cli sizes    [--max-r R]
  xtree-cli trace    --family F --nodes N [--seed S]
  xtree-cli serve    [--addr HOST:PORT] [--host xtree|hypercube|universal] [--workers N] [--queue-cap N] [--cache-cap N] [--io-timeout-ms T] [--chaos-seed S] [--chaos-profile P] [--metrics FILE] [--metrics-format jsonl|prom]
  xtree-cli cluster  [--shards M] [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N] [--vnodes V] [--ring-seed S] [--probe-interval-ms I] [--fail-after K] [--max-retries N] [--backoff fixed:K|exp:B:C] [--restart-backoff fixed:K|exp:B:C] [--io-timeout-ms T] [--chaos-seed S] [--chaos-profile P] [--metrics FILE] [--metrics-format jsonl|prom]
  xtree-cli request  OP --addr HOST:PORT [--family F] [--nodes N] [--seed S] [--theorem 1|2] [--workload W|all] [--host xtree|hypercube|universal] [--deadline-ms T] [--json]
                     (OP: embed simulate stats health shutdown)
families: path complete caterpillar broom random-bst random-attach random-split leaning
          balanced uniform bst-insertion skewed[:BIAS]
traffic:  uniform broadcast reduce exchange dnc zipf[:S] hotspot[:PCT:MULT] diurnal[:PERIODS:PEAK]
chaos:    off light medium heavy, or clauses kind:rate[:arg] joined by commas
          (delay:PERMILLE:MAX_US short:PERMILLE corrupt:PERMILLE reset:PERMILLE truncate:PERMILLE refuse:PERMILLE)";

fn run(mut argv: Vec<String>) -> Result<String, CliError> {
    // `resume FILE` and `request OP` take a positional argument; rewrite
    // it into the `--key value` shape the parser speaks.
    if argv.first().map(String::as_str) == Some("resume")
        && argv.get(1).is_some_and(|s| !s.starts_with("--"))
    {
        argv.insert(1, "--from".into());
    }
    if argv.first().map(String::as_str) == Some("request")
        && argv.get(1).is_some_and(|s| !s.starts_with("--"))
    {
        argv.insert(1, "--op".into());
    }
    let a = Args::parse(argv)?;
    match a.command.as_str() {
        "embed" => cmd_embed(&a),
        "simulate" => cmd_simulate(&a),
        "resume" => cmd_resume(&a),
        "info" => cmd_info(&a),
        "sizes" => cmd_sizes(&a),
        "trace" => cmd_trace(&a),
        "serve" => cmd_serve(&a),
        "cluster" => cmd_cluster(&a),
        "request" => cmd_request(&a),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn make_tree(a: &Args) -> Result<(BinaryTree, String), String> {
    let name = a.get_or("family", "random-bst");
    let family = TreeFamily::parse(name).ok_or_else(|| format!("unknown family `{name}`"))?;
    let n: usize = a.num_or("nodes", 1008usize)?;
    if n == 0 {
        return Err("--nodes must be ≥ 1".into());
    }
    let seed: u64 = a.num_or("seed", 7u64)?;
    Ok((family.generate_seeded(n, seed), family.label()))
}

/// `--traffic MODEL` on `embed`/`simulate`: a scenario traffic model, or
/// `None` when the flag is absent.
fn parse_traffic(a: &Args) -> Result<Option<TrafficModel>, String> {
    match a.get("traffic") {
        Some(label) => TrafficModel::parse(label)
            .ok_or_else(|| format!("unknown traffic model `{label}`"))
            .map(Some),
        None => Ok(None),
    }
}

/// Resolves a `--host` backend for a Theorem-1 embedding: the servable
/// topology sized for the embedding's height, plus the per-guest-node
/// host-vertex map. Heights beyond a backend's cap (the universal graph
/// precomputes a BFS table) are a usage error naming the limit.
fn host_backend(tag: u8, hname: &str, emb: &XEmbedding) -> Result<(AnyHost, Vec<u32>), CliError> {
    let net = AnyHost::for_xtree_height(tag, emb.height).ok_or_else(|| {
        CliError::Usage(format!(
            "--host {hname} is unavailable at X-tree height {} (try a smaller guest)",
            emb.height
        ))
    })?;
    let map = guest_map(tag, emb).expect("tag validated by AnyHost");
    Ok((net, map))
}

/// The Theorem-4 universal-graph backend of `simulate --host universal`.
fn universal_backend(emb: &XEmbedding) -> Result<(AnyHost, Vec<u32>), CliError> {
    host_backend(xtree_sim::host::HOST_UNIVERSAL, "universal", emb)
}

/// `embed --host {xtree,hypercube,universal}`: one Theorem-1 embedding,
/// measured on the selected servable host backend — the CLI face of the
/// host subsystem (dilation = routed distance, congestion = shortest-path
/// link crossings), mirroring what `serve` computes for the same tag.
fn cmd_embed_on_host(
    a: &Args,
    tag: u8,
    hname: &str,
    tree: &BinaryTree,
    family: &str,
) -> Result<String, CliError> {
    let emb = theorem1::embed(tree).emb;
    let (net, map) = host_backend(tag, hname, &emb)?;
    let dilation = tree
        .edges()
        .map(|(p, c)| net.distance(map[p.index()], map[c.index()]))
        .max()
        .unwrap_or(0);
    let max_load = compute_load(&net, tree, &map);
    let cong = congestion(&net, tree, &map).map_err(|e| CliError::Runtime(e.to_string()))?;
    let weighted = match parse_traffic(a)? {
        Some(t) => {
            let demand = t.edge_demand(tree, a.num_or("seed", 7u64)?);
            let w = weighted_congestion(&net, tree, &map, &demand)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            Some((t.label(), w))
        }
        None => None,
    };
    let vertices = net.node_count();
    let expansion = vertices as f64 / tree.len() as f64;
    if a.flag("json") {
        let mut obj = Value::object()
            .with(
                "guest",
                Value::object()
                    .with("family", family)
                    .with("nodes", tree.len()),
            )
            .with("host", hname)
            .with("host_vertices", vertices)
            .with("degree_bound", net.degree_bound())
            .with("dilation", dilation)
            .with("max_load", max_load)
            .with("expansion", expansion)
            .with("injective", max_load <= 1)
            .with("congestion", cong);
        if let Some((label, w)) = &weighted {
            obj.set("traffic", label.as_str());
            obj.set("weighted_congestion", *w);
        }
        if a.flag("map") {
            obj.set("map", map.iter().copied().collect::<Value>());
        }
        Ok(xtree_json::to_string_pretty(&obj))
    } else {
        let mut out = format!(
            "guest: {family} ({} nodes)\nhost: {hname} ({vertices} vertices, degree ≤ {})\ndilation: {dilation}\nload: {max_load}\nexpansion: {expansion:.4}\ninjective: {}\ncongestion: {cong}",
            tree.len(),
            net.degree_bound(),
            max_load <= 1
        );
        if let Some((label, w)) = &weighted {
            out.push_str(&format!("\ntraffic: {label}\nweighted congestion: {w}"));
        }
        Ok(out)
    }
}

fn cmd_embed(a: &Args) -> Result<String, CliError> {
    let (tree, family) = make_tree(a)?;
    if let Some(hname) = a.get("host") {
        if a.get("target").is_some() {
            return Err("--host and --target are mutually exclusive".into());
        }
        let tag = parse_host_label(hname)
            .ok_or_else(|| format!("unknown host `{hname}` (one of {})", HOST_LABELS.join("|")))?;
        if tag != HOST_XTREE {
            return cmd_embed_on_host(a, tag, hname, &tree, &family);
        }
        // `--host xtree` is the default target path below.
    }
    let traffic = parse_traffic(a)?;
    let target = a.get_or("target", "xtree");
    let n = tree.len();
    match target {
        "xtree" | "xtree-injective" => {
            let res = theorem1::embed(&tree);
            let emb = if target == "xtree" {
                res.emb
            } else {
                theorem2::injectivize(&res.emb)
            };
            let stats = evaluate(&tree, &emb);
            let host = XTree::new(emb.height);
            let congestion = metrics::edge_congestion(&tree, &emb, &host);
            // Traffic-weighted congestion over the same host links: each
            // guest edge counts with its scenario demand instead of 1.
            let weighted = match &traffic {
                Some(t) => {
                    let net = Network::xtree(&host);
                    let demand = t.edge_demand(&tree, a.num_or("seed", 7u64)?);
                    let w = weighted_congestion(&net, &tree, &emb, &demand)
                        .map_err(|e| CliError::Runtime(e.to_string()))?;
                    Some((t.label(), w))
                }
                None => None,
            };
            if a.flag("json") {
                let mut obj = Value::object()
                    .with(
                        "guest",
                        Value::object().with("family", family).with("nodes", n),
                    )
                    .with("host", format!("X({})", emb.height))
                    .with("dilation", stats.dilation)
                    .with("max_load", stats.max_load)
                    .with("expansion", stats.expansion)
                    .with("injective", stats.injective)
                    .with("congestion", congestion)
                    .with("condition3_violations", stats.condition3_violations);
                if let Some((label, w)) = &weighted {
                    obj.set("traffic", label.as_str());
                    obj.set("weighted_congestion", *w);
                }
                if a.flag("map") {
                    obj.set(
                        "map",
                        emb.map
                            .iter()
                            .map(|addr| format!("{addr}"))
                            .collect::<Value>(),
                    );
                }
                Ok(xtree_json::to_string_pretty(&obj))
            } else {
                let mut out = format!(
                    "guest: {family} ({n} nodes)\nhost: X({})\ndilation: {}\nload: {}\nexpansion: {:.4}\ninjective: {}\ncongestion: {}",
                    emb.height, stats.dilation, stats.max_load, stats.expansion,
                    stats.injective, congestion
                );
                if let Some((label, w)) = &weighted {
                    out.push_str(&format!("\ntraffic: {label}\nweighted congestion: {w}"));
                }
                Ok(out)
            }
        }
        "hypercube" | "hypercube-injective" => {
            if traffic.is_some() {
                return Err("--traffic supports --target xtree|xtree-injective only".into());
            }
            let q = if target == "hypercube" {
                hypercube::embed_theorem3(&tree)
            } else {
                hypercube::embed_corollary8(&tree)
            };
            if a.flag("json") {
                let mut obj = Value::object()
                    .with(
                        "guest",
                        Value::object().with("family", family).with("nodes", n),
                    )
                    .with("host", format!("Q_{}", q.dim))
                    .with("dilation", q.dilation(&tree))
                    .with("max_load", q.max_load())
                    .with("expansion", q.expansion())
                    .with("injective", q.is_injective());
                if a.flag("map") {
                    obj.set("map", q.map.iter().copied().collect::<Value>());
                }
                Ok(xtree_json::to_string_pretty(&obj))
            } else {
                Ok(format!(
                    "guest: {family} ({n} nodes)\nhost: Q_{}\ndilation: {}\nload: {}\nexpansion: {:.4}\ninjective: {}",
                    q.dim, q.dilation(&tree), q.max_load(), q.expansion(), q.is_injective()
                ))
            }
        }
        other => Err(format!("unknown target `{other}`").into()),
    }
}

/// Failure cycles for `simulate --fault-rate` are drawn from the first
/// `FAULT_WINDOW` cycles, so damage lands while the workloads are running.
const FAULT_WINDOW: u32 = 16;

/// Random link/node failure parameters of `simulate`, `None` when fault
/// injection is off.
struct FaultArgs {
    rate: f64,
    node_rate: f64,
    seed: u64,
    repair_after: Option<u32>,
}

impl FaultArgs {
    fn parse(a: &Args) -> Result<Option<Self>, String> {
        let rate: f64 = a.num_or("fault-rate", 0.0)?;
        let node_rate: f64 = a.num_or("node-fault-rate", 0.0)?;
        for (flag, r) in [("fault-rate", rate), ("node-fault-rate", node_rate)] {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("--{flag}: `{r}` is not within [0, 1]"));
            }
        }
        if rate == 0.0 && node_rate == 0.0 {
            return Ok(None);
        }
        Ok(Some(FaultArgs {
            rate,
            node_rate,
            seed: a.num_or("fault-seed", 0xFA17)?,
            repair_after: a.num_opt("repair-after")?,
        }))
    }

    /// The combined damage schedule: random link failures, plus random
    /// node failures when `--node-fault-rate` is set.
    fn plan(&self, graph: &Csr) -> Result<FaultPlan, String> {
        let mut plan =
            FaultPlan::random_links(graph, self.rate, self.seed, FAULT_WINDOW, self.repair_after)
                .map_err(|e| e.to_string())?;
        if self.node_rate > 0.0 {
            plan = plan.merged(
                FaultPlan::random_nodes(graph, self.node_rate, self.seed, FAULT_WINDOW)
                    .map_err(|e| e.to_string())?,
            );
        }
        Ok(plan)
    }

    /// The human-readable fault line shared by both output paths.
    fn describe(&self) -> String {
        let repairs = match self.repair_after {
            Some(k) => format!("repair after {k}"),
            None => "no repairs".into(),
        };
        let mut s = format!("link fault rate {}", self.rate);
        if self.node_rate > 0.0 {
            s.push_str(&format!(" + node fault rate {}", self.node_rate));
        }
        format!("{s} (seed {}, {repairs})", self.seed)
    }
}

/// Self-healing knobs of `simulate`, `None` when neither `--recover` nor
/// checkpointing was requested.
struct RecoveryArgs<'a> {
    /// True when `--recover` was given: supervise with retry + repair.
    recover: bool,
    policy: RecoveryPolicy,
    checkpoint: Option<&'a str>,
    checkpoint_after: Option<usize>,
}

impl<'a> RecoveryArgs<'a> {
    fn parse(a: &'a Args) -> Result<Option<Self>, String> {
        let recover = a.flag("recover");
        let checkpoint = a.get("checkpoint");
        let checkpoint_after = a.num_opt::<usize>("checkpoint-after")?;
        if !recover && checkpoint.is_none() {
            if checkpoint_after.is_some() {
                return Err("--checkpoint-after requires --checkpoint FILE".into());
            }
            if a.get("max-retries").is_some() || a.get("backoff").is_some() {
                return Err("--max-retries/--backoff require --recover".into());
            }
            return Ok(None);
        }
        if checkpoint_after.is_some() && checkpoint.is_none() {
            return Err("--checkpoint-after requires --checkpoint FILE".into());
        }
        let default = RecoveryPolicy::default();
        let policy = RecoveryPolicy {
            max_retries: a.num_or("max-retries", default.max_retries)?,
            backoff: match a.get("backoff") {
                Some(spec) => parse_backoff(spec)?,
                None => default.backoff,
            },
            ..default
        };
        Ok(Some(RecoveryArgs {
            recover,
            policy,
            checkpoint,
            checkpoint_after,
        }))
    }
}

fn parse_backoff(spec: &str) -> Result<Backoff, String> {
    let bad = || format!("--backoff: `{spec}` is not fixed:K or exp:BASE:CAP");
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["fixed", k] => k.parse().map(Backoff::Fixed).map_err(|_| bad()),
        ["exp", b, c] => {
            let base = b.parse().map_err(|_| bad())?;
            let cap = c.parse().map_err(|_| bad())?;
            Ok(Backoff::Exponential { base, cap })
        }
        _ => Err(bad()),
    }
}

fn backoff_str(b: Backoff) -> String {
    match b {
        Backoff::Fixed(k) => format!("fixed:{k}"),
        Backoff::Exponential { base, cap } => format!("exp:{base}:{cap}"),
    }
}

/// Telemetry outputs of `simulate`, `None` when no telemetry flag was
/// given (the zero-overhead `NopSink` path).
struct TelemetryArgs<'a> {
    trace: Option<&'a str>,
    metrics: Option<&'a str>,
    format: &'a str,
    verify: Option<&'a str>,
}

impl<'a> TelemetryArgs<'a> {
    fn parse(a: &'a Args) -> Result<Option<Self>, String> {
        let format = a.get_or("metrics-format", "jsonl");
        if !["jsonl", "prom"].contains(&format) {
            return Err(format!(
                "--metrics-format: `{format}` is not one of jsonl|prom"
            ));
        }
        let t = TelemetryArgs {
            trace: a.get("trace"),
            metrics: a.get("metrics"),
            format,
            verify: a.get("verify-trace"),
        };
        Ok((t.trace.is_some() || t.metrics.is_some() || t.verify.is_some()).then_some(t))
    }
}

/// What the user sees after a traced/metered run: the one-line summary in
/// text mode, a `"telemetry"` object in `--json` mode.
struct TelemetrySummary {
    events: u64,
    trace_bytes: usize,
    /// Top edges by hop count, as `(from, to, hops)`.
    hottest: Vec<(u32, u32, u64)>,
    verified: bool,
}

impl TelemetrySummary {
    fn line(&self) -> String {
        let hottest = if self.hottest.is_empty() {
            "none".to_string()
        } else {
            self.hottest
                .iter()
                .map(|&(u, v, h)| format!("{u}->{v} x{h}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "telemetry: {} events, {} trace bytes, hottest links: {hottest}{}",
            self.events,
            self.trace_bytes,
            if self.verified {
                " (replay verified)"
            } else {
                ""
            }
        )
    }

    fn to_json(&self) -> Value {
        Value::object()
            .with("events", self.events)
            .with("trace_bytes", self.trace_bytes)
            .with(
                "hottest_links",
                self.hottest
                    .iter()
                    .map(|&(u, v, h)| {
                        Value::object()
                            .with("from", u)
                            .with("to", v)
                            .with("hops", h)
                    })
                    .collect::<Value>(),
            )
            .with("replay_verified", self.verified)
    }
}

/// `simulate` output rows: fault-free or degraded-delivery reports.
enum Reports {
    Plain(Vec<SimReport>),
    Faulted(Vec<FaultSimReport>),
}

fn simulate_reports<H: Host, M: HostMap + Sync, S: Sink>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
    faults: &Option<FaultArgs>,
    sink: &mut S,
) -> Result<Reports, CliError> {
    match faults {
        // No faults requested: the plan-free path, bit-identical to the
        // pre-fault simulator.
        None => Ok(Reports::Plain(
            simulate_all_with(net, tree, emb, sink)
                .map_err(|e| CliError::Runtime(e.to_string()))?,
        )),
        Some(f) => {
            let plan = f.plan(net.csr())?;
            Ok(Reports::Faulted(
                simulate_all_faulted_with(net, tree, emb, &plan, sink)
                    .map_err(|e| CliError::Runtime(e.to_string()))?,
            ))
        }
    }
}

/// Runs the workloads, threading a trace recorder + metrics sink through
/// the engine when any telemetry flag is present and writing/verifying the
/// requested files afterwards. `Sink` dispatch is static, so the
/// no-telemetry path monomorphizes to the uninstrumented loop.
fn simulate_telemetry<H: Host, M: HostMap + Sync>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
    faults: &Option<FaultArgs>,
    tel: &Option<TelemetryArgs>,
) -> Result<(Reports, Option<TelemetrySummary>), CliError> {
    let Some(t) = tel else {
        return Ok((
            simulate_reports(net, tree, emb, faults, &mut NopSink)?,
            None,
        ));
    };
    let mut rec = TraceRecorder::new();
    let mut met = MetricsSink::new();
    let reports = simulate_reports(net, tree, emb, faults, &mut Tee(&mut rec, &mut met))?;
    let summary = finish_telemetry(net, t, &rec, &mut met)?;
    Ok((reports, Some(summary)))
}

/// Writes/verifies the telemetry files a run asked for and distils the
/// user-facing summary. Shared by the plain, supervised, and resumed
/// simulation paths.
fn finish_telemetry<H: Host>(
    net: &H,
    t: &TelemetryArgs,
    rec: &TraceRecorder,
    met: &mut MetricsSink,
) -> Result<TelemetrySummary, CliError> {
    met.finish();
    if let Some(path) = t.trace {
        std::fs::write(path, rec.bytes())
            .map_err(|e| CliError::Io(format!("--trace {path}: {e}")))?;
    }
    let mut verified = false;
    if let Some(path) = t.verify {
        let prior =
            std::fs::read(path).map_err(|e| CliError::Io(format!("--verify-trace {path}: {e}")))?;
        if prior != rec.bytes() {
            return Err(CliError::Runtime(format!(
                "--verify-trace {path}: replay mismatch (recorded {} bytes, file holds {})",
                rec.bytes().len(),
                prior.len()
            )));
        }
        verified = true;
    }
    if let Some(path) = t.metrics {
        let body = match t.format {
            "prom" => met.to_prometheus(),
            _ => met.to_jsonl(),
        };
        std::fs::write(path, body).map_err(|e| CliError::Io(format!("--metrics {path}: {e}")))?;
    }
    // Resolve the hottest directed edge indices back to endpoint pairs.
    let graph = net.csr();
    let mut ends = vec![(0u32, 0u32); graph.directed_edge_count()];
    for v in 0..graph.node_count() {
        for (e, to) in graph.out_edges(v) {
            ends[e as usize] = (v as u32, to);
        }
    }
    let hottest = met
        .hottest_edges(3)
        .into_iter()
        .map(|(e, h)| (ends[e as usize].0, ends[e as usize].1, h))
        .collect();
    Ok(TelemetrySummary {
        events: rec.event_count(),
        trace_bytes: rec.bytes().len(),
        hottest,
        verified,
    })
}

fn cmd_simulate(a: &Args) -> Result<String, CliError> {
    let (tree, family) = make_tree(a)?;
    let host = a.get_or("host", "xtree");
    let workload = a.get_or("workload", "all");
    if !["all", "broadcast", "reduce", "exchange", "dnc"].contains(&workload) {
        return Err(format!("unknown workload `{workload}`").into());
    }
    let traffic = parse_traffic(a)?;
    let faults = FaultArgs::parse(a)?;
    let tel = TelemetryArgs::parse(a)?;
    if let Some(rec) = RecoveryArgs::parse(a)? {
        if host != "xtree" {
            return Err("--recover/--checkpoint currently support --host xtree only".into());
        }
        if traffic.is_some() {
            return Err("--traffic is not supported with --recover/--checkpoint".into());
        }
        return cmd_simulate_session(a, &tree, &family, &faults, &tel, &rec);
    }
    // Both hosts route in closed form (no routing tables), so there is no
    // host-size cap here: the guest size is limited only by memory.
    let mut weighted: Option<(String, u64)> = None;
    let (reports, telemetry) = match host {
        "xtree" => {
            let emb = theorem1::embed(&tree).emb;
            let net = Network::xtree(&XTree::new(emb.height));
            if let Some(t) = &traffic {
                let demand = t.edge_demand(&tree, a.num_or("seed", 7u64)?);
                let w = weighted_congestion(&net, &tree, &emb, &demand)
                    .map_err(|e| CliError::Runtime(e.to_string()))?;
                weighted = Some((t.label(), w));
            }
            simulate_telemetry(&net, &tree, &emb, &faults, &tel)?
        }
        "hypercube" => {
            if traffic.is_some() {
                return Err("--traffic supports --host xtree only".into());
            }
            let q = hypercube::embed_theorem3(&tree);
            let net = Network::hypercube(&Hypercube::new(q.dim));
            simulate_telemetry(&net, &tree, &q, &faults, &tel)?
        }
        "universal" => {
            if traffic.is_some() {
                return Err("--traffic supports --host xtree only".into());
            }
            let emb = theorem1::embed(&tree).emb;
            let (net, map) = universal_backend(&emb)?;
            simulate_telemetry(&net, &tree, &map, &faults, &tel)?
        }
        other => return Err(format!("unknown host `{other}`").into()),
    };
    let keep = |w: &str| workload == "all" || w == workload;
    match reports {
        Reports::Plain(reports) => {
            let reports: Vec<_> = reports.into_iter().filter(|r| keep(r.workload)).collect();
            if reports.is_empty() {
                return Err(format!("unknown workload `{workload}`").into());
            }
            if a.flag("json") {
                let rows: Value = reports
                    .iter()
                    .map(|r| {
                        Value::object()
                            .with("workload", r.workload)
                            .with("cycles", r.cycles)
                            .with("ideal_cycles", r.ideal_cycles)
                            .with("worst_round_slowdown", r.worst_round_slowdown)
                            .with("max_link_traffic", r.max_link_traffic)
                    })
                    .collect();
                let mut doc = Value::object()
                    .with(
                        "guest",
                        Value::object()
                            .with("family", family.as_str())
                            .with("nodes", tree.len()),
                    )
                    .with("host", host)
                    .with("reports", rows);
                if let Some((label, w)) = &weighted {
                    doc.set("traffic", label.as_str());
                    doc.set("weighted_congestion", *w);
                }
                if let Some(s) = &telemetry {
                    doc.set("telemetry", s.to_json());
                }
                Ok(xtree_json::to_string_pretty(&doc))
            } else {
                let mut out = format!("guest: {family} ({} nodes) on {host}\n", tree.len());
                if let Some((label, w)) = &weighted {
                    out.push_str(&format!("traffic {label}: weighted congestion {w}\n"));
                }
                out.push_str(&format!(
                    "{:<10} {:>8} {:>8} {:>9} {:>13}\n",
                    "workload", "cycles", "ideal", "slowdown", "link traffic"
                ));
                for r in reports {
                    out.push_str(&format!(
                        "{:<10} {:>8} {:>8} {:>8.2}x {:>13}\n",
                        r.workload,
                        r.cycles,
                        r.ideal_cycles,
                        r.cycles as f64 / r.ideal_cycles.max(1) as f64,
                        r.max_link_traffic
                    ));
                }
                if let Some(s) = &telemetry {
                    out.push_str(&s.line());
                    out.push('\n');
                }
                Ok(out.trim_end().to_string())
            }
        }
        Reports::Faulted(reports) => {
            let Some(f) = faults.as_ref() else {
                return Err("internal error: faulted reports without fault parameters".into());
            };
            let reports: Vec<_> = reports.into_iter().filter(|r| keep(r.workload)).collect();
            if reports.is_empty() {
                return Err(format!("unknown workload `{workload}`").into());
            }
            if a.flag("json") {
                let rows: Value = reports
                    .iter()
                    .map(|r| {
                        Value::object()
                            .with("workload", r.workload)
                            .with("cycles", r.cycles)
                            .with("ideal_cycles", r.ideal_cycles)
                            .with("messages", r.messages)
                            .with("delivered", r.delivered)
                            .with("stranded", r.stranded)
                            .with("delivery_rate", r.delivery_rate())
                            .with("stalled", r.stalled)
                    })
                    .collect();
                let fault = Value::object()
                    .with("rate", f.rate)
                    .with("node_rate", f.node_rate)
                    .with("seed", f.seed)
                    .with("window", FAULT_WINDOW)
                    .with(
                        "repair_after",
                        f.repair_after.map_or(Value::Null, Value::from),
                    );
                let mut doc = Value::object()
                    .with(
                        "guest",
                        Value::object()
                            .with("family", family.as_str())
                            .with("nodes", tree.len()),
                    )
                    .with("host", host)
                    .with("fault", fault)
                    .with("reports", rows);
                if let Some((label, w)) = &weighted {
                    doc.set("traffic", label.as_str());
                    doc.set("weighted_congestion", *w);
                }
                if let Some(s) = &telemetry {
                    doc.set("telemetry", s.to_json());
                }
                Ok(xtree_json::to_string_pretty(&doc))
            } else {
                let mut out = format!(
                    "guest: {family} ({} nodes) on {host}, {}\n",
                    tree.len(),
                    f.describe()
                );
                if let Some((label, w)) = &weighted {
                    out.push_str(&format!("traffic {label}: weighted congestion {w}\n"));
                }
                out.push_str(&format!(
                    "{:<10} {:>8} {:>8} {:>9} {:>11} {:>9} {:>8}\n",
                    "workload", "cycles", "ideal", "slowdown", "delivered", "stranded", "stalled"
                ));
                for r in reports {
                    out.push_str(&format!(
                        "{:<10} {:>8} {:>8} {:>8.2}x {:>5}/{:<5} {:>9} {:>8}\n",
                        r.workload,
                        r.cycles,
                        r.ideal_cycles,
                        r.cycles as f64 / r.ideal_cycles.max(1) as f64,
                        r.delivered,
                        r.messages,
                        r.stranded,
                        if r.stalled { "yes" } else { "no" }
                    ));
                }
                if let Some(s) = &telemetry {
                    out.push_str(&s.line());
                    out.push('\n');
                }
                Ok(out.trim_end().to_string())
            }
        }
    }
}

/// The supervised (`--recover`) / checkpointed (`--checkpoint`) simulate
/// path: the four workloads driven through a resumable [`Session`].
fn cmd_simulate_session(
    a: &Args,
    tree: &BinaryTree,
    family: &str,
    faults: &Option<FaultArgs>,
    tel: &Option<TelemetryArgs>,
    rec: &RecoveryArgs,
) -> Result<String, CliError> {
    let emb = theorem1::embed(tree).emb;
    let net = Network::xtree(&XTree::new(emb.height));
    let plan = match faults {
        Some(f) => f.plan(net.graph())?,
        None => FaultPlan::new(),
    };
    let policy = rec.recover.then(|| rec.policy.clone());
    let config = run_config(a, family, rec)?;
    let mut session = Session::new(&net, tree, emb, plan, policy);
    let mut trace = TraceRecorder::new();
    let mut met = MetricsSink::new();
    let budget = rec.checkpoint_after.unwrap_or(usize::MAX);
    let status = session
        .run_with(budget, &mut Tee(&mut trace, &mut met))
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    if let Some(path) = rec.checkpoint {
        let ck = Checkpoint {
            session: session.snapshot(),
            embedding: session.embedding().clone(),
            config,
            trace: trace.bytes().to_vec(),
        };
        let bytes = encode_checkpoint(&ck);
        met.record(Event::CheckpointWritten {
            bytes: bytes.len() as u64,
        });
        std::fs::write(path, &bytes)
            .map_err(|e| CliError::Io(format!("--checkpoint {path}: {e}")))?;
        if status == SessionStatus::Paused {
            // The trace so far lives inside the checkpoint; a resumed run
            // appends to it, so no partial telemetry files are written.
            return Ok(if a.flag("json") {
                xtree_json::to_string_pretty(
                    &Value::object()
                        .with("status", "paused")
                        .with("checkpoint", path)
                        .with("bytes", bytes.len())
                        .with("rounds_run", rec.checkpoint_after.unwrap_or(0)),
                )
            } else {
                format!(
                    "checkpoint: {path} written after {} rounds ({} bytes); \
                     continue with `xtree-cli resume {path}`",
                    rec.checkpoint_after.unwrap_or(0),
                    bytes.len()
                )
            });
        }
    }
    let telemetry = match tel {
        Some(t) => Some(finish_telemetry(&net, t, &trace, &mut met)?),
        None => None,
    };
    let origin = match faults {
        Some(f) => f.describe(),
        None => "no faults".into(),
    };
    session_output(
        a,
        family,
        tree.len(),
        &origin,
        session.reports(),
        session.totals(),
        rec.recover,
        telemetry.as_ref(),
    )
}

/// The config blob stored inside a checkpoint: exactly what `resume` needs
/// to rebuild the guest tree and the recovery policy.
fn run_config(a: &Args, family: &str, rec: &RecoveryArgs) -> Result<String, String> {
    Ok(xtree_json::to_string(
        &Value::object()
            .with("family", family)
            .with("nodes", a.num_or("nodes", 1008usize)?)
            .with("seed", a.num_or("seed", 7u64)?)
            .with("recover", rec.recover)
            .with("max_retries", rec.policy.max_retries)
            .with("backoff", backoff_str(rec.policy.backoff)),
    ))
}

/// Renders a finished session: the faulted-style delivery table plus the
/// recovery totals line (and `"recovery"` JSON object) when supervised.
#[allow(clippy::too_many_arguments)]
fn session_output(
    a: &Args,
    family: &str,
    nodes: usize,
    origin: &str,
    reports: &[FaultSimReport],
    totals: RecoveryTotals,
    recovered: bool,
    telemetry: Option<&TelemetrySummary>,
) -> Result<String, CliError> {
    let workload = a.get_or("workload", "all");
    let keep = |w: &str| workload == "all" || w == workload;
    let reports: Vec<&FaultSimReport> = reports.iter().filter(|r| keep(r.workload)).collect();
    if reports.is_empty() {
        return Err(format!("unknown workload `{workload}`").into());
    }
    let all_delivered = reports
        .iter()
        .all(|r| r.delivered == r.messages && !r.stalled);
    if a.flag("json") {
        let rows: Value = reports
            .iter()
            .map(|r| {
                Value::object()
                    .with("workload", r.workload)
                    .with("cycles", r.cycles)
                    .with("ideal_cycles", r.ideal_cycles)
                    .with("messages", r.messages)
                    .with("delivered", r.delivered)
                    .with("stranded", r.stranded)
                    .with("delivery_rate", r.delivery_rate())
                    .with("stalled", r.stalled)
            })
            .collect();
        let mut doc = Value::object()
            .with(
                "guest",
                Value::object().with("family", family).with("nodes", nodes),
            )
            .with("host", "xtree")
            .with("run", origin)
            .with("reports", rows);
        if recovered {
            doc.set(
                "recovery",
                Value::object()
                    .with("retries", totals.retries)
                    .with("requeued", totals.requeued)
                    .with("migrated", totals.migrated)
                    .with("unreachable", totals.stranded)
                    .with("all_delivered", all_delivered),
            );
        }
        if let Some(s) = telemetry {
            doc.set("telemetry", s.to_json());
        }
        Ok(xtree_json::to_string_pretty(&doc))
    } else {
        let mut out = format!("guest: {family} ({nodes} nodes) on xtree, {origin}\n");
        out.push_str(&format!(
            "{:<10} {:>8} {:>8} {:>9} {:>11} {:>9} {:>8}\n",
            "workload", "cycles", "ideal", "slowdown", "delivered", "stranded", "stalled"
        ));
        for r in reports {
            out.push_str(&format!(
                "{:<10} {:>8} {:>8} {:>8.2}x {:>5}/{:<5} {:>9} {:>8}\n",
                r.workload,
                r.cycles,
                r.ideal_cycles,
                r.cycles as f64 / r.ideal_cycles.max(1) as f64,
                r.delivered,
                r.messages,
                r.stranded,
                if r.stalled { "yes" } else { "no" }
            ));
        }
        if recovered {
            out.push_str(&format!(
                "recovery: {} retries, {} requeued, {} guests migrated, {} unreachable{}\n",
                totals.retries,
                totals.requeued,
                totals.migrated,
                totals.stranded,
                if all_delivered { ", all delivered" } else { "" }
            ));
        }
        if let Some(s) = telemetry {
            out.push_str(&s.line());
            out.push('\n');
        }
        Ok(out.trim_end().to_string())
    }
}

/// `resume FILE`: continue a checkpointed run to completion, appending to
/// the trace stream stored inside the checkpoint.
fn cmd_resume(a: &Args) -> Result<String, CliError> {
    let path = a
        .get("from")
        .ok_or("resume: missing checkpoint path (usage: xtree-cli resume FILE)")?;
    let bytes = std::fs::read(path).map_err(|e| CliError::Io(format!("resume {path}: {e}")))?;
    let ck =
        decode_checkpoint(&bytes).map_err(|e| CliError::Runtime(format!("resume {path}: {e}")))?;
    let cfg = xtree_json::from_str(&ck.config)
        .map_err(|e| format!("resume {path}: bad config blob: {e}"))?;
    let family_name = cfg["family"]
        .as_str()
        .ok_or("resume: config lacks `family`")?
        .to_string();
    let nodes = cfg["nodes"]
        .as_u64()
        .ok_or("resume: config lacks `nodes`")? as usize;
    let seed = cfg["seed"].as_u64().ok_or("resume: config lacks `seed`")?;
    let recover = cfg["recover"].as_bool().unwrap_or(false);
    let policy = if recover {
        let default = RecoveryPolicy::default();
        Some(RecoveryPolicy {
            max_retries: cfg["max_retries"].as_u64().unwrap_or(8) as u32,
            backoff: match cfg["backoff"].as_str() {
                Some(spec) => parse_backoff(spec)?,
                None => default.backoff,
            },
            ..default
        })
    } else {
        None
    };
    let family = TreeFamily::parse(&family_name)
        .ok_or_else(|| format!("resume: unknown family `{family_name}` in checkpoint"))?;
    let tree = family.generate_seeded(nodes, seed);
    let net = Network::xtree(&XTree::new(ck.embedding.height));
    let mut trace = TraceRecorder::resume(ck.trace)
        .map_err(|e| CliError::Runtime(format!("resume {path}: trace: {e}")))?;
    let mut met = MetricsSink::new();
    let mut session = Session::resume(&net, &tree, ck.embedding, policy, &ck.session)
        .map_err(|e| CliError::Runtime(format!("resume {path}: {e}")))?;
    session
        .run_with(usize::MAX, &mut Tee(&mut trace, &mut met))
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let tel = TelemetryArgs::parse(a)?;
    let telemetry = match &tel {
        Some(t) => Some(finish_telemetry(&net, t, &trace, &mut met)?),
        None => None,
    };
    let origin = format!("resumed from {path}");
    session_output(
        a,
        &family.label(),
        nodes,
        &origin,
        session.reports(),
        session.totals(),
        recover,
        telemetry.as_ref(),
    )
}

fn cmd_info(a: &Args) -> Result<String, CliError> {
    let r: u8 = a.num_or("height", 3u8)?;
    // X-tree and hypercube stats are closed-form; 30 keeps the vertex
    // counts inside u64 arithmetic and graph construction affordable.
    if r > 30 {
        return Err("--height must be ≤ 30".into());
    }
    let network = a.get_or("network", "xtree");
    let (name, nodes, edges, degree, diameter) = match network {
        "xtree" => {
            // Everything here is closed-form (verified against the built
            // graph in the tests below), so heights past the construction
            // limit still answer instantly.
            let d = if r == 0 { 0 } else { 2 * u32::from(r) - 1 };
            let degree = match r {
                0 => 0,
                1 => 2,
                2 => 4,
                _ => 5,
            };
            (
                format!("X({r})"),
                xtree_topology::xtree::xtree_node_count(r),
                xtree_topology::xtree::xtree_edge_count(r),
                degree,
                d,
            )
        }
        "hypercube" => {
            let n = 1usize << r;
            (
                format!("Q_{r}"),
                n,
                usize::from(r) * (n >> 1),
                usize::from(r),
                u32::from(r),
            )
        }
        "ccc" => {
            let r = r.clamp(3, 10); // keep the exact BFS diameter affordable
            let c = CubeConnectedCycles::new(r);
            (
                format!("CCC({r})"),
                c.node_count(),
                c.edge_count(),
                c.max_degree(),
                c.graph().diameter(),
            )
        }
        "butterfly" => {
            let r = r.clamp(1, 10);
            let b = Butterfly::new(r);
            (
                format!("BF({r})"),
                b.node_count(),
                b.edge_count(),
                b.max_degree(),
                b.graph().diameter(),
            )
        }
        "mesh" => {
            let k = 1usize << r.min(6);
            let m = Mesh2D::new(k, k);
            (
                format!("mesh {k}x{k}"),
                m.node_count(),
                m.edge_count(),
                m.max_degree(),
                2 * (k as u32 - 1),
            )
        }
        other => return Err(format!("unknown network `{other}`").into()),
    };
    let mut out = format!(
        "{name}: {nodes} vertices, {edges} edges, max degree {degree}, diameter {diameter}"
    );
    if network == "xtree" && r <= 5 {
        out.push('\n');
        out.push_str(&XTree::new(r).render_ascii());
    }
    Ok(out.trim_end().to_string())
}

fn cmd_trace(a: &Args) -> Result<String, CliError> {
    let (tree, family) = make_tree(a)?;
    let res = theorem1::embed(&tree);
    let r = res.emb.height;
    let mut out = format!(
        "guest: {family} ({} nodes), host X({r}) — Δ(j, i) measured/bound\n",
        tree.len()
    );
    out.push_str(&format!("{:>6}", ""));
    for j in 0..=r {
        out.push_str(&format!("{:>12}", format!("j={j}")));
    }
    out.push('\n');
    for (idx, row) in res.trace.iter().enumerate() {
        let i = idx as u8 + 1;
        out.push_str(&format!("{:>6}", format!("i={i}")));
        for (j, &m) in row.iter().enumerate() {
            let cell = match theorem1::paper_bound(r, j as u8, i) {
                Some(b) => format!("{m}/{b}"),
                None => format!("{m}/-"),
            };
            out.push_str(&format!("{cell:>12}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("log: {:?}", res.log));
    Ok(out)
}

/// `--chaos-seed S [--chaos-profile P]` on `serve`/`cluster`: the seeded
/// fault-injection plan, or `None` when the seed flag is absent.
fn parse_chaos(a: &Args) -> Result<Option<xtree_server::ChaosPlan>, CliError> {
    let Some(seed) = a.get("chaos-seed") else {
        if a.get("chaos-profile").is_some() {
            return Err("--chaos-profile requires --chaos-seed".into());
        }
        return Ok(None);
    };
    let seed: u64 = seed
        .parse()
        .map_err(|_| format!("--chaos-seed: `{seed}` is not a number"))?;
    let profile = xtree_server::ChaosProfile::parse(a.get_or("chaos-profile", "medium"))
        .map_err(|e| CliError::Usage(format!("--chaos-profile: {e}")))?;
    Ok(Some(xtree_server::ChaosPlan::new(seed, profile)))
}

/// `--io-timeout-ms T`: per-direction socket timeout for server-side
/// connections; 0 (the default) keeps blocking I/O.
fn parse_io_timeout(a: &Args) -> Result<Option<Duration>, CliError> {
    let ms: u64 = a.num_or("io-timeout-ms", 0u64)?;
    Ok((ms > 0).then(|| Duration::from_millis(ms)))
}

/// `serve`: run the daemon until a wire `Shutdown` request drains it.
/// The listening line goes to stdout (flushed) *before* blocking, so
/// scripts can wait for readiness; the returned summary prints after the
/// drain. `--metrics FILE` writes the final server metrics on the way out.
fn cmd_serve(a: &Args) -> Result<String, CliError> {
    let host_name = a.get_or("host", "xtree");
    let default_host = parse_host_label(host_name).ok_or_else(|| {
        format!(
            "unknown host `{host_name}` (one of {})",
            HOST_LABELS.join("|")
        )
    })?;
    let config = ServerConfig {
        addr: a.get_or("addr", "127.0.0.1:7171").to_string(),
        workers: a.num_or("workers", 4usize)?,
        queue_cap: a.num_or("queue-cap", 64usize)?,
        cache_cap: a.num_or("cache-cap", 256usize)?,
        io_timeout: parse_io_timeout(a)?,
        chaos: parse_chaos(a)?,
        default_host,
    };
    if config.workers == 0 {
        return Err("--workers must be ≥ 1".into());
    }
    if config.queue_cap == 0 {
        return Err("--queue-cap must be ≥ 1".into());
    }
    let format = a.get_or("metrics-format", "jsonl");
    if !["jsonl", "prom"].contains(&format) {
        return Err(format!("--metrics-format: `{format}` is not one of jsonl|prom").into());
    }
    let metrics_path = a.get("metrics");
    let mut server = Server::spawn(&config)
        .map_err(|e| CliError::Io(format!("serve: bind {}: {e}", config.addr)))?;
    {
        use std::io::Write;
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(
            stdout,
            "xtree-server listening on {} ({} workers, queue {}, cache {}, host {host_name})",
            server.local_addr(),
            config.workers,
            config.queue_cap,
            config.cache_cap
        );
        let _ = stdout.flush();
    }
    server.wait();
    if let Some(path) = metrics_path {
        let body = match format {
            "prom" => server.prometheus(),
            _ => server.jsonl(),
        };
        std::fs::write(path, body).map_err(|e| CliError::Io(format!("--metrics {path}: {e}")))?;
    }
    Ok(format!(
        "xtree-server drained and stopped ({} requests bounced overloaded)",
        server.overloaded()
    ))
}

/// `cluster`: spawn M shard daemons as child processes on ephemeral
/// ports, put the consistent-hash router in front of them, and supervise
/// until a wire `Shutdown` drains the whole tier. Readiness lines (one
/// per shard, then the router's) go to stdout flushed *before* blocking,
/// so scripts — and the CI kill-a-shard smoke — can scrape pids, shard
/// addresses, and the router address.
fn cmd_cluster(a: &Args) -> Result<String, CliError> {
    let shards: usize = a.num_or("shards", 2usize)?;
    if !(1..=64).contains(&shards) {
        return Err("--shards must be within 1..=64".into());
    }
    let workers: usize = a.num_or("workers", 4usize)?;
    let queue_cap: usize = a.num_or("queue-cap", 64usize)?;
    let cache_cap: usize = a.num_or("cache-cap", 256usize)?;
    if workers == 0 {
        return Err("--workers must be ≥ 1".into());
    }
    if queue_cap == 0 {
        return Err("--queue-cap must be ≥ 1".into());
    }
    let probe_ms: u64 = a.num_or("probe-interval-ms", 100u64)?;
    if probe_ms == 0 {
        return Err("--probe-interval-ms must be ≥ 1".into());
    }
    let fail_after: u32 = a.num_or("fail-after", 3u32)?;
    if fail_after == 0 {
        return Err("--fail-after must be ≥ 1".into());
    }
    let replay = ReconnectPolicy {
        max_retries: a.num_or("max-retries", 8u32)?,
        backoff: parse_backoff(a.get_or("backoff", "exp:25:800"))?,
    };
    let restart_backoff = parse_backoff(a.get_or("restart-backoff", "fixed:100"))?;
    let format = a.get_or("metrics-format", "jsonl");
    if !["jsonl", "prom"].contains(&format) {
        return Err(format!("--metrics-format: `{format}` is not one of jsonl|prom").into());
    }
    let metrics_path = a.get("metrics");

    // Validate the chaos/timeout flags up front, then forward them
    // verbatim into every shard child: the *shards'* transports misbehave
    // while the router stays honest, which is the failover scenario the
    // cluster tier exists for.
    let chaos = parse_chaos(a)?;
    let io_timeout = parse_io_timeout(a)?;
    let exe = std::env::current_exe()
        .map_err(|e| CliError::Io(format!("cluster: cannot locate own binary: {e}")))?;
    let mut shard_args: Vec<String> = [
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        &workers.to_string(),
        "--queue-cap",
        &queue_cap.to_string(),
        "--cache-cap",
        &cache_cap.to_string(),
    ]
    .map(String::from)
    .to_vec();
    if io_timeout.is_some() {
        shard_args.extend([
            "--io-timeout-ms".into(),
            a.get_or("io-timeout-ms", "0").to_string(),
        ]);
    }
    if let Some(plan) = &chaos {
        shard_args.extend([
            "--chaos-seed".into(),
            plan.seed.to_string(),
            "--chaos-profile".into(),
            a.get_or("chaos-profile", "medium").to_string(),
        ]);
    }
    let cmd = ShardCommand {
        program: exe,
        args: shard_args,
    };
    let readiness = Duration::from_secs(10);
    let mut children = Vec::with_capacity(shards);
    {
        use std::io::Write;
        let mut stdout = std::io::stdout().lock();
        for i in 0..shards {
            let child = spawn_shard(&cmd, readiness)
                .map_err(|e| CliError::Io(format!("cluster: shard {i}: {e}")))?;
            let _ = writeln!(
                stdout,
                "shard {i}: pid {} listening on {}",
                child.pid, child.addr
            );
            children.push(child);
        }
        let _ = stdout.flush();
    }
    let config = RouterConfig {
        addr: a.get_or("addr", "127.0.0.1:7170").to_string(),
        shards: children.iter().map(|c| c.addr).collect(),
        ring_seed: a.num_or("ring-seed", 1991u64)?,
        vnodes: a.num_or("vnodes", HashRing::DEFAULT_VNODES)?,
        probe_interval: Duration::from_millis(probe_ms),
        fail_after,
        replay,
    };
    let mut router = Router::spawn(&config)
        .map_err(|e| CliError::Io(format!("cluster: bind {}: {e}", config.addr)))?;
    let supervisor = Supervisor::spawn(
        children,
        cmd,
        router.shard_set(),
        router.metrics(),
        restart_backoff,
        readiness,
        Some(router.warmup_fn()),
    );
    router.attach_supervisor(supervisor);
    {
        use std::io::Write;
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(
            stdout,
            "xtree-cluster router listening on {} ({} shards, {} vnodes, fail after {})",
            router.local_addr(),
            shards,
            config.vnodes,
            fail_after
        );
        let _ = stdout.flush();
    }
    let metrics = router.metrics();
    router.wait();
    if let Some(path) = metrics_path {
        let body = match format {
            "prom" => metrics.to_prometheus(),
            _ => metrics.to_jsonl(),
        };
        std::fs::write(path, body).map_err(|e| CliError::Io(format!("--metrics {path}: {e}")))?;
    }
    Ok(format!(
        "xtree-cluster drained and stopped ({} replayed, {} restarts, {} unreachable)",
        metrics.replayed_total(),
        metrics.restarts_total(),
        metrics.unreachable_total()
    ))
}

/// Resolves `--workload W|all` to the wire's workload byte.
fn wire_workload(name: &str) -> Result<u8, CliError> {
    if name == "all" {
        return Ok(xtree_server::WORKLOAD_ALL);
    }
    WORKLOADS
        .iter()
        .position(|&w| w == name)
        .map(|i| i as u8)
        .ok_or_else(|| CliError::Usage(format!("unknown workload `{name}`")))
}

/// `request OP`: one call against a running daemon. Server-side failures
/// (`Overloaded`, `Error`) exit nonzero so shell pipelines can react.
fn cmd_request(a: &Args) -> Result<String, CliError> {
    let op = a
        .get("op")
        .ok_or("request: missing operation (usage: xtree-cli request OP --addr HOST:PORT)")?;
    let addr = a.get("addr").ok_or("request: missing --addr HOST:PORT")?;
    let family_name = a.get_or("family", "random-bst");
    let family = TreeFamily::ALL
        .iter()
        .position(|f| f.name() == family_name)
        .ok_or_else(|| CliError::Usage(format!("unknown family `{family_name}`")))?
        as u8;
    let nodes: u64 = a.num_or("nodes", 1008u64)?;
    let seed: u64 = a.num_or("seed", 7u64)?;
    let theorem: u8 = a.num_or("theorem", 1u8)?;
    let req = match op {
        "embed" => Request::Embed {
            family,
            nodes,
            seed,
            theorem,
        },
        "simulate" => Request::Simulate {
            family,
            nodes,
            seed,
            theorem,
            workload: wire_workload(a.get_or("workload", "all"))?,
        },
        "stats" => Request::Stats,
        "health" => Request::Health,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown request op `{other}`").into()),
    };
    let deadline_ms: u64 = a.num_or("deadline-ms", 0u64)?;
    let budget = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    // Absent flag = no trailing host field on the wire (the server picks
    // its own default), so pre-host invocations send pre-host bytes.
    let host = match a.get("host") {
        Some(h) => Some(
            parse_host_label(h)
                .ok_or_else(|| format!("unknown host `{h}` (one of {})", HOST_LABELS.join("|")))?,
        ),
        None => None,
    };
    let mut client =
        Client::connect(addr).map_err(|e| CliError::Io(format!("request: connect {addr}: {e}")))?;
    let resp = client
        .call_host(&req, budget, host)
        .map_err(|e| CliError::Runtime(format!("request: {e}")))?;
    render_response(a, &resp)
}

/// The name a wire workload byte prints as.
fn workload_name(w: u8) -> &'static str {
    WORKLOADS.get(usize::from(w)).copied().unwrap_or("all")
}

fn render_response(a: &Args, resp: &Response) -> Result<String, CliError> {
    match resp {
        Response::EmbedOk {
            height,
            dilation,
            max_load,
            congestion,
            injective,
            cached,
        } => {
            // The server reports the X-tree height it embedded at; name
            // the backend the request actually asked to be scored on.
            let host = match a.get("host") {
                Some(h) if h != "xtree" => format!("{h} (X({height}) embedding)"),
                _ => format!("X({height})"),
            };
            if a.flag("json") {
                Ok(xtree_json::to_string_pretty(
                    &Value::object()
                        .with("host", host)
                        .with("dilation", *dilation)
                        .with("max_load", *max_load)
                        .with("congestion", *congestion)
                        .with("injective", *injective)
                        .with("cached", *cached),
                ))
            } else {
                Ok(format!(
                    "host: {host}\ndilation: {dilation}\nload: {max_load}\ncongestion: {congestion}\ninjective: {injective}\ncached: {cached}"
                ))
            }
        }
        Response::SimulateOk { cached, reports } => {
            if a.flag("json") {
                let rows: Value = reports
                    .iter()
                    .map(|r| {
                        Value::object()
                            .with("workload", workload_name(r.workload))
                            .with("cycles", r.cycles)
                            .with("ideal_cycles", r.ideal_cycles)
                            .with("max_link_traffic", r.max_link_traffic)
                    })
                    .collect();
                Ok(xtree_json::to_string_pretty(
                    &Value::object()
                        .with("cached", *cached)
                        .with("reports", rows),
                ))
            } else {
                let mut out = format!(
                    "{:<10} {:>8} {:>8} {:>13}   (cached: {cached})\n",
                    "workload", "cycles", "ideal", "link traffic"
                );
                for r in reports {
                    out.push_str(&format!(
                        "{:<10} {:>8} {:>8} {:>13}\n",
                        workload_name(r.workload),
                        r.cycles,
                        r.ideal_cycles,
                        r.max_link_traffic
                    ));
                }
                Ok(out.trim_end().to_string())
            }
        }
        Response::StatsOk(s) => {
            if a.flag("json") {
                Ok(xtree_json::to_string_pretty(
                    &Value::object()
                        .with("requests", s.requests)
                        .with("embeds", s.embeds)
                        .with("simulates", s.simulates)
                        .with("overloaded", s.overloaded)
                        .with("errors", s.errors)
                        .with("cache_hits", s.cache_hits)
                        .with("cache_misses", s.cache_misses)
                        .with("cache_entries", s.cache_entries)
                        .with("queue_depth", s.queue_depth)
                        .with("latency_count", s.latency_count)
                        .with("latency_p50_us", s.latency_p50_us)
                        .with("latency_p95_us", s.latency_p95_us)
                        .with("latency_p99_us", s.latency_p99_us)
                        .with("sim_hops", s.sim_hops)
                        .with("sim_delivered", s.sim_delivered)
                        .with("partial", s.partial),
                ))
            } else {
                Ok(format!(
                    "requests: {}{} ({} embed, {} simulate)\noverloaded: {}\nerrors: {}\n\
                     cache: {} hits / {} misses, {} entries\nqueue depth: {}\n\
                     latency: p50 {}us p95 {}us p99 {}us over {} requests\n\
                     sim: {} hops, {} delivered",
                    s.requests,
                    if s.partial {
                        " [partial: not every shard answered]"
                    } else {
                        ""
                    },
                    s.embeds,
                    s.simulates,
                    s.overloaded,
                    s.errors,
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_entries,
                    s.queue_depth,
                    s.latency_p50_us,
                    s.latency_p95_us,
                    s.latency_p99_us,
                    s.latency_count,
                    s.sim_hops,
                    s.sim_delivered
                ))
            }
        }
        Response::HealthOk { info } => {
            if a.flag("json") {
                let mut obj = Value::object().with("ok", true);
                if let Some(i) = info {
                    obj.set("queue_depth", i.queue_depth);
                    obj.set("cache_hits", i.cache_hits);
                    obj.set("cache_misses", i.cache_misses);
                    obj.set("uptime_s", i.uptime_s);
                }
                Ok(xtree_json::to_string_pretty(&obj))
            } else {
                Ok(match info {
                    Some(i) => format!(
                        "ok (queue {}, cache {} hits / {} misses, up {}s)",
                        i.queue_depth, i.cache_hits, i.cache_misses, i.uptime_s
                    ),
                    None => "ok".into(),
                })
            }
        }
        Response::ShutdownOk { pending } => {
            Ok(format!("shutting down ({pending} requests draining)"))
        }
        Response::Overloaded { depth, cap } => Err(CliError::Runtime(format!(
            "server overloaded (queue {depth}/{cap}); retry later"
        ))),
        Response::Error { code, message } => {
            Err(CliError::Runtime(format!("server error {code}: {message}")))
        }
    }
}

fn cmd_sizes(a: &Args) -> Result<String, CliError> {
    let max_r: u8 = a.num_or("max-r", 10u8)?;
    let mut out =
        String::from("r  X-tree size  Theorem-1 guest n = 16(2^{r+1}-1)  Theorem-4 form\n");
    for r in 0..=max_r.min(20) {
        out.push_str(&format!(
            "{r:<2} {:>11}  {:>33}  2^{} - 16\n",
            (1u64 << (r + 1)) - 1,
            generate::theorem1_size(r),
            r + 5
        ));
    }
    Ok(out.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, String> {
        run(s.split_whitespace().map(String::from).collect()).map_err(|e| e.message().to_string())
    }

    #[test]
    fn errors_carry_exit_codes() {
        let argv = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        // Bad invocation → usage, exit 2.
        let e = run(argv("embed --family nope")).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        // Missing file → I/O, exit 3.
        let e = run(argv("resume /no/such/file.ckpt")).unwrap_err();
        assert_eq!(e.exit_code(), 3, "{e:?}");
        // Unreachable server → I/O, exit 3.
        let e = run(argv("request health --addr 127.0.0.1:1")).unwrap_err();
        assert_eq!(e.exit_code(), 3, "{e:?}");
    }

    #[test]
    fn request_round_trip_against_spawned_server() {
        let mut server = Server::spawn(&ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let health = run_str(&format!("request health --addr {addr}")).unwrap();
        assert!(
            health.starts_with("ok (queue 0,"),
            "health must report the load signals: {health}"
        );
        let out = run_str(&format!(
            "request embed --addr {addr} --family path --nodes 240"
        ))
        .unwrap();
        assert!(out.contains("host: X(3)"), "{out}");
        assert!(out.contains("load: 16"), "{out}");
        let out = run_str(&format!(
            "request simulate --addr {addr} --family path --nodes 240 --workload broadcast --json"
        ))
        .unwrap();
        let v: Value = xtree_json::from_str(&out).unwrap();
        assert_eq!(v["reports"].as_array().unwrap().len(), 1);
        assert_eq!(v["cached"], true, "embed warmed the cache: {out}");
        let out = run_str(&format!("request stats --addr {addr}")).unwrap();
        assert!(out.contains("cache: 1 hits"), "{out}");
        let out = run_str(&format!("request shutdown --addr {addr}")).unwrap();
        assert!(out.contains("shutting down"), "{out}");
        server.wait();
    }

    #[test]
    fn embed_text_output() {
        let out = run_str("embed --family path --nodes 240").unwrap();
        assert!(out.contains("host: X(3)"));
        assert!(out.contains("load: 16"));
    }

    #[test]
    fn embed_json_output_parses() {
        let out = run_str("embed --family caterpillar --nodes 112 --json --map").unwrap();
        let v: Value = xtree_json::from_str(&out).unwrap();
        assert_eq!(v["guest"]["nodes"], 112);
        assert!(v["dilation"].as_u64().unwrap() <= 3);
        assert_eq!(v["map"].as_array().unwrap().len(), 112);
    }

    #[test]
    fn embed_injective_targets() {
        let out = run_str("embed --family broom --nodes 48 --target xtree-injective").unwrap();
        assert!(out.contains("injective: true"));
        let out =
            run_str("embed --family broom --nodes 48 --target hypercube-injective --json").unwrap();
        let v: Value = xtree_json::from_str(&out).unwrap();
        assert_eq!(v["injective"], true);
    }

    #[test]
    fn simulate_filters_workloads() {
        let out = run_str("simulate --family path --nodes 112 --workload broadcast").unwrap();
        assert!(out.contains("broadcast"));
        assert!(!out.contains("exchange"));
    }

    #[test]
    fn simulate_json() {
        let out = run_str("simulate --family random-bst --nodes 112 --json").unwrap();
        let v: Value = xtree_json::from_str(&out).unwrap();
        assert_eq!(v["reports"].as_array().unwrap().len(), 4);
    }

    #[test]
    fn info_closed_forms_match_constructed_graphs() {
        for r in 0..=8u8 {
            let x = XTree::new(r);
            let out = run_str(&format!("info --height {r}")).unwrap();
            let expect = format!(
                "X({r}): {} vertices, {} edges, max degree {}",
                x.node_count(),
                x.edge_count(),
                x.max_degree()
            );
            assert!(out.contains(&expect), "{out}");
            let q = Hypercube::new(r);
            let out = run_str(&format!("info --height {r} --network hypercube")).unwrap();
            let expect = format!(
                "Q_{r}: {} vertices, {} edges, max degree {}",
                q.node_count(),
                q.edge_count(),
                q.max_degree()
            );
            assert!(out.contains(&expect), "{out}");
        }
    }

    #[test]
    fn info_heights_past_the_old_cap() {
        let out = run_str("info --height 20").unwrap();
        assert!(out.contains("X(20): 2097151 vertices"), "{out}");
        assert!(run_str("info --height 31").is_err());
    }

    #[test]
    fn info_renders_small_xtree() {
        let out = run_str("info --height 3").unwrap();
        assert!(out.contains("X(3): 15 vertices"));
        assert!(out.contains('o'));
    }

    #[test]
    fn sizes_table() {
        let out = run_str("sizes --max-r 4").unwrap();
        assert!(out.contains("496"));
        assert!(out.lines().count() >= 5);
    }

    #[test]
    fn trace_prints_matrix() {
        let out = run_str("trace --family path --nodes 240").unwrap();
        assert!(out.contains("host X(3)"));
        assert!(out.contains("j=3"));
        assert!(out.contains("log:"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_str("embed --family nosuch").is_err());
        assert!(run_str("embed --target nosuch").is_err());
        assert!(run_str("frobnicate").is_err());
        assert!(run_str("simulate --workload nosuch --nodes 48").is_err());
    }

    #[test]
    fn simulate_fault_rate_zero_is_identical_to_no_fault_flags() {
        let plain = run_str("simulate --family path --nodes 112 --seed 3").unwrap();
        let zero = run_str("simulate --family path --nodes 112 --seed 3 --fault-rate 0").unwrap();
        assert_eq!(plain, zero, "a zero fault rate must not change anything");
    }

    #[test]
    fn simulate_with_repaired_faults_delivers_everything() {
        let out = run_str(
            "simulate --family caterpillar --nodes 112 --fault-rate 0.2 --fault-seed 9 \
             --repair-after 3 --json",
        )
        .unwrap();
        let v: Value = xtree_json::from_str(&out).unwrap();
        assert_eq!(v["fault"]["rate"].as_f64(), Some(0.2));
        assert_eq!(v["fault"]["repair_after"], 3);
        for r in v["reports"].as_array().unwrap() {
            assert_eq!(
                r["delivered"], r["messages"],
                "repaired links leave nothing stranded: {r:?}"
            );
            assert_eq!(r["stalled"], false);
        }
    }

    #[test]
    fn simulate_fault_text_output_reports_delivery() {
        let out =
            run_str("simulate --family path --nodes 112 --fault-rate 0.1 --fault-seed 2").unwrap();
        assert!(out.contains("link fault rate 0.1"), "{out}");
        assert!(out.contains("delivered"), "{out}");
        assert!(out.contains("stranded"), "{out}");
    }

    /// A collision-free scratch path for file-producing CLI tests; cleaned
    /// up on drop so parallel test runs never see each other's files.
    struct TmpPath(std::path::PathBuf);

    impl TmpPath {
        fn new(name: &str) -> Self {
            let p = std::env::temp_dir().join(format!("xtree-cli-{}-{name}", std::process::id()));
            let _ = std::fs::remove_file(&p);
            TmpPath(p)
        }

        fn as_str(&self) -> &str {
            self.0.to_str().expect("temp paths are UTF-8")
        }
    }

    impl Drop for TmpPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn simulate_trace_records_verifies_and_rejects_mismatch() {
        let p = TmpPath::new("trace.bin");
        let base = format!(
            "simulate --family caterpillar --nodes 112 --seed 5 --trace {}",
            p.as_str()
        );
        let out = run_str(&base).unwrap();
        assert!(out.contains("telemetry:"), "{out}");
        assert!(out.contains("hottest links:"), "{out}");
        let bytes = std::fs::read(&p.0).unwrap();
        assert!(
            bytes.starts_with(xtree_sim::telemetry::TRACE_MAGIC),
            "trace magic missing"
        );

        // Same seed replays byte-for-byte...
        let out = run_str(&format!(
            "simulate --family caterpillar --nodes 112 --seed 5 --verify-trace {}",
            p.as_str()
        ))
        .unwrap();
        assert!(out.contains("replay verified"), "{out}");

        // ...a different workload does not.
        let err = run_str(&format!(
            "simulate --family caterpillar --nodes 96 --seed 5 --verify-trace {}",
            p.as_str()
        ))
        .unwrap_err();
        assert!(err.contains("replay mismatch"), "{err}");
    }

    #[test]
    fn simulate_metrics_exports_both_formats() {
        let p = TmpPath::new("metrics.prom");
        run_str(&format!(
            "simulate --family path --nodes 112 --metrics {} --metrics-format prom",
            p.as_str()
        ))
        .unwrap();
        let prom = std::fs::read_to_string(&p.0).unwrap();
        assert!(prom.contains("xtree_sim_hops_total"), "{prom}");
        assert!(prom.contains("# TYPE"), "{prom}");

        let p = TmpPath::new("metrics.jsonl");
        run_str(&format!(
            "simulate --family path --nodes 112 --metrics {}",
            p.as_str()
        ))
        .unwrap();
        let jsonl = std::fs::read_to_string(&p.0).unwrap();
        for line in jsonl.lines() {
            let v: Value = xtree_json::from_str(line).unwrap();
            assert!(v["type"].as_str().is_some(), "{line}");
        }
    }

    #[test]
    fn simulate_json_carries_telemetry_object() {
        let p = TmpPath::new("trace-json.bin");
        let out = run_str(&format!(
            "simulate --family broom --nodes 112 --fault-rate 0.1 --trace {} --json",
            p.as_str()
        ))
        .unwrap();
        let v: Value = xtree_json::from_str(&out).unwrap();
        assert!(v["telemetry"]["events"].as_u64().unwrap() > 0);
        assert!(v["telemetry"]["trace_bytes"].as_u64().unwrap() > 0);
        assert!(!v["telemetry"]["hottest_links"]
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn simulate_rejects_bad_telemetry_args() {
        let err = run_str("simulate --nodes 48 --metrics-format xml").unwrap_err();
        assert!(err.contains("--metrics-format"), "{err}");
        let err = run_str("simulate --nodes 48 --verify-trace /nonexistent/t.bin").unwrap_err();
        assert!(err.contains("--verify-trace"), "{err}");
    }

    #[test]
    fn simulate_recover_heals_node_faults() {
        // Fixed seed where the unsupervised run strands messages...
        let bare = run_str(
            "simulate --family path --nodes 496 --node-fault-rate 0.2 --fault-seed 3 --json",
        )
        .unwrap();
        let v: Value = xtree_json::from_str(&bare).unwrap();
        let stranded: usize = v["reports"]
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r["stranded"].as_u64().unwrap() as usize)
            .sum();
        assert!(stranded > 0, "fixture must strand without recovery: {bare}");
        // ...and the default recovery policy delivers everything.
        let out = run_str(
            "simulate --family path --nodes 496 --node-fault-rate 0.2 --fault-seed 3 --recover",
        )
        .unwrap();
        assert!(out.contains("node fault rate 0.2"), "{out}");
        assert!(out.contains("guests migrated"), "{out}");
        assert!(out.contains("all delivered"), "{out}");
    }

    #[test]
    fn simulate_recover_json_carries_recovery_object() {
        let out = run_str(
            "simulate --family path --nodes 496 --node-fault-rate 0.2 --fault-seed 3 \
             --recover --max-retries 4 --backoff exp:4:64 --json",
        )
        .unwrap();
        let v: Value = xtree_json::from_str(&out).unwrap();
        assert_eq!(v["recovery"]["all_delivered"], true, "{out}");
        assert!(v["recovery"]["migrated"].as_u64().unwrap() > 0, "{out}");
        for r in v["reports"].as_array().unwrap() {
            assert_eq!(r["delivered"], r["messages"], "{r:?}");
        }
    }

    #[test]
    fn checkpoint_resume_trace_is_byte_identical() {
        let full = TmpPath::new("full-trace.bin");
        let ck = TmpPath::new("ck.bin");
        let resumed = TmpPath::new("resumed-trace.bin");
        let base =
            "simulate --family path --nodes 496 --node-fault-rate 0.2 --fault-seed 3 --recover";
        run_str(&format!("{base} --trace {}", full.as_str())).unwrap();
        let out = run_str(&format!(
            "{base} --checkpoint {} --checkpoint-after 3",
            ck.as_str()
        ))
        .unwrap();
        assert!(out.contains("checkpoint:"), "{out}");
        let bytes = std::fs::read(&ck.0).unwrap();
        assert!(bytes.starts_with(xtree_sim::checkpoint::MAGIC), "magic");
        let out = run_str(&format!(
            "resume {} --trace {}",
            ck.as_str(),
            resumed.as_str()
        ))
        .unwrap();
        assert!(out.contains("resumed from"), "{out}");
        assert!(out.contains("all delivered"), "{out}");
        assert_eq!(
            std::fs::read(&full.0).unwrap(),
            std::fs::read(&resumed.0).unwrap(),
            "an interrupted+resumed run must trace byte-identically"
        );
    }

    #[test]
    fn simulate_rejects_bad_recovery_args() {
        let err = run_str("simulate --nodes 48 --recover --backoff weird").unwrap_err();
        assert!(err.contains("--backoff"), "{err}");
        let err = run_str("simulate --nodes 48 --recover --backoff fixed:lots").unwrap_err();
        assert!(err.contains("--backoff"), "{err}");
        let err = run_str("simulate --nodes 48 --checkpoint-after 3").unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");
        let err = run_str("simulate --nodes 48 --max-retries 2").unwrap_err();
        assert!(err.contains("--recover"), "{err}");
        let err = run_str("simulate --nodes 48 --node-fault-rate 1.5").unwrap_err();
        assert!(err.contains("--node-fault-rate"), "{err}");
        let err = run_str("simulate --nodes 48 --host hypercube --recover").unwrap_err();
        assert!(err.contains("xtree"), "{err}");
    }

    #[test]
    fn resume_rejects_missing_and_garbage_files() {
        assert!(run_str("resume").is_err());
        assert!(run_str("resume /nonexistent/ck.bin").is_err());
        let p = TmpPath::new("garbage-ck.bin");
        std::fs::write(&p.0, b"not a checkpoint").unwrap();
        let err = run_str(&format!("resume {}", p.as_str())).unwrap_err();
        assert!(err.contains("XCKPT1"), "{err}");
    }

    #[test]
    fn simulate_rejects_bad_fault_rate() {
        let err = run_str("simulate --family path --nodes 48 --fault-rate 1.5").unwrap_err();
        assert!(err.contains("--fault-rate"), "{err}");
        let err = run_str("simulate --family path --nodes 48 --fault-rate lots").unwrap_err();
        assert!(err.contains("--fault-rate"), "{err}");
    }
}

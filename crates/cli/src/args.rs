//! A small, dependency-free argument parser: `--key value` pairs and bare
//! flags after a subcommand.

use std::collections::HashMap;

/// Parsed command line: subcommand, key-value options, and bare flags.
#[derive(Debug, Default, Clone)]
pub struct Args {
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    /// Returns a message when an option is missing its value or an argument
    /// is not of the form `--name [value]`.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().unwrap_or_default();
        let mut args = Args {
            command,
            ..Default::default()
        };
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}` (options start with --)"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--{name} is missing its value"))?;
                    args.options.insert(name.to_string(), v);
                }
                _ => args.flags.push(name.to_string()),
            }
        }
        Ok(args)
    }

    /// String option, `None` when absent.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.options
            .get(name)
            .map(String::as_str)
            .unwrap_or(default)
    }

    /// Parsed numeric option with a default.
    ///
    /// # Errors
    /// Returns a message when the value does not parse.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }

    /// Parsed numeric option, `None` when absent.
    ///
    /// # Errors
    /// Returns a message naming the flag when the value does not parse.
    pub fn num_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }

    /// True if the bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_flags() {
        let a = parse("embed --family path --nodes 240 --json").unwrap();
        assert_eq!(a.command, "embed");
        assert_eq!(a.get("family"), Some("path"));
        assert_eq!(a.get("trace"), None);
        assert_eq!(a.get_or("family", "x"), "path");
        assert_eq!(a.num_or("nodes", 0usize).unwrap(), 240);
        assert!(a.flag("json"));
        assert!(!a.flag("map"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("simulate").unwrap();
        assert_eq!(a.get_or("family", "random-bst"), "random-bst");
        assert_eq!(a.num_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_bad_number() {
        let a = parse("embed --nodes many").unwrap();
        assert!(a.num_or("nodes", 0usize).is_err());
    }

    #[test]
    fn parse_errors_name_the_flag() {
        let a = parse("simulate --fault-rate lots").unwrap();
        let err = a.num_or("fault-rate", 0.0f64).unwrap_err();
        assert!(err.contains("--fault-rate"), "{err}");
        let err = a.num_opt::<f64>("fault-rate").unwrap_err();
        assert!(err.contains("--fault-rate"), "{err}");
    }

    #[test]
    fn num_opt_distinguishes_absent_from_present() {
        let a = parse("simulate --repair-after 12").unwrap();
        assert_eq!(a.num_opt::<u32>("repair-after").unwrap(), Some(12));
        assert_eq!(a.num_opt::<u32>("fault-seed").unwrap(), None);
    }

    #[test]
    fn rejects_positional() {
        assert!(parse("embed stray").is_err());
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse("embed --json --nodes 48").unwrap();
        assert!(a.flag("json"));
        assert_eq!(a.num_or("nodes", 0usize).unwrap(), 48);
    }
}

//! Parametric verification of the Theorem-1 construction on the
//! printed-seed harness ([`xtree_trees::paramtest`]): arbitrary guests
//! across every generator family must embed with the paper's guarantees,
//! and the rebuilt hot path must be *path-independent* — the same
//! embedding whether the scratch is fresh or reused and whether ADJUST
//! decides serially or in parallel.
//!
//! Each iteration prints its seed before running; a failure reproduces
//! with `XTREE_PARAM_SEED=<seed> cargo test -p xtree-core --test
//! param_theorem1 <name>`.

use rand::Rng;
use xtree_core::theorem1::{self, optimal_height, EmbedOptions, Parallel, Theorem1Scratch};
use xtree_core::{evaluate, XEmbedding};
use xtree_trees::paramtest::{arbitrary_tree, start_parametric_test};

const ITERS: usize = 48;

/// Everything Theorem 1 promises about one embedding.
fn assert_theorem1_invariants(tree: &xtree_trees::BinaryTree, emb: &XEmbedding) {
    assert_eq!(emb.map.len(), tree.len(), "every guest node placed");
    assert_eq!(emb.height, optimal_height(tree.len()), "optimal host");
    let stats = evaluate(tree, emb);
    assert!(stats.max_load <= 16, "load {} > 16", stats.max_load);
    assert!(stats.dilation <= 3, "dilation {} > 3", stats.dilation);
    assert_eq!(stats.condition4_violations, 0, "condition (4) violated");
}

#[test]
fn embeddings_satisfy_theorem1_for_arbitrary_guests() {
    start_parametric_test(
        "embeddings_satisfy_theorem1_for_arbitrary_guests",
        &[],
        ITERS,
        |rng| {
            let tree = arbitrary_tree(rng, 1200);
            let res = theorem1::embed(&tree);
            assert_theorem1_invariants(&tree, &res.emb);
        },
    );
}

#[test]
fn scratch_reuse_and_parallel_mode_are_path_independent() {
    // One scratch survives the whole stream, crossing sizes and families —
    // exactly the serving worker's lifetime. Every build through it must
    // equal a fresh-scratch serial build, as must a forced-parallel one.
    let mut scratch = Theorem1Scratch::new();
    // 0x5f09739c573468aa: third build of the stream — a small build after
    // a larger one tripped an out-of-bounds `att_mass` index in the debug
    // round checker (the deterministic stream replays the sequence).
    start_parametric_test(
        "scratch_reuse_and_parallel_mode_are_path_independent",
        &[0x5f09_739c_5734_68aa],
        ITERS,
        |rng| {
            let tree = arbitrary_tree(rng, 1200);
            let serial = EmbedOptions {
                parallel: Parallel::Off,
                ..Default::default()
            };
            let forced = EmbedOptions {
                parallel: Parallel::Force,
                ..Default::default()
            };
            let fresh = theorem1::embed_with(&tree, serial);
            let reused = theorem1::embed_with_scratch(&tree, serial, &mut scratch);
            let parallel = theorem1::embed_with_scratch(&tree, forced, &mut scratch);
            assert_eq!(fresh.emb, reused.emb, "scratch reuse changed the embedding");
            assert_eq!(fresh.log, reused.log, "scratch reuse changed the log");
            assert_eq!(fresh.trace, reused.trace, "scratch reuse changed the trace");
            assert_eq!(
                fresh.emb, parallel.emb,
                "parallel ADJUST changed the embedding"
            );
            assert_eq!(fresh.log, parallel.log, "parallel ADJUST changed the log");
        },
    );
}

#[test]
fn ablated_builds_still_embed_validly() {
    // Switching mechanisms off may cost quality, never validity: all
    // nodes placed on the optimal host within the capacity.
    start_parametric_test("ablated_builds_still_embed_validly", &[], ITERS, |rng| {
        let tree = arbitrary_tree(rng, 600);
        let opts = EmbedOptions {
            adjust: rng.random_bool(0.5),
            whole_moves: rng.random_bool(0.5),
            fine_balance: rng.random_bool(0.5),
            ..Default::default()
        };
        let res = theorem1::embed_with(&tree, opts);
        assert_eq!(res.emb.map.len(), tree.len());
        assert_eq!(res.emb.height, optimal_height(tree.len()));
        let stats = evaluate(&tree, &res.emb);
        assert!(stats.max_load <= 16, "load {} > 16", stats.max_load);
    });
}

//! Property tests for `xtree_core::repair`: whatever the damage, a repair
//! pass either produces a *valid* embedding — every guest on an alive
//! vertex, migration targets within the load cap, moves within the search
//! radius, deterministic guest-id order — or fails *correctly*: the
//! reported infeasibility survives relaxing the cap and radius only when
//! the dead vertex is genuinely sealed off from every survivor.

use proptest::prelude::*;
use xtree_core::metrics::heap_order_embedding;
use xtree_core::repair::{all_alive, repair, RepairConfig, RepairError};
use xtree_topology::{Graph, XTree};
use xtree_trees::generate;

/// Independent reachability oracle: can a BFS from `from`'s alive
/// neighbours, crossing only alive vertices, reach any survivor at all?
fn any_survivor_reachable(height: u8, dead: &[u32], from: u32) -> bool {
    let x = XTree::new(height);
    let graph = x.graph();
    let alive = |v: u32| !dead.contains(&v);
    let mut seen = vec![false; graph.node_count()];
    let mut stack: Vec<u32> = graph
        .out_edges(from as usize)
        .map(|(_, w)| w)
        .filter(|&w| alive(w))
        .collect();
    while let Some(v) = stack.pop() {
        if seen[v as usize] {
            continue;
        }
        seen[v as usize] = true;
        return true; // any alive vertex found is a potential home
    }
    false
}

proptest! {
    #[test]
    fn repair_is_valid_or_correctly_infeasible(
        height in 2u8..=5,
        guest_seed in any::<u64>(),
        dead_picks in prop::collection::vec(any::<u32>(), 0..6),
        load_cap in 1u32..=40,
        max_radius in 0u32..=10,
    ) {
        let host_len = (1usize << (height + 1)) - 1;
        let guest_n = 1 + (guest_seed as usize % host_len);
        let tree = generate::left_complete(guest_n);
        let emb = heap_order_embedding(&tree, height);
        let mut dead: Vec<u32> = dead_picks
            .iter()
            .map(|p| p % host_len as u32)
            .collect();
        dead.sort_unstable();
        dead.dedup();
        let cfg = RepairConfig { load_cap, max_radius };
        let before: Vec<usize> = emb.map.iter().map(|a| a.heap_id()).collect();

        match repair(&tree, &emb, &dead, &cfg) {
            Ok(None) => {
                // A no-op is only legal when no guest sits on a dead vertex.
                prop_assert!(emb
                    .map
                    .iter()
                    .all(|a| !dead.contains(&(a.heap_id() as u32))));
            }
            Ok(Some(r)) => {
                // Valid: every guest alive, targets alive and within the
                // cap and radius, relocations in guest-id order, and the
                // input embedding untouched.
                prop_assert!(all_alive(&r.emb, |v| !dead.contains(&v)));
                prop_assert_eq!(r.report.migrated, r.report.relocations.len());
                for w in r.report.relocations.windows(2) {
                    prop_assert!(w[0].guest < w[1].guest);
                }
                let loads = r.emb.load_vector();
                for rl in &r.report.relocations {
                    prop_assert!(!dead.contains(&rl.to));
                    prop_assert!(dead.contains(&rl.from));
                    prop_assert!((1..=max_radius).contains(&rl.radius));
                    prop_assert_eq!(r.emb.map[rl.guest].heap_id() as u32, rl.to);
                    prop_assert!(loads[rl.to as usize] <= load_cap);
                }
                prop_assert!(r.report.max_load <= r.report.max_load_before.max(load_cap));
                let after: Vec<usize> = emb.map.iter().map(|a| a.heap_id()).collect();
                // Pure repair must not mutate its input.
                prop_assert_eq!(before, after);
            }
            Err(RepairError::DeadVertexOutOfRange { vertex, .. }) => {
                prop_assert!(false, "in-range dead id {} reported out of range", vertex);
            }
            Err(RepairError::Infeasible { from, .. }) => {
                prop_assert!(dead.contains(&from));
                // Correctly infeasible: with an unbounded cap and a radius
                // covering the whole host, repair succeeds unless some dead
                // vertex is sealed off from every survivor.
                let relaxed = RepairConfig {
                    load_cap: u32::MAX,
                    max_radius: 2 * u32::from(height) + 2,
                };
                match repair(&tree, &emb, &dead, &relaxed) {
                    Ok(Some(_)) => {} // the tight budget was the only obstacle
                    Ok(None) => prop_assert!(
                        false,
                        "infeasible repair became a no-op when relaxed"
                    ),
                    Err(RepairError::Infeasible { from: f, .. }) => prop_assert!(
                        !any_survivor_reachable(height, &dead, f),
                        "unbounded repair failed for vertex {f} although a survivor is reachable"
                    ),
                    Err(e) => prop_assert!(false, "unexpected relaxed-repair error: {e}"),
                }
            }
        }
    }
}

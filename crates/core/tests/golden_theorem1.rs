//! Golden-output pinning of the Theorem-1 builder.
//!
//! The perf rebuild of the builder interior (SoA attachments, interval
//! free-list, scratch reuse, parallel ADJUST) promises **byte-identical**
//! results. These fingerprints were generated from the pre-refactor
//! builder; any behavioural drift — a different embedding, trace row,
//! mass trace, or mechanism counter — changes the FNV hash and fails.
//!
//! Regenerate (only when a change is *meant* to alter outputs):
//! `XTREE_GOLDEN_PRINT=1 cargo test -p xtree-core --test golden_theorem1 -- --nocapture`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree_core::theorem1::{self, Theorem1Embedding};
use xtree_trees::generate::{theorem1_size, TreeFamily};

/// FNV-1a over a stream of u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One hash covering everything the golden contract pins: the embedding
/// map, the convergence trace, the mass trace, and every BuildLog counter.
fn fingerprint(res: &Theorem1Embedding) -> u64 {
    let mut h = Fnv::new();
    h.word(u64::from(res.emb.height));
    h.word(res.emb.map.len() as u64);
    for a in &res.emb.map {
        h.word(u64::from(a.level()));
        h.word(a.index());
    }
    h.word(res.trace.len() as u64);
    for row in &res.trace {
        h.word(row.len() as u64);
        for &d in row {
            h.word(d);
        }
    }
    h.word(res.mass_trace.len() as u64);
    for &(nl, nh) in &res.mass_trace {
        h.word(nl);
        h.word(nh);
    }
    let log = &res.log;
    for c in [
        log.adjust_calls,
        log.adjust_whole_moves,
        log.adjust_splits,
        log.split_balances,
        log.forced_placements,
        log.fills,
        log.borrows,
        log.spills,
        log.multi_designated_components,
    ] {
        h.word(c as u64);
    }
    h.word(u64::from(log.max_borrow_hops));
    h.0
}

/// `(family index in TreeFamily::ALL, r, seed, expected fingerprint)`.
///
/// All eight families at X(6) (the serving size), then spot checks of the
/// random models up to X(10). Hashes captured from the pre-refactor
/// builder at commit 4f8b7c4.
const CASES: &[(usize, u8, u64, u64)] = &[
    (0, 6, 0xA11CE, 0xF84EDDD520C2F7F8),
    (1, 6, 0xA11CE, 0x4A88ED764BF3CF80),
    (2, 6, 0xA11CE, 0x32C3FE59384E19A6),
    (3, 6, 0xA11CE, 0x92F40048EB437A2C),
    (4, 6, 0xA11CE, 0xAB0877CD3417B720),
    (5, 6, 0xA11CE, 0xB65930EBE38263F1),
    (6, 6, 0xA11CE, 0x3E8E268E1943CA52),
    (7, 6, 0xA11CE, 0x55ACB36C4295F281),
    (4, 7, 0xBEEF, 0xE7E212B3B15F04E3),
    (6, 7, 0xBEEF, 0x734537E63FE5D773),
    (4, 8, 0xCAFE, 0x08F07B869F9CCFD0),
    (5, 8, 0xCAFE, 0x90328FA6EB681886),
    (4, 9, 0xD00D, 0x0FD2CA7343195EA8),
    (4, 10, 0xE66, 0x24F0775F49F6CE6D),
];

#[test]
fn golden_outputs_are_stable() {
    let print = std::env::var("XTREE_GOLDEN_PRINT").is_ok();
    for &(f, r, seed, expected) in CASES {
        let family = TreeFamily::ALL[f];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tree = family.generate(theorem1_size(r), &mut rng);
        let res = theorem1::embed(&tree);
        let got = fingerprint(&res);
        if print {
            println!("    ({f}, {r}, {seed:#X}, {got:#018X}),");
        } else {
            assert_eq!(
                got,
                expected,
                "golden drift: family {} r {r} seed {seed:#X}",
                family.name()
            );
        }
    }
}

//! Embedding repair: migrating guest nodes off dead host vertices.
//!
//! The paper's Theorem-1 embedding is static — it assumes every X-tree
//! processor stays up. Under the simulator's fault model a host vertex can
//! die while it still hosts guest nodes, leaving every message to or from
//! those guests permanently stranded. This module turns that breaking
//! failure into graceful degradation: each affected guest is moved to a
//! surviving vertex found by a bounded-radius BFS over the alive subgraph,
//! subject to a configurable load cap, and the caller gets a
//! [`RepairReport`] quantifying what the migration cost (new max load, new
//! dilation, how many guests moved and how far).
//!
//! Determinism contract: guests are migrated in guest-id order, BFS levels
//! are scanned in ascending vertex id, and the first vertex with spare
//! capacity wins — the same damage always produces the same repaired
//! embedding, which is what lets recovered runs replay byte-for-byte.

use crate::embedding::XEmbedding;
use std::fmt;
use xtree_topology::{analytic_distance, Address, Graph, XTree};
use xtree_trees::BinaryTree;

/// Tunables of a repair pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairConfig {
    /// Maximum guests a surviving vertex may hold after migration. The
    /// default (32) is double the paper's load-16 guarantee, so a healthy
    /// Theorem-1 embedding always has somewhere to put refugees.
    pub load_cap: u32,
    /// How far (in host hops) from the dead vertex the BFS will look for
    /// a new home before declaring the repair infeasible.
    pub max_radius: u32,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            load_cap: 32,
            max_radius: 8,
        }
    }
}

/// One migrated guest node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Relocation {
    /// Guest node index.
    pub guest: usize,
    /// The dead vertex it was hosted on.
    pub from: u32,
    /// The surviving vertex it now lives on.
    pub to: u32,
    /// Host hops between the two (the BFS level that found the new home).
    pub radius: u32,
}

/// What a repair pass did and what it cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairReport {
    /// Guests moved off dead vertices.
    pub migrated: usize,
    /// Embedding max load before the migration.
    pub max_load_before: u32,
    /// Embedding max load after (≤ the configured cap, by construction —
    /// pre-existing loads above the cap are left where they are).
    pub max_load: u32,
    /// Embedding dilation before the migration.
    pub dilation_before: u32,
    /// Embedding dilation after.
    pub dilation: u32,
    /// Every individual move, in guest-id order.
    pub relocations: Vec<Relocation>,
}

/// Why a repair could not complete. The embedding is left untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// A dead vertex id does not exist in the host.
    DeadVertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// Host vertex count.
        host_len: usize,
    },
    /// No surviving vertex within `max_radius` of `from` had spare
    /// capacity for guest `guest`.
    Infeasible {
        /// The guest that could not be rehomed.
        guest: usize,
        /// The dead vertex it sits on.
        from: u32,
        /// The search radius that was exhausted.
        max_radius: u32,
        /// The load cap in force.
        load_cap: u32,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::DeadVertexOutOfRange { vertex, host_len } => write!(
                f,
                "dead vertex {vertex} out of range for a {host_len}-vertex host"
            ),
            RepairError::Infeasible {
                guest,
                from,
                max_radius,
                load_cap,
            } => write!(
                f,
                "no alive vertex within {max_radius} hops of dead vertex {from} has spare \
                 capacity (cap {load_cap}) for guest {guest}"
            ),
        }
    }
}

impl std::error::Error for RepairError {}

/// A repaired embedding plus the degradation report.
#[derive(Clone, Debug)]
pub struct Repaired {
    /// The embedding with every affected guest rehomed.
    pub emb: XEmbedding,
    /// What moved and what it cost.
    pub report: RepairReport,
}

/// True when every guest image satisfies `alive` — the post-repair
/// invariant. The simulator wraps this as `validate_against(&FaultState)`.
pub fn all_alive<F: Fn(u32) -> bool>(emb: &XEmbedding, alive: F) -> bool {
    emb.map.iter().all(|a| alive(a.heap_id() as u32))
}

fn dilation_of(tree: &BinaryTree, emb: &XEmbedding) -> u32 {
    tree.edges()
        .map(|(u, v)| analytic_distance(emb.image(u), emb.image(v)))
        .max()
        .unwrap_or(0)
}

/// Pure repair: clones `emb`, migrates every guest hosted on a `dead`
/// vertex, and returns the repaired embedding with its report — or
/// `Ok(None)` when no guest sits on a dead vertex.
///
/// # Errors
/// See [`repair_in_place`].
pub fn repair(
    tree: &BinaryTree,
    emb: &XEmbedding,
    dead: &[u32],
    cfg: &RepairConfig,
) -> Result<Option<Repaired>, RepairError> {
    let mut out = emb.clone();
    Ok(repair_in_place(tree, &mut out, dead, cfg, |_, _| true)?
        .map(|report| Repaired { emb: out, report }))
}

/// Migrates every guest hosted on a `dead` vertex to the nearest surviving
/// vertex with load below `cfg.load_cap`, mutating `emb` in place.
///
/// `link_ok(u, v)` additionally gates which host links the BFS may cross
/// (pass `|_, _| true` when only vertices fail) — the simulator plugs its
/// live-link mask in here so refugees never land in a survivor component
/// their peers cannot reach. Links incident to a dead vertex are always
/// considered down, so the BFS seeds directly with the dead vertex's alive
/// neighbours.
///
/// Returns `Ok(None)` when no guest is affected (`emb` untouched), and on
/// any error restores `emb` to its pre-call state.
///
/// # Errors
/// [`RepairError::DeadVertexOutOfRange`] for an invalid `dead` entry;
/// [`RepairError::Infeasible`] when some affected guest has no reachable
/// home within the radius and cap.
pub fn repair_in_place<F: Fn(u32, u32) -> bool>(
    tree: &BinaryTree,
    emb: &mut XEmbedding,
    dead: &[u32],
    cfg: &RepairConfig,
    link_ok: F,
) -> Result<Option<RepairReport>, RepairError> {
    let host_len = emb.host_len();
    let mut alive = vec![true; host_len];
    for &v in dead {
        if v as usize >= host_len {
            return Err(RepairError::DeadVertexOutOfRange {
                vertex: v,
                host_len,
            });
        }
        alive[v as usize] = false;
    }
    let affected: Vec<usize> = (0..emb.map.len())
        .filter(|&g| !alive[emb.map[g].heap_id()])
        .collect();
    if affected.is_empty() {
        return Ok(None);
    }

    let max_load_before = emb.max_load();
    let dilation_before = dilation_of(tree, emb);
    let snapshot = emb.map.clone();
    let host = XTree::new(emb.height);
    let graph = host.graph();
    let mut load = emb.load_vector();
    let mut relocations = Vec::with_capacity(affected.len());

    for &guest in &affected {
        let from = emb.map[guest].heap_id() as u32;
        match find_home(graph, &alive, &load, from, cfg, &link_ok) {
            Some((to, radius)) => {
                load[to as usize] += 1;
                emb.map[guest] = Address::from_heap_id(to as usize);
                relocations.push(Relocation {
                    guest,
                    from,
                    to,
                    radius,
                });
            }
            None => {
                emb.map = snapshot;
                return Err(RepairError::Infeasible {
                    guest,
                    from,
                    max_radius: cfg.max_radius,
                    load_cap: cfg.load_cap,
                });
            }
        }
    }

    Ok(Some(RepairReport {
        migrated: relocations.len(),
        max_load_before,
        max_load: emb.max_load(),
        dilation_before,
        dilation: dilation_of(tree, emb),
        relocations,
    }))
}

/// Level-by-level BFS from `from` over the alive subgraph: the first
/// alive vertex (in ascending id within each level) with load below the
/// cap wins. Returns the vertex and its BFS level, or `None` when the
/// radius is exhausted.
fn find_home<F: Fn(u32, u32) -> bool>(
    graph: &xtree_topology::Csr,
    alive: &[bool],
    load: &[u32],
    from: u32,
    cfg: &RepairConfig,
    link_ok: &F,
) -> Option<(u32, u32)> {
    let mut seen = vec![false; graph.node_count()];
    seen[from as usize] = true;
    // Seed: the dead vertex's alive neighbours (its own links are all down
    // with it, so `link_ok` is not consulted for the first step).
    let mut frontier: Vec<u32> = graph
        .out_edges(from as usize)
        .map(|(_, w)| w)
        .filter(|&w| alive[w as usize])
        .collect();
    for radius in 1..=cfg.max_radius {
        frontier.sort_unstable();
        frontier.dedup();
        for &v in &frontier {
            seen[v as usize] = true;
        }
        if let Some(&v) = frontier.iter().find(|&&v| load[v as usize] < cfg.load_cap) {
            return Some((v, radius));
        }
        if radius == cfg.max_radius {
            break;
        }
        let mut next = Vec::new();
        for &u in &frontier {
            for (_, w) in graph.out_edges(u as usize) {
                if !seen[w as usize] && alive[w as usize] && link_ok(u, w) {
                    next.push(w);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::heap_order_embedding;
    use crate::theorem1;
    use xtree_trees::generate;

    #[test]
    fn no_dead_guests_is_a_no_op() {
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        // Vertex 14 is a leaf hosting guest 14; kill an empty host instead.
        let r = repair(&t, &e, &[], &RepairConfig::default()).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn migrates_guests_off_a_dead_leaf() {
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let dead = [14u32];
        let r = repair(&t, &e, &dead, &RepairConfig::default())
            .unwrap()
            .expect("guest 14 lives on vertex 14");
        assert_eq!(r.report.migrated, 1);
        assert_eq!(r.report.relocations[0].from, 14);
        assert_ne!(r.emb.map[14].heap_id(), 14);
        assert!(all_alive(&r.emb, |v| !dead.contains(&v)));
        assert!(r.report.max_load <= RepairConfig::default().load_cap);
        assert!(r.report.dilation >= r.report.dilation_before);
    }

    #[test]
    fn repair_is_deterministic() {
        let t = generate::caterpillar(200);
        let e = theorem1::embed(&t).emb;
        let dead = [0u32, 3, 7];
        let a = repair(&t, &e, &dead, &RepairConfig::default()).unwrap();
        let b = repair(&t, &e, &dead, &RepairConfig::default()).unwrap();
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.report, y.report);
                assert_eq!(
                    x.emb.map.iter().map(|a| a.heap_id()).collect::<Vec<_>>(),
                    y.emb.map.iter().map(|a| a.heap_id()).collect::<Vec<_>>()
                );
            }
            (None, None) => {}
            _ => panic!("non-deterministic repair"),
        }
    }

    #[test]
    fn tight_cap_reports_infeasibility_and_restores() {
        // Injective embedding of the full guest: every vertex holds one
        // guest, so a cap of 1 leaves nowhere to go.
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let before: Vec<usize> = e.map.iter().map(|a| a.heap_id()).collect();
        let cfg = RepairConfig {
            load_cap: 1,
            max_radius: 8,
        };
        let mut work = e.clone();
        let err = repair_in_place(&t, &mut work, &[5], &cfg, |_, _| true).unwrap_err();
        assert!(matches!(err, RepairError::Infeasible { from: 5, .. }));
        let after: Vec<usize> = work.map.iter().map(|a| a.heap_id()).collect();
        assert_eq!(before, after, "failed repair must restore the embedding");
    }

    #[test]
    fn out_of_range_dead_vertex_is_rejected() {
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let err = repair(&t, &e, &[99], &RepairConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            RepairError::DeadVertexOutOfRange { vertex: 99, .. }
        ));
    }

    #[test]
    fn radius_bound_is_respected() {
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let cfg = RepairConfig {
            load_cap: 1,
            max_radius: 0,
        };
        // Radius 0 can never find a home for a displaced guest.
        assert!(repair(&t, &e, &[14], &cfg).is_err());
    }
}

//! Embedding quality metrics against a concrete host.
//!
//! Everything the paper's theorems promise is a number this module can
//! measure: dilation (with a full per-edge histogram), load factor,
//! expansion, and — for condition (3′) — the fraction of guest edges whose
//! deeper image lies in the `N(a)` neighbourhood of the shallower one.

use crate::embedding::XEmbedding;
use xtree_topology::{neighborhood, Address, XTree};
use xtree_trees::BinaryTree;

/// Summary statistics of an X-tree embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddingStats {
    /// Maximum host distance over guest edges.
    pub dilation: u32,
    /// Histogram of guest-edge host distances (`histogram[d]` edges at
    /// distance `d`).
    pub dilation_histogram: Vec<usize>,
    /// Maximum guest nodes on one host vertex.
    pub max_load: u32,
    /// `|host| / |guest|`.
    pub expansion: f64,
    /// True if the embedding is one-to-one.
    pub injective: bool,
    /// Guest edges `{u, v}` (with `|δ(u)| ≤ |δ(v)|`) whose deeper image is
    /// *not* in `N(δ(u))` — condition (3′) violations. 0 for a construction
    /// that fully honours the paper's invariant.
    pub condition3_violations: usize,
    /// Guest edges whose images' levels differ by more than 2 — condition
    /// (4) violations.
    pub condition4_violations: usize,
}

/// Computes all statistics of `emb` on the X-tree host it names.
///
/// Distances use the exact closed form (`xtree_topology::analytic_distance`),
/// so evaluation is linear in the number of guest edges.
pub fn evaluate(tree: &BinaryTree, emb: &XEmbedding) -> EmbeddingStats {
    assert_eq!(
        tree.len(),
        emb.map.len(),
        "embedding does not cover the tree"
    );
    emb.validate();
    let host = XTree::new(emb.height);
    evaluate_on(tree, emb, &host)
}

/// Like [`evaluate`] but reuses an already-built host (for sweeps).
pub fn evaluate_on(tree: &BinaryTree, emb: &XEmbedding, host: &XTree) -> EmbeddingStats {
    assert_eq!(host.height(), emb.height);
    let mut histogram = Vec::new();
    let mut dilation = 0u32;
    let mut c3 = 0usize;
    let mut c4 = 0usize;
    for (u, v) in tree.edges() {
        let (a, b) = (emb.image(u), emb.image(v));
        let d = host.distance(a, b);
        dilation = dilation.max(d);
        if histogram.len() <= d as usize {
            histogram.resize(d as usize + 1, 0);
        }
        histogram[d as usize] += 1;
        let (hi, lo) = if a.level() <= b.level() {
            (a, b)
        } else {
            (b, a)
        };
        if !neighborhood::in_neighborhood(hi, lo, emb.height) {
            c3 += 1;
        }
        if u8::abs_diff(a.level(), b.level()) > 2 {
            c4 += 1;
        }
    }
    EmbeddingStats {
        dilation,
        dilation_histogram: histogram,
        max_load: emb.max_load(),
        expansion: emb.expansion(),
        injective: emb.is_injective(),
        condition3_violations: c3,
        condition4_violations: c4,
    }
}

/// Average host distance across guest edges (mean dilation) — not a bound
/// the paper states, but a useful shape metric in the comparison tables.
pub fn mean_dilation(stats: &EmbeddingStats) -> f64 {
    let total: usize = stats.dilation_histogram.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: usize = stats
        .dilation_histogram
        .iter()
        .enumerate()
        .map(|(d, &c)| d * c)
        .sum();
    weighted as f64 / total as f64
}

/// Edge congestion of an embedding: route every guest edge along the
/// deterministic shortest host path (the same smallest-id-downhill rule
/// the simulator's routers use) and count how many such routes cross each
/// undirected host edge; return the maximum. Together with dilation this
/// bounds the slowdown of a one-step simulation of the guest on the host.
///
/// Routes are computed hop by hop from the closed-form X-tree distance —
/// no per-edge BFS — and counters live in a flat `Vec` indexed by
/// [`xtree_topology::Csr::directed_edge_index`] of the edge's `(min, max)`
/// orientation, so the walk does no hashing and scales to hosts far past
/// the BFS-friendly sizes.
pub fn edge_congestion(tree: &BinaryTree, emb: &XEmbedding, host: &XTree) -> u32 {
    assert_eq!(host.height(), emb.height);
    let graph = host.graph();
    let mut usage = vec![0u32; graph.directed_edge_count()];
    for (u, v) in tree.edges() {
        let (mut at, b) = (emb.image(u), emb.image(v));
        while at != b {
            let next = xtree_topology::xtree::next_hop_towards(at, b, emb.height);
            let (lo, hi) = if at.heap_id() < next.heap_id() {
                (at, next)
            } else {
                (next, at)
            };
            let e = graph
                .directed_edge_index(lo.heap_id() as u32, hi.heap_id() as u32)
                .expect("next hop is a host neighbour");
            usage[e as usize] += 1;
            at = next;
        }
    }
    usage.into_iter().max().unwrap_or(0)
}

/// Verifies that a map covers every guest node exactly once and nothing
/// else (a total function), returning the map's image multiset size.
pub fn assert_total(tree: &BinaryTree, emb: &XEmbedding) {
    assert_eq!(
        tree.len(),
        emb.map.len(),
        "embedding must assign every guest node exactly once"
    );
}

/// The identity-style embedding used in tests: guest node `i` to the host
/// vertex with heap id `i` (requires guest ≤ host).
pub fn heap_order_embedding(tree: &BinaryTree, height: u8) -> XEmbedding {
    let host_len = (1usize << (height + 1)) - 1;
    assert!(tree.len() <= host_len, "guest does not fit");
    XEmbedding {
        height,
        map: (0..tree.len()).map(Address::from_heap_id).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_trees::generate;

    #[test]
    fn complete_tree_identity_has_dilation_one() {
        // A left-complete guest in heap order lands exactly on the X-tree's
        // own tree edges.
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let s = evaluate(&t, &e);
        assert_eq!(s.dilation, 1);
        assert_eq!(s.max_load, 1);
        assert!(s.injective);
        assert_eq!(s.condition3_violations, 0);
        assert_eq!(s.condition4_violations, 0);
        assert_eq!(s.dilation_histogram, vec![0, 14]);
    }

    #[test]
    fn path_heap_order_dilates() {
        // A guest *path* in heap order jumps across levels: dilation grows.
        let t = generate::path(15);
        let e = heap_order_embedding(&t, 3);
        let s = evaluate(&t, &e);
        assert!(s.dilation >= 2, "dilation {}", s.dilation);
        assert!(mean_dilation(&s) > 1.0);
    }

    #[test]
    fn histogram_sums_to_edges() {
        let t = generate::caterpillar(31);
        let e = heap_order_embedding(&t, 4);
        let s = evaluate(&t, &e);
        assert_eq!(s.dilation_histogram.iter().sum::<usize>(), 30);
    }

    #[test]
    fn congestion_of_identity_embedding_is_one() {
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let host = XTree::new(3);
        assert_eq!(edge_congestion(&t, &e, &host), 1);
    }

    #[test]
    fn congestion_counts_shared_links() {
        // A star-ish guest all mapped around the root: children edges all
        // cross the two root links.
        let t = generate::left_complete(7);
        let map = vec![
            Address::ROOT,
            Address::parse("0").unwrap(),
            Address::parse("1").unwrap(),
            Address::parse("0").unwrap(),
            Address::parse("0").unwrap(),
            Address::parse("1").unwrap(),
            Address::parse("1").unwrap(),
        ];
        let e = XEmbedding { height: 1, map };
        let host = XTree::new(1);
        // Edges 1-3, 1-4 stay on vertex "0" (no links); 0-1 and 0-2 use the
        // two distinct root links once each.
        assert_eq!(edge_congestion(&t, &e, &host), 1);
    }

    #[test]
    fn all_on_root_is_degenerate_but_valid() {
        let t = generate::path(5);
        let e = XEmbedding {
            height: 2,
            map: vec![Address::ROOT; 5],
        };
        let s = evaluate(&t, &e);
        assert_eq!(s.dilation, 0);
        assert_eq!(s.max_load, 5);
        assert!(!s.injective);
        assert_eq!(s.condition3_violations, 0);
    }
}

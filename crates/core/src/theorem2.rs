//! Theorem 2: the injective embedding.
//!
//! Given the Theorem-1 embedding `δ` (load 16, dilation 3) into `X(r)`,
//! define `χ(u) = δ(u) · μ` in `X(r + 4)`, where the 16 guest nodes sharing
//! a host vertex receive the 16 distinct 4-bit suffixes `μ`. For a guest
//! edge, the images are connected by climbing 4 levels, following the
//! length-≤3 `δ` path, and descending 4 levels: dilation `4 + 3 + 4 = 11`.
//!
//! The transform is generic: any load-≤16 embedding with dilation `d`
//! becomes an injective embedding into `X(r+4)` with dilation ≤ `d + 8`.

use crate::embedding::XEmbedding;

/// Blows up each host vertex of a load-≤16 embedding into the 16 depth-4
/// descendants, yielding an injective embedding into `X(height + 4)`.
///
/// # Panics
/// Panics if some host vertex carries more than 16 guest nodes.
pub fn injectivize(emb: &XEmbedding) -> XEmbedding {
    let mut used = vec![0u8; emb.host_len()];
    let map = emb
        .map
        .iter()
        .map(|&a| {
            let slot = used[a.heap_id()];
            assert!(slot < 16, "load exceeds 16 at vertex {a}");
            used[a.heap_id()] += 1;
            // Append the 4-bit suffix: two levels of child(bit) twice.
            let mut b = a;
            for k in (0..4).rev() {
                b = b.child((slot >> k) & 1);
            }
            b
        })
        .collect();
    XEmbedding {
        height: emb.height + 4,
        map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, heap_order_embedding};
    use xtree_topology::Address;
    use xtree_trees::generate;

    #[test]
    fn becomes_injective() {
        // All 32 nodes of a path on one X(1) vertex pair, load 16.
        let _ = generate::path(32);
        let a0 = Address::parse("0").unwrap();
        let a1 = Address::parse("1").unwrap();
        let mut map = vec![a0; 16];
        map.extend(vec![a1; 16]);
        let e = XEmbedding { height: 1, map };
        let inj = injectivize(&e);
        assert_eq!(inj.height, 5);
        assert!(inj.is_injective());
        inj.validate();
    }

    #[test]
    fn images_stay_below_original() {
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let inj = injectivize(&e);
        for (i, &b) in inj.map.iter().enumerate() {
            let a = e.map[i];
            assert_eq!(b.level(), a.level() + 4);
            assert!(a.is_ancestor_of(b), "{a} not an ancestor of {b}");
        }
    }

    #[test]
    fn dilation_grows_by_at_most_eight() {
        // Heap-order complete tree has dilation 1; the blown-up embedding
        // must stay ≤ 9 (and in fact much lower since suffixes are near).
        let t = generate::left_complete(31);
        let e = heap_order_embedding(&t, 4);
        let base = evaluate(&t, &e);
        let inj = injectivize(&e);
        let s = evaluate(&t, &inj);
        assert!(s.injective);
        assert!(
            s.dilation <= base.dilation + 8,
            "dilation {} > {} + 8",
            s.dilation,
            base.dilation
        );
    }

    #[test]
    fn distinct_suffixes_per_vertex() {
        let map = vec![Address::ROOT; 16];
        let e = XEmbedding { height: 0, map };
        let inj = injectivize(&e);
        let mut suffixes: Vec<u64> = inj.map.iter().map(|b| b.index() & 0xf).collect();
        suffixes.sort_unstable();
        assert_eq!(suffixes, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "load exceeds 16")]
    fn rejects_load_17() {
        let e = XEmbedding {
            height: 0,
            map: vec![Address::ROOT; 17],
        };
        let _ = injectivize(&e);
    }
}

//! Theorem 1 — algorithm X-TREE: embedding an arbitrary binary tree with
//! `n = 16·(2^{r+1} − 1)` nodes into the X-tree `X(r)` with load factor 16
//! and (per the paper) dilation 3 at optimal expansion.
//!
//! The construction builds the embedding level by level. Round `i` first
//! runs ADJUST on every sibling pair of regions (shifting interval mass
//! across horizontal boundary edges, guided by Lemma 2) and then SPLIT
//! on every level-(i−1) vertex (distributing intervals over its children,
//! laying out due designated nodes, and filling every level-i vertex to
//! exactly 16 guest nodes). See the module docs of `adjust` and `split`
//! for the procedure details and the documented deviations from the
//! extended abstract's (partly omitted) bookkeeping.
//!
//! The builder measures everything the paper claims: the resulting
//! dilation and load come from [`crate::metrics::evaluate`]; the
//! convergence quantity Δ(j, i) is traced per round; and the
//! [`BuildLog`] exposes how often each mechanism (whole moves, splits,
//! spills, borrows) fired.

mod adjust;
mod split;
mod state;
mod trace;

pub use state::{BuildLog, EmbedOptions, Parallel, Theorem1Scratch};
pub use trace::paper_bound;

use crate::embedding::XEmbedding;
use state::{AttachRule, Builder};
use xtree_topology::Address;
use xtree_trees::{BinaryTree, NodeId};

/// The Theorem-1 construction result: the embedding plus its measured
/// convergence trace and construction log.
#[derive(Clone, Debug)]
pub struct Theorem1Embedding {
    /// The produced embedding (host = optimal X-tree for load 16).
    pub emb: XEmbedding,
    /// `trace[i][j] = Δ(j, i+1)`… indexed `trace[i-1][j]` for round `i`.
    pub trace: Vec<Vec<u64>>,
    /// Mechanism counters.
    pub log: BuildLog,
    /// `(nl, nh)` per round: extreme associated masses over the round's
    /// leaves (the paper's `nl(i,i)` / `nh(i,i)`).
    pub mass_trace: Vec<(u64, u64)>,
}

/// The height of the optimal X-tree host for `n` guest nodes at load 16.
pub fn optimal_height(n: usize) -> u8 {
    optimal_height_cap(n, 16)
}

/// The optimal host height at an arbitrary per-vertex capacity: the
/// smallest `r` with `cap·(2^{r+1} − 1) ≥ n`. Rearranging,
/// `2^{r+1} ≥ ⌈n/cap⌉ + 1`, whose smallest solution is `r = ⌊log₂ q⌋`
/// for `q = ⌈n/cap⌉ ≥ 2` (and `r = 0` below that) — O(1) instead of the
/// old linear probe loop (pinned against it by a unit test over 1..=2^20).
pub fn optimal_height_cap(n: usize, cap: u16) -> u8 {
    let q = n.div_ceil(cap as usize);
    if q <= 1 {
        0
    } else {
        q.ilog2() as u8
    }
}

/// True if `n` is one of the sizes `16·(2^{r+1} − 1)` for which Theorem 1
/// is stated (load exactly 16 on every host vertex, optimal expansion).
pub fn is_exact_size(n: usize) -> bool {
    is_exact_size_cap(n, 16)
}

/// Exact-size check at an arbitrary capacity.
pub fn is_exact_size_cap(n: usize, cap: u16) -> bool {
    n == cap as usize * ((1usize << (optimal_height_cap(n, cap) + 1)) - 1)
}

/// Runs algorithm X-TREE on `tree`, embedding it into its optimal X-tree.
///
/// For the exact Theorem-1 sizes every host vertex ends with exactly 16
/// guest nodes. Other sizes (an engineering extension — the paper states
/// the theorem for exact sizes only) are handled by padding the guest with
/// a dummy path up to the next exact size, embedding, and dropping the
/// dummies: the dilation bound transfers unchanged, the load stays ≤ 16,
/// and the host is still the optimal X-tree for `n` at load 16.
pub fn embed(tree: &BinaryTree) -> Theorem1Embedding {
    embed_with(tree, EmbedOptions::default())
}

/// Like [`embed`], with the construction's mechanisms individually
/// switchable — the knob behind the ablation experiments (A1).
pub fn embed_with(tree: &BinaryTree, opts: EmbedOptions) -> Theorem1Embedding {
    embed_with_scratch(tree, opts, &mut Theorem1Scratch::new())
}

/// Like [`embed_with`], building on top of a reusable [`Theorem1Scratch`].
///
/// Repeated builds through one scratch skip every per-build buffer
/// allocation (the hot path of a serving cache miss); the produced
/// embedding is byte-identical to a fresh-scratch build. The scratch is
/// handed back ready for the next call, whatever tree size that is.
pub fn embed_with_scratch(
    tree: &BinaryTree,
    opts: EmbedOptions,
    scratch: &mut Theorem1Scratch,
) -> Theorem1Embedding {
    let n = tree.len();
    let cap = opts.capacity;
    assert!(cap >= 1, "capacity must be ≥ 1");
    if !is_exact_size_cap(n, cap) {
        let target = cap as usize * ((1usize << (optimal_height_cap(n, cap) + 1)) - 1);
        let mut padded = tree.clone();
        // Hang the dummy path off a leaf (ids n.. are all dummies).
        let mut tip = padded
            .nodes()
            .find(|&v| padded.children(v).is_empty())
            .unwrap();
        for _ in n..target {
            tip = padded.add_child(tip);
        }
        let mut res = embed_exact(&padded, opts, scratch);
        res.emb.map.truncate(n);
        return res;
    }
    embed_exact(tree, opts, scratch)
}

fn embed_exact(
    tree: &BinaryTree,
    opts: EmbedOptions,
    scratch: &mut Theorem1Scratch,
) -> Theorem1Embedding {
    let n = tree.len();
    let r = optimal_height_cap(n, opts.capacity);
    let mut b = Builder::new(tree, r, opts, scratch);

    // δ_0: lay out a connected block of up to `capacity` nodes on the root
    // ε and attach everything else there.
    let block = bfs_block(tree, tree.root(), (opts.capacity as usize).min(n));
    for &v in &block {
        b.place(v, Address::ROOT);
    }
    b.rebuild_components(&block, AttachRule::Fixed(Address::ROOT));

    // embed_with pads every guest to an exact size first, so embed_exact
    // only ever sees exact sizes: every vertex must fill completely.
    debug_assert!(is_exact_size_cap(n, opts.capacity));
    for i in 1..=r {
        adjust::adjust_phase(&mut b, i);
        split::split_phase(&mut b, i);
        trace::record_round(&mut b, i);
        #[cfg(debug_assertions)]
        b.check_round_invariants(i, true);
    }

    // Every node must be placed and every vertex completely filled.
    assert_eq!(b.total_unplaced(), 0, "algorithm left guest nodes unplaced");
    assert!(b.all_full(), "exact-size guest must fill every host vertex");
    let (map, log, trace, mass_trace) = b.finish(scratch);
    Theorem1Embedding {
        emb: XEmbedding { height: r, map },
        trace,
        log,
        mass_trace,
    }
}

/// A connected block of `k` nodes grown breadth-first from `start`.
fn bfs_block(tree: &BinaryTree, start: NodeId, k: usize) -> Vec<NodeId> {
    let mut out = vec![start];
    let mut seen = vec![false; tree.len()];
    seen[start.index()] = true;
    let mut head = 0;
    while out.len() < k {
        let v = out[head];
        head += 1;
        for w in tree.neighbors(v) {
            if out.len() == k {
                break;
            }
            if !seen[w.index()] {
                seen[w.index()] = true;
                out.push(w);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xtree_trees::generate::{self, theorem1_size, TreeFamily};

    #[test]
    fn optimal_height_cap_matches_probe_loop() {
        // The closed form replaced a linear probe; pin exact agreement with
        // the old loop over every n up to 2^20 at several capacities.
        fn probe(n: usize, cap: u16) -> u8 {
            let mut r = 0u8;
            while cap as usize * ((1usize << (r + 1)) - 1) < n {
                r += 1;
            }
            r
        }
        for cap in [1u16, 3, 16] {
            for n in 1..=(1usize << 20) {
                assert_eq!(optimal_height_cap(n, cap), probe(n, cap), "n={n} cap={cap}");
            }
        }
    }

    #[test]
    fn optimal_height_and_exact_sizes() {
        assert_eq!(optimal_height(16), 0);
        assert_eq!(optimal_height(17), 1);
        assert!(is_exact_size(16));
        assert!(is_exact_size(48));
        assert!(is_exact_size(240));
        assert!(!is_exact_size(100));
        assert_eq!(theorem1_size(4), 16 * 31);
    }

    #[test]
    fn trivial_r0() {
        let t = generate::path(16);
        let res = embed(&t);
        assert_eq!(res.emb.height, 0);
        let s = evaluate(&t, &res.emb);
        assert_eq!(s.dilation, 0);
        assert_eq!(s.max_load, 16);
    }

    #[test]
    fn r1_all_families() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for family in TreeFamily::ALL {
            let t = family.generate(theorem1_size(1), &mut rng);
            let res = embed(&t);
            let s = evaluate(&t, &res.emb);
            assert_eq!(s.max_load, 16, "{family:?}");
            assert!(s.dilation <= 4, "{family:?}: dilation {}", s.dilation);
        }
    }

    #[test]
    fn r3_paths_and_complete() {
        for t in [generate::path(240), generate::left_complete(240)] {
            let res = embed(&t);
            let s = evaluate(&t, &res.emb);
            assert_eq!(s.max_load, 16);
            assert!((s.expansion - 15.0 / 240.0).abs() < 1e-9);
            assert!(s.dilation <= 4, "dilation {}", s.dilation);
        }
    }

    #[test]
    fn r4_random_trees_small_dilation() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for family in TreeFamily::ALL {
            let t = family.generate(theorem1_size(4), &mut rng);
            let res = embed(&t);
            let s = evaluate(&t, &res.emb);
            assert_eq!(s.max_load, 16, "{family:?}");
            assert!(
                s.dilation <= 5,
                "{family:?}: dilation {} (histogram {:?})",
                s.dilation,
                s.dilation_histogram
            );
        }
    }

    #[test]
    fn non_exact_sizes_still_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for n in [17usize, 100, 200, 333] {
            let t = generate::random_bst(n, &mut rng);
            let res = embed(&t);
            let s = evaluate(&t, &res.emb);
            assert!(s.max_load <= 16, "n={n}");
            assert_eq!(res.emb.map.len(), n);
        }
    }

    #[test]
    fn trace_rows_have_expected_shape() {
        let t = generate::left_complete(theorem1_size(3));
        let res = embed(&t);
        assert_eq!(res.trace.len(), 3);
        for (idx, row) in res.trace.iter().enumerate() {
            assert_eq!(row.len(), idx + 2); // round i = idx+1 has j = 0..=i
        }
    }
}

//! Measurement of the paper's convergence quantity `Δ(j, i)`.
//!
//! After round `i`, `A_i(α)` is the number of guest nodes *associated* with
//! the subtree of `α` — placed in it or attached below it. Since every
//! vertex of levels `≤ i` carries exactly 16 placed nodes, sibling
//! differences come entirely from the attached interval mass, and
//!
//! `Δ(j, i) = max_{|α| = j−1} ½ · | A_i(α0) − A_i(α1) |`.
//!
//! The paper proves `Δ(j, i) ≤ 2^{r+j+3−2i}` (for `j < i`,
//! `2i ≤ r+j+1`) and `Δ(j, i) = 0` once `2i ≥ r+j+2`; the experiment
//! harness compares this measured trace with that bound.

use super::state::Builder;
use xtree_topology::Address;

/// Records the paper's `nl(i, i)` / `nh(i, i)` — the extreme *associated*
/// masses (placed + attached) over the new leaves — at the moment SPLIT
/// has assigned and forced but not yet filled. The paper's estimate
/// `nl(i, i) ≥ n_{r−i} − a(i, i) ≥ 16` is exactly what guarantees the
/// fill can reach 16 from local mass; the measured trace verifies it.
pub(crate) fn record_mass(b: &mut Builder<'_>, i: u8) {
    let (mut nl, mut nh) = (u64::MAX, 0u64);
    for a in Address::level_iter(i) {
        let associated = u64::from(b.count(a)) + b.attached_mass(a);
        nl = nl.min(associated);
        nh = nh.max(associated);
    }
    b.mass_trace.push((nl, nh));
}

/// Records `trace[i][j] = Δ(j, i)` for `0 ≤ j ≤ i` after round `i`.
pub(crate) fn record_round(b: &mut Builder<'_>, i: u8) {
    // Leaf-level attached masses.
    let width = 1usize << i;
    let mut level: Vec<u64> = Address::level_iter(i).map(|a| b.attached_mass(a)).collect();
    let mut row = vec![0u64; i as usize + 1];
    // Reduce level by level; at each step, record sibling half-differences.
    for j in (1..=i).rev() {
        let parents = width >> (i - j + 1);
        let mut next = vec![0u64; parents];
        let mut worst = 0u64;
        for (p, slot) in next.iter_mut().enumerate() {
            let a = level[2 * p];
            let c = level[2 * p + 1];
            *slot = a + c;
            worst = worst.max(a.abs_diff(c) / 2);
        }
        row[j as usize] = worst;
        level = next;
    }
    debug_assert_eq!(b.trace.len(), i as usize - 1, "one trace row per round");
    b.trace.push(row);
}

/// The paper's bound on `Δ(j, i)` for the X-tree of height `r`; `None`
/// encodes "no bound claimed" (the `j = i` row before convergence).
pub fn paper_bound(r: u8, j: u8, i: u8) -> Option<u64> {
    let (r, j, i) = (i64::from(r), i64::from(j), i64::from(i));
    if 2 * i >= r + j + 2 {
        return Some(0);
    }
    if j < i && 2 * i <= r + j + 1 {
        // Δ(j, i) ≤ 2^{r+j+3−2i}
        return Some(1u64 << (r + j + 3 - 2 * i).max(0));
    }
    if j == i && i <= r {
        // Diagonal: the extended abstract's Δ(i,i) display is garbled in
        // the only available scan; one ⌊(Δ+4)/9⌋ fine-balance split of the
        // parent-region mass (≈ 16·2^{r+2−i} nodes) yields Δ(i,i) ≲
        // (16/18)·2^{r+2−i}, so we take 2^{r+2−i} as the reference bound.
        return Some(1u64 << (r + 2 - i).max(0));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_vanishes_when_converged() {
        assert_eq!(paper_bound(8, 0, 5), Some(0)); // 2i = 10 ≥ r + j + 2 = 10
        assert_eq!(paper_bound(8, 2, 6), Some(0));
        assert_eq!(paper_bound(8, 6, 8), Some(0));
    }

    #[test]
    fn bound_decays_geometrically_in_i() {
        // For fixed j, each extra round divides the bound by 4.
        let b1 = paper_bound(10, 2, 4).unwrap();
        let b2 = paper_bound(10, 2, 5).unwrap();
        assert_eq!(b1, 4 * b2);
    }

    #[test]
    fn bound_is_monotone_in_j() {
        for j in 0..4u8 {
            let a = paper_bound(10, j, 5).unwrap();
            let b = paper_bound(10, j + 1, 5).unwrap();
            assert!(a <= b);
        }
    }
}

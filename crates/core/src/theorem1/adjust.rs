//! The ADJUST procedure of algorithm X-TREE.
//!
//! In round `i`, for every internal vertex `α` on levels `0..=i−2`, the two
//! sibling regions below `α0` and `α1` are rebalanced by shifting interval
//! mass across the *horizontal* edge between the two boundary leaves — the
//! rightmost level-(i−1) descendant of the donor and the leftmost of the
//! recipient. Whole intervals are moved first (their designated nodes keep
//! their anchors and are laid out next to the boundary in the following
//! SPLIT), and at most one Lemma-2 split extracts the exact remainder,
//! laying its boundary sets out on the two *level-i* boundary leaves
//! (`a01^{i−1−|α|}` and `a10^{i−1−|α|}` in the paper's notation).
//!
//! Deviation (documented in DESIGN.md): the paper's case analysis
//! ("one interval of ≥ Δ nodes, or two intervals of ≥ 4Δ/3 total") relies
//! on mass bounds whose proof the extended abstract omits; we use
//! greedy largest-first whole moves plus one Lemma-2 split, which realises
//! the same Δ-reduction whenever the boundary leaf holds enough movable
//! mass, and otherwise shifts what is there (the shortfall shows up in the
//! measured Δ(j, i) trace).
//!
//! Execution model (DESIGN.md §13): every sweep runs in two phases. The
//! **decide** phase computes, per sibling pair, which intervals to move
//! and the (at most one) Lemma-2 separation — reading only that pair's
//! disjoint region, so the decisions can be computed on worker threads.
//! The **apply** phase commits the plans serially in pair order, which
//! makes serial and parallel execution byte-identical. Leaf masses come
//! from a per-sweep prefix-sum snapshot over a plain array (replacing the
//! old Fenwick tree): within one sweep, another pair's moves stay inside
//! its own index range, so the snapshot equals what live queries would
//! return.

use super::state::{Builder, IntId, Parallel};
use rayon::prelude::*;
use smallvec::SmallVec;
use xtree_topology::Address;
use xtree_trees::{lemma2_with, Separation, SeparatorScratch};

/// Auto-parallel gate: a sweep goes parallel only with at least this many
/// sibling pairs (the workspace rayon spawns scoped threads per call, so
/// tiny sweeps lose more to thread start-up than they gain) …
const PAR_MIN_PAIRS: usize = 4;
/// … and at least this much un-placed mass on the level (the decide cost
/// is proportional to the mass the lemma calls traverse).
const PAR_MIN_SWEEP_MASS: i64 = 1 << 16;

/// What one sibling pair decided to do, computed read-only in phase one
/// and committed in phase two.
struct PairPlan {
    /// Donor boundary leaf (level i−1) the moves detach from.
    bd: Address,
    /// Recipient boundary leaf (level i−1), for the mass bookkeeping.
    br: Address,
    /// Level-i boundary leaves where a split lays out its boundary sets.
    d0: Address,
    r0: Address,
    /// Whole-interval moves, in selection order.
    whole: SmallVec<[IntId; 8]>,
    /// At most one Lemma-2 split of the residual imbalance.
    split: Option<(IntId, Separation)>,
}

/// Runs the full ADJUST sweep of round `i` (no-op for `i < 2`).
pub(crate) fn adjust_phase(b: &mut Builder<'_>, i: u8) {
    if i < 2 || !b.opts.adjust {
        return;
    }
    let l = i - 1; // level of the current attachment leaves
    let width = 1usize << l;
    // Live leaf masses, updated as plans are applied. Equals the old
    // Fenwick state: whole moves transfer the interval size, splits
    // transfer |part2| (boundary nodes placed at level i included).
    let mut mass = std::mem::take(&mut b.s.mass_buf);
    mass.clear();
    mass.extend(Address::level_iter(l).map(|a| b.attached_mass(a) as i64));
    let mut prefix = std::mem::take(&mut b.s.prefix_buf);
    let mut pairs = std::mem::take(&mut b.s.pairs_buf);
    for j in 0..=(i - 2) {
        // Per-sweep snapshot of the leaf masses as prefix sums.
        prefix.clear();
        prefix.push(0);
        for k in 0..width {
            prefix.push(prefix[k] + mass[k]);
        }
        pairs.clear();
        pairs.extend(Address::level_iter(j));
        let use_par = match b.opts.parallel {
            Parallel::Off => false,
            Parallel::Force => true,
            Parallel::Auto => pairs.len() >= PAR_MIN_PAIRS && prefix[width] >= PAR_MIN_SWEEP_MASS,
        };
        let plans: Vec<Option<PairPlan>> = if use_par {
            let bb: &Builder<'_> = b;
            let prefix_ref: &[i64] = &prefix;
            pairs
                .par_iter()
                .map(|&alpha| {
                    let mut scr = bb.pop_par_scratch();
                    let plan = decide(bb, prefix_ref, alpha, i, &mut scr);
                    bb.push_par_scratch(scr);
                    plan
                })
                .collect()
        } else {
            let mut scr = std::mem::take(&mut b.s.sep_scratch);
            let v = pairs
                .iter()
                .map(|&alpha| decide(b, &prefix, alpha, i, &mut scr))
                .collect();
            b.s.sep_scratch = scr;
            v
        };
        #[cfg(debug_assertions)]
        assert_plans_disjoint(&plans);
        for plan in plans.into_iter().flatten() {
            apply_plan(b, plan, &mut mass);
        }
    }
    b.s.mass_buf = mass;
    b.s.prefix_buf = prefix;
    b.s.pairs_buf = pairs;
}

/// Movable intervals are the "natives" of the boundary leaf: all anchors at
/// the leaf itself or its father. Intervals previously shifted across a
/// boundary keep distant anchors and must not be dragged further.
fn movable(b: &Builder<'_>, id: IntId, bd: Address) -> bool {
    let parent = bd.parent();
    b.interval(id)
        .designated
        .iter()
        .all(|&(_, anchor)| anchor == bd || Some(anchor) == parent)
}

/// Phase one: decides what the pair under `alpha` moves, reading only
/// state inside `alpha`'s region (plus the per-sweep mass snapshot), so
/// concurrent decides of one sweep never observe each other.
fn decide(
    b: &Builder<'_>,
    prefix: &[i64],
    alpha: Address,
    i: u8,
    scr: &mut SeparatorScratch,
) -> Option<PairPlan> {
    let l = i - 1;
    let a0 = alpha.child(0);
    let a1 = alpha.child(1);
    let range = |side: Address| {
        (
            side.leftmost_descendant(l).index() as usize,
            side.rightmost_descendant(l).index() as usize,
        )
    };
    let (lo0, hi0) = range(a0);
    let (lo1, hi1) = range(a1);
    let m0 = prefix[hi0 + 1] - prefix[lo0];
    let m1 = prefix[hi1 + 1] - prefix[lo1];
    let delta = (m0 - m1).abs() / 2;
    if delta == 0 {
        return None;
    }
    let donor_left = m0 > m1;
    // Boundary leaves on level i−1, horizontally adjacent across the split.
    let (bd, br) = if donor_left {
        (a0.rightmost_descendant(l), a1.leftmost_descendant(l))
    } else {
        (a1.leftmost_descendant(l), a0.rightmost_descendant(l))
    };
    debug_assert!(bd.successor() == Some(br) || br.successor() == Some(bd));
    // Level-i boundary leaves where designated nodes are laid out.
    let (d0, r0) = if donor_left {
        (bd.child(1), br.child(0))
    } else {
        (bd.child(0), br.child(1))
    };

    // Simulate the selection loop on a copy of the donor's attachment
    // list, mirroring the legacy removal order exactly (swap_remove, and
    // max_by_key keeping the *last* maximum).
    let mut local: SmallVec<[IntId; 16]> = b.att_list(bd).iter().copied().collect();
    let mut whole: SmallVec<[IntId; 8]> = SmallVec::new();
    let mut split = None;
    let mut remaining = delta as u64;
    loop {
        if remaining == 0 {
            break;
        }
        // Largest movable native still attached to the donor boundary leaf.
        let Some((pos, id)) = local
            .iter()
            .enumerate()
            .filter(|&(_, &id)| movable(b, id, bd))
            .max_by_key(|&(_, &id)| b.interval(id).size)
            .map(|(p, &id)| (p, id))
        else {
            break;
        };
        let size = b.interval(id).size as u64;
        if size <= remaining && b.opts.whole_moves {
            // Whole move: attachment crosses the boundary, anchors stay.
            let last = local.len() - 1;
            local.as_mut_slice().swap(pos, last);
            local.pop();
            whole.push(id);
            remaining -= size;
        } else {
            // One Lemma-2 split extracts the exact remainder. Boundary
            // sets need up to 5 slots per leaf; tiny capacities (the A2
            // ablation sweeps them) simply skip the split.
            if b.free(d0) < 5 || b.free(r0) < 5 {
                break;
            }
            let iv = b.interval(id);
            let (r1, r2) = iv.lemma_designated();
            // Lemma 2 needs Δ ≤ |piece|. The interval can be smaller than
            // the residual imbalance when whole moves are disabled (the A1
            // ablation): clamp, which turns the split into a lemma-driven
            // whole move of this interval.
            let delta = remaining.min(size) as u32;
            let sep = lemma2_with(scr, b.tree, &b.s.placed, r1, r2, delta);
            split = Some((id, sep));
            break;
        }
    }
    Some(PairPlan {
        bd,
        br,
        d0,
        r0,
        whole,
        split,
    })
}

/// Phase two: commits one pair's plan. Runs serially in pair order, so the
/// attachment-list mutations happen in exactly the legacy sequence.
fn apply_plan(b: &mut Builder<'_>, plan: PairPlan, mass: &mut [i64]) {
    b.log.adjust_calls += 1;
    let bdi = plan.bd.index() as usize;
    let bri = plan.br.index() as usize;
    for &id in &plan.whole {
        let pos = b
            .att_list(plan.bd)
            .iter()
            .position(|&x| x == id)
            .expect("planned whole move vanished");
        b.detach_swap(plan.bd, pos);
        let size = b.interval(id).size as i64;
        b.attach(id, plan.r0);
        mass[bdi] -= size;
        mass[bri] += size;
        b.log.adjust_whole_moves += 1;
    }
    if let Some((id, sep)) = plan.split {
        let pos = b
            .att_list(plan.bd)
            .iter()
            .position(|&x| x == id)
            .expect("planned split vanished");
        b.detach_swap(plan.bd, pos);
        let moved = sep.part2.len() as i64;
        b.apply_separation(id, &sep, plan.d0, plan.r0, plan.d0, plan.r0);
        mass[bdi] -= moved;
        mass[bri] += moved;
        b.log.adjust_splits += 1;
    }
}

/// Debug check of the disjointness argument the parallel decide rests on:
/// no interval may be claimed by two pairs of the same sweep, and no two
/// pairs may share a boundary leaf.
#[cfg(debug_assertions)]
fn assert_plans_disjoint(plans: &[Option<PairPlan>]) {
    let mut ids = std::collections::HashSet::new();
    let mut leaves = std::collections::HashSet::new();
    for plan in plans.iter().flatten() {
        assert!(
            leaves.insert(plan.bd) && leaves.insert(plan.br),
            "ADJUST pairs share a boundary leaf"
        );
        for &id in &plan.whole {
            assert!(ids.insert(id), "interval {id} claimed by two ADJUST pairs");
        }
        if let Some((id, _)) = plan.split {
            assert!(ids.insert(id), "interval {id} claimed by two ADJUST pairs");
        }
    }
}

//! The ADJUST procedure of algorithm X-TREE.
//!
//! In round `i`, for every internal vertex `α` on levels `0..=i−2`, the two
//! sibling regions below `α0` and `α1` are rebalanced by shifting interval
//! mass across the *horizontal* edge between the two boundary leaves — the
//! rightmost level-(i−1) descendant of the donor and the leftmost of the
//! recipient. Whole intervals are moved first (their designated nodes keep
//! their anchors and are laid out next to the boundary in the following
//! SPLIT), and at most one Lemma-2 split extracts the exact remainder,
//! laying its boundary sets out on the two *level-i* boundary leaves
//! (`a01^{i−1−|α|}` and `a10^{i−1−|α|}` in the paper's notation).
//!
//! Deviation (documented in DESIGN.md): the paper's case analysis
//! ("one interval of ≥ Δ nodes, or two intervals of ≥ 4Δ/3 total") relies
//! on mass bounds whose proof the extended abstract omits; we use
//! greedy largest-first whole moves plus one Lemma-2 split, which realises
//! the same Δ-reduction whenever the boundary leaf holds enough movable
//! mass, and otherwise shifts what is there (the shortfall shows up in the
//! measured Δ(j, i) trace).

use super::state::{Builder, IntId};
use xtree_topology::Address;
use xtree_trees::lemma2_with;

/// A Fenwick (binary indexed) tree over the leaf masses of the current
/// round, supporting point updates as ADJUST moves intervals around.
pub(crate) struct Fenwick {
    t: Vec<i64>,
}

impl Fenwick {
    pub fn new(n: usize) -> Self {
        Fenwick { t: vec![0; n + 1] }
    }

    pub fn add(&mut self, mut idx: usize, delta: i64) {
        idx += 1;
        while idx < self.t.len() {
            self.t[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
    }

    fn prefix(&self, mut idx: usize) -> i64 {
        let mut s = 0;
        while idx > 0 {
            s += self.t[idx];
            idx -= idx & idx.wrapping_neg();
        }
        s
    }

    /// Sum over `lo..=hi` (inclusive).
    pub fn range(&self, lo: usize, hi: usize) -> i64 {
        self.prefix(hi + 1) - self.prefix(lo)
    }
}

/// Runs the full ADJUST sweep of round `i` (no-op for `i < 2`).
pub(crate) fn adjust_phase(b: &mut Builder<'_>, i: u8) {
    if i < 2 || !b.opts.adjust {
        return;
    }
    let l = i - 1; // level of the current attachment leaves
    let width = 1usize << l;
    let mut fw = Fenwick::new(width);
    for a in Address::level_iter(l) {
        let m = b.attached_mass(a);
        if m > 0 {
            fw.add(a.index() as usize, m as i64);
        }
    }
    for j in 0..=(i - 2) {
        for alpha in Address::level_iter(j) {
            adjust_pair(b, &mut fw, alpha, i);
        }
    }
}

/// Movable intervals are the "natives" of the boundary leaf: all anchors at
/// the leaf itself or its father. Intervals previously shifted across a
/// boundary keep distant anchors and must not be dragged further.
fn movable(b: &Builder<'_>, id: IntId, bd: Address) -> bool {
    let parent = bd.parent();
    b.interval(id)
        .designated
        .iter()
        .all(|&(_, anchor)| anchor == bd || Some(anchor) == parent)
}

fn adjust_pair(b: &mut Builder<'_>, fw: &mut Fenwick, alpha: Address, i: u8) {
    let l = i - 1;
    let a0 = alpha.child(0);
    let a1 = alpha.child(1);
    let range = |side: Address| {
        (
            side.leftmost_descendant(l).index() as usize,
            side.rightmost_descendant(l).index() as usize,
        )
    };
    let (lo0, hi0) = range(a0);
    let (lo1, hi1) = range(a1);
    let m0 = fw.range(lo0, hi0);
    let m1 = fw.range(lo1, hi1);
    let delta = (m0 - m1).abs() / 2;
    if delta == 0 {
        return;
    }
    let donor_left = m0 > m1;
    // Boundary leaves on level i−1, horizontally adjacent across the split.
    let (bd, br) = if donor_left {
        (a0.rightmost_descendant(l), a1.leftmost_descendant(l))
    } else {
        (a1.leftmost_descendant(l), a0.rightmost_descendant(l))
    };
    debug_assert!(bd.successor() == Some(br) || br.successor() == Some(bd));
    // Level-i boundary leaves where designated nodes are laid out.
    let (d0, r0) = if donor_left {
        (bd.child(1), br.child(0))
    } else {
        (bd.child(0), br.child(1))
    };
    b.log.adjust_calls += 1;

    let mut remaining = delta as u64;
    loop {
        if remaining == 0 {
            break;
        }
        // Largest movable native still attached to the donor boundary leaf.
        let Some((pos, id)) = b
            .att
            .get(&bd)
            .into_iter()
            .flatten()
            .enumerate()
            .filter(|&(_, &id)| movable(b, id, bd))
            .max_by_key(|&(_, &id)| b.interval(id).size)
            .map(|(p, &id)| (p, id))
        else {
            break;
        };
        let size = b.interval(id).size as u64;
        if size <= remaining && b.opts.whole_moves {
            // Whole move: attachment crosses the boundary, anchors stay.
            b.att.get_mut(&bd).unwrap().swap_remove(pos);
            b.attach(id, r0);
            fw.add(bd.index() as usize, -(size as i64));
            fw.add(br.index() as usize, size as i64);
            remaining -= size;
            b.log.adjust_whole_moves += 1;
        } else {
            // One Lemma-2 split extracts the exact remainder. Boundary
            // sets need up to 5 slots per leaf; tiny capacities (the A2
            // ablation sweeps them) simply skip the split.
            if b.free(d0) < 5 || b.free(r0) < 5 {
                break;
            }
            let iv = b.interval(id);
            let (r1, r2) = iv.lemma_designated();
            // Lemma 2 needs Δ ≤ |piece|. The interval can be smaller than
            // the residual imbalance when whole moves are disabled (the A1
            // ablation): clamp, which turns the split into a lemma-driven
            // whole move of this interval.
            let delta = remaining.min(size) as u32;
            let sep = lemma2_with(&mut b.scratch, b.tree, &b.placed, r1, r2, delta);
            b.att.get_mut(&bd).unwrap().swap_remove(pos);
            let moved = sep.part2.len() as i64;
            b.apply_separation(id, &sep, d0, r0, d0, r0);
            fw.add(bd.index() as usize, -moved);
            fw.add(br.index() as usize, moved);
            b.log.adjust_splits += 1;
            break;
        }
    }
}

//! Mutable construction state of the Theorem-1 embedding.
//!
//! The builder tracks, at every moment of algorithm X-TREE:
//!
//! * which guest nodes are *placed* (`δ_i` is defined on them) and where;
//! * how many guest nodes each host vertex carries (capacity 16, strict);
//! * the live **intervals** — the connected fragments of un-placed guest
//!   nodes. Each interval knows its *designated nodes* (fragment nodes with
//!   an already-placed neighbour) together with each designated node's
//!   **anchor**: the host vertex carrying that placed neighbour. The paper
//!   keeps one *characteristic address* per interval (condition (6)); we
//!   generalise to one anchor per designated node, which stays meaningful
//!   when the capacity-driven fill of SPLIT splits fragments unevenly.
//! * the **attachment** of every interval to a host vertex (the paper's
//!   `p_i` maps).
//!
//! Storage layout (DESIGN.md §13): all per-vertex state — attachment
//! lists, attached mass, placement counts — lives in flat arrays indexed
//! by the host's dense heap numbering, and the interval slab recycles
//! slots through a free list, so a build performs no per-round
//! allocation. Everything recyclable sits in a [`Theorem1Scratch`] that
//! can be carried from one build to the next (the serving layer pools one
//! per worker thread); the algorithm's outputs are invariant under reuse.

use smallvec::SmallVec;
use std::sync::Mutex;
use xtree_topology::Address;
use xtree_trees::{BinaryTree, NodeId, Separation, SeparatorScratch};

/// Handle of a live interval in the builder's slab.
pub(crate) type IntId = u32;

/// A connected fragment of un-placed guest nodes.
#[derive(Clone, Debug)]
pub(crate) struct Interval {
    /// Any node of the fragment (used to re-enter it for lemma calls).
    pub entry: NodeId,
    /// Designated nodes with their anchors. Almost always 1 or 2; the
    /// capacity-driven fill can transiently create more (logged).
    pub designated: SmallVec<[(NodeId, Address); 2]>,
    /// Number of nodes in the fragment.
    pub size: u32,
}

impl Interval {
    /// The two designated nodes handed to the separator lemmas (duplicated
    /// if the fragment has only one).
    pub fn lemma_designated(&self) -> (NodeId, NodeId) {
        let r1 = self.designated[0].0;
        let r2 = self
            .designated
            .last()
            .expect("intervals have ≥ 1 designated")
            .0;
        (r1, r2)
    }

    /// The shallowest anchor level — placement of the designated nodes is
    /// due two levels below it (condition (4)).
    pub fn min_anchor_level(&self) -> u8 {
        self.designated
            .iter()
            .map(|&(_, a)| a.level())
            .min()
            .unwrap()
    }
}

/// Whether ADJUST decides its sibling pairs on worker threads.
///
/// The pair decisions of one sweep touch disjoint subtree regions (the
/// disjointness argument in DESIGN.md §13), so they can be computed
/// concurrently and applied serially without changing a single output
/// byte. Parallelism only pays once a sweep carries real work — the
/// workspace rayon spawns scoped threads per call — hence the default is
/// size-gated rather than unconditional.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallel {
    /// Parallel decide above the size thresholds (the default).
    #[default]
    Auto,
    /// Always decide serially.
    Off,
    /// Parallel decide on every sweep regardless of size (tests/benches).
    Force,
}

/// Tunable switches of the construction, used by the ablation experiments
/// to quantify how much each mechanism of algorithm X-TREE contributes.
/// The default enables everything (the paper's algorithm).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmbedOptions {
    /// Run the ADJUST phase (horizontal rebalancing across boundaries).
    pub adjust: bool,
    /// Allow ADJUST to move whole intervals before splitting.
    pub whole_moves: bool,
    /// Run SPLIT's Lemma-2 fine balance between sibling leaves.
    pub fine_balance: bool,
    /// Guest nodes per host vertex. The paper fixes 16 (4 ADJUST slots +
    /// 4 SPLIT slots + 8 forced children); the capacity ablation (A2)
    /// sweeps it to show where the slack stops mattering.
    pub capacity: u16,
    /// Parallel ADJUST decide phase (outputs are identical either way).
    pub parallel: Parallel,
}

impl Default for EmbedOptions {
    fn default() -> Self {
        EmbedOptions {
            adjust: true,
            whole_moves: true,
            fine_balance: true,
            capacity: 16,
            parallel: Parallel::Auto,
        }
    }
}

/// Counters describing how the construction went; all the deviations from
/// the paper's idealised accounting are measurable here.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildLog {
    /// ADJUST invocations that found an imbalance to fix.
    pub adjust_calls: usize,
    /// Whole intervals shifted across a boundary without splitting.
    pub adjust_whole_moves: usize,
    /// Lemma-2 splits performed by ADJUST.
    pub adjust_splits: usize,
    /// Lemma-2 fine-balance splits performed by SPLIT.
    pub split_balances: usize,
    /// Designated nodes placed because their deadline (condition 4) came up.
    pub forced_placements: usize,
    /// Nodes placed by the capacity fill.
    pub fills: usize,
    /// Fill operations that had to borrow mass from another leaf.
    pub borrows: usize,
    /// Longest horizontal distance a borrow reached over.
    pub max_borrow_hops: u32,
    /// Forced placements that exceeded their leaf and moved to a neighbour.
    pub spills: usize,
    /// Fragments observed with more than two designated nodes.
    pub multi_designated_components: usize,
}

/// Every recyclable buffer of a Theorem-1 build, reusable across builds.
///
/// [`embed_with_scratch`](super::embed_with_scratch) moves these buffers
/// into the builder and returns them on completion, so a caller embedding
/// many trees (the serving layer, the benches) allocates once and then
/// builds allocation-free. A fresh (or panic-emptied) scratch is always
/// valid — buffers grow on demand — and reuse never changes outputs.
#[derive(Debug, Default)]
pub struct Theorem1Scratch {
    /// Guest-node placement flags (pub(crate): the lemma call sites borrow
    /// it alongside `sep_scratch`, which needs field-disjoint access).
    pub(crate) placed: Vec<bool>,
    /// Guest nodes per host vertex, heap-id indexed.
    count: Vec<u16>,
    /// Interval slab; `None` slots are recycled through `free_ids`.
    intervals: Vec<Option<Interval>>,
    free_ids: Vec<IntId>,
    /// Attachment lists per host vertex, heap-id indexed (SoA: the hot
    /// `attached_mass` query reads the flat `att_mass` array instead of
    /// summing a list behind a hash lookup).
    att: Vec<Vec<IntId>>,
    att_mass: Vec<u64>,
    /// Epoch-stamped visited marks for flood sweeps.
    mark: Vec<u32>,
    epoch: u32,
    /// Epoch-stamped part-2 membership for `apply_separation`.
    part2_mark: Vec<u32>,
    part2_epoch: u32,
    /// Orientation buffers reused by every serial separator-lemma call.
    pub(crate) sep_scratch: SeparatorScratch,
    /// Extra orientation buffers for the parallel ADJUST decide phase;
    /// workers pop one and push it back (the workspace rayon has no
    /// per-thread init hook).
    par_pool: Mutex<Vec<SeparatorScratch>>,
    /// Flat CSR adjacency of the guest tree, in exact
    /// [`BinaryTree::neighbors`] order (parent first, then children):
    /// flood sweeps — the build's hottest loop — walk two contiguous
    /// arrays instead of materialising a `SmallVec` per visited node.
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    // Reusable arenas for flood orders, crown orders, freshly placed
    // node lists, and the ADJUST/SPLIT work queues.
    flood_buf: Vec<NodeId>,
    order_buf: Vec<NodeId>,
    pub(crate) newly_buf: Vec<NodeId>,
    pub(crate) ids_buf: Vec<IntId>,
    pub(crate) due_buf: Vec<IntId>,
    pub(crate) mass_buf: Vec<i64>,
    pub(crate) prefix_buf: Vec<i64>,
    pub(crate) pairs_buf: Vec<Address>,
}

impl Theorem1Scratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Theorem1Scratch::default()
    }

    /// Readies every buffer for a build over `n` guest nodes and `host`
    /// X-tree vertices, keeping allocations from previous builds.
    fn prepare(&mut self, n: usize, host: usize) {
        self.placed.clear();
        self.placed.resize(n, false);
        self.count.clear();
        self.count.resize(host, 0);
        self.intervals.clear();
        self.free_ids.clear();
        // Clear *every* list, not just the first `host`: a smaller build
        // after a bigger one must not resurrect stale handles later.
        for l in &mut self.att {
            l.clear();
        }
        if self.att.len() < host {
            self.att.resize_with(host, Vec::new);
        }
        self.att_mass.clear();
        self.att_mass.resize(host, 0);
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        if self.part2_mark.len() < n {
            self.part2_mark.resize(n, 0);
        }
        self.sep_scratch.ensure(n);
    }
}

pub(crate) struct Builder<'t> {
    pub tree: &'t BinaryTree,
    pub opts: EmbedOptions,
    /// The output map being built (moved into the result, so it is the
    /// one per-build allocation that cannot be recycled).
    pub assign: Vec<Address>,
    /// All recyclable state (placement, counts, slab, attachments, arenas).
    pub s: Theorem1Scratch,
    pub log: BuildLog,
    /// `trace[i][j]` = Δ(j, i) measured after round `i` (see `trace.rs`).
    pub trace: Vec<Vec<u64>>,
    /// `(nl, nh)` per round: min/max guest mass associated with a leaf of
    /// the current level (placed + attached) — the paper's `nl(i, i)` and
    /// `nh(i, i)`.
    pub mass_trace: Vec<(u64, u64)>,
}

/// How `rebuild_components` picks the attachment vertex of each fragment.
#[derive(Clone, Copy)]
pub(crate) enum AttachRule {
    /// Every fragment attaches to the same vertex.
    Fixed(Address),
    /// Fragments on the part-2 side of the last separation attach to
    /// `att2`, the rest to `att1`.
    BySide { att1: Address, att2: Address },
}

impl<'t> Builder<'t> {
    /// Builds on top of `scratch`, whose buffers are moved in (and handed
    /// back by [`Self::finish`]).
    pub fn new(
        tree: &'t BinaryTree,
        r: u8,
        opts: EmbedOptions,
        scratch: &mut Theorem1Scratch,
    ) -> Self {
        let n = tree.len();
        let mut s = std::mem::take(scratch);
        s.prepare(n, (1usize << (r + 1)) - 1);
        s.adj_off.clear();
        s.adj.clear();
        s.adj_off.reserve(n + 1);
        s.adj.reserve(2 * n.saturating_sub(1));
        s.adj_off.push(0);
        for v in tree.nodes() {
            for w in tree.neighbors(v) {
                s.adj.push(w.0);
            }
            s.adj_off.push(s.adj.len() as u32);
        }
        Builder {
            tree,
            opts,
            assign: vec![Address::ROOT; n],
            s,
            log: BuildLog::default(),
            trace: Vec::new(),
            mass_trace: Vec::new(),
        }
    }

    /// Returns the scratch buffers and surrenders the build products.
    #[allow(clippy::type_complexity)]
    pub fn finish(
        self,
        scratch: &mut Theorem1Scratch,
    ) -> (Vec<Address>, BuildLog, Vec<Vec<u64>>, Vec<(u64, u64)>) {
        let Builder {
            assign,
            s,
            log,
            trace,
            mass_trace,
            ..
        } = self;
        *scratch = s;
        (assign, log, trace, mass_trace)
    }

    /// The per-vertex capacity (the paper's load factor 16).
    pub fn cap(&self) -> u16 {
        self.opts.capacity
    }

    /// Free capacity of a host vertex.
    pub fn free(&self, a: Address) -> u16 {
        self.cap() - self.s.count[a.heap_id()]
    }

    /// Placement count of a host vertex.
    pub fn count(&self, a: Address) -> u16 {
        self.s.count[a.heap_id()]
    }

    /// True when every host vertex carries exactly the capacity.
    pub fn all_full(&self) -> bool {
        self.s.count.iter().all(|&c| c == self.opts.capacity)
    }

    /// Places one guest node; panics if the vertex is full (callers check).
    pub fn place(&mut self, v: NodeId, at: Address) {
        debug_assert!(!self.s.placed[v.index()], "{v:?} placed twice");
        assert!(
            self.s.count[at.heap_id()] < self.cap(),
            "capacity exceeded at {at}"
        );
        self.s.placed[v.index()] = true;
        self.assign[v.index()] = at;
        self.s.count[at.heap_id()] += 1;
    }

    /// Total attached interval mass at a vertex — O(1) from the SoA cache.
    pub fn attached_mass(&self, a: Address) -> u64 {
        self.s.att_mass[a.heap_id()]
    }

    /// The interval handles attached to a vertex, in attachment order.
    pub fn att_list(&self, a: Address) -> &[IntId] {
        &self.s.att[a.heap_id()]
    }

    pub fn attach(&mut self, id: IntId, at: Address) {
        let size = self.interval(id).size as u64;
        let h = at.heap_id();
        self.s.att[h].push(id);
        self.s.att_mass[h] += size;
    }

    /// Detaches the handle at `pos` with `swap_remove` semantics (the
    /// residual order every selection loop tie-breaks on).
    pub fn detach_swap(&mut self, at: Address, pos: usize) -> IntId {
        let h = at.heap_id();
        let id = self.s.att[h].swap_remove(pos);
        self.s.att_mass[h] -= self.interval(id).size as u64;
        id
    }

    /// Detaches every handle of `at` into `out` (attachment order).
    pub fn detach_all_into(&mut self, at: Address, out: &mut Vec<IntId>) {
        let h = at.heap_id();
        out.clear();
        out.extend_from_slice(&self.s.att[h]);
        self.s.att[h].clear();
        self.s.att_mass[h] = 0;
    }

    /// Order-preserving removal of the handles in `remove` (each attached
    /// to `at` exactly once) — `retain` semantics, as the forced-placement
    /// pass requires.
    pub fn detach_retain(&mut self, at: Address, remove: &[IntId]) {
        let h = at.heap_id();
        let gone: u64 = remove.iter().map(|&id| self.interval(id).size as u64).sum();
        self.s.att[h].retain(|id| !remove.contains(id));
        self.s.att_mass[h] -= gone;
    }

    pub fn interval(&self, id: IntId) -> &Interval {
        self.s.intervals[id as usize]
            .as_ref()
            .expect("stale interval handle")
    }

    pub fn remove_interval(&mut self, id: IntId) -> Interval {
        let iv = self.s.intervals[id as usize]
            .take()
            .expect("stale interval handle");
        self.s.free_ids.push(id);
        iv
    }

    /// Slab insert, recycling a freed slot when one exists. Outputs never
    /// depend on handle *values* (only on attachment-list positions and
    /// sizes), so recycling is invisible to the embedding.
    fn new_interval(&mut self, iv: Interval) -> IntId {
        if let Some(id) = self.s.free_ids.pop() {
            self.s.intervals[id as usize] = Some(iv);
            id
        } else {
            self.s.intervals.push(Some(iv));
            (self.s.intervals.len() - 1) as IntId
        }
    }

    /// One `SeparatorScratch` for a parallel ADJUST worker.
    pub fn pop_par_scratch(&self) -> SeparatorScratch {
        self.s
            .par_pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    pub fn push_par_scratch(&self, scr: SeparatorScratch) {
        self.s
            .par_pool
            .lock()
            .expect("scratch pool poisoned")
            .push(scr);
    }

    /// Floods the un-placed component containing `start` (using the current
    /// sweep epoch so components are visited once per sweep) into `nodes`,
    /// returning the designated nodes with anchors.
    fn flood_into(
        &mut self,
        start: NodeId,
        nodes: &mut Vec<NodeId>,
    ) -> SmallVec<[(NodeId, Address); 2]> {
        nodes.clear();
        nodes.push(start);
        let mut designated: SmallVec<[(NodeId, Address); 2]> = SmallVec::new();
        self.s.mark[start.index()] = self.s.epoch;
        let mut head = 0;
        while head < nodes.len() {
            let v = nodes[head];
            head += 1;
            let mut anchor: Option<Address> = None;
            let lo = self.s.adj_off[v.index()] as usize;
            let hi = self.s.adj_off[v.index() + 1] as usize;
            for k in lo..hi {
                let w = NodeId(self.s.adj[k]);
                if self.s.placed[w.index()] {
                    let a = self.assign[w.index()];
                    // Prefer the shallowest anchor: its deadline is tightest.
                    anchor = Some(match anchor {
                        Some(b) if b.level() <= a.level() => b,
                        _ => a,
                    });
                } else if self.s.mark[w.index()] != self.s.epoch {
                    self.s.mark[w.index()] = self.s.epoch;
                    nodes.push(w);
                }
            }
            if let Some(a) = anchor {
                designated.push((v, a));
            }
        }
        if designated.len() > 2 {
            self.log.multi_designated_components += 1;
        }
        designated
    }

    /// Begins a flood sweep: components found by subsequent flood calls
    /// within this sweep are not revisited. Epochs persist across builds
    /// (scratch reuse), wrapping like `Orientation` stamps.
    fn begin_sweep(&mut self) {
        if self.s.epoch == u32::MAX {
            self.s.mark.fill(0);
            self.s.epoch = 0;
        }
        self.s.epoch += 1;
    }

    /// True if `v` was stamped part-2 by the current separation.
    fn in_part2(&self, v: NodeId) -> bool {
        self.s.part2_mark[v.index()] == self.s.part2_epoch
    }

    /// After placing `newly`, discovers all adjacent un-placed fragments
    /// and registers each as a new interval attached per `rule`.
    pub fn rebuild_components(&mut self, newly: &[NodeId], rule: AttachRule) {
        self.begin_sweep();
        let mut nodes = std::mem::take(&mut self.s.flood_buf);
        for &p in newly {
            let lo = self.s.adj_off[p.index()] as usize;
            let hi = self.s.adj_off[p.index() + 1] as usize;
            for k in lo..hi {
                let u = NodeId(self.s.adj[k]);
                if self.s.placed[u.index()] || self.s.mark[u.index()] == self.s.epoch {
                    continue;
                }
                let designated = self.flood_into(u, &mut nodes);
                debug_assert!(!designated.is_empty());
                let at = match rule {
                    AttachRule::Fixed(a) => a,
                    AttachRule::BySide { att1, att2 } => {
                        if self.in_part2(nodes[0]) {
                            att2
                        } else {
                            att1
                        }
                    }
                };
                let iv = Interval {
                    entry: nodes[0],
                    designated,
                    size: nodes.len() as u32,
                };
                let id = self.new_interval(iv);
                self.attach(id, at);
            }
        }
        self.s.flood_buf = nodes;
    }

    /// Applies a separator-lemma result to the interval `id`: the boundary
    /// sets are placed (`s1` at `v1`, `s2` at `v2`), and the remaining
    /// fragments become new intervals, attached to `att1` (part-1 side) or
    /// `att2` (part-2 side).
    pub fn apply_separation(
        &mut self,
        id: IntId,
        sep: &Separation,
        v1: Address,
        v2: Address,
        att1: Address,
        att2: Address,
    ) {
        let _ = self.remove_interval(id);
        for &v in &sep.s1 {
            self.place(v, v1);
        }
        for &v in &sep.s2 {
            self.place(v, v2);
        }
        // Epoch-stamped membership replaces the per-call HashSet.
        if self.s.part2_epoch == u32::MAX {
            self.s.part2_mark.fill(0);
            self.s.part2_epoch = 0;
        }
        self.s.part2_epoch += 1;
        for &v in &sep.part2 {
            self.s.part2_mark[v.index()] = self.s.part2_epoch;
        }
        let mut newly = std::mem::take(&mut self.s.newly_buf);
        newly.clear();
        newly.extend_from_slice(&sep.s1);
        newly.extend_from_slice(&sep.s2);
        self.rebuild_components(&newly, AttachRule::BySide { att1, att2 });
        self.s.newly_buf = newly;
    }

    /// Places every node of interval `id` at `at` (capacity must suffice).
    pub fn absorb_interval(&mut self, id: IntId, at: Address) {
        let iv = self.remove_interval(id);
        self.begin_sweep();
        let mut nodes = std::mem::take(&mut self.s.flood_buf);
        let _ = self.flood_into(iv.entry, &mut nodes);
        debug_assert_eq!(nodes.len() as u32, iv.size);
        for &v in &nodes {
            self.place(v, at);
        }
        self.s.flood_buf = nodes;
    }

    /// Places a connected "crown" of `k` nodes of interval `id` at
    /// `place_at`, growing breadth-first from the designated nodes; the
    /// remaining fragments become new intervals attached to
    /// `attach_rest_to` (the crown's own leaf for local fills, the source
    /// leaf for borrows).
    ///
    /// # Panics
    /// Panics if `k` is not smaller than the interval size (use
    /// [`Self::absorb_interval`] for a full take).
    pub fn take_crown(&mut self, id: IntId, k: u32, place_at: Address, attach_rest_to: Address) {
        let at = place_at;
        let iv = self.remove_interval(id);
        assert!(
            k >= 1 && k < iv.size,
            "crown of {k} from interval of {}",
            iv.size
        );
        // BFS from the designated nodes through un-placed nodes.
        self.begin_sweep();
        let mut order = std::mem::take(&mut self.s.order_buf);
        order.clear();
        for &(d, _) in &iv.designated {
            if order.len() == k as usize {
                break; // a designated node left out stays designated of the rest
            }
            if self.s.mark[d.index()] != self.s.epoch {
                self.s.mark[d.index()] = self.s.epoch;
                order.push(d);
            }
        }
        let mut head = 0;
        while order.len() < k as usize {
            debug_assert!(head < order.len(), "crown BFS starved");
            let v = order[head];
            head += 1;
            let lo = self.s.adj_off[v.index()] as usize;
            let hi = self.s.adj_off[v.index() + 1] as usize;
            for j in lo..hi {
                let w = NodeId(self.s.adj[j]);
                if order.len() == k as usize {
                    break;
                }
                if !self.s.placed[w.index()] && self.s.mark[w.index()] != self.s.epoch {
                    self.s.mark[w.index()] = self.s.epoch;
                    order.push(w);
                }
            }
        }
        for &v in &order {
            self.place(v, at);
        }
        self.rebuild_components(&order, AttachRule::Fixed(attach_rest_to));
        self.s.order_buf = order;
    }

    /// Sum over all live attachments — used by invariant checks.
    pub fn total_unplaced(&self) -> u64 {
        self.s.placed.iter().filter(|&&p| !p).count() as u64
    }

    /// Exhaustive mid-build invariant check, run after every round in
    /// debug builds (tests): the attachment lists must live entirely on the
    /// current leaf level, the live intervals must partition the un-placed
    /// nodes exactly, every designated node's anchor must actually hold a
    /// placed neighbour no more than two levels up, every vertex of
    /// levels `≤ i` must be filled (for exact-size guests), and the cached
    /// `att_mass` array must agree with the lists it summarises.
    ///
    /// The only caller is `#[cfg(debug_assertions)]`-gated, so release
    /// builds see no call site.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub fn check_round_invariants(&self, i: u8, exact: bool) {
        // 1. Attachment addresses sit on level i; the mass cache is honest.
        for h in 0..self.s.att.len() {
            let ids = &self.s.att[h];
            // Lists beyond the current host exist only when the scratch
            // served a larger build earlier; they must have stayed empty.
            if h >= self.s.att_mass.len() {
                assert!(ids.is_empty(), "attachment beyond the host at heap {h}");
                continue;
            }
            let mass: u64 = ids.iter().map(|&id| self.interval(id).size as u64).sum();
            assert_eq!(mass, self.s.att_mass[h], "stale att_mass at heap {h}");
            if ids.is_empty() {
                continue;
            }
            let addr = Address::from_heap_id(h);
            assert_eq!(addr.level(), i, "attachment at {addr} after round {i}");
        }
        // 2. Intervals partition the un-placed nodes.
        let mut covered = vec![false; self.tree.len()];
        let mut total = 0u64;
        for ids in &self.s.att {
            for &id in ids {
                let iv = self.interval(id);
                // Walk the fragment from its entry.
                let mut stack = vec![iv.entry];
                let mut seen = std::collections::HashSet::new();
                seen.insert(iv.entry);
                while let Some(v) = stack.pop() {
                    assert!(!self.s.placed[v.index()], "placed node inside an interval");
                    assert!(!covered[v.index()], "node in two intervals");
                    covered[v.index()] = true;
                    total += 1;
                    for w in self.tree.neighbors(v) {
                        if !self.s.placed[w.index()] && seen.insert(w) {
                            stack.push(w);
                        }
                    }
                }
                assert_eq!(seen.len() as u32, iv.size, "stale interval size");
                // 3. Designated anchors are honest and fresh enough.
                for &(d, anchor) in &iv.designated {
                    assert!(!self.s.placed[d.index()]);
                    assert!(
                        self.tree
                            .neighbors(d)
                            .iter()
                            .any(|w| self.s.placed[w.index()] && self.assign[w.index()] == anchor),
                        "anchor {anchor} of {d:?} has no placed neighbour"
                    );
                    assert!(
                        anchor.level() + 2 > i,
                        "designated {d:?} missed its deadline (anchor {anchor}, round {i})"
                    );
                }
            }
        }
        assert_eq!(
            total,
            self.total_unplaced(),
            "intervals do not cover all un-placed nodes"
        );
        // 4. Levels ≤ i are full for exact-size guests.
        if exact {
            for a in Address::all_up_to(i) {
                assert_eq!(
                    self.s.count[a.heap_id()],
                    self.cap(),
                    "vertex {a} not full after round {i}"
                );
            }
        }
    }
}

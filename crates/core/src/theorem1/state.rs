//! Mutable construction state of the Theorem-1 embedding.
//!
//! The builder tracks, at every moment of algorithm X-TREE:
//!
//! * which guest nodes are *placed* (`δ_i` is defined on them) and where;
//! * how many guest nodes each host vertex carries (capacity 16, strict);
//! * the live **intervals** — the connected fragments of un-placed guest
//!   nodes. Each interval knows its *designated nodes* (fragment nodes with
//!   an already-placed neighbour) together with each designated node's
//!   **anchor**: the host vertex carrying that placed neighbour. The paper
//!   keeps one *characteristic address* per interval (condition (6)); we
//!   generalise to one anchor per designated node, which stays meaningful
//!   when the capacity-driven fill of SPLIT splits fragments unevenly.
//! * the **attachment** of every interval to a host vertex (the paper's
//!   `p_i` maps).

use smallvec::SmallVec;
use std::collections::HashMap;
use xtree_topology::Address;
use xtree_trees::{BinaryTree, NodeId, Separation, SeparatorScratch};

/// Handle of a live interval in the builder's slab.
pub(crate) type IntId = u32;

/// A connected fragment of un-placed guest nodes.
#[derive(Clone, Debug)]
pub(crate) struct Interval {
    /// Any node of the fragment (used to re-enter it for lemma calls).
    pub entry: NodeId,
    /// Designated nodes with their anchors. Almost always 1 or 2; the
    /// capacity-driven fill can transiently create more (logged).
    pub designated: SmallVec<[(NodeId, Address); 2]>,
    /// Number of nodes in the fragment.
    pub size: u32,
}

impl Interval {
    /// The two designated nodes handed to the separator lemmas (duplicated
    /// if the fragment has only one).
    pub fn lemma_designated(&self) -> (NodeId, NodeId) {
        let r1 = self.designated[0].0;
        let r2 = self
            .designated
            .last()
            .expect("intervals have ≥ 1 designated")
            .0;
        (r1, r2)
    }

    /// The shallowest anchor level — placement of the designated nodes is
    /// due two levels below it (condition (4)).
    pub fn min_anchor_level(&self) -> u8 {
        self.designated
            .iter()
            .map(|&(_, a)| a.level())
            .min()
            .unwrap()
    }
}

/// Tunable switches of the construction, used by the ablation experiments
/// to quantify how much each mechanism of algorithm X-TREE contributes.
/// The default enables everything (the paper's algorithm).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmbedOptions {
    /// Run the ADJUST phase (horizontal rebalancing across boundaries).
    pub adjust: bool,
    /// Allow ADJUST to move whole intervals before splitting.
    pub whole_moves: bool,
    /// Run SPLIT's Lemma-2 fine balance between sibling leaves.
    pub fine_balance: bool,
    /// Guest nodes per host vertex. The paper fixes 16 (4 ADJUST slots +
    /// 4 SPLIT slots + 8 forced children); the capacity ablation (A2)
    /// sweeps it to show where the slack stops mattering.
    pub capacity: u16,
}

impl Default for EmbedOptions {
    fn default() -> Self {
        EmbedOptions {
            adjust: true,
            whole_moves: true,
            fine_balance: true,
            capacity: 16,
        }
    }
}

/// Counters describing how the construction went; all the deviations from
/// the paper's idealised accounting are measurable here.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildLog {
    /// ADJUST invocations that found an imbalance to fix.
    pub adjust_calls: usize,
    /// Whole intervals shifted across a boundary without splitting.
    pub adjust_whole_moves: usize,
    /// Lemma-2 splits performed by ADJUST.
    pub adjust_splits: usize,
    /// Lemma-2 fine-balance splits performed by SPLIT.
    pub split_balances: usize,
    /// Designated nodes placed because their deadline (condition 4) came up.
    pub forced_placements: usize,
    /// Nodes placed by the capacity fill.
    pub fills: usize,
    /// Fill operations that had to borrow mass from another leaf.
    pub borrows: usize,
    /// Longest horizontal distance a borrow reached over.
    pub max_borrow_hops: u32,
    /// Forced placements that exceeded their leaf and moved to a neighbour.
    pub spills: usize,
    /// Fragments observed with more than two designated nodes.
    pub multi_designated_components: usize,
}

pub(crate) struct Builder<'t> {
    pub tree: &'t BinaryTree,
    pub opts: EmbedOptions,
    pub placed: Vec<bool>,
    pub assign: Vec<Address>,
    /// Guest nodes per host vertex, heap-id indexed; capacity 16 strict.
    pub count: Vec<u16>,
    pub intervals: Vec<Option<Interval>>,
    /// Interval handles attached to each host vertex.
    pub att: HashMap<Address, Vec<IntId>>,
    mark: Vec<u32>,
    epoch: u32,
    /// Orientation buffers reused by every separator-lemma call of the
    /// build — one allocation for the whole embedding (DESIGN.md §9).
    pub scratch: SeparatorScratch,
    pub log: BuildLog,
    /// `trace[i][j]` = Δ(j, i) measured after round `i` (see `trace.rs`).
    pub trace: Vec<Vec<u64>>,
    /// `(nl, nh)` per round: min/max guest mass associated with a leaf of
    /// the current level (placed + attached) — the paper's `nl(i, i)` and
    /// `nh(i, i)`.
    pub mass_trace: Vec<(u64, u64)>,
}

impl<'t> Builder<'t> {
    pub fn new(tree: &'t BinaryTree, r: u8, opts: EmbedOptions) -> Self {
        let n = tree.len();
        Builder {
            tree,
            opts,
            placed: vec![false; n],
            assign: vec![Address::ROOT; n],
            count: vec![0; (1usize << (r + 1)) - 1],
            intervals: Vec::new(),
            att: HashMap::new(),
            mark: vec![0; n],
            epoch: 0,
            scratch: SeparatorScratch::new(n),
            log: BuildLog::default(),
            trace: Vec::new(),
            mass_trace: Vec::new(),
        }
    }

    /// The per-vertex capacity (the paper's load factor 16).
    pub fn cap(&self) -> u16 {
        self.opts.capacity
    }

    /// Free capacity of a host vertex.
    pub fn free(&self, a: Address) -> u16 {
        self.cap() - self.count[a.heap_id()]
    }

    /// Places one guest node; panics if the vertex is full (callers check).
    pub fn place(&mut self, v: NodeId, at: Address) {
        debug_assert!(!self.placed[v.index()], "{v:?} placed twice");
        assert!(
            self.count[at.heap_id()] < self.cap(),
            "capacity exceeded at {at}"
        );
        self.placed[v.index()] = true;
        self.assign[v.index()] = at;
        self.count[at.heap_id()] += 1;
    }

    /// Total attached interval mass at a vertex.
    pub fn attached_mass(&self, a: Address) -> u64 {
        self.att
            .get(&a)
            .map(|ids| {
                ids.iter()
                    .map(|&id| self.intervals[id as usize].as_ref().unwrap().size as u64)
                    .sum()
            })
            .unwrap_or(0)
    }

    pub fn attach(&mut self, id: IntId, at: Address) {
        self.att.entry(at).or_default().push(id);
    }

    pub fn detach_all(&mut self, at: Address) -> Vec<IntId> {
        self.att.remove(&at).unwrap_or_default()
    }

    pub fn interval(&self, id: IntId) -> &Interval {
        self.intervals[id as usize]
            .as_ref()
            .expect("stale interval handle")
    }

    pub fn remove_interval(&mut self, id: IntId) -> Interval {
        self.intervals[id as usize]
            .take()
            .expect("stale interval handle")
    }

    fn new_interval(&mut self, iv: Interval) -> IntId {
        self.intervals.push(Some(iv));
        (self.intervals.len() - 1) as IntId
    }

    /// Floods the un-placed component containing `start` (using the current
    /// sweep epoch so components are visited once per sweep), returning its
    /// nodes and designated nodes with anchors.
    fn flood(&mut self, start: NodeId) -> (Vec<NodeId>, SmallVec<[(NodeId, Address); 2]>) {
        let mut nodes = vec![start];
        let mut designated: SmallVec<[(NodeId, Address); 2]> = SmallVec::new();
        self.mark[start.index()] = self.epoch;
        let mut head = 0;
        while head < nodes.len() {
            let v = nodes[head];
            head += 1;
            let mut anchor: Option<Address> = None;
            for w in self.tree.neighbors(v) {
                if self.placed[w.index()] {
                    let a = self.assign[w.index()];
                    // Prefer the shallowest anchor: its deadline is tightest.
                    anchor = Some(match anchor {
                        Some(b) if b.level() <= a.level() => b,
                        _ => a,
                    });
                } else if self.mark[w.index()] != self.epoch {
                    self.mark[w.index()] = self.epoch;
                    nodes.push(w);
                }
            }
            if let Some(a) = anchor {
                designated.push((v, a));
            }
        }
        if designated.len() > 2 {
            self.log.multi_designated_components += 1;
        }
        (nodes, designated)
    }

    /// Begins a flood sweep: components found by subsequent [`flood`] calls
    /// within this sweep are not revisited.
    fn begin_sweep(&mut self) {
        self.epoch += 1;
    }

    /// After placing `newly`, discovers all adjacent un-placed fragments and
    /// registers each as a new interval attached to `attach_for(component)`.
    pub fn rebuild_components<F>(&mut self, newly: &[NodeId], mut attach_for: F)
    where
        F: FnMut(&[NodeId]) -> Address,
    {
        self.begin_sweep();
        for &p in newly {
            for u in self.tree.neighbors(p) {
                if self.placed[u.index()] || self.mark[u.index()] == self.epoch {
                    continue;
                }
                let (nodes, designated) = self.flood(u);
                debug_assert!(!designated.is_empty());
                let at = attach_for(&nodes);
                let iv = Interval {
                    entry: nodes[0],
                    designated,
                    size: nodes.len() as u32,
                };
                let id = self.new_interval(iv);
                self.attach(id, at);
            }
        }
    }

    /// Applies a separator-lemma result to the interval `id`: the boundary
    /// sets are placed (`s1` at `v1`, `s2` at `v2`), and the remaining
    /// fragments become new intervals, attached to `att1` (part-1 side) or
    /// `att2` (part-2 side).
    pub fn apply_separation(
        &mut self,
        id: IntId,
        sep: &Separation,
        v1: Address,
        v2: Address,
        att1: Address,
        att2: Address,
    ) {
        let _ = self.remove_interval(id);
        for &v in &sep.s1 {
            self.place(v, v1);
        }
        for &v in &sep.s2 {
            self.place(v, v2);
        }
        let part2: std::collections::HashSet<NodeId> = sep.part2.iter().copied().collect();
        let mut newly: Vec<NodeId> = sep.s1.clone();
        newly.extend_from_slice(&sep.s2);
        self.rebuild_components(&newly, |nodes| {
            if part2.contains(&nodes[0]) {
                att2
            } else {
                att1
            }
        });
    }

    /// Places every node of interval `id` at `at` (capacity must suffice).
    pub fn absorb_interval(&mut self, id: IntId, at: Address) {
        let iv = self.remove_interval(id);
        self.begin_sweep();
        let (nodes, _) = self.flood(iv.entry);
        debug_assert_eq!(nodes.len() as u32, iv.size);
        for &v in &nodes {
            self.place(v, at);
        }
    }

    /// Places a connected "crown" of `k` nodes of interval `id` at
    /// `place_at`, growing breadth-first from the designated nodes; the
    /// remaining fragments become new intervals attached to
    /// `attach_rest_to` (the crown's own leaf for local fills, the source
    /// leaf for borrows).
    ///
    /// # Panics
    /// Panics if `k` is not smaller than the interval size (use
    /// [`Self::absorb_interval`] for a full take).
    pub fn take_crown(&mut self, id: IntId, k: u32, place_at: Address, attach_rest_to: Address) {
        let at = place_at;
        let iv = self.remove_interval(id);
        assert!(
            k >= 1 && k < iv.size,
            "crown of {k} from interval of {}",
            iv.size
        );
        // BFS from the designated nodes through un-placed nodes.
        self.begin_sweep();
        let mut order: Vec<NodeId> = Vec::with_capacity(k as usize);
        for &(d, _) in &iv.designated {
            if order.len() == k as usize {
                break; // a designated node left out stays designated of the rest
            }
            if self.mark[d.index()] != self.epoch {
                self.mark[d.index()] = self.epoch;
                order.push(d);
            }
        }
        let mut head = 0;
        while order.len() < k as usize {
            debug_assert!(head < order.len(), "crown BFS starved");
            let v = order[head];
            head += 1;
            for w in self.tree.neighbors(v) {
                if order.len() == k as usize {
                    break;
                }
                if !self.placed[w.index()] && self.mark[w.index()] != self.epoch {
                    self.mark[w.index()] = self.epoch;
                    order.push(w);
                }
            }
        }
        for &v in &order {
            self.place(v, at);
        }
        self.rebuild_components(&order.clone(), |_| attach_rest_to);
    }

    /// Sum over all live attachments — used by invariant checks.
    pub fn total_unplaced(&self) -> u64 {
        self.placed.iter().filter(|&&p| !p).count() as u64
    }

    /// Exhaustive mid-build invariant check, run after every round in
    /// debug builds (tests): the attachment map must live entirely on the
    /// current leaf level, the live intervals must partition the un-placed
    /// nodes exactly, every designated node's anchor must actually hold a
    /// placed neighbour no more than two levels up, and every vertex of
    /// levels `≤ i` must be filled (for exact-size guests).
    ///
    /// The only caller is `#[cfg(debug_assertions)]`-gated, so release
    /// builds see no call site.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub fn check_round_invariants(&self, i: u8, exact: bool) {
        // 1. Attachment addresses sit on level i.
        for (&addr, ids) in &self.att {
            if ids.is_empty() {
                continue;
            }
            assert_eq!(addr.level(), i, "attachment at {addr} after round {i}");
        }
        // 2. Intervals partition the un-placed nodes.
        let mut covered = vec![false; self.tree.len()];
        let mut total = 0u64;
        for ids in self.att.values() {
            for &id in ids {
                let iv = self.interval(id);
                // Walk the fragment from its entry.
                let mut stack = vec![iv.entry];
                let mut seen = std::collections::HashSet::new();
                seen.insert(iv.entry);
                while let Some(v) = stack.pop() {
                    assert!(!self.placed[v.index()], "placed node inside an interval");
                    assert!(!covered[v.index()], "node in two intervals");
                    covered[v.index()] = true;
                    total += 1;
                    for w in self.tree.neighbors(v) {
                        if !self.placed[w.index()] && seen.insert(w) {
                            stack.push(w);
                        }
                    }
                }
                assert_eq!(seen.len() as u32, iv.size, "stale interval size");
                // 3. Designated anchors are honest and fresh enough.
                for &(d, anchor) in &iv.designated {
                    assert!(!self.placed[d.index()]);
                    assert!(
                        self.tree
                            .neighbors(d)
                            .iter()
                            .any(|w| self.placed[w.index()] && self.assign[w.index()] == anchor),
                        "anchor {anchor} of {d:?} has no placed neighbour"
                    );
                    assert!(
                        anchor.level() + 2 > i,
                        "designated {d:?} missed its deadline (anchor {anchor}, round {i})"
                    );
                }
            }
        }
        assert_eq!(
            total,
            self.total_unplaced(),
            "intervals do not cover all un-placed nodes"
        );
        // 4. Levels ≤ i are full for exact-size guests.
        if exact {
            for a in Address::all_up_to(i) {
                assert_eq!(
                    self.count[a.heap_id()],
                    self.cap(),
                    "vertex {a} not full after round {i}"
                );
            }
        }
    }
}

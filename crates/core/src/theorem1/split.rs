//! The SPLIT procedure of algorithm X-TREE.
//!
//! In round `i`, every level-(i−1) vertex `α` distributes its attached
//! intervals over its two children:
//!
//! 1. **Assignment** — intervals are assigned largest-first to the lighter
//!    side (the paper's pairing rule: imbalance after assignment is at most
//!    the largest interval);
//! 2. **Fine balance** — one Lemma-2 split of the largest interval on the
//!    heavy side uses some of the leaf's free places to cut the residual
//!    imbalance to `⌊(Δ+4)/9⌋` (the paper's "4 free places");
//! 3. **Forced placements** — designated nodes whose anchors sit two levels
//!    up (condition (4) deadline) are laid out on their leaf, spilling to
//!    the nearest leaf with room when capacity demands it;
//! 4. **Fill** — each level-i leaf is topped up to exactly 16 guest nodes
//!    by absorbing whole intervals or connected "crowns" grown from
//!    designated nodes, borrowing from the nearest surplus leaf when the
//!    local mass runs short (this subsumes the paper's final rearrangement
//!    of the last two levels).

use super::state::{AttachRule, Builder, IntId};
use xtree_topology::Address;
use xtree_trees::lemma2_with;

/// Runs the full SPLIT sweep of round `i ≥ 1`.
pub(crate) fn split_phase(b: &mut Builder<'_>, i: u8) {
    let l = i - 1;
    // Pass 1: assign and fine-balance per parent vertex.
    for alpha in Address::level_iter(l) {
        assign_children(b, alpha);
    }
    // Pass 2: forced placements (condition-4 deadlines), then capacity fill.
    for leaf in Address::level_iter(i) {
        force_due_placements(b, leaf, i);
    }
    // Record nl/nh at the moment the fill is about to run: the paper's
    // estimate nl ≥ 16 is precisely "the fill finds enough local mass".
    super::trace::record_mass(b, i);
    for leaf in Address::level_iter(i) {
        fill(b, leaf, i);
    }
}

fn assign_children(b: &mut Builder<'_>, alpha: Address) {
    let c0 = alpha.child(0);
    let c1 = alpha.child(1);
    let mut ids = std::mem::take(&mut b.s.ids_buf);
    b.detach_all_into(alpha, &mut ids);
    ids.sort_unstable_by_key(|&id| std::cmp::Reverse(b.interval(id).size));
    // Side weights include nodes already placed on the children and the
    // mass pre-assigned by ADJUST.
    let mut w0 = b.count(c0) as u64 + b.attached_mass(c0);
    let mut w1 = b.count(c1) as u64 + b.attached_mass(c1);
    for &id in &ids {
        let size = b.interval(id).size as u64;
        if w0 <= w1 {
            b.attach(id, c0);
            w0 += size;
        } else {
            b.attach(id, c1);
            w1 += size;
        }
    }
    b.s.ids_buf = ids;
    // Fine balance: split the largest interval of the heavy side.
    let (heavy, light, wh, wl) = if w0 >= w1 {
        (c0, c1, w0, w1)
    } else {
        (c1, c0, w1, w0)
    };
    let delta = (wh - wl) / 2;
    if !b.opts.fine_balance || delta < 2 || b.free(heavy) < 5 || b.free(light) < 5 {
        return;
    }
    let Some((pos, id)) = b
        .att_list(heavy)
        .iter()
        .enumerate()
        .max_by_key(|&(_, &id)| b.interval(id).size)
        .map(|(p, &id)| (p, id))
    else {
        return;
    };
    let size = b.interval(id).size as u64;
    if size <= delta {
        // Cheaper to reassign the whole interval than to split it.
        b.detach_swap(heavy, pos);
        b.attach(id, light);
        return;
    }
    let (r1, r2) = b.interval(id).lemma_designated();
    let sep = lemma2_with(
        &mut b.s.sep_scratch,
        b.tree,
        &b.s.placed,
        r1,
        r2,
        delta as u32,
    );
    b.detach_swap(heavy, pos);
    b.apply_separation(id, &sep, heavy, light, heavy, light);
    b.log.split_balances += 1;
}

/// Places the designated nodes of every interval on `leaf` whose deadline
/// (anchor two levels up) has arrived, spilling to the closest leaf with
/// room if `leaf` is full.
fn force_due_placements(b: &mut Builder<'_>, leaf: Address, i: u8) {
    let mut due = std::mem::take(&mut b.s.due_buf);
    due.clear();
    due.extend(
        b.att_list(leaf)
            .iter()
            .copied()
            .filter(|&id| b.interval(id).min_anchor_level() + 2 <= i),
    );
    if due.is_empty() {
        b.s.due_buf = due;
        return;
    }
    // Order-preserving removal (`retain`), as the legacy builder did: the
    // residual list order feeds later tie-breaks.
    b.detach_retain(leaf, &due);
    for &id in &due {
        let k = b.interval(id).designated.len() as u16;
        let size = b.interval(id).size;
        let target = nearest_with_room(b, leaf, k, i);
        if target != leaf {
            b.log.spills += 1;
        }
        if size == u32::from(k) {
            // The fragment IS its designated set: absorb it outright.
            b.absorb_interval(id, target);
        } else {
            let iv = b.remove_interval(id);
            let mut nodes = std::mem::take(&mut b.s.newly_buf);
            nodes.clear();
            nodes.extend(iv.designated.iter().map(|&(d, _)| d));
            for &d in &nodes {
                b.place(d, target);
            }
            b.rebuild_components(&nodes, AttachRule::Fixed(target));
            b.s.newly_buf = nodes;
        }
        b.log.forced_placements += k as usize;
    }
    b.s.due_buf = due;
}

/// The closest level-i leaf (by horizontal offset from `leaf`) with at
/// least `k` free slots. Panics if the whole level is full (cannot happen
/// while un-placed mass remains: capacity ≥ mass at every round).
fn nearest_with_room(b: &Builder<'_>, leaf: Address, k: u16, i: u8) -> Address {
    if b.free(leaf) >= k {
        return leaf;
    }
    let width = 1i64 << i;
    for d in 1..width {
        for cand in [leaf.offset(-d), leaf.offset(d)].into_iter().flatten() {
            if b.free(cand) >= k {
                return cand;
            }
        }
    }
    panic!("no capacity left on level {i} for {k} nodes");
}

/// Tops `leaf` up to exactly 16 guest nodes.
fn fill(b: &mut Builder<'_>, leaf: Address, i: u8) {
    while b.free(leaf) > 0 {
        let need = b.free(leaf) as u64;
        let Some((src, id, hops)) = find_source(b, leaf, i) else {
            // No un-placed mass reachable: legitimate only when the guest
            // is smaller than the host's capacity (non-exact sizes).
            return;
        };
        if hops > 0 {
            b.log.borrows += 1;
            b.log.max_borrow_hops = b.log.max_borrow_hops.max(hops);
        }
        // How much we may take from that source without starving it.
        let amount = if hops == 0 {
            need
        } else {
            let surplus = b.attached_mass(src).saturating_sub(b.free(src) as u64);
            need.min(surplus)
        };
        debug_assert!(amount >= 1);
        let size = b.interval(id).size as u64;
        let pos = b.att_list(src).iter().position(|&x| x == id).unwrap();
        b.detach_swap(src, pos);
        if size <= amount {
            b.absorb_interval(id, leaf);
            b.log.fills += size as usize;
        } else {
            b.take_crown(id, amount as u32, leaf, src);
            b.log.fills += amount as usize;
        }
    }
}

/// Finds an interval to fill from: first the leaf's own attachments, then
/// the nearest leaf (horizontally) whose attached mass exceeds its own
/// remaining need. Returns `(source leaf, interval, hops)`. The surplus
/// scan reads the O(1) mass cache, so a borrow probe costs a lookup, not
/// a list walk.
fn find_source(b: &Builder<'_>, leaf: Address, i: u8) -> Option<(Address, IntId, u32)> {
    if let Some(id) = pick(b, leaf, u64::MAX) {
        return Some((leaf, id, 0));
    }
    let width = 1i64 << i;
    for d in 1..width {
        for cand in [leaf.offset(-d), leaf.offset(d)].into_iter().flatten() {
            let surplus = b.attached_mass(cand).saturating_sub(b.free(cand) as u64);
            if surplus == 0 {
                continue;
            }
            if let Some(id) = pick(b, cand, surplus) {
                return Some((cand, id, d as u32));
            }
        }
    }
    None
}

/// Picks an interval attached to `src`: prefer the largest one that fits
/// entirely within `budget` (clean absorption), otherwise the smallest
/// (crown it, leaving the rest in place).
fn pick(b: &Builder<'_>, src: Address, budget: u64) -> Option<IntId> {
    let ids = b.att_list(src);
    if ids.is_empty() {
        return None;
    }
    ids.iter()
        .copied()
        .filter(|&id| b.interval(id).size as u64 <= budget)
        .max_by_key(|&id| b.interval(id).size)
        .or_else(|| ids.iter().copied().min_by_key(|&id| b.interval(id).size))
}

//! Baseline embeddings the benchmark harness compares Theorem 1 against.
//!
//! The paper's introduction argues that *naïve* layouts cannot achieve
//! constant dilation for arbitrary binary trees; these baselines make that
//! claim measurable:
//!
//! * [`level_order`] — guest BFS levels onto host levels, 16 per vertex:
//!   natural for complete trees, hopeless for deep ones;
//! * [`dfs_order`] — guest preorder onto host heap order, 16 per vertex:
//!   keeps subtrees contiguous but pays at subtree boundaries;
//! * [`random_assignment`] — uniformly random load-balanced placement: the
//!   no-structure control.

use crate::embedding::XEmbedding;
use rand::seq::SliceRandom;
use rand::Rng;
use xtree_topology::Address;
use xtree_trees::{BinaryTree, NodeId};

/// Height of the optimal X-tree host for `n` guest nodes at load ≤ 16 —
/// the same host-sizing rule the Theorem-1 construction uses, so the
/// baselines always compete on an identical host.
pub fn optimal_height(n: usize) -> u8 {
    crate::theorem1::optimal_height(n)
}

/// BFS the guest tree and fill host vertices level by level, left to
/// right, 16 guest nodes per host vertex.
pub fn level_order(tree: &BinaryTree) -> XEmbedding {
    let r = optimal_height(tree.len());
    let hosts: Vec<Address> = Address::all_up_to(r).collect();
    let mut order = Vec::with_capacity(tree.len());
    let mut queue = std::collections::VecDeque::from([tree.root()]);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for c in tree.children(v) {
            queue.push_back(c);
        }
    }
    place_in_order(tree, &order, &hosts, r)
}

/// Preorder the guest tree and fill host vertices in heap order, 16 guest
/// nodes per host vertex.
pub fn dfs_order(tree: &BinaryTree) -> XEmbedding {
    let r = optimal_height(tree.len());
    let hosts: Vec<Address> = Address::all_up_to(r).collect();
    let order = tree.preorder();
    place_in_order(tree, &order, &hosts, r)
}

/// Uniformly random load-balanced placement (host slots shuffled).
pub fn random_assignment<R: Rng + ?Sized>(tree: &BinaryTree, rng: &mut R) -> XEmbedding {
    let r = optimal_height(tree.len());
    let mut slots: Vec<Address> = Address::all_up_to(r)
        .flat_map(|a| std::iter::repeat_n(a, 16))
        .collect();
    slots.shuffle(rng);
    slots.truncate(tree.len());
    XEmbedding {
        height: r,
        map: slots,
    }
}

fn place_in_order(tree: &BinaryTree, order: &[NodeId], hosts: &[Address], r: u8) -> XEmbedding {
    assert_eq!(order.len(), tree.len());
    let mut map = vec![Address::ROOT; tree.len()];
    for (i, &v) in order.iter().enumerate() {
        map[v.index()] = hosts[i / 16];
    }
    XEmbedding { height: r, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xtree_trees::generate;

    #[test]
    fn optimal_height_thresholds() {
        assert_eq!(optimal_height(1), 0);
        assert_eq!(optimal_height(16), 0);
        assert_eq!(optimal_height(17), 1);
        assert_eq!(optimal_height(48), 1);
        assert_eq!(optimal_height(49), 2);
        assert_eq!(optimal_height(240), 3);
    }

    #[test]
    fn all_baselines_are_total_and_bounded_load() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [16usize, 48, 100, 240] {
            let t = generate::random_bst(n, &mut rng);
            for e in [
                level_order(&t),
                dfs_order(&t),
                random_assignment(&t, &mut rng),
            ] {
                assert_eq!(e.map.len(), n);
                assert!(e.max_load() <= 16);
                e.validate();
                // Optimal expansion: the host is the smallest possible.
                assert!(
                    e.host_len() * 16 >= n && (e.host_len() == 1 || (e.host_len() / 2) * 16 < n)
                );
            }
        }
    }

    #[test]
    fn level_order_is_mediocre_even_for_complete_trees() {
        // 16-per-vertex blocking misaligns guest and host levels; even the
        // friendliest guest pays a constant-but-noticeable dilation.
        let t = generate::left_complete(240);
        let s = evaluate(&t, &level_order(&t));
        assert!(
            (2..=6).contains(&s.dilation),
            "complete tree level-order dilation {}",
            s.dilation
        );
    }

    #[test]
    fn level_order_degrades_on_paths() {
        // A path of 16·(2^5−1)... choose n = 496: BFS order IS the path
        // order; consecutive 16-blocks land on consecutive heap vertices,
        // and heap-adjacent vertices get far apart in the X-tree.
        let t = generate::path(496);
        let s = evaluate(&t, &level_order(&t));
        assert!(
            s.dilation >= 3,
            "expected nontrivial dilation, got {}",
            s.dilation
        );
    }

    #[test]
    fn random_is_terrible() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = generate::random_bst(496, &mut rng);
        let s = evaluate(&t, &random_assignment(&t, &mut rng));
        // Random placement pays about the diameter.
        assert!(s.dilation >= 5, "random dilation only {}", s.dilation);
    }
}

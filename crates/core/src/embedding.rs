//! Embedding types: mappings from guest-tree nodes to host vertices.
//!
//! An *embedding* assigns every vertex of the guest binary tree to a vertex
//! of the host network. Following the paper:
//!
//! * its **dilation** is the maximum host distance between images of
//!   adjacent guest nodes ("the number of clock cycles needed in the X-tree
//!   network to communicate between formerly adjacent processors");
//! * its **load factor** is the maximum number of guest nodes mapped to one
//!   host vertex;
//! * its **expansion** is `|host| / |guest|`.

use xtree_topology::Address;
use xtree_trees::{BinaryTree, NodeId};

/// An embedding of a binary tree into an X-tree of a given height.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XEmbedding {
    /// Height of the host X-tree.
    pub height: u8,
    /// Image of each guest node, indexed by [`NodeId`].
    pub map: Vec<Address>,
}

impl XEmbedding {
    /// The image of `v`.
    #[inline]
    pub fn image(&self, v: NodeId) -> Address {
        self.map[v.index()]
    }

    /// Number of guest nodes.
    pub fn guest_len(&self) -> usize {
        self.map.len()
    }

    /// Number of host vertices (`2^{height+1} − 1`).
    pub fn host_len(&self) -> usize {
        (1usize << (self.height + 1)) - 1
    }

    /// Checks that every image fits inside the host; panics otherwise.
    pub fn validate(&self) {
        for (i, a) in self.map.iter().enumerate() {
            assert!(
                a.level() <= self.height,
                "node {i} mapped to {a}, below X({})",
                self.height
            );
        }
    }

    /// Guest nodes per host vertex, indexed by heap id.
    pub fn load_vector(&self) -> Vec<u32> {
        let mut load = vec![0u32; self.host_len()];
        for a in &self.map {
            load[a.heap_id()] += 1;
        }
        load
    }

    /// Maximum load over host vertices.
    pub fn max_load(&self) -> u32 {
        self.load_vector().into_iter().max().unwrap_or(0)
    }

    /// True if no two guest nodes share a host vertex.
    pub fn is_injective(&self) -> bool {
        self.max_load() <= 1
    }

    /// Expansion `|host| / |guest|`.
    pub fn expansion(&self) -> f64 {
        self.host_len() as f64 / self.guest_len() as f64
    }
}

/// An embedding of a binary tree into a hypercube of a given dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QEmbedding {
    /// Dimension of the host hypercube.
    pub dim: u8,
    /// Image of each guest node (a `dim`-bit label), indexed by [`NodeId`].
    pub map: Vec<u64>,
}

impl QEmbedding {
    /// The image of `v`.
    #[inline]
    pub fn image(&self, v: NodeId) -> u64 {
        self.map[v.index()]
    }

    /// Number of host vertices (`2^dim`).
    pub fn host_len(&self) -> usize {
        1usize << self.dim
    }

    /// Dilation: maximum Hamming distance across guest edges. Exact and
    /// cheap — no search needed on the hypercube.
    pub fn dilation(&self, tree: &BinaryTree) -> u32 {
        tree.edges()
            .map(|(u, v)| (self.map[u.index()] ^ self.map[v.index()]).count_ones())
            .max()
            .unwrap_or(0)
    }

    /// Guest nodes per host vertex.
    pub fn load_vector(&self) -> Vec<u32> {
        let mut load = vec![0u32; self.host_len()];
        for &x in &self.map {
            load[x as usize] += 1;
        }
        load
    }

    /// Maximum load over host vertices.
    pub fn max_load(&self) -> u32 {
        self.load_vector().into_iter().max().unwrap_or(0)
    }

    /// True if no two guest nodes share a host vertex.
    pub fn is_injective(&self) -> bool {
        self.max_load() <= 1
    }

    /// Expansion `|host| / |guest|`.
    pub fn expansion(&self) -> f64 {
        self.host_len() as f64 / self.map.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_trees::generate;

    #[test]
    fn xembedding_basics() {
        // 3 nodes onto X(1): root at ε, children at 0 and 1.
        let e = XEmbedding {
            height: 1,
            map: vec![
                Address::ROOT,
                Address::parse("0").unwrap(),
                Address::parse("1").unwrap(),
            ],
        };
        e.validate();
        assert_eq!(e.host_len(), 3);
        assert!(e.is_injective());
        assert_eq!(e.max_load(), 1);
        assert!((e.expansion() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_counts_multiplicity() {
        let a = Address::parse("0").unwrap();
        let e = XEmbedding {
            height: 1,
            map: vec![a, a, a, Address::ROOT],
        };
        assert_eq!(e.max_load(), 3);
        assert!(!e.is_injective());
        let lv = e.load_vector();
        assert_eq!(lv[a.heap_id()], 3);
        assert_eq!(lv[Address::ROOT.heap_id()], 1);
    }

    #[test]
    #[should_panic(expected = "below X(1)")]
    fn validate_rejects_deep_addresses() {
        let e = XEmbedding {
            height: 1,
            map: vec![Address::parse("00").unwrap()],
        };
        e.validate();
    }

    #[test]
    fn qembedding_dilation_exact() {
        // Path 0-1-2 mapped to labels 00, 01, 11: both edges flip one bit.
        let t = generate::path(3);
        let e = QEmbedding {
            dim: 2,
            map: vec![0b00, 0b01, 0b11],
        };
        assert_eq!(e.dilation(&t), 1);
        assert!(e.is_injective());
        // Remap node 2 to 00: dilation via 01->00 is 1, load 2 at vertex 0.
        let e2 = QEmbedding {
            dim: 2,
            map: vec![0b00, 0b01, 0b00],
        };
        assert_eq!(e2.max_load(), 2);
        assert_eq!(e2.dilation(&t), 1);
    }
}

//! Theorem 4: a universal graph of degree ≤ 415 for binary trees.
//!
//! For `n = 2^t − 16` (equivalently `n = 16·(2^{r+1} − 1)` with
//! `t = r + 5`), the graph `G_n` has the vertex set
//! `{(a, s) : a ∈ X(r), 0 ≤ s < 16}` — 16 *slots* per X-tree vertex — and
//! an edge between `(a, s)` and `(b, u)` whenever `a = b`, `b ∈ N(a)`, or
//! `a ∈ N(b)`, where `N` is the Figure-2 neighbourhood.
//!
//! Degree bound: `|N(a) − {a}| ≤ 20` plus ≤ 5 asymmetric in-neighbours
//! gives ≤ 25 adjacent X-tree vertices × 16 slots + 15 sibling slots
//! = **415**. Any embedding satisfying condition (3′) with load exactly 16
//! realises every guest tree as a spanning subgraph of `G_n`.

use crate::embedding::XEmbedding;
use xtree_topology::{neighborhood, Address, Csr, Graph};
use xtree_trees::{BinaryTree, NodeId};

/// The Theorem-4 universal graph over `X(r)` with 16 slots per vertex.
#[derive(Clone, Debug)]
pub struct UniversalGraph {
    height: u8,
    graph: Csr,
}

/// Number of vertices of the universal graph for X-tree height `r`:
/// `16 · (2^{r+1} − 1) = 2^{r+5} − 16`.
pub const fn universal_node_count(r: u8) -> usize {
    16 * ((1usize << (r + 1)) - 1)
}

impl UniversalGraph {
    /// Builds `G_n` for `n = 2^{r+5} − 16`.
    pub fn new(height: u8) -> Self {
        assert!(height <= 12, "universal graph of height {height} too large");
        let xnodes = (1usize << (height + 1)) - 1;
        let n = 16 * xnodes;
        let id = |a: Address, s: usize| (a.heap_id() * 16 + s) as u32;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let push = |edges: &mut Vec<(u32, u32)>, x: u32, y: u32| {
            edges.push((x.min(y), x.max(y)));
        };
        for a in Address::all_up_to(height) {
            // Slots of the same vertex form a 16-clique.
            for s in 0..16 {
                for u in (s + 1)..16 {
                    push(&mut edges, id(a, s), id(a, u));
                }
            }
            // Full bipartite slot connections to every X-tree vertex b with
            // b ∈ N(a); the symmetric closure (a ∈ N(b)) is produced when
            // the loop visits b. Tuples are normalised and deduplicated, so
            // symmetric pairs (a ∈ N(b) and b ∈ N(a)) collapse to one edge.
            for b in neighborhood::neighborhood(a, height) {
                if b == a {
                    continue;
                }
                for s in 0..16 {
                    for u in 0..16 {
                        push(&mut edges, id(a, s), id(b, u));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        UniversalGraph {
            height,
            graph: Csr::from_edges(n, &edges),
        }
    }

    /// The underlying X-tree height `r`.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// The slot-vertex id of `(a, s)`.
    pub fn id(&self, a: Address, slot: usize) -> usize {
        assert!(slot < 16 && a.level() <= self.height);
        a.heap_id() * 16 + slot
    }

    /// Underlying CSR graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Converts a load-exactly-16 X-tree embedding into an assignment of
    /// guest nodes to universal-graph slot vertices (a bijection).
    ///
    /// # Panics
    /// Panics if some host vertex carries more than 16 guest nodes or the
    /// guest does not have exactly `16 · |X(r)|` nodes.
    pub fn slot_assignment(&self, emb: &XEmbedding) -> Vec<u32> {
        assert_eq!(emb.height, self.height);
        assert_eq!(
            emb.map.len(),
            universal_node_count(self.height),
            "guest must have exactly 2^{{r+5}} − 16 nodes"
        );
        let mut used = vec![0usize; emb.host_len()];
        emb.map
            .iter()
            .map(|&a| {
                let s = used[a.heap_id()];
                assert!(s < 16, "load exceeds 16 at {a}");
                used[a.heap_id()] += 1;
                (a.heap_id() * 16 + s) as u32
            })
            .collect()
    }

    /// The paper's closing conjecture ("we have no doubt that one could
    /// generalize this result to hold also for arbitrary n"): any binary
    /// tree with `n' ≤ n` nodes is an (ordinary, not spanning) subgraph of
    /// the same `G_n`. Realised by the padding extension of Theorem 1:
    /// embed the padded tree, keep only the real nodes' slots.
    ///
    /// Returns the injective slot assignment for the guest.
    ///
    /// # Panics
    /// Panics if the guest is larger than `G_n`.
    pub fn subgraph_assignment_any_n(&self, tree: &BinaryTree) -> Vec<u32> {
        assert!(
            tree.len() <= universal_node_count(self.height),
            "guest larger than the universal graph"
        );
        let emb = crate::theorem1::embed(tree).emb;
        assert!(
            emb.height <= self.height,
            "optimal host exceeds this universal graph's X-tree"
        );
        // Deepen short addresses not needed: X(r') is a sub-X-tree of X(r)
        // sharing addresses, and N(a) within X(r') ⊆ N(a) within X(r).
        let mut used = vec![0usize; (1usize << (self.height + 1)) - 1];
        emb.map
            .iter()
            .map(|&a| {
                let s = used[a.heap_id()];
                assert!(s < 16, "load exceeds 16 at {a}");
                used[a.heap_id()] += 1;
                (a.heap_id() * 16 + s) as u32
            })
            .collect()
    }

    /// Checks the spanning-subgraph property: every guest edge must map to
    /// an edge of `G_n` under `assignment`. Returns the violating guest
    /// edges (empty = the guest is a spanning subgraph, since the
    /// assignment is a bijection on `n = |G_n|` vertices).
    pub fn subgraph_violations(
        &self,
        tree: &BinaryTree,
        assignment: &[u32],
    ) -> Vec<(NodeId, NodeId)> {
        tree.edges()
            .filter(|&(u, v)| {
                !self.graph.has_edge(
                    assignment[u.index()] as usize,
                    assignment[v.index()] as usize,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_matches_2t_minus_16() {
        for r in 0..=5u8 {
            let g = UniversalGraph::new(r);
            assert_eq!(g.graph().node_count(), universal_node_count(r));
            assert_eq!(universal_node_count(r), (1usize << (r + 5)) - 16);
        }
    }

    #[test]
    fn degree_bounded_by_415() {
        for r in [2u8, 4, 6] {
            let g = UniversalGraph::new(r);
            let max = g.graph().max_degree();
            assert!(max <= 415, "X({r}): degree {max} > 415");
        }
        // The bound is essentially attained for interior vertices once the
        // X-tree is wide enough.
        let g = UniversalGraph::new(6);
        assert!(g.graph().max_degree() >= 400, "expected near-415 degrees");
    }

    #[test]
    fn connected_and_clique_per_vertex() {
        let g = UniversalGraph::new(3);
        assert!(g.graph().is_connected());
        let a = Address::parse("01").unwrap();
        for s in 0..16 {
            for u in 0..16 {
                if s != u {
                    assert!(g.graph().has_edge(g.id(a, s), g.id(a, u)));
                }
            }
        }
    }

    #[test]
    fn arbitrary_n_subgraph_extension() {
        use rand::SeedableRng;
        let g = UniversalGraph::new(3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        for n in [1usize, 17, 100, 150, 239, 240] {
            let t = xtree_trees::generate::random_bst(n, &mut rng);
            let assignment = g.subgraph_assignment_any_n(&t);
            // Injective.
            let mut sorted = assignment.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n, "n={n}");
            // Every guest edge on a host wire.
            assert!(g.subgraph_violations(&t, &assignment).is_empty(), "n={n}");
        }
    }

    #[test]
    fn neighborhood_edges_present_both_ways() {
        let g = UniversalGraph::new(3);
        let a = Address::parse("0").unwrap();
        for b in neighborhood::neighborhood(a, 3) {
            assert!(
                g.graph().has_edge(g.id(a, 0), g.id(b, 7)),
                "missing {a} – {b}"
            );
        }
        for b in neighborhood::inverse_only(a, 3) {
            assert!(
                g.graph().has_edge(g.id(a, 3), g.id(b, 11)),
                "missing inverse {a} – {b}"
            );
        }
    }
}

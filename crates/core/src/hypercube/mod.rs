//! Hypercube embeddings (paper §3): the classic inorder embedding of the
//! complete binary tree, the Lemma-3 map of the X-tree into its optimal
//! hypercube, and the Theorem-3 composition that carries arbitrary binary
//! trees into hypercubes with load 16 and dilation 4 (dilation 8
//! injectively).

pub mod inorder;
pub mod lemma3;
pub mod theorem3;

pub use inorder::{inorder_embedding, inorder_label};
pub use lemma3::{chi, lemma3_embedding, lemma3_label};
pub use theorem3::{compose_with_lemma3, embed_corollary8, embed_theorem3, injectivize_by_suffix};

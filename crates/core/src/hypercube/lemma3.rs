//! Lemma 3 of the paper: an injective embedding `δ` of the X-tree `X(r)`
//! into the hypercube `Q_{r+1}` such that vertices at X-tree distance `Λ`
//! map to labels at Hamming distance at most `Λ + 1`.
//!
//! Construction: `δ(α) = χ(α) · 1 · 0^{r−|α|}` where `χ` flips each bit
//! that follows a 1 — `b_1 = a_1` and `b_v = a_v ⊕ a_{v−1}` for `v ≥ 2`.
//! In machine terms `χ(α) = bits ⊕ (bits >> 1)`: the binary-reflected Gray
//! code of the level index, which is exactly why the *horizontal* X-tree
//! edges (`successor`, i.e. index +1) become single-bit flips.

use xtree_topology::Address;

/// The bit-transform `χ` from the paper applied to `α`'s index
/// (MSB-first): `χ(a)_v = a_v ⊕ a_{v−1}`.
#[inline]
pub fn chi(alpha: Address) -> u64 {
    alpha.index() ^ (alpha.index() >> 1)
}

/// `δ(α) = χ(α) · 1 · 0^{r−|α|}`: the Lemma-3 label of `α` in `Q_{r+1}`.
///
/// # Panics
/// Panics if `α` is deeper than `r`.
pub fn lemma3_label(alpha: Address, r: u8) -> u64 {
    assert!(alpha.level() <= r, "address {alpha} deeper than height {r}");
    let tail = r - alpha.level();
    (chi(alpha) << (tail + 1)) | (1u64 << tail)
}

/// The full Lemma-3 embedding of `X(r)` into `Q_{r+1}`, heap-id indexed.
pub fn lemma3_embedding(r: u8) -> Vec<u64> {
    Address::all_up_to(r).map(|a| lemma3_label(a, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_topology::{Graph, XTree};

    fn ham(a: u64, b: u64) -> u32 {
        (a ^ b).count_ones()
    }

    #[test]
    fn chi_is_gray_code() {
        assert_eq!(chi(Address::new(4, 0b0000)), 0b0000);
        assert_eq!(chi(Address::new(4, 0b0001)), 0b0001);
        assert_eq!(chi(Address::new(4, 0b0111)), 0b0100);
        assert_eq!(chi(Address::new(4, 0b1000)), 0b1100);
    }

    #[test]
    fn siblings_become_neighbors() {
        // The paper's key claim: if β = successor(α), then χ(α) and χ(β)
        // differ in exactly one bit, so δ(α), δ(β) are Q-neighbours.
        for len in 1..=10u8 {
            for a in Address::level_iter(len) {
                if let Some(b) = a.successor() {
                    assert_eq!(
                        ham(chi(a), chi(b)),
                        1,
                        "χ({a}) vs χ(successor) not adjacent"
                    );
                    assert_eq!(ham(lemma3_label(a, 10), lemma3_label(b, 10)), 1);
                }
            }
        }
    }

    #[test]
    fn tree_edges_have_distance_at_most_two() {
        let r = 7;
        for a in Address::all_up_to(r - 1) {
            for c in a.children() {
                let d = ham(lemma3_label(a, r), lemma3_label(c, r));
                assert!(d <= 2, "edge {a} – {c}: distance {d}");
            }
        }
    }

    #[test]
    fn injective() {
        for r in 0..=10u8 {
            let mut labels = lemma3_embedding(r);
            let n = labels.len();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), n, "collision at r={r}");
        }
    }

    #[test]
    fn distortion_at_most_distance_plus_one() {
        // Exhaustive check of the lemma on X(5): Hamming ≤ X-tree distance + 1.
        let r = 5;
        let x = XTree::new(r);
        let labels = lemma3_embedding(r);
        for u in 0..x.node_count() {
            let du = x.graph().bfs(u);
            for v in 0..x.node_count() {
                let hd = ham(labels[u], labels[v]);
                assert!(
                    hd <= du[v] + 1,
                    "{} vs {}: X-dist {}, hamming {hd}",
                    x.address(u),
                    x.address(v),
                    du[v]
                );
            }
        }
    }

    #[test]
    fn distortion_bound_is_tight() {
        // Some adjacent pair realises Hamming distance 2 = Λ + 1.
        let r = 4;
        let x = XTree::new(r);
        let labels = lemma3_embedding(r);
        let tight = x
            .graph()
            .edges()
            .any(|(u, v)| ham(labels[u as usize], labels[v as usize]) == 2);
        assert!(tight);
    }
}

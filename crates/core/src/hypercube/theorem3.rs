//! Theorem 3 and its corollary: hypercube embeddings obtained by routing
//! the Theorem-1 X-tree embedding through the Lemma-3 map.
//!
//! * **Theorem 3** — a binary tree with `n = 16·(2^r − 1)` nodes embeds
//!   into its optimal hypercube `Q_r` with load 16 and dilation 4: embed
//!   into `X(r−1)` with dilation 3 (Theorem 1), then apply Lemma 3, whose
//!   distortion is +1.
//! * **Corollary** — every binary tree with at most `2^r − 16` nodes embeds
//!   *injectively* into `Q_r` with dilation 8: give each of the ≤ 16 nodes
//!   sharing a `Q_{r−4}` vertex a distinct 4-bit suffix; each guest edge
//!   then pays ≤ 4 (cube part) + 4 (suffix part).

use crate::embedding::{QEmbedding, XEmbedding};
use crate::hypercube::lemma3::lemma3_label;
use crate::theorem1;
use xtree_trees::BinaryTree;

/// Theorem 3 end to end: embeds a binary tree with `n = 16·(2^r − 1)`
/// nodes into its optimal hypercube `Q_r` with load ≤ 16 and (per the
/// paper) dilation ≤ 4. Non-exact sizes use the same pipeline with the
/// smallest host that fits at load 16.
pub fn embed_theorem3(tree: &BinaryTree) -> QEmbedding {
    let t1 = theorem1::embed(tree);
    compose_with_lemma3(&t1.emb)
}

/// The corollary of Theorem 3: embeds any binary tree with at most
/// `2^r − 16` nodes *injectively* into `Q_r` with dilation ≤ 8
/// (`r = height of the optimal load-16 X-tree + 5`).
pub fn embed_corollary8(tree: &BinaryTree) -> QEmbedding {
    injectivize_by_suffix(&embed_theorem3(tree))
}

/// Composes an X-tree embedding with the Lemma-3 map, producing a hypercube
/// embedding of dimension `height + 1` whose dilation is at most the
/// X-tree dilation + 1 and whose load is unchanged.
pub fn compose_with_lemma3(emb: &XEmbedding) -> QEmbedding {
    let r = emb.height;
    QEmbedding {
        dim: r + 1,
        map: emb.map.iter().map(|&a| lemma3_label(a, r)).collect(),
    }
}

/// Injectivises a hypercube embedding with load ≤ 16 by appending a
/// distinct 4-bit suffix per co-located guest node (the corollary's
/// construction). Dilation grows by at most 4.
///
/// # Panics
/// Panics if some vertex carries more than 16 guest nodes.
pub fn injectivize_by_suffix(emb: &QEmbedding) -> QEmbedding {
    let mut used = vec![0u8; emb.host_len()];
    let map = emb
        .map
        .iter()
        .map(|&x| {
            let slot = used[x as usize];
            assert!(slot < 16, "load exceeds 16 at vertex {x:#b}");
            used[x as usize] += 1;
            (x << 4) | u64::from(slot)
        })
        .collect();
    QEmbedding {
        dim: emb.dim + 4,
        map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_topology::Address;
    use xtree_trees::generate;

    /// A hand-made load-16 X-tree embedding: nodes in heap-ish blocks.
    fn blocky_embedding(r: u8, n: usize) -> XEmbedding {
        let host: Vec<Address> = Address::all_up_to(r).collect();
        assert!(n <= host.len() * 16);
        XEmbedding {
            height: r,
            map: (0..n).map(|i| host[i / 16]).collect(),
        }
    }

    #[test]
    fn composition_adds_at_most_one() {
        // Guest = left-complete tree in heap order on X(3) (dilation 1):
        // composed dilation ≤ 2.
        let t = generate::left_complete(15);
        let x = crate::metrics::heap_order_embedding(&t, 3);
        let q = compose_with_lemma3(&x);
        assert_eq!(q.dim, 4);
        assert!(q.dilation(&t) <= 2);
        assert!(q.is_injective());
    }

    #[test]
    fn composition_preserves_load() {
        let _ = generate::path(240);
        let x = blocky_embedding(3, 240);
        let q = compose_with_lemma3(&x);
        assert_eq!(q.max_load(), 16);
        assert_eq!(q.host_len(), 16);
        assert!((q.expansion() - 16.0 / 240.0).abs() < 1e-12);
    }

    #[test]
    fn suffix_injectivization() {
        let t = generate::path(240);
        let x = blocky_embedding(3, 240);
        let q = compose_with_lemma3(&x);
        let inj = injectivize_by_suffix(&q);
        assert_eq!(inj.dim, 8);
        assert!(inj.is_injective());
        // Dilation grows by at most 4.
        assert!(inj.dilation(&t) <= q.dilation(&t) + 4);
        // Optimal hypercube: 240 ≤ 2^8 = 256 = 2^8, and 2^7 < 240.
        assert_eq!(inj.host_len(), 256);
    }

    #[test]
    #[should_panic(expected = "load exceeds 16")]
    fn suffix_rejects_load_17() {
        let q = QEmbedding {
            dim: 1,
            map: vec![0; 17],
        };
        let _ = injectivize_by_suffix(&q);
    }

    #[test]
    fn theorem3_end_to_end() {
        // n = 16·(2^4 − 1) = 240 into Q_4: load 16, dilation ≤ 4.
        let t = generate::caterpillar(240);
        let q = embed_theorem3(&t);
        assert_eq!(q.dim, 4);
        assert_eq!(q.max_load(), 16);
        assert!(q.dilation(&t) <= 4, "dilation {}", q.dilation(&t));
    }

    #[test]
    fn corollary_dilation8_end_to_end() {
        // n = 240 = 2^8 − 16 into Q_8, injective, dilation ≤ 8.
        let t = generate::broom(240);
        let q = embed_corollary8(&t);
        assert_eq!(q.dim, 8);
        assert!(q.is_injective());
        assert!(q.dilation(&t) <= 8, "dilation {}", q.dilation(&t));
    }
}

//! The "inorder embedding" of the complete binary tree into its optimal
//! hypercube (paper §3): `δ_io(α) = α · 1 · 0^{r−|α|}`, mapping the
//! vertices of `B_r` (binary strings of length ≤ r) injectively onto the
//! non-zero labels of `Q_{r+1}`.
//!
//! Properties proved in the paper and verified by the tests below:
//! * dilation 2 — the image of edge `{α, α0}` has Hamming distance 2 and
//!   that of `{α, α1}` distance 1;
//! * distance distortion +1 — nodes at tree distance `Λ` map to labels at
//!   Hamming distance at most `Λ + 1`.

use xtree_topology::Address;

/// `δ_io(α)` for the complete binary tree of height `r`: the string
/// `α · 1 · 0^{r−|α|}` read as an `r+1`-bit label.
///
/// # Panics
/// Panics if `α` is deeper than `r`.
pub fn inorder_label(alpha: Address, r: u8) -> u64 {
    assert!(alpha.level() <= r, "address {alpha} deeper than height {r}");
    let tail = r - alpha.level();
    (alpha.index() << (tail + 1)) | (1u64 << tail)
}

/// The full inorder embedding: heap-id-indexed labels of all `2^{r+1} − 1`
/// vertices of `B_r` into `Q_{r+1}`.
pub fn inorder_embedding(r: u8) -> Vec<u64> {
    Address::all_up_to(r).map(|a| inorder_label(a, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham(a: u64, b: u64) -> u32 {
        (a ^ b).count_ones()
    }

    #[test]
    fn labels_match_paper_formula() {
        // Root of B_3 → 1000, leaves → x···x1.
        assert_eq!(inorder_label(Address::ROOT, 3), 0b1000);
        assert_eq!(inorder_label(Address::parse("101").unwrap(), 3), 0b1011);
        assert_eq!(inorder_label(Address::parse("0").unwrap(), 3), 0b0100);
        assert_eq!(inorder_label(Address::parse("11").unwrap(), 3), 0b1110);
    }

    #[test]
    fn injective_onto_nonzero_labels() {
        for r in 0..=8u8 {
            let labels = inorder_embedding(r);
            let mut sorted = labels.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), labels.len(), "collision at r={r}");
            assert!(labels.iter().all(|&x| x > 0 && x < (1 << (r + 1))));
            // Exactly the non-zero labels are hit: 2^{r+1} − 1 of them.
            assert_eq!(labels.len(), (1 << (r + 1)) - 1);
        }
    }

    #[test]
    fn dilation_is_two() {
        for r in 1..=8u8 {
            let mut worst = 0;
            for a in Address::all_up_to(r - 1) {
                let la = inorder_label(a, r);
                // Left child: distance exactly 2; right child: exactly 1.
                assert_eq!(ham(la, inorder_label(a.child(0), r)), 2);
                assert_eq!(ham(la, inorder_label(a.child(1), r)), 1);
                worst = worst.max(2);
            }
            assert_eq!(worst, 2);
        }
    }

    #[test]
    fn distance_distortion_plus_one() {
        // For any pair, Hamming distance ≤ tree distance + 1.
        let r = 6;
        for a in Address::all_up_to(r) {
            for b in Address::all_up_to(r) {
                let td = a.tree_distance(b);
                let hd = ham(inorder_label(a, r), inorder_label(b, r));
                assert!(hd <= td + 1, "{a} vs {b}: tree {td}, hamming {hd}");
            }
        }
    }
}

//! The paper's contribution: embeddings of arbitrary binary trees into
//! X-trees (Theorems 1 and 2), hypercubes (Theorem 3 and the inorder /
//! Lemma-3 machinery), and the Theorem-4 universal graph.
//!
//! Quick map:
//! * [`theorem1::embed`] — algorithm X-TREE: load 16, dilation ≤ 3 into the
//!   optimal X-tree;
//! * [`theorem2::injectivize`] — blow-up to an injective embedding into
//!   `X(r+4)` with dilation ≤ 11;
//! * [`hypercube::embed_theorem3`] / [`hypercube::embed_corollary8`] — the
//!   hypercube routes (load 16 / dilation 4, and injective / dilation 8);
//! * [`universal::UniversalGraph`] — the degree-415 universal graph;
//! * [`baseline`] — naïve embeddings for the comparison benchmarks;
//! * [`metrics::evaluate`] — dilation / load / expansion / condition-(3′)
//!   measurement of any embedding;
//! * [`repair`] — migrating guests off dead host vertices (bounded-radius
//!   BFS under a load cap), turning host failures into measured
//!   degradation instead of stranded work.

pub mod baseline;
pub mod embedding;
pub mod hypercube;
pub mod metrics;
pub mod repair;
pub mod theorem1;
pub mod theorem2;
pub mod universal;

pub use embedding::{QEmbedding, XEmbedding};
pub use metrics::{evaluate, EmbeddingStats};
pub use repair::{Relocation, RepairConfig, RepairError, RepairReport, Repaired};
pub use theorem1::{embed as embed_theorem1, BuildLog, Theorem1Embedding};

//! Property tests for fault injection: delivery under random damage must
//! agree exactly with plain graph reachability. For random X-tree and
//! hypercube hosts with random cycle-0 fault sets, every message whose
//! endpoints share a survivor component is delivered, every other message
//! is reported stranded, and the stranded set matches a reference
//! computation built from `Csr::survivor` + `Csr::component_ids` — a
//! completely independent path through the topology crate.

use proptest::prelude::*;
use std::collections::HashSet;
use xtree_sim::{BatchOutcome, Engine, FaultPlan, FaultState, Message, Network};
use xtree_topology::{Csr, Graph, Hypercube, XTree};

fn host(xtree: bool, size: u8) -> Csr {
    if xtree {
        XTree::new(size).graph().clone()
    } else {
        Hypercube::new(size).graph().clone()
    }
}

proptest! {
    #[test]
    fn faulted_delivery_matches_survivor_reachability(
        xtree in any::<bool>(),
        size in 2u8..=4,
        edge_picks in prop::collection::vec(any::<u32>(), 0..8),
        node_picks in prop::collection::vec(any::<u32>(), 0..3),
        msg_picks in prop::collection::vec((any::<u32>(), any::<u32>()), 1..24),
    ) {
        let graph = host(xtree, size);
        let n = graph.node_count() as u32;
        let edges: Vec<(u32, u32)> = graph.edges().collect();

        // Random damage, all landing at cycle 0: kill a handful of links
        // and up to a couple of nodes.
        let mut plan = FaultPlan::new();
        let mut dead_edges: HashSet<(u32, u32)> = HashSet::new();
        for p in &edge_picks {
            let (u, v) = edges[*p as usize % edges.len()];
            if dead_edges.insert((u.min(v), u.max(v))) {
                plan = plan.link_down(0, u, v);
            }
        }
        let mut dead_nodes: HashSet<u32> = HashSet::new();
        for p in &node_picks {
            if dead_nodes.insert(p % n) {
                plan = plan.node_down(0, p % n);
            }
        }
        let msgs: Vec<Message> = msg_picks
            .iter()
            .map(|(a, b)| Message { src: a % n, dst: b % n })
            .collect();

        // Reference verdict: component labels of the survivor graph,
        // computed without any simulator code.
        let survivor = graph.survivor(
            |v| !dead_nodes.contains(&v),
            |u, v| !dead_edges.contains(&(u.min(v), u.max(v))),
        );
        let (comp, _) = survivor.component_ids();
        let expected_stranded: Vec<u32> = msgs
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                m.src != m.dst
                    && (dead_nodes.contains(&m.src)
                        || dead_nodes.contains(&m.dst)
                        || comp[m.src as usize] != comp[m.dst as usize])
            })
            .map(|(i, _)| i as u32)
            .collect();

        let net = Network::new(graph.clone()).unwrap();
        let mut faults = FaultState::new(&graph, plan).unwrap();
        let out = Engine::new().run_batch_faulted(&net, &msgs, &mut faults).unwrap();
        match out {
            BatchOutcome::Delivered(_) => prop_assert!(
                expected_stranded.is_empty(),
                "engine claims full delivery but reachability strands {expected_stranded:?}"
            ),
            BatchOutcome::Partial { stranded, .. } => {
                prop_assert_eq!(stranded, expected_stranded)
            }
            BatchOutcome::Stalled { .. } => prop_assert!(
                false,
                "all faults land at cycle 0 with no repairs: a stall is impossible"
            ),
        }
    }

    #[test]
    fn random_link_plans_are_reproducible_and_fit_their_host(
        size in 2u8..=4,
        seed in any::<u64>(),
        rate_pct in 0u32..30,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let graph = XTree::new(size).graph().clone();
        let a = FaultPlan::random_links(&graph, rate, seed, 8, Some(4)).unwrap();
        let b = FaultPlan::random_links(&graph, rate, seed, 8, Some(4)).unwrap();
        prop_assert_eq!(a.events(), b.events());
        // Generated plans always validate against the host they came from.
        prop_assert!(FaultState::new(&graph, a).is_ok());
    }

    #[test]
    fn link_faults_with_repairs_always_terminate_and_deliver_the_reachable(
        size in 2u8..=4,
        seed in any::<u64>(),
        msg_picks in prop::collection::vec((any::<u32>(), any::<u32>()), 1..16),
    ) {
        // Link-only faults with repairs inside the watchdog budget: the
        // engine must settle on a typed outcome (usually full delivery once
        // every link is back) — never hang, never panic.
        let graph = XTree::new(size).graph().clone();
        let n = graph.node_count() as u32;
        let plan = FaultPlan::random_links(&graph, 0.2, seed, 6, Some(3)).unwrap();
        let msgs: Vec<Message> = msg_picks
            .iter()
            .map(|(a, b)| Message { src: a % n, dst: b % n })
            .collect();
        let net = Network::new(graph.clone()).unwrap();
        let mut faults = FaultState::new(&graph, plan).unwrap();
        let out = Engine::new().run_batch_faulted(&net, &msgs, &mut faults).unwrap();
        // Every link is repaired 3 cycles after it fails and nodes never
        // die, so the survivor graph is eventually whole again and nothing
        // can be stranded or stalled.
        prop_assert!(out.delivered_all(), "repairs guarantee delivery, got {:?}", out);
    }
}

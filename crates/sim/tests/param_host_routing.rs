//! Printed-seed parametric tests pinning the closed-form host routers to
//! the BFS-table reference ([`xtree_trees::paramtest`] harness).
//!
//! The [`Host`] contract is *exactly* [`TableRouter`]'s: `next_hop(v,
//! dst)` is the smallest-id neighbour of `v` strictly closer to `dst`
//! (and `v` itself at the destination), and `distance` is the true
//! shortest-path metric. Both sides are deterministic, so the comparison
//! is equality on sampled pairs — not just "some downhill neighbour" —
//! over random host sizes each iteration. A failing seed prints as a
//! `XTREE_PARAM_SEED=0x…` one-liner and belongs in the `regressions`
//! list once fixed.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use xtree_sim::host::{Host, HypercubeHost, UniversalHost};
use xtree_sim::router::{Router, TableRouter};
use xtree_trees::paramtest::start_parametric_test;

const ITERS: usize = 8;
/// Sampled (source, destination) pairs per host instance.
const PAIRS: usize = 256;

/// Pins `host` to the BFS table built from its own CSR view: identical
/// `distance` and identical (not merely valid) `next_hop` on every
/// sampled pair.
fn pin_to_table<H: Host>(host: &H, rng: &mut ChaCha8Rng) {
    let table = TableRouter::new(host.csr()).expect("host fits the table cap");
    let n = host.node_count() as u32;
    for _ in 0..PAIRS {
        let v = rng.random_range(0..n);
        let dst = rng.random_range(0..n);
        assert_eq!(
            host.distance(v, dst),
            table.distance(v, dst),
            "{}: distance({v}, {dst})",
            host.label()
        );
        assert_eq!(
            host.next_hop(v, dst),
            table.next_hop(v, dst),
            "{}: next_hop({v}, {dst})",
            host.label()
        );
    }
}

#[test]
fn hypercube_next_hop_matches_the_bfs_table() {
    start_parametric_test(
        "hypercube_next_hop_matches_the_bfs_table",
        &[],
        ITERS,
        |rng| {
            let dim = rng.random_range(1..=8u8);
            pin_to_table(&HypercubeHost::new(dim), rng);
        },
    );
}

#[test]
fn universal_next_hop_matches_the_bfs_table() {
    start_parametric_test(
        "universal_next_hop_matches_the_bfs_table",
        &[],
        ITERS,
        |rng| {
            // Height 4 is already 496 slot vertices; the quotient shortcut
            // must agree with a table built on the full G_n.
            let height = rng.random_range(0..=4u8);
            pin_to_table(&UniversalHost::new(height), rng);
        },
    );
}

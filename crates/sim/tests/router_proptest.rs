//! Property tests: the structured O(1)-memory routers are observationally
//! identical to the dense BFS next-hop tables they replaced — exact
//! distances, the same smallest-id downhill next hop, and the downhill
//! invariant (each hop decreases the distance by exactly one) — across
//! X(1..=8), Q(1..=8) and CBT(1..=8), plus the downhill invariant alone on
//! X-trees far past the old 2^13-vertex table cap.

use proptest::prelude::*;
use std::sync::OnceLock;
use xtree_sim::router::{CbtRouter, HypercubeRouter, Router, TableRouter, XTreeRouter};
use xtree_sim::Network;
use xtree_topology::{CompleteBinaryTree, Graph, Hypercube, XTree};

/// One BFS table per height, built once: the oracle the fast routers must
/// reproduce bit for bit.
fn xtree_oracles() -> &'static Vec<(usize, TableRouter)> {
    static T: OnceLock<Vec<(usize, TableRouter)>> = OnceLock::new();
    T.get_or_init(|| {
        (1..=8u8)
            .map(|r| {
                let x = XTree::new(r);
                (x.node_count(), TableRouter::new(x.graph()).unwrap())
            })
            .collect()
    })
}

fn hypercube_oracles() -> &'static Vec<(usize, TableRouter)> {
    static T: OnceLock<Vec<(usize, TableRouter)>> = OnceLock::new();
    T.get_or_init(|| {
        (1..=8u8)
            .map(|d| {
                let q = Hypercube::new(d);
                (q.node_count(), TableRouter::new(q.graph()).unwrap())
            })
            .collect()
    })
}

fn cbt_oracles() -> &'static Vec<(usize, TableRouter)> {
    static T: OnceLock<Vec<(usize, TableRouter)>> = OnceLock::new();
    T.get_or_init(|| {
        (1..=8u8)
            .map(|r| {
                let b = CompleteBinaryTree::new(r);
                (b.node_count(), TableRouter::new(b.graph()).unwrap())
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn xtree_router_agrees_with_bfs_table(r in 1u8..=8, a in any::<u32>(), b in any::<u32>()) {
        let (n, table) = &xtree_oracles()[usize::from(r) - 1];
        let (v, dst) = (a % *n as u32, b % *n as u32);
        let fast = XTreeRouter::new(r);
        prop_assert_eq!(fast.distance(v, dst), table.distance(v, dst));
        prop_assert_eq!(fast.next_hop(v, dst), table.next_hop(v, dst));
        if v != dst {
            let hop = fast.next_hop(v, dst);
            prop_assert_eq!(fast.distance(hop, dst) + 1, fast.distance(v, dst));
        }
    }

    #[test]
    fn hypercube_router_agrees_with_bfs_table(d in 1u8..=8, a in any::<u32>(), b in any::<u32>()) {
        let (n, table) = &hypercube_oracles()[usize::from(d) - 1];
        let (v, dst) = (a % *n as u32, b % *n as u32);
        let fast = HypercubeRouter;
        prop_assert_eq!(fast.distance(v, dst), table.distance(v, dst));
        prop_assert_eq!(fast.next_hop(v, dst), table.next_hop(v, dst));
        if v != dst {
            let hop = fast.next_hop(v, dst);
            prop_assert_eq!(fast.distance(hop, dst) + 1, fast.distance(v, dst));
        }
    }

    #[test]
    fn cbt_router_agrees_with_bfs_table(r in 1u8..=8, a in any::<u32>(), b in any::<u32>()) {
        let (n, table) = &cbt_oracles()[usize::from(r) - 1];
        let (v, dst) = (a % *n as u32, b % *n as u32);
        let fast = CbtRouter;
        prop_assert_eq!(fast.distance(v, dst), table.distance(v, dst));
        prop_assert_eq!(fast.next_hop(v, dst), table.next_hop(v, dst));
        if v != dst {
            let hop = fast.next_hop(v, dst);
            prop_assert_eq!(fast.distance(hop, dst) + 1, fast.distance(v, dst));
        }
    }

    #[test]
    fn xtree_downhill_invariant_past_the_table_cap(
        r in 14u8..=20,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        // No oracle exists at these sizes — that is the point. The hop-by-
        // hop walk must still descend monotonically and reach `dst` in
        // exactly `distance` steps.
        let n = (1u64 << (r + 1)) - 1;
        let (mut at, dst) = ((a % n) as u32, (b % n) as u32);
        let fast = XTreeRouter::new(r);
        let mut hops = 0;
        let total = fast.distance(at, dst);
        while at != dst {
            let next = fast.next_hop(at, dst);
            prop_assert_eq!(fast.distance(next, dst) + 1, fast.distance(at, dst));
            at = next;
            hops += 1;
        }
        prop_assert_eq!(hops, total);
    }

    #[test]
    fn network_constructors_are_interchangeable(r in 1u8..=6, a in any::<u32>(), b in any::<u32>()) {
        // End to end through `Network`: the public constructors expose the
        // same routing function regardless of strategy.
        let x = XTree::new(r);
        let n = x.node_count() as u32;
        let (v, dst) = (a % n, b % n);
        let fast = Network::xtree(&x);
        let table = Network::new(x.graph().clone()).unwrap();
        prop_assert_eq!(fast.next_hop(v, dst), table.next_hop(v, dst));
        prop_assert_eq!(fast.distance(v, dst), table.distance(v, dst));
    }
}

//! The simulator against every host topology the workspace builds —
//! routing and delivery must work unchanged on X-trees, hypercubes,
//! meshes, cube-connected cycles, and butterflies.

use xtree_sim::{run_batch, Message, Network};
use xtree_topology::{
    Butterfly, CompleteBinaryTree, CubeConnectedCycles, Graph, Hypercube, Mesh2D, XTree,
};

fn deliver_all_pairs(net: &Network) {
    // One message per ordered pair (sampled): every delivery must take
    // exactly the shortest-path distance when run alone.
    let n = net.len();
    for src in (0..n).step_by(7) {
        for dst in (0..n).step_by(11) {
            let s = run_batch(
                net,
                &[Message {
                    src: src as u32,
                    dst: dst as u32,
                }],
            )
            .unwrap();
            assert_eq!(s.cycles, net.distance(src as u32, dst as u32));
        }
    }
}

#[test]
fn xtree_host() {
    // Both the BFS-table fallback and the closed-form router must deliver
    // every message in exactly the shortest-path time.
    let x = XTree::new(5);
    deliver_all_pairs(&Network::new(x.graph().clone()).unwrap());
    deliver_all_pairs(&Network::xtree(&x));
}

#[test]
fn hypercube_host() {
    let q = Hypercube::new(6);
    deliver_all_pairs(&Network::new(q.graph().clone()).unwrap());
    deliver_all_pairs(&Network::hypercube(&q));
}

#[test]
fn cbt_host() {
    let b = CompleteBinaryTree::new(5);
    deliver_all_pairs(&Network::new(b.graph().clone()).unwrap());
    deliver_all_pairs(&Network::cbt(&b));
}

#[test]
fn mesh_host() {
    let m = Mesh2D::new(6, 9);
    let net = Network::new(m.graph().clone()).unwrap();
    deliver_all_pairs(&net);
    // Network distances equal the Manhattan metric.
    for a in (0..m.node_count()).step_by(5) {
        for b in (0..m.node_count()).step_by(3) {
            assert_eq!(net.distance(a as u32, b as u32), m.distance(a, b));
        }
    }
}

#[test]
fn ccc_host() {
    deliver_all_pairs(&Network::new(CubeConnectedCycles::new(4).graph().clone()).unwrap());
}

#[test]
fn butterfly_host() {
    deliver_all_pairs(&Network::new(Butterfly::new(4).graph().clone()).unwrap());
}

#[test]
fn delivery_is_deterministic() {
    let x = XTree::new(4);
    let msgs: Vec<Message> = (0..20)
        .map(|i| Message {
            src: i % 31,
            dst: (i * 7 + 3) % 31,
        })
        .collect();
    let table = run_batch(&Network::new(x.graph().clone()).unwrap(), &msgs).unwrap();
    let fast = run_batch(&Network::xtree(&x), &msgs).unwrap();
    assert_eq!(
        table,
        run_batch(&Network::new(x.graph().clone()).unwrap(), &msgs).unwrap(),
        "same batch must produce identical statistics"
    );
    assert_eq!(
        table, fast,
        "structured routing must not change delivery statistics"
    );
}

#[test]
fn saturating_batch_terminates() {
    // Every vertex sends to vertex 0: heavy funnel congestion, must still
    // converge with cycles ≥ messages on the last link.
    let net = Network::new(XTree::new(4).graph().clone()).unwrap();
    let msgs: Vec<Message> = (1..31).map(|src| Message { src, dst: 0 }).collect();
    let s = run_batch(&net, &msgs).unwrap();
    assert!(
        s.cycles >= 15,
        "30 messages over 2 root links need ≥ 15 cycles"
    );
    assert!(s.max_link_traffic >= 10);
}

//! Telemetry integration: deterministic replay and zero-impact sinks.
//!
//! Two guarantees are tested across random workloads and fault plans:
//!
//! 1. **Byte-identical replay** — running the same seeded workload twice
//!    (fault-free and faulted) records byte-for-byte identical binary
//!    traces, and the trace decodes back to a well-formed event stream
//!    whose hop/delivery counts match the engine's own statistics.
//! 2. **Observer effect is zero** — attaching any sink (or none) leaves
//!    the `BatchStats`/`BatchOutcome` bit-identical to the uninstrumented
//!    run: telemetry observes the schedule, it never perturbs it.

use proptest::prelude::*;
use xtree_sim::telemetry::{read_trace, Event, MetricsSink, Tee, TraceRecorder};
use xtree_sim::{Engine, FaultPlan, FaultState, Message, Network};
use xtree_topology::{Graph, XTree};

fn messages(n: u32, picks: &[(u32, u32)]) -> Vec<Message> {
    picks
        .iter()
        .map(|&(a, b)| Message {
            src: a % n,
            dst: b % n,
        })
        .collect()
}

/// One faulted run from a fresh engine + fresh fault state, recording
/// into a fresh trace; returns the trace plus outcome.
fn traced_faulted_run(
    net: &Network,
    msgs: &[Message],
    plan: &FaultPlan,
) -> (TraceRecorder, xtree_sim::BatchOutcome) {
    let mut rec = TraceRecorder::new();
    let mut faults = FaultState::new(net.graph(), plan.clone()).unwrap();
    let out = Engine::new()
        .run_batch_faulted_with(net, msgs, &mut faults, &mut rec)
        .unwrap();
    (rec, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fault_free_replay_is_byte_identical(
        size in 2u8..=4,
        msg_picks in prop::collection::vec((any::<u32>(), any::<u32>()), 1..32),
    ) {
        let x = XTree::new(size);
        let net = Network::xtree(&x);
        let msgs = messages(x.node_count() as u32, &msg_picks);
        let mut traces = Vec::new();
        for _ in 0..2 {
            let mut rec = TraceRecorder::new();
            let stats = Engine::new().run_batch_with(&net, &msgs, &mut rec).unwrap();
            let events = read_trace(rec.bytes()).unwrap();
            let hops = events.iter().filter(|e| matches!(e, Event::HopTaken { .. })).count();
            let delivered = events
                .iter()
                .filter(|e| matches!(e, Event::MessageDelivered { .. }))
                .count();
            prop_assert_eq!(hops as u64, stats.total_hops);
            let moving = msgs.iter().filter(|m| m.src != m.dst).count();
            prop_assert_eq!(delivered, moving);
            traces.push(rec.into_bytes());
        }
        prop_assert_eq!(&traces[0], &traces[1]);
    }

    #[test]
    fn faulted_replay_is_byte_identical(
        size in 2u8..=4,
        seed in any::<u64>(),
        msg_picks in prop::collection::vec((any::<u32>(), any::<u32>()), 1..24),
    ) {
        let x = XTree::new(size);
        let net = Network::xtree(&x);
        let msgs = messages(x.node_count() as u32, &msg_picks);
        let plan = FaultPlan::random_links(net.graph(), 0.15, seed, 6, Some(3)).unwrap();
        let (rec_a, out_a) = traced_faulted_run(&net, &msgs, &plan);
        let (rec_b, out_b) = traced_faulted_run(&net, &msgs, &plan);
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(rec_a.bytes(), rec_b.bytes());
        // The stream decodes and its cycles never run backwards per batch.
        let events = read_trace(rec_a.bytes()).unwrap();
        let mut prev = 0u64;
        for ev in &events {
            if matches!(ev, Event::BatchStarted { .. }) {
                prev = 0;
            } else {
                prop_assert!(ev.cycle() >= prev, "cycle regressed in {ev:?}");
                prev = ev.cycle();
            }
        }
    }

    #[test]
    fn sinks_do_not_perturb_outcomes(
        size in 2u8..=4,
        seed in any::<u64>(),
        msg_picks in prop::collection::vec((any::<u32>(), any::<u32>()), 1..24),
    ) {
        let x = XTree::new(size);
        let net = Network::xtree(&x);
        let msgs = messages(x.node_count() as u32, &msg_picks);

        // Fault-free: the no-op path (`run_batch`) vs recording sinks.
        let plain = Engine::new().run_batch(&net, &msgs).unwrap();
        let mut rec = TraceRecorder::new();
        let mut met = MetricsSink::new();
        let teed = Engine::new()
            .run_batch_with(&net, &msgs, &mut Tee(&mut rec, &mut met))
            .unwrap();
        prop_assert_eq!(&plain, &teed);
        met.finish();
        prop_assert_eq!(met.counters().hops, plain.total_hops);

        // Faulted: same check through the survivor path.
        let plan = FaultPlan::random_links(net.graph(), 0.2, seed, 6, Some(3)).unwrap();
        let mut faults = FaultState::new(net.graph(), plan.clone()).unwrap();
        let out_plain = Engine::new().run_batch_faulted(&net, &msgs, &mut faults).unwrap();
        let (_, out_traced) = traced_faulted_run(&net, &msgs, &plan);
        prop_assert_eq!(out_plain, out_traced);
    }
}

#[test]
fn faulted_x10_fixed_seed_replays_byte_for_byte() {
    // The acceptance scenario: a faulted X(10) run with a fixed seed must
    // verify byte-for-byte on replay.
    let x = XTree::new(10);
    let net = Network::xtree(&x);
    let n = x.node_count() as u64;
    let mut state = 0x7E1E_2026_u64;
    let mut rand = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let msgs: Vec<Message> = (0..512)
        .map(|_| Message {
            src: (rand() % n) as u32,
            dst: (rand() % n) as u32,
        })
        .collect();
    let plan = FaultPlan::random_links(net.graph(), 0.05, 0xFA17, 32, Some(16)).unwrap();
    let (rec_a, out_a) = traced_faulted_run(&net, &msgs, &plan);
    let (rec_b, out_b) = traced_faulted_run(&net, &msgs, &plan);
    assert_eq!(out_a, out_b);
    assert_eq!(rec_a.bytes(), rec_b.bytes());
    assert!(rec_a.event_count() > 0);
    // The damage actually shows up in the stream.
    let events = read_trace(rec_a.bytes()).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::FaultApplied { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::RerouteComputed { .. })));
}

#[test]
fn counted_sweep_matches_uncounted_and_tallies_hops() {
    use xtree_core::metrics::heap_order_embedding;
    use xtree_sim::telemetry::AtomicCounters;
    use xtree_trees::generate;

    let x = XTree::new(3);
    let net = Network::new(x.graph().clone()).unwrap();
    let cases: Vec<_> = (0..4)
        .map(|i| {
            let t = generate::caterpillar(10 + i);
            let e = heap_order_embedding(&t, 3);
            (t, e)
        })
        .collect();
    let counters = AtomicCounters::new();
    let counted = xtree_sim::sweep_counted(&net, &cases, &counters).unwrap();
    assert_eq!(counted, xtree_sim::sweep(&net, &cases).unwrap());
    let snap = counters.snapshot();
    assert!(snap.hops > 0);
    assert!(snap.batches > 0);
    assert_eq!(snap.faults_applied, 0);
}

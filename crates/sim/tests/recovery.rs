//! Acceptance tests for the self-healing stack on realistic hosts: an
//! X(10) run whose node faults strand messages without supervision must
//! end fully delivered under the default [`RecoveryPolicy`] with the
//! repaired embedding audited against the fault state; a temporarily
//! cut-off vertex must be waited out and delivered once its links return;
//! and a checkpoint/restore cycle through the full `XCKPT1` container must
//! continue to a byte-identical telemetry trace.

use xtree_core::metrics::heap_order_embedding;
use xtree_sim::telemetry::TraceRecorder;
use xtree_sim::workload::exchange_round;
use xtree_sim::{
    decode_checkpoint, encode_checkpoint, recover_batch, Checkpoint, Engine, FaultPlan, FaultState,
    Network, RecoveryPolicy, RepairableHost, Session,
};
use xtree_topology::{Graph, XTree};
use xtree_trees::generate;

/// The paper-scale acceptance run: X(10) (2047 vertices), a full guest
/// tree, and a fixed-seed node-failure schedule that the bare engine
/// cannot route around. The default policy must migrate the affected
/// guests, re-dispatch the leftovers, and end fully delivered with the
/// embedding provably clean of dead vertices.
#[test]
fn x10_node_faults_heal_to_full_delivery() {
    let x = XTree::new(10);
    let net = Network::xtree(&x);
    let tree = generate::left_complete(x.node_count());
    let emb0 = heap_order_embedding(&tree, 10);
    let batch = exchange_round(&tree, &emb0);
    // Seed 5 kills ~20 vertices inside the fault window and strands 22
    // messages without supervision (pinned by the assertion below).
    let plan = FaultPlan::random_nodes(net.graph(), 0.01, 5, 16).unwrap();

    let mut faults = FaultState::new(net.graph(), plan.clone()).unwrap();
    let mut engine = Engine::new();
    let bare = engine.run_batch_faulted(&net, &batch, &mut faults).unwrap();
    assert!(
        !bare.delivered_all(),
        "fixture must degrade without recovery"
    );

    let policy = RecoveryPolicy::default();
    let mut faults = FaultState::new(net.graph(), plan).unwrap();
    let mut emb = emb0;
    let mut engine = Engine::new();
    let out = recover_batch(
        &mut engine,
        &net,
        &tree,
        &mut emb,
        &batch,
        &mut faults,
        &policy,
    )
    .unwrap();
    assert!(out.delivered_all(), "recovery must finish: {:?}", out.end);
    assert!(out.retries() >= 1, "delivery must have needed a retry");
    assert!(out.requeued() >= 1);
    assert!(
        emb.validate_against(&faults),
        "no guest may remain on a dead vertex"
    );
    let report = out.repair.expect("node deaths force a migration");
    assert!(report.migrated > 0);
    assert!(report.max_load <= policy.repair.load_cap);
    assert!(emb.max_load() <= policy.repair.load_cap);
}

/// Temporary disconnection: every link of one leaf vertex goes down at
/// cycle 0 and returns at cycle 60, and the engine's stall watchdog is
/// tightened to 16 idle cycles so a single batch gives up long before the
/// repair lands. The bare run stalls on the cut-off destination; the
/// supervisor's backoff waits the outage out on the simulated clock and
/// delivers 100% — the survivor graph is connected again by then, so
/// nothing may be called unreachable.
#[test]
fn temporarily_cut_vertex_recovers_once_links_return() {
    let x = XTree::new(6);
    let net = Network::xtree(&x);
    let tree = generate::left_complete(x.node_count());
    let emb0 = heap_order_embedding(&tree, 6);
    let batch = exchange_round(&tree, &emb0);
    let victim = net.graph().node_count() as u32 - 1;
    let mut plan = FaultPlan::new();
    for w in net.graph().out_edges(victim as usize).map(|(_, w)| w) {
        plan = plan.link_down(0, victim, w).link_up(60, victim, w);
    }

    let mut faults = FaultState::new(net.graph(), plan.clone())
        .unwrap()
        .with_max_idle_wait(16);
    let mut engine = Engine::new();
    let bare = engine.run_batch_faulted(&net, &batch, &mut faults).unwrap();
    assert!(!bare.delivered_all(), "the cut vertex must strand messages");

    let mut faults = FaultState::new(net.graph(), plan)
        .unwrap()
        .with_max_idle_wait(16);
    let mut emb = emb0;
    let mut engine = Engine::new();
    let out = recover_batch(
        &mut engine,
        &net,
        &tree,
        &mut emb,
        &batch,
        &mut faults,
        &RecoveryPolicy::default(),
    )
    .unwrap();
    assert!(out.delivered_all(), "links return, so: {:?}", out.end);
    assert!(out.retries() >= 1);
    assert!(
        out.repair.is_none(),
        "pure link faults must not touch the embedding"
    );
}

/// The tentpole determinism guarantee, end to end through the `XCKPT1`
/// container: interrupt a supervised session at every round boundary,
/// serialise it (session snapshot + embedding + trace), deserialise,
/// resume, and the completed run must produce the *byte-identical*
/// telemetry trace and the same reports as the uninterrupted oracle.
#[test]
fn checkpoint_restore_traces_byte_identically() {
    let x = XTree::new(3);
    let net = Network::xtree(&x);
    let tree = generate::left_complete(x.node_count());
    let emb = heap_order_embedding(&tree, 3);
    let victim = net.graph().node_count() as u32 - 1;
    let plan = FaultPlan::new()
        .node_down(1, victim)
        .node_down(2, victim / 2);
    let policy = Some(RecoveryPolicy::default());

    let mut oracle_trace = TraceRecorder::new();
    let oracle = Session::new(&net, &tree, emb.clone(), plan.clone(), policy.clone());
    let (want_reports, want_totals, want_emb) =
        oracle.run_to_completion_with(&mut oracle_trace).unwrap();
    assert!(
        want_totals.retries > 0 && want_totals.migrated > 0,
        "fixture must exercise the supervisor: {want_totals:?}"
    );

    for k in 0..40 {
        let mut trace = TraceRecorder::new();
        let mut first = Session::new(&net, &tree, emb.clone(), plan.clone(), policy.clone());
        let complete = first.run_with(k, &mut trace).unwrap();
        let ck = Checkpoint {
            session: first.snapshot(),
            embedding: first.embedding().clone(),
            config: format!("{{\"cut\":{k}}}"),
            trace: trace.bytes().to_vec(),
        };
        // Through the container and back: framing must be lossless.
        let ck = decode_checkpoint(&encode_checkpoint(&ck)).unwrap();
        assert_eq!(ck.config, format!("{{\"cut\":{k}}}"));
        let mut trace = TraceRecorder::resume(ck.trace).unwrap();
        let resumed =
            Session::resume(&net, &tree, ck.embedding, policy.clone(), &ck.session).unwrap();
        let (reports, totals, emb_after) = resumed.run_to_completion_with(&mut trace).unwrap();
        assert_eq!(reports, want_reports, "cut at {k}");
        assert_eq!(totals, want_totals, "cut at {k}");
        assert_eq!(emb_after.map, want_emb.map, "cut at {k}");
        assert_eq!(
            trace.bytes(),
            oracle_trace.bytes(),
            "resumed trace must be byte-identical (cut at {k})"
        );
        if complete == xtree_sim::SessionStatus::Complete {
            break;
        }
    }
}

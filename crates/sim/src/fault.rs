//! Deterministic fault injection: scheduled link/node failures and the
//! survivor-graph routing that lets messages detour around damage.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of topology events
//! (link-down, link-up, node-down) keyed by *fault-clock* cycle. The
//! engine consumes it through a [`FaultState`], which tracks which links
//! and nodes are currently dead, applies due events as the clock advances,
//! and answers routing queries on the **survivor graph** — the host minus
//! the dead links and the links incident to dead nodes.
//!
//! Survivor routing keeps the simulator's determinism contract: the next
//! hop is the smallest-id alive neighbour that decreases the survivor-
//! graph distance, exactly the convention of the closed-form routers and
//! the dense BFS tables (see `router`). Routes are served from per-
//! destination BFS tables that are built lazily and cached until the next
//! topology change (each applied event bumps an epoch that invalidates the
//! cache), so a quiet network pays for BFS only once per destination per
//! damage configuration.
//!
//! Nothing here touches the fault-free fast path: an engine run without a
//! fault plan never consults this module.

use crate::error::SimError;
use std::collections::HashMap;
use xtree_topology::{Csr, Graph};

/// One scheduled topology change. Links are undirected host edges; a
/// downed link rejects traffic in both directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The link `{u, v}` fails.
    LinkDown {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// The link `{u, v}` is repaired.
    LinkUp {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Vertex `v` fails: every incident link dies with it, and messages
    /// currently parked there freeze until the batch ends. Node repairs are
    /// deliberately not modelled — a rebooted processor has lost its state,
    /// so "the same node comes back" is a different experiment.
    NodeDown {
        /// The failing vertex.
        v: u32,
    },
}

/// A [`FaultKind`] scheduled at a fault-clock cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Fault-clock cycle at which the event applies (cycle 0 is *before*
    /// the first delivery cycle of the first batch run against the plan).
    pub cycle: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, reproducible schedule of fault events.
///
/// Build one explicitly with the chainable [`FaultPlan::link_down`] /
/// [`FaultPlan::link_up`] / [`FaultPlan::node_down`], or generate a random
/// one with [`FaultPlan::random_links`]. Events are kept sorted by cycle
/// (stably, so same-cycle events apply in insertion order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// SplitMix64 — tiny, seedable, and stable across platforms, so fault
/// plans never depend on an external RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Rejects NaN and out-of-range failure probabilities.
fn validate_rate(rate: f64) -> Result<(), SimError> {
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(SimError::InvalidRate {
            given: format!("{rate}"),
        });
    }
    Ok(())
}

impl FaultPlan {
    /// An empty plan (no faults ever).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a link failure.
    pub fn link_down(mut self, cycle: u32, u: u32, v: u32) -> Self {
        self.push(FaultEvent {
            cycle,
            kind: FaultKind::LinkDown { u, v },
        });
        self
    }

    /// Schedules a link repair.
    pub fn link_up(mut self, cycle: u32, u: u32, v: u32) -> Self {
        self.push(FaultEvent {
            cycle,
            kind: FaultKind::LinkUp { u, v },
        });
        self
    }

    /// Schedules a node failure.
    pub fn node_down(mut self, cycle: u32, v: u32) -> Self {
        self.push(FaultEvent {
            cycle,
            kind: FaultKind::NodeDown { v },
        });
        self
    }

    fn push(&mut self, e: FaultEvent) {
        // Stable insert-sort position: after every event with cycle <= e.cycle.
        let pos = self.events.partition_point(|x| x.cycle <= e.cycle);
        self.events.insert(pos, e);
    }

    /// Random link failures: each undirected edge of `graph` independently
    /// fails with probability `rate`, at a cycle drawn uniformly from
    /// `0..window.max(1)`. With `repair_after = Some(k)` every failed link
    /// comes back `k` cycles after it went down. Fully determined by
    /// `seed` — the same seed, graph, and parameters always produce the
    /// same plan.
    ///
    /// # Errors
    /// [`SimError::InvalidRate`] when `rate` is NaN or outside `[0, 1]` —
    /// a degenerate rate would silently fail every link or none.
    pub fn random_links(
        graph: &Csr,
        rate: f64,
        seed: u64,
        window: u32,
        repair_after: Option<u32>,
    ) -> Result<Self, SimError> {
        validate_rate(rate)?;
        let mut plan = FaultPlan::new();
        let mut state = seed ^ 0xFA_17_5E_ED_u64.rotate_left(32);
        for (u, v) in graph.edges() {
            let fails = unit_f64(splitmix64(&mut state)) < rate;
            let at = (splitmix64(&mut state) % u64::from(window.max(1))) as u32;
            if !fails {
                continue; // draws happen regardless, keeping plans prefix-stable
            }
            plan = plan.link_down(at, u, v);
            if let Some(k) = repair_after {
                plan = plan.link_up(at.saturating_add(k), u, v);
            }
        }
        Ok(plan)
    }

    /// Random node failures: each vertex of `graph` independently fails
    /// with probability `rate`, at a cycle drawn uniformly from
    /// `0..window.max(1)`. Deterministic in `seed` and drawn from a stream
    /// independent of [`FaultPlan::random_links`], so the two compose
    /// (via [`FaultPlan::merged`]) without correlating.
    ///
    /// # Errors
    /// [`SimError::InvalidRate`] when `rate` is NaN or outside `[0, 1]`.
    pub fn random_nodes(graph: &Csr, rate: f64, seed: u64, window: u32) -> Result<Self, SimError> {
        validate_rate(rate)?;
        let mut plan = FaultPlan::new();
        let mut state = seed ^ 0xD0_0D_FA_17_u64.rotate_left(32);
        for v in 0..graph.node_count() as u32 {
            let fails = unit_f64(splitmix64(&mut state)) < rate;
            let at = (splitmix64(&mut state) % u64::from(window.max(1))) as u32;
            if fails {
                plan = plan.node_down(at, v);
            }
        }
        Ok(plan)
    }

    /// Merges two schedules into one, keeping events sorted by cycle
    /// (`self`'s events come first within a tie).
    pub fn merged(mut self, other: FaultPlan) -> FaultPlan {
        for e in other.events {
            self.push(e);
        }
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events in application order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The cycle of the last scheduled event.
    pub fn horizon(&self) -> Option<u32> {
        self.events.last().map(|e| e.cycle)
    }

    /// Serialises the schedule as LEB128 words (count, then per event:
    /// cycle, kind tag, endpoints).
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        encode_events(&self.events, buf);
    }

    /// Inverse of [`FaultPlan::encode`]. Events were sorted when encoded,
    /// so the order round-trips.
    ///
    /// # Errors
    /// [`SimError::InvalidFault`] on truncation or an unknown tag.
    pub(crate) fn decode(bytes: &[u8], pos: &mut usize) -> Result<Self, SimError> {
        Ok(FaultPlan {
            events: decode_events(bytes, pos)?,
        })
    }
}

/// Per-destination survivor-graph routing table: BFS distances toward one
/// destination plus the deterministic next hop at every vertex.
struct DstTable {
    /// `dist[v]` = survivor-graph distance from `v` to the destination
    /// (`u32::MAX` when unreachable).
    dist: Vec<u32>,
    /// `next[v]` = smallest-id alive downhill neighbour (`u32::MAX` when
    /// unreachable or at the destination itself).
    next: Vec<u32>,
}

/// How many destination tables the survivor cache may hold before it is
/// wholesale cleared. Bounds memory at roughly `CACHE_CAP * n` words no
/// matter how many distinct destinations a workload touches.
const CACHE_CAP: usize = 1024;

/// Default number of idle cycles the engine's watchdog will wait for the
/// next scheduled event before diagnosing the batch as stalled (see
/// `Engine::run_batch_faulted`).
pub const DEFAULT_MAX_IDLE_WAIT: u32 = 1 << 16;

/// Runtime fault state: the live link/node masks, the event cursor, the
/// fault clock, and the cached survivor routing tables.
///
/// One `FaultState` spans a whole experiment: the clock keeps advancing
/// across batches run on the same state, so damage persists from one batch
/// to the next exactly like it would on real hardware.
pub struct FaultState {
    events: Vec<FaultEvent>,
    /// Index of the first unapplied event.
    next_event: usize,
    /// The fault clock: total delivery cycles elapsed across all batches.
    clock: u32,
    /// Bumped on every applied event; invalidates `cache`.
    epoch: u64,
    /// Down flags per *directed* CSR edge index (both directions of a
    /// failed link are set).
    edge_down: Vec<bool>,
    node_down: Vec<bool>,
    down_links: usize,
    down_nodes: usize,
    cache: HashMap<u32, DstTable>,
    cache_epoch: u64,
    max_idle_wait: u32,
    host_nodes: usize,
}

impl FaultState {
    /// Binds `plan` to a host, validating every event against the host's
    /// topology up front.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidFault`] when an event names a link the
    /// host does not have or a vertex out of range.
    pub fn new(graph: &Csr, plan: FaultPlan) -> Result<Self, SimError> {
        let n = graph.node_count();
        for e in plan.events() {
            match e.kind {
                FaultKind::LinkDown { u, v } | FaultKind::LinkUp { u, v } => {
                    if graph.directed_edge_index(u, v).is_none()
                        || graph.directed_edge_index(v, u).is_none()
                    {
                        return Err(SimError::InvalidFault {
                            reason: format!("{{{u}, {v}}} is not a link of this host"),
                        });
                    }
                }
                FaultKind::NodeDown { v } => {
                    if v as usize >= n {
                        return Err(SimError::InvalidFault {
                            reason: format!("node {v} out of range for a {n}-vertex host"),
                        });
                    }
                }
            }
        }
        Ok(FaultState {
            events: plan.events,
            next_event: 0,
            clock: 0,
            epoch: 0,
            edge_down: vec![false; graph.directed_edge_count()],
            node_down: vec![false; n],
            down_links: 0,
            down_nodes: 0,
            cache: HashMap::new(),
            cache_epoch: 0,
            max_idle_wait: DEFAULT_MAX_IDLE_WAIT,
            host_nodes: n,
        })
    }

    /// Caps how many idle cycles the engine waits for the next scheduled
    /// event before diagnosing a stall (default [`DEFAULT_MAX_IDLE_WAIT`]).
    pub fn with_max_idle_wait(mut self, cycles: u32) -> Self {
        self.max_idle_wait = cycles;
        self
    }

    /// The configured idle-wait cap.
    pub fn max_idle_wait(&self) -> u32 {
        self.max_idle_wait
    }

    /// The fault clock (delivery cycles elapsed under this state).
    pub fn clock(&self) -> u32 {
        self.clock
    }

    /// Advances the fault clock by `cycles`.
    pub(crate) fn advance_clock(&mut self, cycles: u32) {
        self.clock = self.clock.saturating_add(cycles);
    }

    /// True when anything is currently down.
    pub fn active(&self) -> bool {
        self.down_links > 0 || self.down_nodes > 0
    }

    /// True when this state can never affect a batch: nothing down now and
    /// nothing scheduled later.
    pub fn is_trivial(&self) -> bool {
        !self.active() && self.pending().is_none()
    }

    /// The cycle of the next unapplied event, if any.
    pub fn pending(&self) -> Option<u32> {
        self.events.get(self.next_event).map(|e| e.cycle)
    }

    /// The cycle of the last event in the plan, if any.
    pub fn horizon(&self) -> Option<u32> {
        self.events.last().map(|e| e.cycle)
    }

    /// Number of links currently down.
    pub fn down_links(&self) -> usize {
        self.down_links
    }

    /// Number of nodes currently down.
    pub fn down_nodes(&self) -> usize {
        self.down_nodes
    }

    /// Guards against driving a state built for one host with another.
    pub(crate) fn check_host(&self, graph: &Csr) -> Result<(), SimError> {
        if self.host_nodes != graph.node_count()
            || self.edge_down.len() != graph.directed_edge_count()
        {
            return Err(SimError::InvalidFault {
                reason: format!(
                    "fault state built for a {}-vertex host, driven with a {}-vertex one",
                    self.host_nodes,
                    graph.node_count()
                ),
            });
        }
        Ok(())
    }

    /// Applies every event due at or before the current clock. Returns
    /// true when any event was applied (topology epochs advance then, and
    /// cached routes are invalid).
    pub(crate) fn apply_due(&mut self, graph: &Csr) -> bool {
        let mut applied = false;
        while let Some(e) = self.events.get(self.next_event) {
            if e.cycle > self.clock {
                break;
            }
            let kind = e.kind;
            self.next_event += 1;
            applied = true;
            self.apply_kind(graph, kind);
        }
        if applied {
            self.epoch += 1;
        }
        applied
    }

    fn apply_kind(&mut self, graph: &Csr, kind: FaultKind) {
        match kind {
            FaultKind::LinkDown { u, v } => self.set_link(graph, u, v, true),
            FaultKind::LinkUp { u, v } => self.set_link(graph, u, v, false),
            FaultKind::NodeDown { v } => {
                if !self.node_down[v as usize] {
                    self.node_down[v as usize] = true;
                    self.down_nodes += 1;
                }
            }
        }
    }

    fn set_link(&mut self, graph: &Csr, u: u32, v: u32, down: bool) {
        // Validated in `new`, so both directed indices exist.
        let (Some(uv), Some(vu)) = (
            graph.directed_edge_index(u, v),
            graph.directed_edge_index(v, u),
        ) else {
            return;
        };
        if self.edge_down[uv as usize] != down {
            self.edge_down[uv as usize] = down;
            self.edge_down[vu as usize] = down;
            if down {
                self.down_links += 1;
            } else {
                self.down_links -= 1;
            }
        }
    }

    /// True when the directed link `u -> v` currently carries traffic.
    #[inline]
    pub fn link_alive(&self, graph: &Csr, u: u32, v: u32) -> bool {
        if self.node_down[u as usize] || self.node_down[v as usize] {
            return false;
        }
        match graph.directed_edge_index(u, v) {
            Some(e) => !self.edge_down[e as usize],
            None => false,
        }
    }

    /// True when vertex `v` is alive.
    #[inline]
    pub fn node_alive(&self, v: u32) -> bool {
        !self.node_down[v as usize]
    }

    fn table(&mut self, graph: &Csr, dst: u32) -> &DstTable {
        if self.cache_epoch != self.epoch {
            self.cache.clear();
            self.cache_epoch = self.epoch;
        } else if self.cache.len() >= CACHE_CAP && !self.cache.contains_key(&dst) {
            self.cache.clear();
        }
        self.cache
            .entry(dst)
            .or_insert_with(|| build_dst_table(graph, dst, &self.edge_down, &self.node_down))
    }

    /// Survivor-graph next hop from `v` toward `dst`: the smallest-id
    /// alive neighbour that decreases the survivor distance, or `None`
    /// when `dst` is currently unreachable from `v` (including when either
    /// endpoint is a dead node). Returns `Some(v)` when `v == dst`.
    pub fn next_hop(&mut self, graph: &Csr, v: u32, dst: u32) -> Option<u32> {
        if v == dst {
            return Some(v);
        }
        let t = self.table(graph, dst);
        let next = t.next[v as usize];
        (next != u32::MAX).then_some(next)
    }

    /// Survivor-graph distance from `v` to `dst`, or `None` when
    /// unreachable.
    pub fn distance(&mut self, graph: &Csr, v: u32, dst: u32) -> Option<u32> {
        if v == dst {
            return Some(0);
        }
        let t = self.table(graph, dst);
        let d = t.dist[v as usize];
        (d != u32::MAX).then_some(d)
    }

    /// True when a message at `v` can currently reach `dst`.
    pub fn reachable(&mut self, graph: &Csr, v: u32, dst: u32) -> bool {
        self.distance(graph, v, dst).is_some()
    }

    /// Serialises the runtime state into `buf` as LEB128 words (see the
    /// checkpoint container for framing). The live link/node masks are
    /// *not* stored: they are a pure function of the applied event prefix,
    /// so [`FaultState::decode`] rebuilds them by replay — the snapshot
    /// stays small and cannot de-synchronise from the plan.
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        use xtree_telemetry::varint::encode_u64;
        encode_u64(buf, u64::from(self.max_idle_wait));
        encode_u64(buf, u64::from(self.clock));
        encode_u64(buf, self.next_event as u64);
        encode_events(&self.events, buf);
    }

    /// Rebuilds a state serialised by [`FaultState::encode`], validating
    /// the embedded plan against `graph` exactly like [`FaultState::new`]
    /// and replaying the applied event prefix to reconstruct the masks.
    ///
    /// # Errors
    /// [`SimError::InvalidFault`] on truncated input, unknown event tags,
    /// an out-of-range cursor, or a plan that does not fit `graph`.
    pub(crate) fn decode(graph: &Csr, bytes: &[u8], pos: &mut usize) -> Result<Self, SimError> {
        let max_idle_wait = decode_u32(bytes, pos)?;
        let clock = decode_u32(bytes, pos)?;
        let next_event = decode_word(bytes, pos)? as usize;
        let plan = FaultPlan::decode(bytes, pos)?;
        if next_event > plan.len() {
            return Err(SimError::InvalidFault {
                reason: format!(
                    "checkpoint cursor {next_event} past the end of a {}-event plan",
                    plan.len()
                ),
            });
        }
        let mut st = FaultState::new(graph, plan)?;
        for i in 0..next_event {
            let kind = st.events[i].kind;
            st.apply_kind(graph, kind);
        }
        st.next_event = next_event;
        st.epoch = next_event as u64;
        st.clock = clock;
        st.max_idle_wait = max_idle_wait;
        Ok(st)
    }
}

fn encode_events(events: &[FaultEvent], buf: &mut Vec<u8>) {
    use xtree_telemetry::varint::encode_u64;
    encode_u64(buf, events.len() as u64);
    for e in events {
        encode_u64(buf, u64::from(e.cycle));
        match e.kind {
            FaultKind::LinkDown { u, v } => {
                encode_u64(buf, 0);
                encode_u64(buf, u64::from(u));
                encode_u64(buf, u64::from(v));
            }
            FaultKind::LinkUp { u, v } => {
                encode_u64(buf, 1);
                encode_u64(buf, u64::from(u));
                encode_u64(buf, u64::from(v));
            }
            FaultKind::NodeDown { v } => {
                encode_u64(buf, 2);
                encode_u64(buf, u64::from(v));
            }
        }
    }
}

fn decode_events(bytes: &[u8], pos: &mut usize) -> Result<Vec<FaultEvent>, SimError> {
    let len = decode_word(bytes, pos)? as usize;
    let mut events = Vec::new();
    for _ in 0..len {
        let cycle = decode_u32(bytes, pos)?;
        let kind = match decode_word(bytes, pos)? {
            0 => FaultKind::LinkDown {
                u: decode_u32(bytes, pos)?,
                v: decode_u32(bytes, pos)?,
            },
            1 => FaultKind::LinkUp {
                u: decode_u32(bytes, pos)?,
                v: decode_u32(bytes, pos)?,
            },
            2 => FaultKind::NodeDown {
                v: decode_u32(bytes, pos)?,
            },
            t => {
                return Err(SimError::InvalidFault {
                    reason: format!("unknown fault-event tag {t} in checkpoint"),
                })
            }
        };
        events.push(FaultEvent { cycle, kind });
    }
    Ok(events)
}

fn decode_word(bytes: &[u8], pos: &mut usize) -> Result<u64, SimError> {
    xtree_telemetry::varint::decode_u64(bytes, pos).ok_or_else(|| SimError::InvalidFault {
        reason: "checkpoint truncated inside the fault snapshot".into(),
    })
}

fn decode_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, SimError> {
    u32::try_from(decode_word(bytes, pos)?).map_err(|_| SimError::InvalidFault {
        reason: "fault snapshot word does not fit in 32 bits".into(),
    })
}

/// Reverse BFS from `dst` over the survivor graph. The host is
/// undirected, so distance-to-dst equals distance-from-dst; the next hop
/// at `v` is its smallest-id alive neighbour one step closer (neighbour
/// lists are sorted, so the first match wins — the same convention as
/// `TableRouter`).
fn build_dst_table(graph: &Csr, dst: u32, edge_down: &[bool], node_down: &[bool]) -> DstTable {
    let n = graph.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut next = vec![u32::MAX; n];
    if !node_down[dst as usize] {
        let mut queue = std::collections::VecDeque::new();
        dist[dst as usize] = 0;
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            let d = dist[u as usize] + 1;
            for (e, w) in graph.out_edges(u as usize) {
                if edge_down[e as usize] || node_down[w as usize] {
                    continue;
                }
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = d;
                    queue.push_back(w);
                }
            }
        }
        for v in 0..n as u32 {
            if v == dst || dist[v as usize] == u32::MAX || node_down[v as usize] {
                continue;
            }
            for (e, w) in graph.out_edges(v as usize) {
                if !edge_down[e as usize]
                    && !node_down[w as usize]
                    && dist[w as usize] + 1 == dist[v as usize]
                {
                    next[v as usize] = w;
                    break;
                }
            }
        }
    }
    DstTable { dist, next }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Csr {
        let edges: Vec<_> = (1..n as u32).map(|v| (v - 1, v)).collect();
        Csr::from_edges(n, &edges)
    }

    fn cycle(n: usize) -> Csr {
        let mut edges: Vec<_> = (1..n as u32).map(|v| (v - 1, v)).collect();
        edges.push((0, n as u32 - 1));
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn plan_builder_sorts_by_cycle_stably() {
        let p = FaultPlan::new()
            .link_down(5, 0, 1)
            .node_down(2, 3)
            .link_up(5, 0, 1)
            .link_down(0, 1, 2);
        let cycles: Vec<u32> = p.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 2, 5, 5]);
        // Same-cycle events stay in insertion order: down before up.
        assert!(matches!(p.events()[2].kind, FaultKind::LinkDown { .. }));
        assert!(matches!(p.events()[3].kind, FaultKind::LinkUp { .. }));
        assert_eq!(p.horizon(), Some(5));
    }

    #[test]
    fn random_plans_are_deterministic_and_rate_scaled() {
        let g = cycle(64);
        let a = FaultPlan::random_links(&g, 0.25, 42, 8, Some(3)).unwrap();
        let b = FaultPlan::random_links(&g, 0.25, 42, 8, Some(3)).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::random_links(&g, 0.25, 43, 8, Some(3)).unwrap();
        assert_ne!(a, c, "a different seed must give a different plan");
        assert!(FaultPlan::random_links(&g, 0.0, 42, 8, None)
            .unwrap()
            .is_empty());
        let all = FaultPlan::random_links(&g, 1.0, 42, 1, None).unwrap();
        assert_eq!(all.len(), g.edge_count());
        assert!(all.events().iter().all(|e| e.cycle == 0));
        // Every repair trails its failure by exactly k.
        for w in a.events() {
            if let FaultKind::LinkDown { u, v } = w.kind {
                assert!(a
                    .events()
                    .iter()
                    .any(|e| e.kind == FaultKind::LinkUp { u, v } && e.cycle == w.cycle + 3));
            }
        }
    }

    #[test]
    fn degenerate_rates_are_rejected_not_silently_absorbed() {
        let g = cycle(8);
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    FaultPlan::random_links(&g, bad, 1, 4, None),
                    Err(SimError::InvalidRate { .. })
                ),
                "rate {bad} must be rejected"
            );
            assert!(matches!(
                FaultPlan::random_nodes(&g, bad, 1, 4),
                Err(SimError::InvalidRate { .. })
            ));
        }
        // The boundary values are legal probabilities.
        assert!(FaultPlan::random_links(&g, 0.0, 1, 4, None).is_ok());
        assert!(FaultPlan::random_nodes(&g, 1.0, 1, 4).is_ok());
    }

    #[test]
    fn random_nodes_and_merged_compose() {
        let g = cycle(64);
        let nodes = FaultPlan::random_nodes(&g, 0.25, 7, 8).unwrap();
        assert_eq!(nodes, FaultPlan::random_nodes(&g, 0.25, 7, 8).unwrap());
        assert!(!nodes.is_empty());
        assert!(nodes
            .events()
            .iter()
            .all(|e| matches!(e.kind, FaultKind::NodeDown { .. })));
        let links = FaultPlan::random_links(&g, 0.25, 7, 8, None).unwrap();
        let both = links.clone().merged(nodes.clone());
        assert_eq!(both.len(), links.len() + nodes.len());
        let cycles: Vec<u32> = both.events().iter().map(|e| e.cycle).collect();
        assert!(
            cycles.windows(2).all(|w| w[0] <= w[1]),
            "merged stays sorted"
        );
    }

    #[test]
    fn fault_state_snapshot_round_trips_mid_plan() {
        let g = cycle(8);
        let plan = FaultPlan::new()
            .link_down(0, 0, 1)
            .node_down(2, 4)
            .link_up(5, 0, 1);
        let mut st = FaultState::new(&g, plan).unwrap().with_max_idle_wait(99);
        st.apply_due(&g);
        st.advance_clock(3);
        st.apply_due(&g); // link {0,1} down, node 4 down; link-up still pending
        let mut buf = Vec::new();
        st.encode(&mut buf);
        let mut pos = 0;
        let mut back = FaultState::decode(&g, &buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "decode must consume the whole snapshot");
        assert_eq!(back.clock(), st.clock());
        assert_eq!(back.max_idle_wait(), 99);
        assert_eq!(back.down_links(), st.down_links());
        assert_eq!(back.down_nodes(), st.down_nodes());
        assert_eq!(back.pending(), Some(5));
        for v in 0..8u32 {
            for dst in 0..8u32 {
                assert_eq!(back.next_hop(&g, v, dst), st.next_hop(&g, v, dst));
            }
        }
        // The restored state keeps consuming the plan identically.
        back.advance_clock(2);
        st.advance_clock(2);
        assert!(back.apply_due(&g) && st.apply_due(&g));
        assert_eq!(back.down_links(), 0);
        assert_eq!(st.down_links(), 0);
    }

    #[test]
    fn fault_state_decode_rejects_garbage() {
        let g = cycle(8);
        let mut buf = Vec::new();
        FaultState::new(&g, FaultPlan::new().link_down(0, 0, 7))
            .unwrap()
            .encode(&mut buf);
        // Truncation anywhere must error, never panic.
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                matches!(
                    FaultState::decode(&g, &buf[..cut], &mut pos),
                    Err(SimError::InvalidFault { .. })
                ),
                "cut at {cut} must be a decode error"
            );
        }
        // A snapshot for one host must not drive a different one.
        let mut pos = 0;
        assert!(FaultState::decode(&path(3), &buf, &mut pos).is_err());
    }

    #[test]
    fn validation_rejects_bogus_events() {
        let g = path(4);
        let bad_link = FaultPlan::new().link_down(0, 0, 2);
        assert!(matches!(
            FaultState::new(&g, bad_link),
            Err(SimError::InvalidFault { .. })
        ));
        let bad_node = FaultPlan::new().node_down(0, 9);
        assert!(matches!(
            FaultState::new(&g, bad_node),
            Err(SimError::InvalidFault { .. })
        ));
    }

    #[test]
    fn events_apply_in_clock_order_and_bump_epochs() {
        let g = path(4);
        let plan = FaultPlan::new().link_down(0, 1, 2).link_up(3, 1, 2);
        let mut st = FaultState::new(&g, plan).unwrap();
        assert!(!st.is_trivial());
        assert!(st.apply_due(&g));
        assert!(st.active());
        assert_eq!(st.down_links(), 1);
        assert!(!st.link_alive(&g, 1, 2));
        assert!(!st.link_alive(&g, 2, 1));
        assert!(st.link_alive(&g, 0, 1));
        assert_eq!(st.pending(), Some(3));
        // Nothing more due until the clock reaches 3.
        assert!(!st.apply_due(&g));
        st.advance_clock(3);
        assert!(st.apply_due(&g));
        assert!(!st.active());
        assert!(st.is_trivial());
        assert!(st.link_alive(&g, 1, 2));
    }

    #[test]
    fn survivor_routing_detours_around_a_dead_link() {
        // 4-cycle: killing {0, 1} forces 0 -> 1 traffic the long way round.
        let g = cycle(4);
        let mut st = FaultState::new(&g, FaultPlan::new().link_down(0, 0, 1)).unwrap();
        st.apply_due(&g);
        assert_eq!(st.distance(&g, 0, 1), Some(3));
        assert_eq!(st.next_hop(&g, 0, 1), Some(3));
        assert_eq!(st.next_hop(&g, 3, 1), Some(2));
        // The untouched direction still routes directly.
        assert_eq!(st.distance(&g, 1, 2), Some(1));
    }

    #[test]
    fn node_down_isolates_and_freezes() {
        let g = path(4);
        let mut st = FaultState::new(&g, FaultPlan::new().node_down(0, 1)).unwrap();
        st.apply_due(&g);
        assert!(!st.node_alive(1));
        assert_eq!(st.down_nodes(), 1);
        // Vertex 1 is gone: 0 is cut off from 2 and 3.
        assert!(!st.reachable(&g, 0, 3));
        assert!(st.reachable(&g, 2, 3));
        // Routing to or from the dead node is impossible.
        assert_eq!(st.next_hop(&g, 0, 1), None);
        assert_eq!(st.next_hop(&g, 1, 3), None);
    }

    #[test]
    fn cached_tables_refresh_after_repair() {
        let g = cycle(4);
        let plan = FaultPlan::new().link_down(0, 0, 1).link_up(2, 0, 1);
        let mut st = FaultState::new(&g, plan).unwrap();
        st.apply_due(&g);
        assert_eq!(st.distance(&g, 0, 1), Some(3));
        st.advance_clock(2);
        st.apply_due(&g);
        assert_eq!(
            st.distance(&g, 0, 1),
            Some(1),
            "repair must invalidate the cache"
        );
        assert_eq!(st.next_hop(&g, 0, 1), Some(1));
    }

    #[test]
    fn survivor_next_hop_matches_dense_convention_when_undamaged() {
        // With nothing down, survivor routing must equal the smallest-id
        // downhill rule of the dense tables.
        let g = cycle(6);
        let mut st = FaultState::new(&g, FaultPlan::new()).unwrap();
        let table = crate::router::TableRouter::new(&g).unwrap();
        use crate::router::Router;
        for v in 0..6u32 {
            for dst in 0..6u32 {
                assert_eq!(st.next_hop(&g, v, dst), Some(table.next_hop(v, dst)));
                assert_eq!(st.distance(&g, v, dst), Some(table.distance(v, dst)));
            }
        }
    }
}

//! Synchronous message-passing simulation of tree programs on host
//! networks — the executable version of the paper's motivation that "the
//! dilation corresponds to the number of clock cycles needed in the X-tree
//! network to communicate between formerly adjacent processors".
//!
//! * [`network::Network`] — any connected host with next-hop routing;
//! * [`router`] — per-topology `O(1)`-memory routing strategies (X-tree,
//!   hypercube, complete binary tree) plus the dense BFS-table fallback;
//! * [`workload`] — broadcast / reduce / exchange / divide-and-conquer
//!   message rounds derived from a guest tree and an embedding;
//! * [`engine`] — cycle-accurate delivery with per-link contention, with
//!   reusable allocation-free scratch state in [`engine::Engine`];
//! * [`fault`] — deterministic link/node failure schedules and the cached
//!   survivor-graph routing the engine falls back to under damage;
//! * [`error`] — the [`SimError`] type every fallible entry point returns
//!   instead of panicking;
//! * [`stats`] — per-workload reports (fault-free and degraded) and
//!   rayon-parallel sweeps;
//! * [`recovery`] — the self-healing supervisor: embedding repair,
//!   stranded-message retry with backoff, provable-unreachability cutoff;
//! * [`session`] — the four-workload experiment as a resumable state
//!   machine with deterministic snapshots;
//! * [`checkpoint`] — the versioned `XCKPT1` container tying a session
//!   snapshot, the current embedding, and the telemetry trace together;
//! * [`telemetry`] (re-export of `xtree-telemetry`) — event sinks, binary
//!   traces with deterministic replay, and metric exporters that plug
//!   into [`engine::Engine::run_batch_with`] /
//!   [`engine::Engine::run_batch_faulted_with`].

pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod fault;
pub mod network;
pub mod recovery;
pub mod router;
pub mod session;
pub mod stats;
pub mod workload;

pub use checkpoint::{decode_checkpoint, encode_checkpoint, Checkpoint};
pub use engine::{
    run_batch, run_rounds, run_rounds_faulted, BatchOutcome, BatchStats, Engine, Message,
};
pub use error::SimError;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultState, DEFAULT_MAX_IDLE_WAIT};
pub use network::Network;
pub use recovery::{
    recover_batch, recover_batch_with, AttemptStats, Backoff, RecoveryEnd, RecoveryOutcome,
    RecoveryPolicy, RepairableHost,
};
pub use router::Router;
pub use session::{RecoveryTotals, Session, SessionSnapshot, SessionStatus};
pub use stats::{
    compute_load, congestion, simulate_all, simulate_all_faulted, simulate_all_faulted_with,
    simulate_all_with, simulate_one_with, simulate_step, sweep, sweep_counted, weighted_congestion,
    FaultSimReport, SimReport, StepReport,
};
pub use workload::HostMap;
pub use xtree_host as host;
pub use xtree_host::{AnyHost, Host, HypercubeHost, UniversalHost, XTreeHost};
pub use xtree_telemetry as telemetry;
pub use xtree_telemetry::{AtomicCounters, Event, MetricsSink, NopSink, Sink, Tee, TraceRecorder};

//! Typed simulator errors.
//!
//! The simulator originally `panic!`ed / `expect`ed its way through bad
//! hosts and broken invariants, which made it unusable as a library under
//! damaged topologies: a disconnected survivor graph is a *measurement*,
//! not a programming error. Every fallible entry point of this crate now
//! returns [`SimError`] instead.

use std::fmt;

/// Everything that can go wrong while building or driving a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The host graph is disconnected, so a dense next-hop table (which
    /// requires every pair to be routable) cannot be built.
    Disconnected {
        /// Number of host vertices.
        vertices: usize,
        /// Number of connected components found.
        components: usize,
    },
    /// The host is too large for a dense all-pairs routing table.
    HostTooLarge {
        /// Number of host vertices.
        vertices: usize,
        /// The largest supported vertex count.
        cap: usize,
    },
    /// A router proposed a next hop that is not a neighbour of the current
    /// vertex — a routing-strategy bug surfaced as data, not a panic.
    RouterInvariant {
        /// Vertex the message is at.
        at: u32,
        /// The non-neighbour the router proposed.
        to: u32,
    },
    /// The fault-free engine exceeded its convergence bound — deterministic
    /// shortest-path routing can only do this if a router is broken.
    Diverged {
        /// Cycle count at which the engine gave up.
        cycle: u32,
        /// Messages still undelivered at that point.
        undelivered: usize,
    },
    /// A fault event refers to a link or node the host does not have.
    InvalidFault {
        /// Human-readable description of the offending event.
        reason: String,
    },
    /// A fault probability is NaN or outside `[0, 1]` — a degenerate plan
    /// would be silently all-or-nothing, so it is rejected instead.
    InvalidRate {
        /// The offending value, formatted (kept as text so the error stays
        /// `Eq` despite NaN).
        given: String,
    },
    /// A checkpoint file is truncated, corrupt, or from an incompatible
    /// version.
    BadCheckpoint {
        /// Human-readable description of what failed to parse.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Disconnected {
                vertices,
                components,
            } => write!(
                f,
                "host graph is disconnected ({components} components over {vertices} vertices); \
                 dense routing tables need a connected host"
            ),
            SimError::HostTooLarge { vertices, cap } => write!(
                f,
                "host has {vertices} vertices but dense routing tables support at most {cap}; \
                 use a structured constructor (Network::xtree/hypercube/cbt)"
            ),
            SimError::RouterInvariant { at, to } => write!(
                f,
                "router returned non-neighbour {to} as the next hop from {at}"
            ),
            SimError::Diverged { cycle, undelivered } => write!(
                f,
                "engine failed to converge by cycle {cycle} with {undelivered} messages \
                 undelivered — routing bug"
            ),
            SimError::InvalidFault { reason } => write!(f, "invalid fault event: {reason}"),
            SimError::InvalidRate { given } => {
                write!(f, "fault rate `{given}` is not a probability in [0, 1]")
            }
            SimError::BadCheckpoint { reason } => write!(f, "bad checkpoint: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let cases: Vec<(SimError, &str)> = vec![
            (
                SimError::Disconnected {
                    vertices: 8,
                    components: 2,
                },
                "disconnected",
            ),
            (
                SimError::HostTooLarge {
                    vertices: 1 << 20,
                    cap: 1 << 13,
                },
                "at most",
            ),
            (SimError::RouterInvariant { at: 3, to: 9 }, "non-neighbour"),
            (
                SimError::Diverged {
                    cycle: 99,
                    undelivered: 4,
                },
                "converge",
            ),
            (
                SimError::InvalidFault {
                    reason: "link 0-9".into(),
                },
                "link 0-9",
            ),
            (
                SimError::InvalidRate {
                    given: "NaN".into(),
                },
                "not a probability",
            ),
            (
                SimError::BadCheckpoint {
                    reason: "short magic".into(),
                },
                "short magic",
            ),
        ];
        for (e, needle) in cases {
            let msg = e.to_string();
            assert!(msg.contains(needle), "{msg}");
            // Errors are values: they must be comparable and cloneable.
            assert_eq!(e.clone(), e);
        }
    }
}

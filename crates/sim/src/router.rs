//! Per-topology routing strategies.
//!
//! The original simulator built a dense all-pairs next-hop table (one BFS
//! per vertex, `O(n²)` memory) for every host, which capped it at `2^13`
//! vertices. The regular hosts the experiments actually use — X-trees,
//! hypercubes, complete binary trees — admit closed-form routing, so each
//! gets an `O(1)`-memory [`Router`] that computes the *same* deterministic
//! next hop the table held: the smallest-id neighbour that decreases the
//! distance to the destination. [`TableRouter`] remains as the fallback
//! for irregular hosts (meshes, CCC, butterflies) at table-friendly sizes.

use crate::error::SimError;
use xtree_topology::{analytic_distance, routing, Address, Csr, Graph};

/// A deterministic shortest-path routing strategy for one host graph.
///
/// Implementations must be *downhill* (`distance(next_hop(v, dst), dst)
/// == distance(v, dst) - 1` whenever `v != dst`) and must pick the
/// smallest-id downhill neighbour, so every router is interchangeable
/// with the BFS table and simulation results do not depend on which one a
/// `Network` was built with.
pub trait Router {
    /// Neighbour of `v` on the chosen shortest path to `dst` (`v` itself
    /// when `v == dst`).
    fn next_hop(&self, v: u32, dst: u32) -> u32;

    /// Exact shortest-path distance from `v` to `dst`.
    fn distance(&self, v: u32, dst: u32) -> u32;
}

/// Closed-form X-tree routing over heap-ordered vertex ids.
#[derive(Clone, Copy, Debug)]
pub struct XTreeRouter {
    height: u8,
}

impl XTreeRouter {
    /// Router for `X(height)`.
    pub fn new(height: u8) -> Self {
        XTreeRouter { height }
    }
}

impl Router for XTreeRouter {
    #[inline]
    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        routing::xtree_next_hop(
            Address::from_heap_id(v as usize),
            Address::from_heap_id(dst as usize),
            self.height,
        )
        .heap_id() as u32
    }

    #[inline]
    fn distance(&self, v: u32, dst: u32) -> u32 {
        analytic_distance(
            Address::from_heap_id(v as usize),
            Address::from_heap_id(dst as usize),
        )
    }
}

/// Bit-fixing hypercube routing (vertex ids are the labels).
#[derive(Clone, Copy, Debug)]
pub struct HypercubeRouter;

impl Router for HypercubeRouter {
    #[inline]
    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        routing::hypercube_next_hop(u64::from(v), u64::from(dst)) as u32
    }

    #[inline]
    fn distance(&self, v: u32, dst: u32) -> u32 {
        (v ^ dst).count_ones()
    }
}

/// LCA routing on the complete binary tree, heap-ordered ids.
#[derive(Clone, Copy, Debug)]
pub struct CbtRouter;

impl Router for CbtRouter {
    #[inline]
    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        routing::cbt_next_hop(
            Address::from_heap_id(v as usize),
            Address::from_heap_id(dst as usize),
        )
        .heap_id() as u32
    }

    #[inline]
    fn distance(&self, v: u32, dst: u32) -> u32 {
        Address::from_heap_id(v as usize).tree_distance(Address::from_heap_id(dst as usize))
    }
}

/// Dense all-pairs next-hop tables — one BFS per vertex at construction.
///
/// `O(n²)` memory, so only viable for hosts up to `2^13` vertices; kept
/// for hosts without structured routing.
#[derive(Debug)]
pub struct TableRouter {
    n: usize,
    /// `next_hop[dst * n + v]` = neighbour of `v` on a shortest path to
    /// `dst` (`v` itself when `v == dst`).
    next_hop: Vec<u32>,
    /// `dist[dst * n + v]` = shortest-path distance.
    dist: Vec<u32>,
}

/// The largest host a dense all-pairs table will be built for — the
/// tables would be ≥ 512 MiB beyond 2^13 vertices.
pub const TABLE_ROUTER_CAP: usize = 1 << 13;

impl TableRouter {
    /// Builds the tables for `graph`.
    ///
    /// # Errors
    /// [`SimError::HostTooLarge`] beyond [`TABLE_ROUTER_CAP`] vertices
    /// (the table would be ≥ 512 MiB) and [`SimError::Disconnected`] when
    /// any pair of vertices cannot route to each other.
    pub fn new(graph: &Csr) -> Result<Self, SimError> {
        let n = graph.node_count();
        if n > TABLE_ROUTER_CAP {
            return Err(SimError::HostTooLarge {
                vertices: n,
                cap: TABLE_ROUTER_CAP,
            });
        }
        if !graph.is_connected() {
            let (_, components) = graph.component_ids();
            return Err(SimError::Disconnected {
                vertices: n,
                components,
            });
        }
        let mut next_hop = vec![0u32; n * n];
        let mut dist = vec![0u32; n * n];
        for dst in 0..n {
            let d = graph.bfs(dst);
            dist[dst * n..(dst + 1) * n].copy_from_slice(&d);
            let row_h = &mut next_hop[dst * n..(dst + 1) * n];
            for v in 0..n {
                if v == dst {
                    row_h[v] = v as u32;
                    continue;
                }
                // Deterministic: the smallest-id neighbour that decreases
                // the distance to dst (neighbor lists are sorted).
                // A connected graph always has a downhill neighbour, but
                // surface a typed error rather than panicking if the
                // invariant ever breaks.
                row_h[v] = *graph
                    .neighbors(v)
                    .iter()
                    .find(|&&w| d[w as usize] + 1 == d[v])
                    .ok_or(SimError::RouterInvariant {
                        at: v as u32,
                        to: dst as u32,
                    })?;
            }
        }
        Ok(TableRouter { n, next_hop, dist })
    }
}

impl Router for TableRouter {
    #[inline]
    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        self.next_hop[dst as usize * self.n + v as usize]
    }

    #[inline]
    fn distance(&self, v: u32, dst: u32) -> u32 {
        self.dist[dst as usize * self.n + v as usize]
    }
}

/// Static dispatch over the router strategies a [`crate::Network`] can
/// hold, keeping the per-hop call in the engine's inner loop monomorphic.
#[derive(Debug)]
pub enum AnyRouter {
    /// Closed-form X-tree routing.
    XTree(XTreeRouter),
    /// Bit-fixing hypercube routing.
    Hypercube(HypercubeRouter),
    /// Complete-binary-tree LCA routing.
    Cbt(CbtRouter),
    /// BFS-table fallback.
    Table(TableRouter),
}

impl Router for AnyRouter {
    #[inline]
    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        match self {
            AnyRouter::XTree(r) => r.next_hop(v, dst),
            AnyRouter::Hypercube(r) => r.next_hop(v, dst),
            AnyRouter::Cbt(r) => r.next_hop(v, dst),
            AnyRouter::Table(r) => r.next_hop(v, dst),
        }
    }

    #[inline]
    fn distance(&self, v: u32, dst: u32) -> u32 {
        match self {
            AnyRouter::XTree(r) => r.distance(v, dst),
            AnyRouter::Hypercube(r) => r.distance(v, dst),
            AnyRouter::Cbt(r) => r.distance(v, dst),
            AnyRouter::Table(r) => r.distance(v, dst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_topology::{CompleteBinaryTree, Hypercube, XTree};

    fn assert_router_matches_table(router: &dyn Router, graph: &Csr) {
        let table = TableRouter::new(graph).unwrap();
        let n = graph.node_count() as u32;
        for v in 0..n {
            for dst in 0..n {
                assert_eq!(
                    router.distance(v, dst),
                    table.distance(v, dst),
                    "distance {v} -> {dst}"
                );
                assert_eq!(
                    router.next_hop(v, dst),
                    table.next_hop(v, dst),
                    "next hop {v} -> {dst}"
                );
            }
        }
    }

    #[test]
    fn xtree_router_equals_table() {
        for r in 0..=5u8 {
            assert_router_matches_table(&XTreeRouter::new(r), XTree::new(r).graph());
        }
    }

    #[test]
    fn hypercube_router_equals_table() {
        for d in 0..=6u8 {
            assert_router_matches_table(&HypercubeRouter, Hypercube::new(d).graph());
        }
    }

    #[test]
    fn cbt_router_equals_table() {
        for r in 0..=5u8 {
            assert_router_matches_table(&CbtRouter, CompleteBinaryTree::new(r).graph());
        }
    }

    #[test]
    fn table_router_reports_bad_hosts_as_errors() {
        let disconnected = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            TableRouter::new(&disconnected).unwrap_err(),
            crate::SimError::Disconnected {
                vertices: 4,
                components: 2
            }
        );
        let big = XTree::new(14);
        assert_eq!(
            TableRouter::new(big.graph()).unwrap_err(),
            crate::SimError::HostTooLarge {
                vertices: big.graph().node_count(),
                cap: TABLE_ROUTER_CAP
            }
        );
    }

    #[test]
    fn xtree_router_scales_past_the_table_cap() {
        // Heights > 13 are exactly what the dense table could not hold.
        let router = XTreeRouter::new(20);
        let n = (1u32 << 21) - 1;
        let (mut at, dst) = (n - 1, n / 2);
        let mut hops = 0;
        while at != dst {
            let next = router.next_hop(at, dst);
            assert_eq!(router.distance(next, dst) + 1, router.distance(at, dst));
            at = next;
            hops += 1;
        }
        assert_eq!(hops, router.distance(n - 1, dst));
    }
}

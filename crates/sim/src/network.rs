//! Host network wrapper with precomputed shortest-path routing.
//!
//! The simulator routes messages hop by hop along shortest paths. For the
//! host sizes the experiments use (≤ a few thousand vertices), an all-pairs
//! next-hop table — one BFS per vertex — is the simplest structure that
//! makes routing O(1) per hop and fully deterministic.

use xtree_topology::{Csr, Graph};

/// A host network with next-hop routing tables.
pub struct Network {
    graph: Csr,
    /// `next_hop[dst * n + v]` = neighbour of `v` on a shortest path to
    /// `dst` (`v` itself when `v == dst`).
    next_hop: Vec<u32>,
    /// `dist[dst * n + v]` = shortest-path distance.
    dist: Vec<u32>,
}

impl Network {
    /// Builds routing tables for `graph` (must be connected).
    ///
    /// # Panics
    /// Panics if the graph is disconnected or too large (> 2^13 vertices —
    /// the table would be ≥ 512 MiB beyond that).
    pub fn new(graph: Csr) -> Self {
        let n = graph.node_count();
        assert!(n <= (1 << 13), "routing table too large for {n} vertices");
        assert!(graph.is_connected(), "simulator hosts must be connected");
        let mut next_hop = vec![0u32; n * n];
        let mut dist = vec![0u32; n * n];
        for dst in 0..n {
            let d = graph.bfs(dst);
            let row_d = &mut dist[dst * n..(dst + 1) * n];
            row_d.copy_from_slice(&d);
            let row_h = &mut next_hop[dst * n..(dst + 1) * n];
            for v in 0..n {
                if v == dst {
                    row_h[v] = v as u32;
                    continue;
                }
                // Deterministic: the smallest-id neighbour that decreases
                // the distance to dst.
                row_h[v] = *graph
                    .neighbors(v)
                    .iter()
                    .find(|&&w| d[w as usize] + 1 == d[v])
                    .expect("connected graph has a downhill neighbour");
            }
        }
        Network {
            graph,
            next_hop,
            dist,
        }
    }

    /// Number of host vertices.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// Always false (hosts are non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Next hop from `v` toward `dst`.
    #[inline]
    pub fn next_hop(&self, v: u32, dst: u32) -> u32 {
        self.next_hop[dst as usize * self.len() + v as usize]
    }

    /// Exact distance from `v` to `dst`.
    #[inline]
    pub fn distance(&self, v: u32, dst: u32) -> u32 {
        self.dist[dst as usize * self.len() + v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_topology::{Hypercube, XTree};

    #[test]
    fn routes_follow_shortest_paths() {
        let x = XTree::new(4);
        let net = Network::new(x.graph().clone());
        for v in 0..net.len() as u32 {
            for dst in (0..net.len() as u32).step_by(3) {
                let mut cur = v;
                let mut hops = 0;
                while cur != dst {
                    cur = net.next_hop(cur, dst);
                    hops += 1;
                    assert!(hops <= net.len() as u32, "routing loop");
                }
                assert_eq!(hops, net.distance(v, dst), "{v} -> {dst}");
            }
        }
    }

    #[test]
    fn hypercube_distances_match_hamming() {
        let q = Hypercube::new(5);
        let net = Network::new(q.graph().clone());
        for v in 0..32u32 {
            for dst in 0..32u32 {
                assert_eq!(net.distance(v, dst), (v ^ dst).count_ones());
            }
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected_hosts() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = Network::new(g);
    }
}

//! Host network wrapper: a graph plus a deterministic routing strategy.
//!
//! The simulator routes messages hop by hop along shortest paths. Regular
//! hosts (X-tree, hypercube, complete binary tree) route in closed form
//! with `O(1)` memory — [`Network::xtree`], [`Network::hypercube`],
//! [`Network::cbt`] — which removes the old all-pairs-table size cap:
//! `X(20)` hosts route as cheaply as `X(5)`. Irregular hosts fall back to
//! dense BFS next-hop tables via [`Network::new`]. Every strategy picks
//! the same next hop (the smallest-id neighbour that decreases the
//! distance), so results never depend on the constructor used.

use crate::error::SimError;
use crate::router::{AnyRouter, CbtRouter, HypercubeRouter, Router, TableRouter, XTreeRouter};
use xtree_host::Host;
use xtree_topology::{CompleteBinaryTree, Csr, Graph, Hypercube, XTree};

/// A host network with deterministic next-hop routing.
#[derive(Debug)]
pub struct Network {
    graph: Csr,
    router: AnyRouter,
}

impl Network {
    /// Wraps an arbitrary connected host with BFS next-hop tables.
    ///
    /// # Errors
    /// Returns [`SimError::Disconnected`] for a disconnected host and
    /// [`SimError::HostTooLarge`] beyond 2^13 vertices (the table would be
    /// ≥ 512 MiB). Structured hosts should use [`Network::xtree`] /
    /// [`Network::hypercube`] / [`Network::cbt`], which have no size cap.
    pub fn new(graph: Csr) -> Result<Self, SimError> {
        let router = AnyRouter::Table(TableRouter::new(&graph)?);
        Ok(Network { graph, router })
    }

    /// An `X(r)` host with closed-form routing (no size cap, no tables).
    pub fn xtree(host: &XTree) -> Self {
        Network {
            graph: host.graph().clone(),
            router: AnyRouter::XTree(XTreeRouter::new(host.height())),
        }
    }

    /// A hypercube host with bit-fixing routing (no size cap, no tables).
    pub fn hypercube(host: &Hypercube) -> Self {
        Network {
            graph: host.graph().clone(),
            router: AnyRouter::Hypercube(HypercubeRouter),
        }
    }

    /// A complete-binary-tree host with LCA routing (no size cap).
    pub fn cbt(host: &CompleteBinaryTree) -> Self {
        Network {
            graph: host.graph().clone(),
            router: AnyRouter::Cbt(CbtRouter),
        }
    }

    /// Number of host vertices.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// True when the host has no vertices.
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Next hop from `v` toward `dst`.
    #[inline]
    pub fn next_hop(&self, v: u32, dst: u32) -> u32 {
        self.router.next_hop(v, dst)
    }

    /// Exact distance from `v` to `dst`.
    #[inline]
    pub fn distance(&self, v: u32, dst: u32) -> u32 {
        self.router.distance(v, dst)
    }
}

/// Every [`Network`] is a [`Host`]: the generic engine and stats layers
/// accept it unchanged, so pre-trait call sites keep compiling while new
/// code can pass any backend.
impl Host for Network {
    fn csr(&self) -> &Csr {
        &self.graph
    }

    fn label(&self) -> &'static str {
        match self.router {
            AnyRouter::XTree(_) => "xtree",
            AnyRouter::Hypercube(_) => "hypercube",
            AnyRouter::Cbt(_) => "cbt",
            AnyRouter::Table(_) => "table",
        }
    }

    fn degree_bound(&self) -> u32 {
        self.graph.max_degree() as u32
    }

    #[inline]
    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        Network::next_hop(self, v, dst)
    }

    #[inline]
    fn distance(&self, v: u32, dst: u32) -> u32 {
        Network::distance(self, v, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_topology::{Hypercube, XTree};

    #[test]
    fn routes_follow_shortest_paths() {
        let x = XTree::new(4);
        for net in [Network::new(x.graph().clone()).unwrap(), Network::xtree(&x)] {
            for v in 0..net.len() as u32 {
                for dst in (0..net.len() as u32).step_by(3) {
                    let mut cur = v;
                    let mut hops = 0;
                    while cur != dst {
                        cur = net.next_hop(cur, dst);
                        hops += 1;
                        assert!(hops <= net.len() as u32, "routing loop");
                    }
                    assert_eq!(hops, net.distance(v, dst), "{v} -> {dst}");
                }
            }
        }
    }

    #[test]
    fn structured_constructors_agree_with_tables() {
        let x = XTree::new(4);
        let (table, fast) = (Network::new(x.graph().clone()).unwrap(), Network::xtree(&x));
        for v in 0..table.len() as u32 {
            for dst in 0..table.len() as u32 {
                assert_eq!(table.next_hop(v, dst), fast.next_hop(v, dst));
                assert_eq!(table.distance(v, dst), fast.distance(v, dst));
            }
        }
    }

    #[test]
    fn hypercube_distances_match_hamming() {
        let q = Hypercube::new(5);
        for net in [
            Network::new(q.graph().clone()).unwrap(),
            Network::hypercube(&q),
        ] {
            for v in 0..32u32 {
                for dst in 0..32u32 {
                    assert_eq!(net.distance(v, dst), (v ^ dst).count_ones());
                }
            }
        }
    }

    #[test]
    fn xtree_host_beyond_the_old_table_cap() {
        // X(14) has 32767 vertices — Network::new would refuse it.
        let net = Network::xtree(&XTree::new(14));
        assert!(net.len() > (1 << 13));
        assert!(!net.is_empty());
        let far = net.len() as u32 - 1;
        assert_eq!(net.distance(far, far), 0);
        let hop = net.next_hop(far, 0);
        assert_eq!(net.distance(hop, 0) + 1, net.distance(far, 0));
    }

    #[test]
    fn is_empty_reflects_vertex_count() {
        assert!(Network::new(Csr::from_edges(0, &[])).unwrap().is_empty());
        assert!(!Network::new(Csr::from_edges(2, &[(0, 1)]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rejects_disconnected_hosts_with_an_error() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            Network::new(g).unwrap_err(),
            SimError::Disconnected {
                vertices: 4,
                components: 2
            }
        );
    }

    #[test]
    fn rejects_oversized_hosts_with_an_error() {
        let x = XTree::new(14); // 32767 vertices, past the table cap
        assert!(matches!(
            Network::new(x.graph().clone()),
            Err(SimError::HostTooLarge { .. })
        ));
    }
}

//! The synchronous message-passing engine.
//!
//! Model: time advances in clock cycles; in each cycle every *directed*
//! link of the host network can carry at most one message. Messages follow
//! shortest-path routes (deterministic next-hop routing); when several
//! messages want the same link in the same cycle, the lowest id wins and
//! the rest wait (FIFO by id — deterministic and starvation-free since
//! ids are fixed).
//!
//! This is the cost model behind the paper's motivation: an embedding with
//! dilation `d` lets formerly adjacent tree processors communicate within
//! `d` cycles — plus whatever congestion the embedding causes, which the
//! engine measures rather than assumes away.
//!
//! The cycle loop is allocation-free: per-message and per-link state live
//! in flat scratch buffers inside [`Engine`] (links are addressed by
//! [`Csr::directed_edge_index`], link claims are epoch-stamped so they
//! never need clearing, and finished messages are compacted out of the
//! active list in id order). [`run_batch`] is a convenience wrapper that
//! spins up a fresh engine; sweeps should hold one `Engine` and reuse it
//! across batches so the buffers warm up once.

use crate::network::Network;
use xtree_topology::Csr;

/// A message to deliver: from host vertex `src` to host vertex `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    pub src: u32,
    pub dst: u32,
}

/// Result of delivering one batch of messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchStats {
    /// Cycles until every message arrived.
    pub cycles: u32,
    /// Lower bound: the longest route in the batch (zero congestion).
    pub ideal_cycles: u32,
    /// Number of messages (those with `src == dst` deliver instantly).
    pub messages: usize,
    /// Maximum number of messages that crossed one directed link over the
    /// whole batch — the batch's *congestion*.
    pub max_link_traffic: u32,
    /// Total hops travelled by all messages.
    pub total_hops: u64,
}

/// Reusable scratch state for [`Engine::run_batch`].
///
/// All buffers are sized on first use (and re-sized only when a batch or
/// host outgrows them), so repeated batches on the same network do no
/// heap allocation at all.
#[derive(Default)]
pub struct Engine {
    /// Current host vertex of message `i`.
    at: Vec<u32>,
    /// Destination of message `i`.
    dst: Vec<u32>,
    /// Ids of undelivered messages, always in ascending order.
    active: Vec<u32>,
    /// Next hop of message `i` from its current vertex. Routing is
    /// deterministic and blocked messages do not move, so this is computed
    /// once per *advance* rather than once per cycle — under congestion
    /// most of a cycle's messages reuse it unchanged.
    hop_to: Vec<u32>,
    /// Directed-edge index of that hop.
    hop_edge: Vec<u32>,
    /// Lowest message id that claimed each directed link this cycle …
    claim_msg: Vec<u32>,
    /// … valid only when the link's stamp equals the current epoch, which
    /// removes the per-cycle `O(links)` clear.
    claim_epoch: Vec<u64>,
    /// Monotone cycle counter across all batches run on this engine.
    epoch: u64,
    /// Messages that crossed each directed link in the current batch.
    traffic: Vec<u32>,
    /// Links with non-zero traffic, for `O(touched)` reset.
    touched: Vec<u32>,
}

impl Engine {
    /// A fresh engine; buffers grow on first use.
    pub fn new() -> Self {
        Engine::default()
    }

    fn reserve(&mut self, links: usize, messages: usize) {
        if self.claim_epoch.len() < links {
            self.claim_msg.resize(links, 0);
            self.claim_epoch.resize(links, 0);
            self.traffic.resize(links, 0);
        }
        self.at.clear();
        self.dst.clear();
        self.active.clear();
        if self.hop_to.len() < messages {
            self.hop_to.resize(messages, 0);
            self.hop_edge.resize(messages, 0);
        }
    }

    /// Delivers `messages` on `net`, one hop per free link per cycle.
    pub fn run_batch(&mut self, net: &Network, messages: &[Message]) -> BatchStats {
        let graph: &Csr = net.graph();
        self.reserve(graph.directed_edge_count(), messages.len());
        let mut ideal_cycles = 0u32;
        for (i, m) in messages.iter().enumerate() {
            self.at.push(m.src);
            self.dst.push(m.dst);
            if m.src != m.dst {
                self.active.push(i as u32);
                let to = net.next_hop(m.src, m.dst);
                self.hop_to[i] = to;
                self.hop_edge[i] = graph
                    .directed_edge_index(m.src, to)
                    .expect("router returned a non-neighbour");
            }
            ideal_cycles = ideal_cycles.max(net.distance(m.src, m.dst));
        }
        let mut cycles = 0u32;
        let mut total_hops = 0u64;
        while !self.active.is_empty() {
            cycles += 1;
            assert!(
                cycles <= 4 * (ideal_cycles + 1) * (messages.len() as u32 + 1),
                "engine failed to converge — routing bug"
            );
            self.epoch += 1;
            // Pass 1: the lowest id claims each link (active ids are
            // ascending, so first writer wins). Hops were routed when the
            // message last moved.
            for &i in &self.active {
                let e = self.hop_edge[i as usize] as usize;
                if self.claim_epoch[e] != self.epoch {
                    self.claim_epoch[e] = self.epoch;
                    self.claim_msg[e] = i;
                }
            }
            // Pass 2: advance claim winners and route their next hop;
            // compact survivors in place, preserving ascending id order.
            let mut w = 0usize;
            for k in 0..self.active.len() {
                let i = self.active[k];
                let e = self.hop_edge[i as usize] as usize;
                if self.claim_msg[e] == i {
                    let to = self.hop_to[i as usize];
                    self.at[i as usize] = to;
                    total_hops += 1;
                    if self.traffic[e] == 0 {
                        self.touched.push(e as u32);
                    }
                    self.traffic[e] += 1;
                    let dst = self.dst[i as usize];
                    if to == dst {
                        continue; // delivered — drop from the active list
                    }
                    let next = net.next_hop(to, dst);
                    self.hop_to[i as usize] = next;
                    self.hop_edge[i as usize] = graph
                        .directed_edge_index(to, next)
                        .expect("router returned a non-neighbour");
                }
                self.active[w] = i;
                w += 1;
            }
            self.active.truncate(w);
        }
        let mut max_link_traffic = 0u32;
        for &e in &self.touched {
            max_link_traffic = max_link_traffic.max(self.traffic[e as usize]);
            self.traffic[e as usize] = 0;
        }
        self.touched.clear();
        BatchStats {
            cycles,
            ideal_cycles,
            messages: messages.len(),
            max_link_traffic,
            total_hops,
        }
    }
}

/// Delivers one batch on a throwaway [`Engine`].
pub fn run_batch(net: &Network, messages: &[Message]) -> BatchStats {
    Engine::new().run_batch(net, messages)
}

/// Runs a sequence of batches (e.g. one per tree level) on one shared
/// engine, so scratch buffers are allocated once for the whole sequence.
pub fn run_rounds(net: &Network, rounds: &[Vec<Message>]) -> Vec<BatchStats> {
    let mut engine = Engine::new();
    rounds.iter().map(|r| engine.run_batch(net, r)).collect()
}

/// Total cycles across a batch sequence.
pub fn total_cycles(stats: &[BatchStats]) -> u32 {
    stats.iter().map(|s| s.cycles).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_topology::{Csr, Graph, XTree};

    fn path_net(n: usize) -> Network {
        let edges: Vec<_> = (1..n as u32).map(|v| (v - 1, v)).collect();
        Network::new(Csr::from_edges(n, &edges))
    }

    /// The pre-optimisation engine, verbatim: hash maps keyed by vertex
    /// pairs, rebuilt every batch. The oracle for determinism tests.
    fn run_batch_reference(net: &Network, messages: &[Message]) -> BatchStats {
        use std::collections::HashMap;
        let mut at: Vec<u32> = messages.iter().map(|m| m.src).collect();
        let mut done: Vec<bool> = messages.iter().map(|m| m.src == m.dst).collect();
        let ideal_cycles = messages
            .iter()
            .map(|m| net.distance(m.src, m.dst))
            .max()
            .unwrap_or(0);
        let mut remaining = done.iter().filter(|&&d| !d).count();
        let mut cycles = 0u32;
        let mut total_hops = 0u64;
        let mut link_traffic: HashMap<(u32, u32), u32> = HashMap::new();
        let mut claimed: HashMap<(u32, u32), usize> = HashMap::new();
        while remaining > 0 {
            cycles += 1;
            claimed.clear();
            for (i, m) in messages.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let from = at[i];
                let to = net.next_hop(from, m.dst);
                claimed.entry((from, to)).or_insert(i);
            }
            for (i, m) in messages.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let from = at[i];
                let to = net.next_hop(from, m.dst);
                if claimed.get(&(from, to)) != Some(&i) {
                    continue;
                }
                at[i] = to;
                total_hops += 1;
                *link_traffic.entry((from, to)).or_insert(0) += 1;
                if to == m.dst {
                    done[i] = true;
                    remaining -= 1;
                }
            }
        }
        BatchStats {
            cycles,
            ideal_cycles,
            messages: messages.len(),
            max_link_traffic: link_traffic.values().copied().max().unwrap_or(0),
            total_hops,
        }
    }

    #[test]
    fn single_message_takes_distance_cycles() {
        let net = path_net(10);
        let s = run_batch(&net, &[Message { src: 0, dst: 7 }]);
        assert_eq!(s.cycles, 7);
        assert_eq!(s.ideal_cycles, 7);
        assert_eq!(s.total_hops, 7);
        assert_eq!(s.max_link_traffic, 1);
    }

    #[test]
    fn self_message_is_free() {
        let net = path_net(4);
        let s = run_batch(&net, &[Message { src: 2, dst: 2 }]);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.total_hops, 0);
    }

    #[test]
    fn staggered_messages_pipeline_without_stall() {
        // 0→3 and 1→3 share links but never in the same cycle: perfect
        // pipelining, no queueing.
        let net = path_net(4);
        let msgs = [Message { src: 0, dst: 3 }, Message { src: 1, dst: 3 }];
        let s = run_batch(&net, &msgs);
        assert_eq!(s.ideal_cycles, 3);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.max_link_traffic, 2);
    }

    #[test]
    fn contention_serialises_on_shared_link() {
        // Two messages leaving the same vertex for the same direction must
        // take turns on the first link: one cycle of queueing.
        let net = path_net(4);
        let msgs = [Message { src: 0, dst: 2 }, Message { src: 0, dst: 2 }];
        let s = run_batch(&net, &msgs);
        assert_eq!(s.ideal_cycles, 2);
        assert_eq!(s.cycles, 3, "one cycle of queueing expected");
        assert_eq!(s.max_link_traffic, 2);
    }

    #[test]
    fn opposite_directions_do_not_collide() {
        // Directed links: a->b and b->a are distinct resources.
        let net = path_net(3);
        let msgs = [Message { src: 0, dst: 2 }, Message { src: 2, dst: 0 }];
        let s = run_batch(&net, &msgs);
        assert_eq!(s.cycles, 2);
    }

    #[test]
    fn empty_batch() {
        let net = path_net(3);
        let s = run_batch(&net, &[]);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.messages, 0);
    }

    #[test]
    fn xtree_horizontal_shortcut_used() {
        let x = XTree::new(3);
        let net = Network::xtree(&x);
        // 011 -> 100 are X-tree neighbours (horizontal edge): 1 cycle.
        let u = xtree_topology::Address::parse("011").unwrap().heap_id() as u32;
        let v = xtree_topology::Address::parse("100").unwrap().heap_id() as u32;
        let s = run_batch(&net, &[Message { src: u, dst: v }]);
        assert_eq!(s.cycles, 1);
    }

    #[test]
    fn rounds_accumulate() {
        let net = path_net(5);
        let rounds = vec![
            vec![Message { src: 0, dst: 2 }],
            vec![Message { src: 2, dst: 4 }],
        ];
        let stats = run_rounds(&net, &rounds);
        assert_eq!(total_cycles(&stats), 4);
    }

    #[test]
    fn matches_reference_engine_on_seeded_workloads() {
        // Deterministic pseudo-random batches on an X-tree host: the
        // rewritten engine must reproduce the reference engine's stats
        // bit for bit, with the engine reused across batches.
        let x = XTree::new(5);
        let nets = [Network::xtree(&x), Network::new(x.graph().clone())];
        let n = x.graph().node_count() as u64;
        let mut engine = Engine::new();
        for net in &nets {
            let mut state = 0x5EED_CAFE_u64;
            let mut rand = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for batch in 0..24 {
                let msgs: Vec<Message> = (0..(batch * 7) % 97)
                    .map(|_| Message {
                        src: (rand() % n) as u32,
                        dst: (rand() % n) as u32,
                    })
                    .collect();
                assert_eq!(
                    engine.run_batch(net, &msgs),
                    run_batch_reference(net, &msgs),
                    "batch {batch}"
                );
            }
        }
    }

    #[test]
    fn engine_reuse_is_stateless_between_batches() {
        // Same batch, fresh engine vs warmed engine: identical stats.
        let net = path_net(16);
        let msgs: Vec<Message> = (0..16)
            .flat_map(|s| (0..16).map(move |d| Message { src: s, dst: d }))
            .collect();
        let mut warmed = Engine::new();
        let first = warmed.run_batch(&net, &msgs);
        for _ in 0..3 {
            assert_eq!(warmed.run_batch(&net, &msgs), first);
        }
        assert_eq!(Engine::new().run_batch(&net, &msgs), first);
    }
}

//! The synchronous message-passing engine.
//!
//! Model: time advances in clock cycles; in each cycle every *directed*
//! link of the host network can carry at most one message. Messages follow
//! shortest-path routes (deterministic next-hop tables); when several
//! messages want the same link in the same cycle, the lowest id wins and
//! the rest wait (FIFO by id — deterministic and starvation-free since
//! ids are fixed).
//!
//! This is the cost model behind the paper's motivation: an embedding with
//! dilation `d` lets formerly adjacent tree processors communicate within
//! `d` cycles — plus whatever congestion the embedding causes, which the
//! engine measures rather than assumes away.

use crate::network::Network;
use std::collections::HashMap;

/// A message to deliver: from host vertex `src` to host vertex `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    pub src: u32,
    pub dst: u32,
}

/// Result of delivering one batch of messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchStats {
    /// Cycles until every message arrived.
    pub cycles: u32,
    /// Lower bound: the longest route in the batch (zero congestion).
    pub ideal_cycles: u32,
    /// Number of messages (those with `src == dst` deliver instantly).
    pub messages: usize,
    /// Maximum number of messages that crossed one directed link over the
    /// whole batch — the batch's *congestion*.
    pub max_link_traffic: u32,
    /// Total hops travelled by all messages.
    pub total_hops: u64,
}

/// Delivers `messages` on `net`, one hop per free link per cycle.
pub fn run_batch(net: &Network, messages: &[Message]) -> BatchStats {
    let mut at: Vec<u32> = messages.iter().map(|m| m.src).collect();
    let mut done: Vec<bool> = messages.iter().map(|m| m.src == m.dst).collect();
    let ideal_cycles = messages
        .iter()
        .map(|m| net.distance(m.src, m.dst))
        .max()
        .unwrap_or(0);
    let mut remaining = done.iter().filter(|&&d| !d).count();
    let mut cycles = 0u32;
    let mut total_hops = 0u64;
    let mut link_traffic: HashMap<(u32, u32), u32> = HashMap::new();
    let mut claimed: HashMap<(u32, u32), usize> = HashMap::new();
    while remaining > 0 {
        cycles += 1;
        assert!(
            cycles <= 4 * (ideal_cycles + 1) * (messages.len() as u32 + 1),
            "engine failed to converge — routing bug"
        );
        claimed.clear();
        // Lowest message id claims each link first (iteration order).
        for (i, m) in messages.iter().enumerate() {
            if done[i] {
                continue;
            }
            let from = at[i];
            let to = net.next_hop(from, m.dst);
            claimed.entry((from, to)).or_insert(i);
        }
        for (i, m) in messages.iter().enumerate() {
            if done[i] {
                continue;
            }
            let from = at[i];
            let to = net.next_hop(from, m.dst);
            if claimed.get(&(from, to)) != Some(&i) {
                continue; // link busy this cycle
            }
            at[i] = to;
            total_hops += 1;
            *link_traffic.entry((from, to)).or_insert(0) += 1;
            if to == m.dst {
                done[i] = true;
                remaining -= 1;
            }
        }
    }
    BatchStats {
        cycles,
        ideal_cycles,
        messages: messages.len(),
        max_link_traffic: link_traffic.values().copied().max().unwrap_or(0),
        total_hops,
    }
}

/// Runs a sequence of batches (e.g. one per tree level), summing cycles.
pub fn run_rounds(net: &Network, rounds: &[Vec<Message>]) -> Vec<BatchStats> {
    rounds.iter().map(|r| run_batch(net, r)).collect()
}

/// Total cycles across a batch sequence.
pub fn total_cycles(stats: &[BatchStats]) -> u32 {
    stats.iter().map(|s| s.cycles).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_topology::{Csr, XTree};

    fn path_net(n: usize) -> Network {
        let edges: Vec<_> = (1..n as u32).map(|v| (v - 1, v)).collect();
        Network::new(Csr::from_edges(n, &edges))
    }

    #[test]
    fn single_message_takes_distance_cycles() {
        let net = path_net(10);
        let s = run_batch(&net, &[Message { src: 0, dst: 7 }]);
        assert_eq!(s.cycles, 7);
        assert_eq!(s.ideal_cycles, 7);
        assert_eq!(s.total_hops, 7);
        assert_eq!(s.max_link_traffic, 1);
    }

    #[test]
    fn self_message_is_free() {
        let net = path_net(4);
        let s = run_batch(&net, &[Message { src: 2, dst: 2 }]);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.total_hops, 0);
    }

    #[test]
    fn staggered_messages_pipeline_without_stall() {
        // 0→3 and 1→3 share links but never in the same cycle: perfect
        // pipelining, no queueing.
        let net = path_net(4);
        let msgs = [Message { src: 0, dst: 3 }, Message { src: 1, dst: 3 }];
        let s = run_batch(&net, &msgs);
        assert_eq!(s.ideal_cycles, 3);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.max_link_traffic, 2);
    }

    #[test]
    fn contention_serialises_on_shared_link() {
        // Two messages leaving the same vertex for the same direction must
        // take turns on the first link: one cycle of queueing.
        let net = path_net(4);
        let msgs = [Message { src: 0, dst: 2 }, Message { src: 0, dst: 2 }];
        let s = run_batch(&net, &msgs);
        assert_eq!(s.ideal_cycles, 2);
        assert_eq!(s.cycles, 3, "one cycle of queueing expected");
        assert_eq!(s.max_link_traffic, 2);
    }

    #[test]
    fn opposite_directions_do_not_collide() {
        // Directed links: a->b and b->a are distinct resources.
        let net = path_net(3);
        let msgs = [Message { src: 0, dst: 2 }, Message { src: 2, dst: 0 }];
        let s = run_batch(&net, &msgs);
        assert_eq!(s.cycles, 2);
    }

    #[test]
    fn empty_batch() {
        let net = path_net(3);
        let s = run_batch(&net, &[]);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.messages, 0);
    }

    #[test]
    fn xtree_horizontal_shortcut_used() {
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone());
        // 011 -> 100 are X-tree neighbours (horizontal edge): 1 cycle.
        let u = xtree_topology::Address::parse("011").unwrap().heap_id() as u32;
        let v = xtree_topology::Address::parse("100").unwrap().heap_id() as u32;
        let s = run_batch(&net, &[Message { src: u, dst: v }]);
        assert_eq!(s.cycles, 1);
    }

    #[test]
    fn rounds_accumulate() {
        let net = path_net(5);
        let rounds = vec![
            vec![Message { src: 0, dst: 2 }],
            vec![Message { src: 2, dst: 4 }],
        ];
        let stats = run_rounds(&net, &rounds);
        assert_eq!(total_cycles(&stats), 4);
    }
}

//! The synchronous message-passing engine.
//!
//! Model: time advances in clock cycles; in each cycle every *directed*
//! link of the host network can carry at most one message. Messages follow
//! shortest-path routes (deterministic next-hop routing); when several
//! messages want the same link in the same cycle, the lowest id wins and
//! the rest wait (FIFO by id — deterministic and starvation-free since
//! ids are fixed).
//!
//! This is the cost model behind the paper's motivation: an embedding with
//! dilation `d` lets formerly adjacent tree processors communicate within
//! `d` cycles — plus whatever congestion the embedding causes, which the
//! engine measures rather than assumes away.
//!
//! The cycle loop is allocation-free: per-message and per-link state live
//! in flat scratch buffers inside [`Engine`] (links are addressed by
//! [`Csr::directed_edge_index`], link claims are epoch-stamped so they
//! never need clearing, and finished messages are compacted out of the
//! active list in id order). [`run_batch`] is a convenience wrapper that
//! spins up a fresh engine; sweeps should hold one `Engine` and reuse it
//! across batches so the buffers warm up once.
//!
//! **Faults.** [`Engine::run_batch_faulted`] delivers a batch while a
//! [`FaultState`] kills and repairs links/nodes mid-flight. Routing then
//! comes from cached survivor-graph BFS tables instead of the closed-form
//! router, messages whose destination is currently unreachable wait for
//! repairs, and the result is a [`BatchOutcome`] instead of bare stats:
//! full delivery, partial delivery with the stranded messages, or a
//! `Stalled` diagnosis from the progress watchdog — never a hang and
//! never a panic. The fault-free path does not check a single fault flag,
//! so scheduling no faults costs nothing.
//!
//! **Telemetry.** [`Engine::run_batch_with`] and
//! [`Engine::run_batch_faulted_with`] thread a [`Sink`] through the cycle
//! loop, emitting typed [`Event`]s (hops, contention, deliveries, fault
//! applications, reroute sweeps, watchdog jumps). Sinks dispatch
//! statically and every emission site is guarded by the sink's
//! `const ACTIVE`, so the plain entry points — which pass
//! [`NopSink`] — compile to the same machine code as before
//! instrumentation existed (`telbench` measures this).

use crate::error::SimError;
use crate::fault::FaultState;
use xtree_host::Host;
use xtree_telemetry::{Event, NopSink, Sink};
use xtree_topology::{Csr, Graph};

/// A message to deliver: from host vertex `src` to host vertex `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    pub src: u32,
    pub dst: u32,
}

/// Result of delivering one batch of messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchStats {
    /// Cycles until every message arrived (for faulted batches: cycles
    /// until the engine settled, idle repair-waiting included).
    pub cycles: u32,
    /// Lower bound: the longest route in the batch (zero congestion, on
    /// the *undamaged* host — so faulted slowdowns compare against the
    /// healthy network).
    pub ideal_cycles: u32,
    /// Number of messages (those with `src == dst` deliver instantly).
    pub messages: usize,
    /// Maximum number of messages that crossed one directed link over the
    /// whole batch — the batch's *congestion*.
    pub max_link_traffic: u32,
    /// Total hops travelled by all messages.
    pub total_hops: u64,
}

/// How a faulted batch ended (see [`Engine::run_batch_faulted`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Every message arrived.
    Delivered(BatchStats),
    /// Every message that could arrive did; the rest are permanently cut
    /// off (their destination sits in another survivor component and the
    /// plan holds no further repairs).
    Partial {
        /// Stats up to the point the engine proved no progress was left.
        stats: BatchStats,
        /// Ids (indices into the batch) of the stranded messages.
        stranded: Vec<u32>,
    },
    /// The progress watchdog gave up: undelivered messages remain but the
    /// next possible topology change is beyond the engine's idle-wait
    /// budget (or the convergence bound was exceeded — a routing bug
    /// surfaced as data rather than a panic or an infinite loop).
    Stalled {
        /// Stats up to the diagnosis.
        stats: BatchStats,
        /// Ids of the messages still in flight.
        undelivered: Vec<u32>,
        /// The fault-clock cycle of the repair the engine declined to wait
        /// for (`None` when the convergence bound tripped instead).
        waiting_for: Option<u32>,
    },
}

impl BatchOutcome {
    /// The batch statistics, whatever the outcome.
    pub fn stats(&self) -> &BatchStats {
        match self {
            BatchOutcome::Delivered(s) => s,
            BatchOutcome::Partial { stats, .. } | BatchOutcome::Stalled { stats, .. } => stats,
        }
    }

    /// True when every message arrived.
    pub fn delivered_all(&self) -> bool {
        matches!(self, BatchOutcome::Delivered(_))
    }

    /// Messages proven permanently unreachable (empty unless `Partial`).
    pub fn stranded(&self) -> &[u32] {
        match self {
            BatchOutcome::Partial { stranded, .. } => stranded,
            _ => &[],
        }
    }

    /// Every message that did not arrive, for any reason.
    pub fn undelivered(&self) -> &[u32] {
        match self {
            BatchOutcome::Delivered(_) => &[],
            BatchOutcome::Partial { stranded, .. } => stranded,
            BatchOutcome::Stalled { undelivered, .. } => undelivered,
        }
    }

    /// True when the watchdog diagnosed a stall.
    pub fn is_stalled(&self) -> bool {
        matches!(self, BatchOutcome::Stalled { .. })
    }
}

/// Sentinel in `hop_edge` for a message whose destination is currently
/// unreachable on the survivor graph (it waits instead of claiming).
const UNROUTABLE: u32 = u32::MAX;

/// Reusable scratch state for [`Engine::run_batch`].
///
/// All buffers are sized on first use (and re-sized only when a batch or
/// host outgrows them), so repeated batches on the same network do no
/// heap allocation at all.
#[derive(Default)]
pub struct Engine {
    /// Current host vertex of message `i`.
    at: Vec<u32>,
    /// Destination of message `i`.
    dst: Vec<u32>,
    /// Ids of undelivered messages, always in ascending order.
    active: Vec<u32>,
    /// Next hop of message `i` from its current vertex. Routing is
    /// deterministic and blocked messages do not move, so this is computed
    /// once per *advance* rather than once per cycle — under congestion
    /// most of a cycle's messages reuse it unchanged.
    hop_to: Vec<u32>,
    /// Directed-edge index of that hop ([`UNROUTABLE`] = waiting).
    hop_edge: Vec<u32>,
    /// Lowest message id that claimed each directed link this cycle …
    claim_msg: Vec<u32>,
    /// … valid only when the link's stamp equals the current epoch, which
    /// removes the per-cycle `O(links)` clear.
    claim_epoch: Vec<u64>,
    /// Monotone cycle counter across all batches run on this engine.
    epoch: u64,
    /// Messages that crossed each directed link in the current batch.
    traffic: Vec<u32>,
    /// Links with non-zero traffic, for `O(touched)` reset.
    touched: Vec<u32>,
}

impl Engine {
    /// A fresh engine; buffers grow on first use.
    pub fn new() -> Self {
        Engine::default()
    }

    /// The engine's monotone clock: total delivery cycles across every
    /// batch run on this engine. Checkpoints store it so a resumed run
    /// reports the same cumulative timeline.
    pub fn clock(&self) -> u64 {
        self.epoch
    }

    /// Fast-forwards the clock to at least `clock` (it never moves
    /// backwards: the link-claim stamps rely on the epoch being monotone).
    pub fn restore_clock(&mut self, clock: u64) {
        self.epoch = self.epoch.max(clock);
    }

    fn reserve(&mut self, links: usize, messages: usize) {
        if self.claim_epoch.len() < links {
            self.claim_msg.resize(links, 0);
            self.claim_epoch.resize(links, 0);
            self.traffic.resize(links, 0);
        }
        self.at.clear();
        self.dst.clear();
        self.active.clear();
        if self.hop_to.len() < messages {
            self.hop_to.resize(messages, 0);
            self.hop_edge.resize(messages, 0);
        }
    }

    /// Folds the per-link traffic counters into the batch congestion and
    /// resets them, leaving the scratch ready for the next batch.
    fn drain_traffic(&mut self) -> u32 {
        let mut max_link_traffic = 0u32;
        for &e in &self.touched {
            max_link_traffic = max_link_traffic.max(self.traffic[e as usize]);
            self.traffic[e as usize] = 0;
        }
        self.touched.clear();
        max_link_traffic
    }

    /// Delivers `messages` on `net`, one hop per free link per cycle.
    ///
    /// # Errors
    /// [`SimError::RouterInvariant`] if the network's router proposes a
    /// non-neighbour, [`SimError::Diverged`] if the convergence bound is
    /// exceeded — both indicate a routing bug, reported instead of
    /// panicking.
    pub fn run_batch<H: Host>(
        &mut self,
        net: &H,
        messages: &[Message],
    ) -> Result<BatchStats, SimError> {
        self.run_batch_with(net, messages, &mut NopSink)
    }

    /// [`Engine::run_batch`] with telemetry: every hop, link arbitration
    /// loss, and delivery is reported to `sink`. With [`NopSink`] this *is*
    /// `run_batch` — the instrumentation compiles out.
    ///
    /// # Errors
    /// See [`Engine::run_batch`].
    pub fn run_batch_with<H: Host, S: Sink>(
        &mut self,
        net: &H,
        messages: &[Message],
        sink: &mut S,
    ) -> Result<BatchStats, SimError> {
        let graph: &Csr = net.csr();
        self.reserve(graph.directed_edge_count(), messages.len());
        if S::ACTIVE {
            sink.record(Event::BatchStarted {
                messages: messages.len() as u32,
            });
        }
        let mut ideal_cycles = 0u32;
        for (i, m) in messages.iter().enumerate() {
            self.at.push(m.src);
            self.dst.push(m.dst);
            if m.src != m.dst {
                self.active.push(i as u32);
                let to = net.next_hop(m.src, m.dst);
                self.hop_to[i] = to;
                self.hop_edge[i] = graph
                    .directed_edge_index(m.src, to)
                    .ok_or(SimError::RouterInvariant { at: m.src, to })?;
            }
            ideal_cycles = ideal_cycles.max(net.distance(m.src, m.dst));
        }
        let mut cycles = 0u32;
        let mut total_hops = 0u64;
        while !self.active.is_empty() {
            cycles += 1;
            if cycles > 4 * (ideal_cycles + 1) * (messages.len() as u32 + 1) {
                let undelivered = self.active.len();
                self.active.clear();
                self.drain_traffic();
                return Err(SimError::Diverged {
                    cycle: cycles,
                    undelivered,
                });
            }
            self.epoch += 1;
            // Pass 1: the lowest id claims each link (active ids are
            // ascending, so first writer wins). Hops were routed when the
            // message last moved.
            for &i in &self.active {
                let e = self.hop_edge[i as usize] as usize;
                if self.claim_epoch[e] != self.epoch {
                    self.claim_epoch[e] = self.epoch;
                    self.claim_msg[e] = i;
                }
            }
            // Pass 2: advance claim winners and route their next hop;
            // compact survivors in place, preserving ascending id order.
            let mut w = 0usize;
            for k in 0..self.active.len() {
                let i = self.active[k];
                let e = self.hop_edge[i as usize] as usize;
                if self.claim_msg[e] == i {
                    let to = self.hop_to[i as usize];
                    if S::ACTIVE {
                        sink.record(Event::HopTaken {
                            cycle: u64::from(cycles),
                            msg: i,
                            from: self.at[i as usize],
                            to,
                            edge: e as u32,
                        });
                    }
                    self.at[i as usize] = to;
                    total_hops += 1;
                    if self.traffic[e] == 0 {
                        self.touched.push(e as u32);
                    }
                    self.traffic[e] += 1;
                    let dst = self.dst[i as usize];
                    if to == dst {
                        if S::ACTIVE {
                            sink.record(Event::MessageDelivered {
                                cycle: u64::from(cycles),
                                msg: i,
                                at: to,
                            });
                        }
                        continue; // delivered — drop from the active list
                    }
                    let next = net.next_hop(to, dst);
                    self.hop_to[i as usize] = next;
                    self.hop_edge[i as usize] = graph
                        .directed_edge_index(to, next)
                        .ok_or(SimError::RouterInvariant { at: to, to: next })?;
                } else if S::ACTIVE {
                    sink.record(Event::LinkContended {
                        cycle: u64::from(cycles),
                        edge: e as u32,
                        msg: i,
                        winner: self.claim_msg[e],
                    });
                }
                self.active[w] = i;
                w += 1;
            }
            self.active.truncate(w);
        }
        Ok(BatchStats {
            cycles,
            ideal_cycles,
            messages: messages.len(),
            max_link_traffic: self.drain_traffic(),
            total_hops,
        })
    }

    /// Routes message `i` on the survivor graph, parking it as
    /// [`UNROUTABLE`] when its destination is currently cut off.
    fn route_survivor(
        &mut self,
        graph: &Csr,
        faults: &mut FaultState,
        i: usize,
    ) -> Result<(), SimError> {
        let (at, dst) = (self.at[i], self.dst[i]);
        match faults.next_hop(graph, at, dst) {
            Some(to) if to != at => {
                self.hop_to[i] = to;
                self.hop_edge[i] = graph
                    .directed_edge_index(at, to)
                    .ok_or(SimError::RouterInvariant { at, to })?;
            }
            _ => self.hop_edge[i] = UNROUTABLE,
        }
        Ok(())
    }

    /// Delivers `messages` on `net` while `faults` damages and repairs the
    /// topology.
    ///
    /// Each delivery cycle advances the fault clock by one; due events
    /// apply at the start of the cycle and invalidate every in-flight
    /// route (failed links reject claims — messages re-route on the
    /// survivor graph and detour around damage whenever their destination
    /// stays reachable). A message whose destination is currently cut off
    /// waits; if nothing can move the engine either jumps the clock to the
    /// next scheduled event (when it is within
    /// [`FaultState::max_idle_wait`] cycles) or terminates with a typed
    /// verdict:
    ///
    /// * all destinations permanently unreachable and no events pending →
    ///   [`BatchOutcome::Partial`] with the stranded ids;
    /// * the next repair is beyond the idle-wait budget →
    ///   [`BatchOutcome::Stalled`] naming the cycle it refused to wait for.
    ///
    /// The watchdog bound is `H + (n + 1) · (m + 1) + max_idle_wait`
    /// cycles for a plan whose last event lies `H` cycles ahead, an
    /// `n`-vertex host, and `m` messages: after the last event the
    /// survivor graph is static and the lowest-id routable message moves
    /// every cycle, so a run past the bound is diagnosed as `Stalled`
    /// (never an infinite loop).
    ///
    /// One `FaultState` may span many batches: damage and the fault clock
    /// carry over, modelling a host that stays broken between rounds.
    ///
    /// # Errors
    /// [`SimError::InvalidFault`] when `faults` was built for a different
    /// host, [`SimError::RouterInvariant`] on a survivor-routing bug.
    pub fn run_batch_faulted<H: Host>(
        &mut self,
        net: &H,
        messages: &[Message],
        faults: &mut FaultState,
    ) -> Result<BatchOutcome, SimError> {
        self.run_batch_faulted_with(net, messages, faults, &mut NopSink)
    }

    /// [`Engine::run_batch_faulted`] with telemetry: beyond the fast-path
    /// events, `sink` sees every fault application, survivor-reroute
    /// sweep, and watchdog clock jump. With [`NopSink`] this *is*
    /// `run_batch_faulted`.
    ///
    /// # Errors
    /// See [`Engine::run_batch_faulted`].
    pub fn run_batch_faulted_with<H: Host, S: Sink>(
        &mut self,
        net: &H,
        messages: &[Message],
        faults: &mut FaultState,
        sink: &mut S,
    ) -> Result<BatchOutcome, SimError> {
        // A trivial state never affects delivery: take the fault-free fast
        // path, which checks no fault flags at all.
        if faults.is_trivial() {
            return Ok(BatchOutcome::Delivered(
                self.run_batch_with(net, messages, sink)?,
            ));
        }
        enum End {
            Delivered,
            Stranded,
            Stalled(Option<u32>),
        }
        let graph: &Csr = net.csr();
        faults.check_host(graph)?;
        self.reserve(graph.directed_edge_count(), messages.len());
        if S::ACTIVE {
            sink.record(Event::BatchStarted {
                messages: messages.len() as u32,
            });
        }
        let mut ideal_cycles = 0u32;
        for (i, m) in messages.iter().enumerate() {
            self.at.push(m.src);
            self.dst.push(m.dst);
            if m.src != m.dst {
                self.active.push(i as u32);
            }
            ideal_cycles = ideal_cycles.max(net.distance(m.src, m.dst));
        }
        let horizon = faults
            .horizon()
            .map_or(0, |h| u64::from(h.saturating_sub(faults.clock())));
        let hard_limit: u64 = horizon
            + (graph.node_count() as u64 + 1) * (messages.len() as u64 + 1)
            + u64::from(faults.max_idle_wait());
        let mut cycles = 0u64;
        let mut total_hops = 0u64;
        let mut need_reroute = true;
        let end = loop {
            if self.active.is_empty() {
                break End::Delivered;
            }
            if faults.apply_due(graph) {
                // Topology changed: every cached hop may now cross a dead
                // link or follow a stale detour, so recompute them all.
                need_reroute = true;
                if S::ACTIVE {
                    sink.record(Event::FaultApplied {
                        cycle: cycles,
                        down_links: faults.down_links() as u32,
                        down_nodes: faults.down_nodes() as u32,
                    });
                }
            }
            if need_reroute {
                for k in 0..self.active.len() {
                    let i = self.active[k] as usize;
                    self.route_survivor(graph, faults, i)?;
                }
                need_reroute = false;
                if S::ACTIVE {
                    sink.record(Event::RerouteComputed {
                        cycle: cycles,
                        messages: self.active.len() as u32,
                    });
                }
            }
            let any_routable = self
                .active
                .iter()
                .any(|&i| self.hop_edge[i as usize] != UNROUTABLE);
            if !any_routable {
                match faults.pending() {
                    Some(event_cycle) => {
                        // Idle until the network changes again — but only
                        // within the watchdog's patience.
                        let wait = event_cycle.saturating_sub(faults.clock()).max(1);
                        if wait > faults.max_idle_wait() {
                            break End::Stalled(Some(event_cycle));
                        }
                        cycles += u64::from(wait);
                        faults.advance_clock(wait);
                        if S::ACTIVE {
                            sink.record(Event::WatchdogIdle {
                                cycle: cycles,
                                skipped: u64::from(wait),
                            });
                        }
                        continue;
                    }
                    // No repair will ever arrive: everyone left is
                    // provably stranded.
                    None => break End::Stranded,
                }
            }
            cycles += 1;
            faults.advance_clock(1);
            if cycles > hard_limit {
                break End::Stalled(None);
            }
            self.epoch += 1;
            // Pass 1: claims, exactly as in the fault-free loop — waiting
            // messages do not claim, and routes are never stale here (they
            // are rebuilt on every topology change), so a claimed link is
            // always alive.
            for &i in &self.active {
                let e = self.hop_edge[i as usize];
                if e == UNROUTABLE {
                    continue;
                }
                let e = e as usize;
                if self.claim_epoch[e] != self.epoch {
                    self.claim_epoch[e] = self.epoch;
                    self.claim_msg[e] = i;
                }
            }
            // Pass 2: advance winners, re-route them on the survivor graph.
            let mut w = 0usize;
            for k in 0..self.active.len() {
                let i = self.active[k];
                let e = self.hop_edge[i as usize];
                if e != UNROUTABLE && self.claim_msg[e as usize] == i {
                    let e = e as usize;
                    let to = self.hop_to[i as usize];
                    if S::ACTIVE {
                        sink.record(Event::HopTaken {
                            cycle: cycles,
                            msg: i,
                            from: self.at[i as usize],
                            to,
                            edge: e as u32,
                        });
                    }
                    self.at[i as usize] = to;
                    total_hops += 1;
                    if self.traffic[e] == 0 {
                        self.touched.push(e as u32);
                    }
                    self.traffic[e] += 1;
                    if to == self.dst[i as usize] {
                        if S::ACTIVE {
                            sink.record(Event::MessageDelivered {
                                cycle: cycles,
                                msg: i,
                                at: to,
                            });
                        }
                        continue; // delivered
                    }
                    self.route_survivor(graph, faults, i as usize)?;
                } else if S::ACTIVE && e != UNROUTABLE {
                    sink.record(Event::LinkContended {
                        cycle: cycles,
                        edge: e,
                        msg: i,
                        winner: self.claim_msg[e as usize],
                    });
                }
                self.active[w] = i;
                w += 1;
            }
            self.active.truncate(w);
        };
        let undelivered: Vec<u32> = std::mem::take(&mut self.active);
        let stats = BatchStats {
            cycles: u32::try_from(cycles).unwrap_or(u32::MAX),
            ideal_cycles,
            messages: messages.len(),
            max_link_traffic: self.drain_traffic(),
            total_hops,
        };
        Ok(match end {
            End::Delivered => BatchOutcome::Delivered(stats),
            End::Stranded => BatchOutcome::Partial {
                stats,
                stranded: undelivered,
            },
            End::Stalled(waiting_for) => BatchOutcome::Stalled {
                stats,
                undelivered,
                waiting_for,
            },
        })
    }
}

/// Delivers one batch on a throwaway [`Engine`].
///
/// # Errors
/// See [`Engine::run_batch`].
pub fn run_batch<H: Host>(net: &H, messages: &[Message]) -> Result<BatchStats, SimError> {
    Engine::new().run_batch(net, messages)
}

/// Runs a sequence of batches (e.g. one per tree level) on one shared
/// engine, so scratch buffers are allocated once for the whole sequence.
///
/// # Errors
/// See [`Engine::run_batch`].
pub fn run_rounds<H: Host>(net: &H, rounds: &[Vec<Message>]) -> Result<Vec<BatchStats>, SimError> {
    let mut engine = Engine::new();
    rounds.iter().map(|r| engine.run_batch(net, r)).collect()
}

/// Runs a batch sequence under one persistent [`FaultState`]: damage and
/// the fault clock carry across rounds, so a link that dies in round 2
/// stays dead for round 3 unless the plan repairs it.
///
/// # Errors
/// See [`Engine::run_batch_faulted`].
pub fn run_rounds_faulted<H: Host>(
    net: &H,
    rounds: &[Vec<Message>],
    faults: &mut FaultState,
) -> Result<Vec<BatchOutcome>, SimError> {
    let mut engine = Engine::new();
    rounds
        .iter()
        .map(|r| engine.run_batch_faulted(net, r, faults))
        .collect()
}

/// Total cycles across a batch sequence.
pub fn total_cycles(stats: &[BatchStats]) -> u32 {
    stats.iter().map(|s| s.cycles).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultState, DEFAULT_MAX_IDLE_WAIT};
    use crate::network::Network;
    use xtree_topology::{Csr, Graph, XTree};

    fn path_net(n: usize) -> Network {
        let edges: Vec<_> = (1..n as u32).map(|v| (v - 1, v)).collect();
        Network::new(Csr::from_edges(n, &edges)).unwrap()
    }

    fn cycle_net(n: usize) -> Network {
        let mut edges: Vec<_> = (1..n as u32).map(|v| (v - 1, v)).collect();
        edges.push((0, n as u32 - 1));
        Network::new(Csr::from_edges(n, &edges)).unwrap()
    }

    /// The pre-optimisation engine, verbatim: hash maps keyed by vertex
    /// pairs, rebuilt every batch. The oracle for determinism tests.
    fn run_batch_reference(net: &Network, messages: &[Message]) -> BatchStats {
        use std::collections::HashMap;
        let mut at: Vec<u32> = messages.iter().map(|m| m.src).collect();
        let mut done: Vec<bool> = messages.iter().map(|m| m.src == m.dst).collect();
        let ideal_cycles = messages
            .iter()
            .map(|m| net.distance(m.src, m.dst))
            .max()
            .unwrap_or(0);
        let mut remaining = done.iter().filter(|&&d| !d).count();
        let mut cycles = 0u32;
        let mut total_hops = 0u64;
        let mut link_traffic: HashMap<(u32, u32), u32> = HashMap::new();
        let mut claimed: HashMap<(u32, u32), usize> = HashMap::new();
        while remaining > 0 {
            cycles += 1;
            claimed.clear();
            for (i, m) in messages.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let from = at[i];
                let to = net.next_hop(from, m.dst);
                claimed.entry((from, to)).or_insert(i);
            }
            for (i, m) in messages.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let from = at[i];
                let to = net.next_hop(from, m.dst);
                if claimed.get(&(from, to)) != Some(&i) {
                    continue;
                }
                at[i] = to;
                total_hops += 1;
                *link_traffic.entry((from, to)).or_insert(0) += 1;
                if to == m.dst {
                    done[i] = true;
                    remaining -= 1;
                }
            }
        }
        BatchStats {
            cycles,
            ideal_cycles,
            messages: messages.len(),
            max_link_traffic: link_traffic.values().copied().max().unwrap_or(0),
            total_hops,
        }
    }

    #[test]
    fn single_message_takes_distance_cycles() {
        let net = path_net(10);
        let s = run_batch(&net, &[Message { src: 0, dst: 7 }]).unwrap();
        assert_eq!(s.cycles, 7);
        assert_eq!(s.ideal_cycles, 7);
        assert_eq!(s.total_hops, 7);
        assert_eq!(s.max_link_traffic, 1);
    }

    #[test]
    fn self_message_is_free() {
        let net = path_net(4);
        let s = run_batch(&net, &[Message { src: 2, dst: 2 }]).unwrap();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.total_hops, 0);
    }

    #[test]
    fn staggered_messages_pipeline_without_stall() {
        // 0→3 and 1→3 share links but never in the same cycle: perfect
        // pipelining, no queueing.
        let net = path_net(4);
        let msgs = [Message { src: 0, dst: 3 }, Message { src: 1, dst: 3 }];
        let s = run_batch(&net, &msgs).unwrap();
        assert_eq!(s.ideal_cycles, 3);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.max_link_traffic, 2);
    }

    #[test]
    fn contention_serialises_on_shared_link() {
        // Two messages leaving the same vertex for the same direction must
        // take turns on the first link: one cycle of queueing.
        let net = path_net(4);
        let msgs = [Message { src: 0, dst: 2 }, Message { src: 0, dst: 2 }];
        let s = run_batch(&net, &msgs).unwrap();
        assert_eq!(s.ideal_cycles, 2);
        assert_eq!(s.cycles, 3, "one cycle of queueing expected");
        assert_eq!(s.max_link_traffic, 2);
    }

    #[test]
    fn opposite_directions_do_not_collide() {
        // Directed links: a->b and b->a are distinct resources.
        let net = path_net(3);
        let msgs = [Message { src: 0, dst: 2 }, Message { src: 2, dst: 0 }];
        let s = run_batch(&net, &msgs).unwrap();
        assert_eq!(s.cycles, 2);
    }

    #[test]
    fn empty_batch() {
        let net = path_net(3);
        let s = run_batch(&net, &[]).unwrap();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.messages, 0);
    }

    #[test]
    fn xtree_horizontal_shortcut_used() {
        let x = XTree::new(3);
        let net = Network::xtree(&x);
        // 011 -> 100 are X-tree neighbours (horizontal edge): 1 cycle.
        let u = xtree_topology::Address::parse("011").unwrap().heap_id() as u32;
        let v = xtree_topology::Address::parse("100").unwrap().heap_id() as u32;
        let s = run_batch(&net, &[Message { src: u, dst: v }]).unwrap();
        assert_eq!(s.cycles, 1);
    }

    #[test]
    fn rounds_accumulate() {
        let net = path_net(5);
        let rounds = vec![
            vec![Message { src: 0, dst: 2 }],
            vec![Message { src: 2, dst: 4 }],
        ];
        let stats = run_rounds(&net, &rounds).unwrap();
        assert_eq!(total_cycles(&stats), 4);
    }

    #[test]
    fn matches_reference_engine_on_seeded_workloads() {
        // Deterministic pseudo-random batches on an X-tree host: the
        // rewritten engine must reproduce the reference engine's stats
        // bit for bit, with the engine reused across batches.
        let x = XTree::new(5);
        let nets = [Network::xtree(&x), Network::new(x.graph().clone()).unwrap()];
        let n = x.graph().node_count() as u64;
        let mut engine = Engine::new();
        for net in &nets {
            let mut state = 0x5EED_CAFE_u64;
            let mut rand = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for batch in 0..24 {
                let msgs: Vec<Message> = (0..(batch * 7) % 97)
                    .map(|_| Message {
                        src: (rand() % n) as u32,
                        dst: (rand() % n) as u32,
                    })
                    .collect();
                assert_eq!(
                    engine.run_batch(net, &msgs).unwrap(),
                    run_batch_reference(net, &msgs),
                    "batch {batch}"
                );
            }
        }
    }

    #[test]
    fn engine_reuse_is_stateless_between_batches() {
        // Same batch, fresh engine vs warmed engine: identical stats.
        let net = path_net(16);
        let msgs: Vec<Message> = (0..16)
            .flat_map(|s| (0..16).map(move |d| Message { src: s, dst: d }))
            .collect();
        let mut warmed = Engine::new();
        let first = warmed.run_batch(&net, &msgs).unwrap();
        for _ in 0..3 {
            assert_eq!(warmed.run_batch(&net, &msgs).unwrap(), first);
        }
        assert_eq!(Engine::new().run_batch(&net, &msgs).unwrap(), first);
    }

    // ---- faults ---------------------------------------------------------

    #[test]
    fn empty_fault_plan_is_bit_identical_to_the_fast_path() {
        let x = XTree::new(4);
        let net = Network::xtree(&x);
        let msgs: Vec<Message> = (0..24u32)
            .map(|i| Message {
                src: i % 31,
                dst: (i * 13 + 5) % 31,
            })
            .collect();
        let plain = run_batch(&net, &msgs).unwrap();
        let mut faults = FaultState::new(net.graph(), FaultPlan::new()).unwrap();
        let out = Engine::new()
            .run_batch_faulted(&net, &msgs, &mut faults)
            .unwrap();
        assert_eq!(out, BatchOutcome::Delivered(plain));
    }

    #[test]
    fn messages_detour_around_a_failed_link() {
        // 6-cycle, 0 -> 1 with the direct link dead: the detour is the
        // other way round the ring, 5 hops.
        let net = cycle_net(6);
        let plan = FaultPlan::new().link_down(0, 0, 1);
        let mut faults = FaultState::new(net.graph(), plan).unwrap();
        let out = Engine::new()
            .run_batch_faulted(&net, &[Message { src: 0, dst: 1 }], &mut faults)
            .unwrap();
        let BatchOutcome::Delivered(s) = out else {
            panic!("connected survivor graph must deliver, got {out:?}");
        };
        assert_eq!(s.cycles, 5);
        assert_eq!(s.total_hops, 5);
        assert_eq!(s.ideal_cycles, 1, "ideal stays the undamaged bound");
    }

    #[test]
    fn repair_mid_batch_reopens_the_short_route() {
        // The dead link comes back at cycle 2: the message waits nowhere
        // near 5 hops because re-routing happens on the repair epoch.
        let net = cycle_net(6);
        let plan = FaultPlan::new().link_down(0, 0, 1).link_up(2, 0, 1);
        let mut faults = FaultState::new(net.graph(), plan).unwrap();
        let out = Engine::new()
            .run_batch_faulted(&net, &[Message { src: 0, dst: 1 }], &mut faults)
            .unwrap();
        let BatchOutcome::Delivered(s) = out else {
            panic!("expected delivery, got {out:?}");
        };
        // 2 cycles walking the long way (0→5→4), then the repair applies
        // and the survivor route flips; the message walks back. Whatever
        // the exact path, it must beat the full 5-hop detour's *distance
        // remaining* and deliver.
        assert!(s.cycles <= 6, "repair must not slow past the detour: {s:?}");
    }

    #[test]
    fn partition_without_repair_reports_stranded_partial_delivery() {
        // path 0-1-2-3 with link {1,2} dead: 0→1 delivers, 0→3 and 2→0
        // are stranded, and the engine proves it without hanging.
        let net = path_net(4);
        let plan = FaultPlan::new().link_down(0, 1, 2);
        let mut faults = FaultState::new(net.graph(), plan).unwrap();
        let msgs = [
            Message { src: 0, dst: 3 },
            Message { src: 0, dst: 1 },
            Message { src: 2, dst: 0 },
        ];
        let out = Engine::new()
            .run_batch_faulted(&net, &msgs, &mut faults)
            .unwrap();
        let BatchOutcome::Partial { stats, stranded } = out else {
            panic!("expected Partial, got {out:?}");
        };
        assert_eq!(stranded, vec![0, 2]);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.total_hops, 1, "only 0→1 moved");
    }

    #[test]
    fn node_down_strands_messages_to_and_from_it() {
        let net = path_net(4);
        let plan = FaultPlan::new().node_down(0, 1);
        let mut faults = FaultState::new(net.graph(), plan).unwrap();
        let msgs = [
            Message { src: 0, dst: 1 }, // into the dead node
            Message { src: 1, dst: 3 }, // frozen at the dead node
            Message { src: 2, dst: 3 }, // unaffected
        ];
        let out = Engine::new()
            .run_batch_faulted(&net, &msgs, &mut faults)
            .unwrap();
        assert_eq!(out.stranded(), &[0, 1]);
        assert!(!out.delivered_all());
    }

    #[test]
    fn watchdog_flags_stall_when_repair_never_arrives() {
        // The satellite scenario: the destination is fully partitioned and
        // the only scheduled "repair" lies far beyond the watchdog's
        // idle-wait budget — i.e. it never effectively arrives. The engine
        // must diagnose this within the documented bound instead of
        // hanging (or idling for two million cycles).
        let net = path_net(4);
        let never = DEFAULT_MAX_IDLE_WAIT * 40; // far past the patience
        let plan = FaultPlan::new().link_down(0, 1, 2).link_up(never, 1, 2);
        let mut faults = FaultState::new(net.graph(), plan).unwrap();
        let msgs = [Message { src: 0, dst: 3 }];
        let out = Engine::new()
            .run_batch_faulted(&net, &msgs, &mut faults)
            .unwrap();
        let BatchOutcome::Stalled {
            stats,
            undelivered,
            waiting_for,
        } = out
        else {
            panic!("expected Stalled, got {out:?}");
        };
        assert_eq!(undelivered, vec![0]);
        assert_eq!(waiting_for, Some(never));
        // Documented watchdog bound: H + (n+1)(m+1) + max_idle_wait. The
        // diagnosis must arrive well inside it — here, essentially
        // instantly, since nothing can move from cycle one.
        let bound = u64::from(never) + 5 * 2 + u64::from(DEFAULT_MAX_IDLE_WAIT);
        assert!(u64::from(stats.cycles) <= bound);
        assert!(
            stats.cycles <= 2,
            "diagnosis should be immediate: {stats:?}"
        );
    }

    #[test]
    fn patient_engine_waits_through_a_late_repair() {
        // Same scenario, but the caller raises the idle-wait budget past
        // the repair: the engine skips the dead time and delivers.
        let net = path_net(4);
        let repair_at = 100_000;
        let plan = FaultPlan::new().link_down(0, 1, 2).link_up(repair_at, 1, 2);
        let mut faults = FaultState::new(net.graph(), plan)
            .unwrap()
            .with_max_idle_wait(repair_at + 1);
        let msgs = [Message { src: 0, dst: 3 }];
        let out = Engine::new()
            .run_batch_faulted(&net, &msgs, &mut faults)
            .unwrap();
        let BatchOutcome::Delivered(s) = out else {
            panic!("expected delivery after the repair, got {out:?}");
        };
        assert!(s.cycles >= repair_at, "waiting time is real time: {s:?}");
        assert_eq!(s.total_hops, 3);
    }

    #[test]
    fn fault_state_persists_across_batches() {
        // Round 1 runs under a dead link; the repair lands on the shared
        // fault clock, so round 2 sees the healed network.
        let net = cycle_net(6);
        let plan = FaultPlan::new().link_down(0, 0, 1).link_up(5, 0, 1);
        let mut faults = FaultState::new(net.graph(), plan).unwrap();
        let rounds = vec![
            vec![Message { src: 0, dst: 1 }], // detours: 5 cycles
            vec![Message { src: 0, dst: 1 }], // healed: 1 cycle
        ];
        let outs = run_rounds_faulted(&net, &rounds, &mut faults).unwrap();
        assert_eq!(outs[0].stats().cycles, 5);
        assert_eq!(outs[1].stats().cycles, 1);
        assert!(outs.iter().all(|o| o.delivered_all()));
    }

    #[test]
    fn fault_state_rejects_a_mismatched_host() {
        let net = path_net(4);
        let other = cycle_net(8);
        let mut faults =
            FaultState::new(other.graph(), FaultPlan::new().link_down(0, 0, 1)).unwrap();
        let err = Engine::new()
            .run_batch_faulted(&net, &[Message { src: 0, dst: 3 }], &mut faults)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidFault { .. }));
    }
}

//! Self-healing delivery: the retry supervisor around the faulted engine.
//!
//! [`Engine::run_batch_faulted`] is honest about damage — it returns
//! `Partial` or `Stalled` outcomes with the undelivered message ids — but
//! it never *does* anything about them. This module closes the loop:
//! [`recover_batch_with`] wraps the engine in a [`RecoveryPolicy`]-driven
//! supervisor that, after a degraded batch,
//!
//! 1. **repairs the embedding** (when the host map supports it): guests
//!    hosted on dead vertices are migrated to surviving ones via
//!    `xtree_core::repair`, gated by the policy's [`RepairConfig`];
//! 2. **waits out a backoff** in *simulated* cycles — the fault clock
//!    advances, so scheduled link repairs come due exactly as they would
//!    for a program that sleeps and retries;
//! 3. **re-sources the stranded messages** through the repaired embedding
//!    (endpoints on a dead vertex follow their migrated guests) and
//!    re-dispatches them as a fresh batch,
//!
//! until everything is delivered, the retry budget runs out, or the
//! remaining destinations are provably unreachable (no future event can
//! reconnect them). Every decision is deterministic — retries happen at
//! policy-defined clocks, migrations follow the repair module's
//! deterministic BFS — so recovered runs trace and replay byte-for-byte
//! like everything else in this workspace.
//!
//! The supervisor only ever *adds* work after a degraded outcome: a batch
//! that delivers on the first attempt takes exactly one
//! `run_batch_faulted_with` call and nothing else, which is what keeps
//! recovery free when it has nothing to do (`faultbench` asserts this).

use crate::engine::{BatchStats, Engine, Message};
use crate::error::SimError;
use crate::fault::FaultState;
use crate::network::Network;
use crate::workload::HostMap;
use xtree_core::repair::{repair_in_place, RepairConfig, RepairError, RepairReport};
use xtree_core::{QEmbedding, XEmbedding};
use xtree_telemetry::{Event, Sink};
use xtree_topology::Csr;
use xtree_trees::BinaryTree;

/// How long the supervisor waits (in simulated cycles) before retry `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backoff {
    /// The same wait before every retry.
    Fixed(u32),
    /// `base << k` before retry `k`, saturating at `cap`.
    Exponential {
        /// Wait before the first retry.
        base: u32,
        /// Upper bound on any single wait.
        cap: u32,
    },
}

impl Backoff {
    /// The wait before retry `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> u32 {
        match *self {
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, cap } => {
                let shifted = u64::from(base) << attempt.min(32);
                shifted.min(u64::from(cap)) as u32
            }
        }
    }
}

/// What the supervisor is allowed to do about a degraded batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries after the initial dispatch (0 = measure only, never retry).
    pub max_retries: u32,
    /// Simulated-cycle wait schedule between attempts.
    pub backoff: Backoff,
    /// Migrate guests off dead host vertices between attempts.
    pub repair_embedding: bool,
    /// Load cap and search radius for those migrations.
    pub repair: RepairConfig,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 8,
            backoff: Backoff::Exponential { base: 8, cap: 1024 },
            repair_embedding: true,
            repair: RepairConfig::default(),
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never retries and never repairs: the supervisor
    /// degenerates to a single `run_batch_faulted` call.
    pub fn none() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            backoff: Backoff::Fixed(0),
            repair_embedding: false,
            repair: RepairConfig::default(),
        }
    }
}

/// A host map the supervisor can heal and audit. Every [`HostMap`] can opt
/// out (the defaults do nothing); [`XEmbedding`] plugs in the real
/// `xtree_core::repair` machinery.
pub trait RepairableHost: HostMap {
    /// Migrates guests off dead vertices, honouring the live-link mask in
    /// `faults`. Returns `Ok(None)` when nothing needed moving or this
    /// host map does not support repair.
    ///
    /// # Errors
    /// [`RepairError`] when some guest cannot be rehomed; the map must be
    /// left unchanged then.
    fn try_repair(
        &mut self,
        tree: &BinaryTree,
        graph: &Csr,
        faults: &FaultState,
        cfg: &RepairConfig,
    ) -> Result<Option<RepairReport>, RepairError> {
        let _ = (tree, graph, faults, cfg);
        Ok(None)
    }

    /// True when no guest is hosted on a currently-dead vertex — the
    /// invariant a successful repair establishes.
    fn validate_against(&self, faults: &FaultState) -> bool {
        let _ = faults;
        true
    }
}

impl RepairableHost for XEmbedding {
    fn try_repair(
        &mut self,
        tree: &BinaryTree,
        graph: &Csr,
        faults: &FaultState,
        cfg: &RepairConfig,
    ) -> Result<Option<RepairReport>, RepairError> {
        let dead: Vec<u32> = (0..self.host_len() as u32)
            .filter(|&v| !faults.node_alive(v))
            .collect();
        if dead.is_empty() {
            return Ok(None);
        }
        repair_in_place(tree, self, &dead, cfg, |u, v| {
            faults.link_alive(graph, u, v)
        })
    }

    fn validate_against(&self, faults: &FaultState) -> bool {
        xtree_core::repair::all_alive(self, |v| faults.node_alive(v))
    }
}

/// Hypercube node repairs are not modelled (the fault planner only kills
/// X-tree-shaped hosts today), so the defaults — no repair, always valid —
/// apply.
impl RepairableHost for QEmbedding {}

/// Engine statistics of one supervisor attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttemptStats {
    /// 0 for the initial dispatch, `k` for retry `k`.
    pub attempt: u32,
    /// Simulated cycles waited *before* this attempt (0 for attempt 0).
    pub backoff: u32,
    /// Messages dispatched in this attempt's batch.
    pub dispatched: usize,
    /// How many of them arrived.
    pub delivered: usize,
    /// Raw engine stats of the attempt.
    pub stats: BatchStats,
    /// True when the attempt ended in a watchdog stall.
    pub stalled: bool,
}

/// Terminal state of a supervised batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryEnd {
    /// Every message arrived (possibly after retries).
    Delivered,
    /// Every survivor-reachable message arrived; the rest can never be
    /// delivered (ids index the original batch).
    Unreachable {
        /// Messages whose endpoints are provably cut off for good.
        stranded: Vec<u32>,
    },
    /// The retry budget ran out with messages still in flight.
    Exhausted {
        /// Messages still undelivered but not proven unreachable.
        undelivered: Vec<u32>,
        /// Messages proven permanently unreachable along the way.
        stranded: Vec<u32>,
    },
}

/// Everything a supervised batch did: terminal state, aggregate cost, the
/// per-attempt trail, and what the embedding repairs changed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// How the batch ended.
    pub end: RecoveryEnd,
    /// Aggregate statistics: cycles include the backoff waits, messages
    /// count the *original* batch (re-dispatches are not double-counted).
    pub stats: BatchStats,
    /// One entry per dispatch, in order.
    pub attempts: Vec<AttemptStats>,
    /// Cumulative embedding-repair report, when any repair ran.
    pub repair: Option<RepairReport>,
    /// Set when a repair pass failed (the supervisor keeps retrying with
    /// the unrepaired embedding; messages to dead hosts then strand).
    pub repair_error: Option<RepairError>,
}

impl RecoveryOutcome {
    /// True when every message arrived.
    pub fn delivered_all(&self) -> bool {
        matches!(self.end, RecoveryEnd::Delivered)
    }

    /// Retries after the initial dispatch.
    pub fn retries(&self) -> u32 {
        self.attempts.len().saturating_sub(1) as u32
    }

    /// Total messages re-dispatched across all retries.
    pub fn requeued(&self) -> usize {
        self.attempts.iter().skip(1).map(|a| a.dispatched).sum()
    }

    /// Messages permanently stranded, whatever the terminal state.
    pub fn stranded(&self) -> &[u32] {
        match &self.end {
            RecoveryEnd::Delivered => &[],
            RecoveryEnd::Unreachable { stranded } => stranded,
            RecoveryEnd::Exhausted { stranded, .. } => stranded,
        }
    }
}

/// [`recover_batch_with`] without telemetry.
///
/// # Errors
/// See [`recover_batch_with`].
pub fn recover_batch<M: RepairableHost>(
    engine: &mut Engine,
    net: &Network,
    tree: &BinaryTree,
    emb: &mut M,
    messages: &[Message],
    faults: &mut FaultState,
    policy: &RecoveryPolicy,
) -> Result<RecoveryOutcome, SimError> {
    recover_batch_with(
        engine,
        net,
        tree,
        emb,
        messages,
        faults,
        policy,
        &mut xtree_telemetry::NopSink,
    )
}

/// Delivers `messages` under `faults`, retrying degraded outcomes per
/// `policy`: repair the embedding, wait out the backoff on the fault
/// clock, re-source the leftovers through the repaired map, re-dispatch.
///
/// The sink sees the usual engine events of every attempt plus the
/// supervisor's own: [`Event::EmbeddingRepaired`] after a migration,
/// [`Event::RecoveryAttempt`] before each retry, and one
/// [`Event::MessageRequeued`] per re-dispatched message (ids index the
/// original batch).
///
/// # Errors
/// The engine errors of [`Engine::run_batch_faulted`]; a *repair* failure
/// is not an error (it lands in [`RecoveryOutcome::repair_error`] and the
/// supervisor soldiers on without the migration).
#[allow(clippy::too_many_arguments)]
pub fn recover_batch_with<M: RepairableHost, S: Sink>(
    engine: &mut Engine,
    net: &Network,
    tree: &BinaryTree,
    emb: &mut M,
    messages: &[Message],
    faults: &mut FaultState,
    policy: &RecoveryPolicy,
    sink: &mut S,
) -> Result<RecoveryOutcome, SimError> {
    let graph = net.graph();
    let mut attempts = Vec::new();
    let mut repair: Option<RepairReport> = None;
    let mut repair_error: Option<RepairError> = None;
    let mut stranded: Vec<u32> = Vec::new();
    // The current wave: (original batch id, message as currently sourced).
    let mut wave: Vec<(u32, Message)> = messages
        .iter()
        .enumerate()
        .map(|(i, &m)| (i as u32, m))
        .collect();
    let mut agg: Option<BatchStats> = None;

    let mut attempt = 0u32;
    loop {
        let batch: Vec<Message> = wave.iter().map(|&(_, m)| m).collect();
        let out = engine.run_batch_faulted_with(net, &batch, faults, sink)?;
        let s = out.stats().clone();
        let undelivered = out.undelivered();
        attempts.push(AttemptStats {
            attempt,
            backoff: if attempt == 0 {
                0
            } else {
                policy.backoff.delay(attempt - 1)
            },
            dispatched: batch.len(),
            delivered: batch.len() - undelivered.len(),
            stats: s.clone(),
            stalled: out.is_stalled(),
        });
        // Fold this attempt into the aggregate (messages stay the original
        // batch size; re-dispatches are continuations, not new traffic).
        match &mut agg {
            None => agg = Some(s),
            Some(a) => {
                a.cycles += s.cycles;
                a.max_link_traffic = a.max_link_traffic.max(s.max_link_traffic);
                a.total_hops += s.total_hops;
            }
        }

        // Keep only what did not arrive, by original id.
        wave = undelivered.iter().map(|&i| wave[i as usize]).collect();
        if wave.is_empty() {
            break;
        }
        if attempt >= policy.max_retries {
            return Ok(finish(
                RecoveryEnd::Exhausted {
                    undelivered: wave.iter().map(|&(id, _)| id).collect(),
                    stranded,
                },
                agg,
                messages.len(),
                attempts,
                repair,
                repair_error,
            ));
        }

        // Between attempts: repair, wait, re-source, re-dispatch.
        if policy.repair_embedding && repair_error.is_none() {
            match emb.try_repair(tree, graph, faults, &policy.repair) {
                Ok(Some(r)) => {
                    if S::ACTIVE {
                        sink.record(Event::EmbeddingRepaired {
                            migrated: r.migrated as u32,
                            max_load: r.max_load,
                            dilation: r.dilation,
                        });
                    }
                    // Endpoints still parked on a dead vertex follow the
                    // first guest migrated off it (deterministic: the
                    // relocations are in guest-id order).
                    for (_, m) in wave.iter_mut() {
                        for rl in &r.relocations {
                            if m.src == rl.from {
                                m.src = rl.to;
                            }
                            if m.dst == rl.from {
                                m.dst = rl.to;
                            }
                        }
                    }
                    repair = Some(match repair.take() {
                        None => r,
                        Some(mut prev) => {
                            prev.migrated += r.migrated;
                            prev.max_load = r.max_load;
                            prev.dilation = r.dilation;
                            prev.relocations.extend(r.relocations);
                            prev
                        }
                    });
                }
                Ok(None) => {}
                Err(e) => repair_error = Some(e),
            }
        }

        let delay = policy.backoff.delay(attempt);
        faults.advance_clock(delay);
        faults.apply_due(graph);
        // With no future event left, unreachability is now permanent: what
        // the survivor graph cannot route today it never will.
        if faults.pending().is_none() {
            let mut still = Vec::with_capacity(wave.len());
            for (id, m) in wave.drain(..) {
                if faults.reachable(graph, m.src, m.dst) {
                    still.push((id, m));
                } else {
                    stranded.push(id);
                }
            }
            wave = still;
            if wave.is_empty() {
                return Ok(finish(
                    RecoveryEnd::Unreachable { stranded },
                    agg,
                    messages.len(),
                    attempts,
                    repair,
                    repair_error,
                ));
            }
        }
        attempt += 1;
        if S::ACTIVE {
            sink.record(Event::RecoveryAttempt {
                attempt,
                backoff: delay,
                requeued: wave.len() as u32,
            });
            for &(id, m) in &wave {
                sink.record(Event::MessageRequeued {
                    attempt,
                    msg: id,
                    src: m.src,
                    dst: m.dst,
                });
            }
        }
        if let Some(a) = &mut agg {
            a.cycles = a.cycles.saturating_add(delay);
        }
    }

    let end = if stranded.is_empty() {
        RecoveryEnd::Delivered
    } else {
        RecoveryEnd::Unreachable { stranded }
    };
    Ok(finish(
        end,
        agg,
        messages.len(),
        attempts,
        repair,
        repair_error,
    ))
}

fn finish(
    end: RecoveryEnd,
    agg: Option<BatchStats>,
    messages: usize,
    attempts: Vec<AttemptStats>,
    repair: Option<RepairReport>,
    repair_error: Option<RepairError>,
) -> RecoveryOutcome {
    let mut stats = agg.unwrap_or(BatchStats {
        cycles: 0,
        ideal_cycles: 0,
        messages: 0,
        max_link_traffic: 0,
        total_hops: 0,
    });
    stats.messages = messages;
    RecoveryOutcome {
        end,
        stats,
        attempts,
        repair,
        repair_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use xtree_core::metrics::heap_order_embedding;
    use xtree_topology::{Graph, XTree};
    use xtree_trees::generate;

    fn setup(height: u8) -> (Network, BinaryTree, XEmbedding) {
        let x = XTree::new(height);
        let net = Network::xtree(&x);
        let n = x.node_count();
        let tree = generate::left_complete(n);
        let emb = heap_order_embedding(&tree, height);
        (net, tree, emb)
    }

    #[test]
    fn backoff_schedules() {
        assert_eq!(Backoff::Fixed(7).delay(0), 7);
        assert_eq!(Backoff::Fixed(7).delay(5), 7);
        let e = Backoff::Exponential { base: 8, cap: 100 };
        assert_eq!(e.delay(0), 8);
        assert_eq!(e.delay(1), 16);
        assert_eq!(e.delay(3), 64);
        assert_eq!(e.delay(4), 100, "capped");
        assert_eq!(e.delay(63), 100, "shift saturates instead of wrapping");
    }

    #[test]
    fn clean_batch_is_a_single_attempt() {
        let (net, tree, mut emb) = setup(3);
        let msgs = crate::workload::exchange_round(&tree, &emb);
        let mut faults = FaultState::new(net.graph(), FaultPlan::new()).unwrap();
        let out = recover_batch(
            &mut Engine::new(),
            &net,
            &tree,
            &mut emb,
            &msgs,
            &mut faults,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(out.delivered_all());
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.requeued(), 0);
        assert!(out.repair.is_none());
        // Identical to the unsupervised run.
        let mut faults2 = FaultState::new(net.graph(), FaultPlan::new()).unwrap();
        let direct = Engine::new()
            .run_batch_faulted(&net, &msgs, &mut faults2)
            .unwrap();
        assert_eq!(&out.stats, direct.stats());
    }

    #[test]
    fn dead_host_vertex_is_repaired_and_delivery_completes() {
        // Kill a leaf vertex that hosts a guest: without repair its
        // messages strand; with the default policy the guest migrates and
        // everything arrives.
        let (net, tree, emb) = setup(4);
        let victim = emb.host_len() as u32 - 1;
        let plan = FaultPlan::new().node_down(0, victim);

        let mut faults = FaultState::new(net.graph(), plan.clone()).unwrap();
        let msgs = crate::workload::exchange_round(&tree, &emb);
        let bare = Engine::new()
            .run_batch_faulted(&net, &msgs, &mut faults)
            .unwrap();
        assert!(!bare.delivered_all(), "the failure must actually bite");

        let mut healed = emb.clone();
        let mut faults = FaultState::new(net.graph(), plan).unwrap();
        let out = recover_batch(
            &mut Engine::new(),
            &net,
            &tree,
            &mut healed,
            &msgs,
            &mut faults,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(out.delivered_all(), "{:?}", out.end);
        assert!(out.retries() >= 1);
        assert!(out.requeued() > 0);
        let rep = out.repair.expect("a repair must have run");
        assert!(rep.migrated >= 1);
        assert!(healed.validate_against(&faults));
        assert!(healed.max_load() <= RepairConfig::default().load_cap);
        assert!(
            !emb.validate_against(&faults),
            "original still maps the dead vertex"
        );
    }

    #[test]
    fn zero_retry_policy_matches_unsupervised_run() {
        let (net, tree, emb) = setup(4);
        let victim = emb.host_len() as u32 - 1;
        let plan = FaultPlan::new().node_down(0, victim);
        let msgs = crate::workload::exchange_round(&tree, &emb);

        let mut faults = FaultState::new(net.graph(), plan.clone()).unwrap();
        let direct = Engine::new()
            .run_batch_faulted(&net, &msgs, &mut faults)
            .unwrap();
        let mut emb2 = emb.clone();
        let mut faults = FaultState::new(net.graph(), plan).unwrap();
        let out = recover_batch(
            &mut Engine::new(),
            &net,
            &tree,
            &mut emb2,
            &msgs,
            &mut faults,
            &RecoveryPolicy::none(),
        )
        .unwrap();
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(&out.stats, direct.stats());
        assert!(matches!(out.end, RecoveryEnd::Exhausted { .. }));
    }

    #[test]
    fn permanently_cut_destinations_are_reported_unreachable() {
        // Repair disabled and a dead vertex with guests: once the plan has
        // no future events, the supervisor proves the leftovers stranded
        // instead of burning the whole retry budget.
        let (net, tree, mut emb) = setup(4);
        let victim = emb.host_len() as u32 - 1;
        let plan = FaultPlan::new().node_down(0, victim);
        let msgs = crate::workload::exchange_round(&tree, &emb);
        let mut faults = FaultState::new(net.graph(), plan).unwrap();
        let policy = RecoveryPolicy {
            repair_embedding: false,
            ..RecoveryPolicy::default()
        };
        let out = recover_batch(
            &mut Engine::new(),
            &net,
            &tree,
            &mut emb,
            &msgs,
            &mut faults,
            &policy,
        )
        .unwrap();
        assert!(matches!(out.end, RecoveryEnd::Unreachable { .. }));
        assert!(!out.stranded().is_empty());
        assert!(
            out.attempts.len() <= 2,
            "unreachability should be proven, not retried away: {:?}",
            out.attempts.len()
        );
    }

    #[test]
    fn link_only_faults_recover_without_repairing_the_embedding() {
        // Links that come back up: retries alone (no migration) suffice.
        let (net, tree, mut emb) = setup(4);
        let n = net.graph().node_count() as u32;
        let plan =
            FaultPlan::new()
                .link_down(0, (n - 2) / 2, n - 2)
                .link_up(600, (n - 2) / 2, n - 2);
        let msgs = crate::workload::exchange_round(&tree, &emb);
        let mut faults = FaultState::new(net.graph(), plan)
            .unwrap()
            .with_max_idle_wait(4);
        let out = recover_batch(
            &mut Engine::new(),
            &net,
            &tree,
            &mut emb,
            &msgs,
            &mut faults,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(out.delivered_all(), "{:?}", out.end);
        assert!(out.repair.is_none(), "no vertex died, nothing to migrate");
    }
}

//! Aggregation of batch statistics into experiment-report rows, with a
//! rayon-parallel sweep driver for running many (tree, embedding) pairs
//! and a fault-injection variant that reports degraded delivery.

use crate::engine::{BatchOutcome, BatchStats, Engine};
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultState};
use crate::workload;
use rayon::prelude::*;
use xtree_host::Host;
use xtree_telemetry::{AtomicCounters, NopSink, Sink};
use xtree_trees::BinaryTree;

/// Cycle summary of one simulated program on one embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Workload name (`broadcast`, `reduce`, `exchange`, `dnc`).
    pub workload: &'static str,
    /// Total cycles across all rounds.
    pub cycles: u32,
    /// Total cycles if every round finished in its longest-route time
    /// (zero congestion): the dilation-only lower bound.
    pub ideal_cycles: u32,
    /// Worst per-round slowdown `cycles / ideal` observed.
    pub worst_round_slowdown: f64,
    /// Maximum traffic over a single directed link in any round.
    pub max_link_traffic: u32,
}

fn summarise(workload: &'static str, stats: &[BatchStats]) -> SimReport {
    let cycles = stats.iter().map(|s| s.cycles).sum();
    let ideal_cycles = stats.iter().map(|s| s.ideal_cycles).sum();
    let worst_round_slowdown = stats
        .iter()
        .filter(|s| s.ideal_cycles > 0)
        .map(|s| s.cycles as f64 / s.ideal_cycles as f64)
        .fold(1.0f64, f64::max);
    SimReport {
        workload,
        cycles,
        ideal_cycles,
        worst_round_slowdown,
        max_link_traffic: stats.iter().map(|s| s.max_link_traffic).max().unwrap_or(0),
    }
}

/// Edge congestion of an embedding on an arbitrary host: route every guest
/// edge along the network's deterministic shortest path and count crossings
/// per directed link, returning the maximum. Works for any [`Host`]
/// (X-tree, hypercube, universal graph, mesh, …), complementing the
/// X-tree-specific `xtree_core::metrics::edge_congestion`.
///
/// # Errors
/// [`SimError::RouterInvariant`] if the network's router proposes a
/// non-neighbour — a routing bug, reported instead of panicking.
pub fn congestion<H: Host, M: workload::HostMap>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
) -> Result<u32, SimError> {
    // Flat per-directed-link counters: links are dense indices (see
    // `Csr::directed_edge_index`), so no hashing in the walk.
    let mut usage = vec![0u32; net.directed_edge_count()];
    for (u, v) in tree.edges() {
        let (mut at, dst) = (emb.host_of(u), emb.host_of(v));
        while at != dst {
            let next = net.next_hop(at, dst);
            let e = net
                .directed_edge_index(at, next)
                .ok_or(SimError::RouterInvariant { at, to: next })?;
            usage[e as usize] += 1;
            at = next;
        }
    }
    Ok(usage.into_iter().max().unwrap_or(0))
}

/// Traffic-weighted edge congestion: route every guest edge along the
/// network's deterministic shortest path, accumulating that edge's
/// communication *demand* on each directed host link it crosses, and
/// return the hottest link's total. With all-ones demand this equals
/// [`congestion`] — the pinned contract that keeps the two scores
/// comparable. Demand is indexed by the child endpoint of each guest
/// edge (`demand[v]` weights the edge `parent(v) → v`; the root's slot
/// is ignored), the indexing `xtree_scenario` traffic models produce.
///
/// # Panics
/// If `demand.len() != tree.len()` — a construction bug in the caller,
/// not a data condition.
///
/// # Errors
/// [`SimError::RouterInvariant`] if the network's router proposes a
/// non-neighbour — a routing bug, reported instead of panicking.
pub fn weighted_congestion<H: Host, M: workload::HostMap>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
    demand: &[u64],
) -> Result<u64, SimError> {
    assert_eq!(
        demand.len(),
        tree.len(),
        "demand must have one weight per guest node (edge = node → parent)"
    );
    let mut usage = vec![0u64; net.directed_edge_count()];
    for (u, v) in tree.edges() {
        let w = demand[v.index()];
        let (mut at, dst) = (emb.host_of(u), emb.host_of(v));
        while at != dst {
            let next = net.next_hop(at, dst);
            let e = net
                .directed_edge_index(at, next)
                .ok_or(SimError::RouterInvariant { at, to: next })?;
            usage[e as usize] += w;
            at = next;
        }
    }
    Ok(usage.into_iter().max().unwrap_or(0))
}

/// Maximum number of guest nodes mapped to one host processor — the
/// paper's *load factor*, "the computation work which has to be done by a
/// single processor of the X-tree network".
pub fn compute_load<H: Host, M: workload::HostMap>(net: &H, tree: &BinaryTree, emb: &M) -> u32 {
    let mut load = vec![0u32; net.node_count()];
    for v in tree.nodes() {
        load[emb.host_of(v) as usize] += 1;
    }
    load.into_iter().max().unwrap_or(0)
}

/// One full *simulation step* of the guest machine: every guest node does
/// one unit of work (the busiest processor serialises its `load` nodes)
/// and every guest edge carries one message in each direction. Real-time
/// simulation with constant slowdown — the paper's headline property —
/// means this number is bounded by a constant independent of `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepReport {
    /// Serialised computation: the load factor.
    pub compute_cycles: u32,
    /// Communication: cycles for the full neighbour exchange.
    pub exchange_cycles: u32,
}

impl StepReport {
    /// Total cycles to simulate one synchronous guest step.
    pub fn total(&self) -> u32 {
        self.compute_cycles + self.exchange_cycles
    }
}

/// Measures one guest step on `net`.
///
/// # Errors
/// See [`crate::engine::run_batch`].
pub fn simulate_step<H: Host, M: workload::HostMap>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
) -> Result<StepReport, SimError> {
    let batch = crate::engine::run_batch(net, &workload::exchange_round(tree, emb))?;
    Ok(StepReport {
        compute_cycles: compute_load(net, tree, emb),
        exchange_cycles: batch.cycles,
    })
}

/// The four canonical workloads, each as a round sequence.
fn workload_rounds<M: workload::HostMap>(
    tree: &BinaryTree,
    emb: &M,
) -> [(&'static str, Vec<Vec<crate::engine::Message>>); 4] {
    std::array::from_fn(|i| (workload::WORKLOADS[i], workload::rounds_for(tree, emb, i)))
}

/// Runs the canonical tree workloads of one embedding.
///
/// # Errors
/// See [`crate::engine::run_batch`].
pub fn simulate_all<H: Host, M: workload::HostMap + Sync>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
) -> Result<Vec<SimReport>, SimError> {
    simulate_all_with(net, tree, emb, &mut NopSink)
}

/// [`simulate_all`] with telemetry: every batch of every workload reports
/// its events to `sink` (workloads run in their fixed order on one shared
/// engine, so the event stream is deterministic).
///
/// # Errors
/// See [`crate::engine::run_batch`].
pub fn simulate_all_with<H: Host, M: workload::HostMap + Sync, S: Sink>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
    sink: &mut S,
) -> Result<Vec<SimReport>, SimError> {
    let mut engine = Engine::new();
    workload_rounds(tree, emb)
        .iter()
        .map(|(name, rounds)| {
            let stats = rounds
                .iter()
                .map(|r| engine.run_batch_with(net, r, sink))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(summarise(name, &stats))
        })
        .collect()
}

/// Runs one canonical workload (an index into
/// [`workload::WORKLOADS`]) on its own engine, reporting to `sink`.
/// Produces the same report as the matching entry of
/// [`simulate_all_with`] — the engine is pure scratch state, so sharing
/// one across workloads or not cannot change results. The serving layer
/// uses this to run exactly the workload a request asked for.
///
/// # Panics
/// If `idx` is not a valid workload index (`0..4`).
///
/// # Errors
/// See [`crate::engine::run_batch`].
pub fn simulate_one_with<H: Host, M: workload::HostMap + Sync, S: Sink>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
    idx: usize,
    sink: &mut S,
) -> Result<SimReport, SimError> {
    let mut engine = Engine::new();
    let stats = workload::rounds_for(tree, emb, idx)
        .iter()
        .map(|r| engine.run_batch_with(net, r, sink))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(summarise(workload::WORKLOADS[idx], &stats))
}

/// Cycle-and-delivery summary of one workload run under fault injection.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSimReport {
    /// Workload name (`broadcast`, `reduce`, `exchange`, `dnc`).
    pub workload: &'static str,
    /// Total cycles across all rounds actually run (idle repair-waiting
    /// included).
    pub cycles: u32,
    /// Dilation-only lower bound on the *undamaged* host, so slowdown
    /// compares degraded against healthy.
    pub ideal_cycles: u32,
    /// Messages injected across the rounds run.
    pub messages: usize,
    /// Messages that arrived.
    pub delivered: usize,
    /// Messages proven permanently unreachable.
    pub stranded: usize,
    /// True when the progress watchdog cut a round short.
    pub stalled: bool,
}

impl FaultSimReport {
    /// Fraction of injected messages that arrived (1.0 for an empty run).
    pub fn delivery_rate(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.delivered as f64 / self.messages as f64
        }
    }
}

/// Runs the canonical tree workloads under one fault plan, restarting the
/// fault clock for every workload so each sees the same damage schedule.
///
/// Rounds after a watchdog stall are skipped (their report reflects only
/// the rounds run); stranded messages in one round do not stop later
/// rounds, matching a program that times out on lost peers and moves on.
///
/// # Errors
/// [`SimError::InvalidFault`] when `plan` does not fit the host, plus the
/// engine errors of [`Engine::run_batch_faulted`].
pub fn simulate_all_faulted<H: Host, M: workload::HostMap + Sync>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
    plan: &FaultPlan,
) -> Result<Vec<FaultSimReport>, SimError> {
    simulate_all_faulted_with(net, tree, emb, plan, &mut NopSink)
}

/// [`simulate_all_faulted`] with telemetry: the sink additionally sees
/// fault applications, reroute sweeps, and watchdog clock jumps.
///
/// # Errors
/// See [`simulate_all_faulted`].
pub fn simulate_all_faulted_with<H: Host, M: workload::HostMap + Sync, S: Sink>(
    net: &H,
    tree: &BinaryTree,
    emb: &M,
    plan: &FaultPlan,
    sink: &mut S,
) -> Result<Vec<FaultSimReport>, SimError> {
    let mut engine = Engine::new();
    workload_rounds(tree, emb)
        .iter()
        .map(|(name, rounds)| {
            let mut faults = FaultState::new(net.csr(), plan.clone())?;
            let mut rep = FaultSimReport {
                workload: name,
                cycles: 0,
                ideal_cycles: 0,
                messages: 0,
                delivered: 0,
                stranded: 0,
                stalled: false,
            };
            for round in rounds {
                let out = engine.run_batch_faulted_with(net, round, &mut faults, sink)?;
                let s = out.stats();
                rep.cycles += s.cycles;
                rep.ideal_cycles += s.ideal_cycles;
                rep.messages += s.messages;
                rep.delivered += s.messages - out.undelivered().len();
                rep.stranded += out.stranded().len();
                if let BatchOutcome::Stalled { .. } = out {
                    rep.stalled = true;
                    break;
                }
            }
            Ok(rep)
        })
        .collect()
}

/// Rayon-parallel sweep: simulates many (tree, embedding) pairs on one
/// shared host network. The network's routing tables are read-only, so the
/// sweep parallelises embarrassingly.
///
/// # Errors
/// The first engine error from any case (see [`crate::engine::run_batch`]).
pub fn sweep<H: Host + Sync, M: workload::HostMap + Sync>(
    net: &H,
    cases: &[(BinaryTree, M)],
) -> Result<Vec<Vec<SimReport>>, SimError> {
    let per_case: Vec<Result<Vec<SimReport>, SimError>> = cases
        .par_iter()
        .map(|(tree, emb)| simulate_all(net, tree, emb))
        .collect();
    per_case.into_iter().collect()
}

/// [`sweep`] with lock-free counting: every worker thread records into
/// the shared [`AtomicCounters`] (relaxed atomic adds, no locks), so a
/// parallel sweep still produces an exact total event tally.
///
/// # Errors
/// See [`sweep`].
pub fn sweep_counted<H: Host + Sync, M: workload::HostMap + Sync>(
    net: &H,
    cases: &[(BinaryTree, M)],
    counters: &AtomicCounters,
) -> Result<Vec<Vec<SimReport>>, SimError> {
    let per_case: Vec<Result<Vec<SimReport>, SimError>> = cases
        .par_iter()
        .map(|(tree, emb)| {
            let mut sink = counters;
            simulate_all_with(net, tree, emb, &mut sink)
        })
        .collect();
    per_case.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use xtree_core::metrics::heap_order_embedding;
    use xtree_topology::{Graph, XTree};
    use xtree_trees::generate;

    #[test]
    fn complete_tree_broadcast_is_congestion_light() {
        // Heap-order embedding of the complete tree: every message is one
        // hop on its own link, so cycles == rounds == ideal.
        let x = XTree::new(4);
        let net = Network::new(x.graph().clone()).unwrap();
        let t = generate::left_complete(31);
        let e = heap_order_embedding(&t, 4);
        let reports = simulate_all(&net, &t, &e).unwrap();
        let bc = &reports[0];
        assert_eq!(bc.workload, "broadcast");
        assert_eq!(bc.cycles, bc.ideal_cycles);
        assert_eq!(bc.max_link_traffic, 1);
    }

    #[test]
    fn congestion_on_identity_is_one() {
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone()).unwrap();
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        assert_eq!(congestion(&net, &t, &e).unwrap(), 1);
    }

    #[test]
    fn congestion_detects_hot_links() {
        // A path guest embedded in heap order funnels many edges through
        // the upper links.
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone()).unwrap();
        let t = generate::path(15);
        let e = heap_order_embedding(&t, 3);
        assert!(congestion(&net, &t, &e).unwrap() >= 2);
    }

    #[test]
    fn all_ones_demand_equals_unweighted_congestion() {
        // The pinned contract: traffic weighting with unit demand is the
        // plain congestion score, for every family and both host sizes.
        for r in [3u8, 4] {
            let x = XTree::new(r);
            let net = Network::new(x.graph().clone()).unwrap();
            for family in xtree_trees::TreeFamily::ALL {
                let t = family.generate_seeded(generate::theorem1_size(r) / 16, 77);
                let e = heap_order_embedding(&t, r);
                let ones = vec![1u64; t.len()];
                assert_eq!(
                    weighted_congestion(&net, &t, &e, &ones).unwrap(),
                    u64::from(congestion(&net, &t, &e).unwrap()),
                    "family {family:?} r {r}"
                );
            }
        }
    }

    #[test]
    fn weighted_congestion_scales_with_demand() {
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone()).unwrap();
        let t = generate::path(15);
        let e = heap_order_embedding(&t, 3);
        let ones = vec![1u64; t.len()];
        let tens = vec![10u64; t.len()];
        assert_eq!(
            weighted_congestion(&net, &t, &e, &tens).unwrap(),
            10 * weighted_congestion(&net, &t, &e, &ones).unwrap()
        );
    }

    #[test]
    fn hot_edge_dominates_weighted_score() {
        // Put all the demand on one deep edge: the weighted score must
        // track that edge's path, not the structurally hottest link.
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone()).unwrap();
        let t = generate::path(15);
        let e = heap_order_embedding(&t, 3);
        let mut demand = vec![1u64; t.len()];
        demand[14] = 1000;
        let got = weighted_congestion(&net, &t, &e, &demand).unwrap();
        assert!(got >= 1000, "hot edge must show: {got}");
    }

    #[test]
    fn compute_load_matches_embedding_load() {
        let x = XTree::new(2);
        let net = Network::new(x.graph().clone()).unwrap();
        let t = generate::path(7);
        let e = heap_order_embedding(&t, 2);
        assert_eq!(compute_load(&net, &t, &e), 1);
    }

    #[test]
    fn step_report_totals() {
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone()).unwrap();
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let step = simulate_step(&net, &t, &e).unwrap();
        assert_eq!(step.compute_cycles, 1);
        assert!(step.exchange_cycles >= 1);
        assert_eq!(step.total(), step.compute_cycles + step.exchange_cycles);
    }

    #[test]
    fn sweep_matches_sequential() {
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone()).unwrap();
        let cases: Vec<_> = (0..4)
            .map(|i| {
                let t = generate::caterpillar(10 + i);
                let e = heap_order_embedding(&t, 3);
                (t, e)
            })
            .collect();
        let par = sweep(&net, &cases).unwrap();
        for (i, (t, e)) in cases.iter().enumerate() {
            assert_eq!(par[i], simulate_all(&net, t, e).unwrap());
        }
    }

    #[test]
    fn faulted_run_with_empty_plan_matches_fault_free_reports() {
        let x = XTree::new(4);
        let net = Network::new(x.graph().clone()).unwrap();
        let t = generate::left_complete(31);
        let e = heap_order_embedding(&t, 4);
        let plain = simulate_all(&net, &t, &e).unwrap();
        let faulted = simulate_all_faulted(&net, &t, &e, &FaultPlan::new()).unwrap();
        for (p, f) in plain.iter().zip(&faulted) {
            assert_eq!(p.workload, f.workload);
            assert_eq!(p.cycles, f.cycles, "{}", p.workload);
            assert_eq!(p.ideal_cycles, f.ideal_cycles);
            assert_eq!(f.delivered, f.messages);
            assert_eq!(f.stranded, 0);
            assert!(!f.stalled);
            assert_eq!(f.delivery_rate(), 1.0);
        }
    }

    #[test]
    fn faulted_run_on_connected_survivor_delivers_everything_slower() {
        // Kill one leaf-level link of X(4): the X-tree's sibling links keep
        // the survivor graph connected, so everything still arrives — some
        // of it via detours.
        let x = XTree::new(4);
        let net = Network::new(x.graph().clone()).unwrap();
        let t = generate::left_complete(31);
        let e = heap_order_embedding(&t, 4);
        let n = x.graph().node_count() as u32;
        let plan = FaultPlan::new().link_down(0, (n - 2) / 2, n - 2);
        let reports = simulate_all_faulted(&net, &t, &e, &plan).unwrap();
        for f in &reports {
            assert_eq!(f.delivered, f.messages, "{}", f.workload);
            assert_eq!(f.stranded, 0);
            assert!(!f.stalled);
        }
    }
}

//! Aggregation of batch statistics into experiment-report rows, with a
//! rayon-parallel sweep driver for running many (tree, embedding) pairs.

use crate::engine::{run_rounds, BatchStats};
use crate::network::Network;
use crate::workload;
use rayon::prelude::*;
use xtree_trees::BinaryTree;

/// Cycle summary of one simulated program on one embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Workload name (`broadcast`, `reduce`, `exchange`, `dnc`).
    pub workload: &'static str,
    /// Total cycles across all rounds.
    pub cycles: u32,
    /// Total cycles if every round finished in its longest-route time
    /// (zero congestion): the dilation-only lower bound.
    pub ideal_cycles: u32,
    /// Worst per-round slowdown `cycles / ideal` observed.
    pub worst_round_slowdown: f64,
    /// Maximum traffic over a single directed link in any round.
    pub max_link_traffic: u32,
}

fn summarise(workload: &'static str, stats: &[BatchStats]) -> SimReport {
    let cycles = stats.iter().map(|s| s.cycles).sum();
    let ideal_cycles = stats.iter().map(|s| s.ideal_cycles).sum();
    let worst_round_slowdown = stats
        .iter()
        .filter(|s| s.ideal_cycles > 0)
        .map(|s| s.cycles as f64 / s.ideal_cycles as f64)
        .fold(1.0f64, f64::max);
    SimReport {
        workload,
        cycles,
        ideal_cycles,
        worst_round_slowdown,
        max_link_traffic: stats.iter().map(|s| s.max_link_traffic).max().unwrap_or(0),
    }
}

/// Edge congestion of an embedding on an arbitrary host: route every guest
/// edge along the network's deterministic shortest path and count crossings
/// per directed link, returning the maximum. Works for any [`Network`]
/// (X-tree, hypercube, mesh, …), complementing the X-tree-specific
/// `xtree_core::metrics::edge_congestion`.
pub fn congestion<M: workload::HostMap>(net: &Network, tree: &BinaryTree, emb: &M) -> u32 {
    // Flat per-directed-link counters: links are dense indices (see
    // `Csr::directed_edge_index`), so no hashing in the walk.
    let mut usage = vec![0u32; net.graph().directed_edge_count()];
    for (u, v) in tree.edges() {
        let (mut at, dst) = (emb.host_of(u), emb.host_of(v));
        while at != dst {
            let next = net.next_hop(at, dst);
            let e = net
                .graph()
                .directed_edge_index(at, next)
                .expect("router returned a non-neighbour");
            usage[e as usize] += 1;
            at = next;
        }
    }
    usage.into_iter().max().unwrap_or(0)
}

/// Maximum number of guest nodes mapped to one host processor — the
/// paper's *load factor*, "the computation work which has to be done by a
/// single processor of the X-tree network".
pub fn compute_load<M: workload::HostMap>(net: &Network, tree: &BinaryTree, emb: &M) -> u32 {
    let mut load = vec![0u32; net.len()];
    for v in tree.nodes() {
        load[emb.host_of(v) as usize] += 1;
    }
    load.into_iter().max().unwrap_or(0)
}

/// One full *simulation step* of the guest machine: every guest node does
/// one unit of work (the busiest processor serialises its `load` nodes)
/// and every guest edge carries one message in each direction. Real-time
/// simulation with constant slowdown — the paper's headline property —
/// means this number is bounded by a constant independent of `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepReport {
    /// Serialised computation: the load factor.
    pub compute_cycles: u32,
    /// Communication: cycles for the full neighbour exchange.
    pub exchange_cycles: u32,
}

impl StepReport {
    /// Total cycles to simulate one synchronous guest step.
    pub fn total(&self) -> u32 {
        self.compute_cycles + self.exchange_cycles
    }
}

/// Measures one guest step on `net`.
pub fn simulate_step<M: workload::HostMap>(
    net: &Network,
    tree: &BinaryTree,
    emb: &M,
) -> StepReport {
    let batch = crate::engine::run_batch(net, &workload::exchange_round(tree, emb));
    StepReport {
        compute_cycles: compute_load(net, tree, emb),
        exchange_cycles: batch.cycles,
    }
}

/// Runs the three canonical tree workloads of one embedding.
pub fn simulate_all<M: workload::HostMap + Sync>(
    net: &Network,
    tree: &BinaryTree,
    emb: &M,
) -> Vec<SimReport> {
    vec![
        summarise(
            "broadcast",
            &run_rounds(net, &workload::broadcast_rounds(tree, emb)),
        ),
        summarise(
            "reduce",
            &run_rounds(net, &workload::reduce_rounds(tree, emb)),
        ),
        summarise(
            "exchange",
            &run_rounds(net, &[workload::exchange_round(tree, emb)]),
        ),
        summarise(
            "dnc",
            &run_rounds(net, &workload::divide_and_conquer_rounds(tree, emb)),
        ),
    ]
}

/// Rayon-parallel sweep: simulates many (tree, embedding) pairs on one
/// shared host network. The network's routing tables are read-only, so the
/// sweep parallelises embarrassingly.
pub fn sweep<M: workload::HostMap + Sync>(
    net: &Network,
    cases: &[(BinaryTree, M)],
) -> Vec<Vec<SimReport>> {
    cases
        .par_iter()
        .map(|(tree, emb)| simulate_all(net, tree, emb))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_core::metrics::heap_order_embedding;
    use xtree_topology::XTree;
    use xtree_trees::generate;

    #[test]
    fn complete_tree_broadcast_is_congestion_light() {
        // Heap-order embedding of the complete tree: every message is one
        // hop on its own link, so cycles == rounds == ideal.
        let x = XTree::new(4);
        let net = Network::new(x.graph().clone());
        let t = generate::left_complete(31);
        let e = heap_order_embedding(&t, 4);
        let reports = simulate_all(&net, &t, &e);
        let bc = &reports[0];
        assert_eq!(bc.workload, "broadcast");
        assert_eq!(bc.cycles, bc.ideal_cycles);
        assert_eq!(bc.max_link_traffic, 1);
    }

    #[test]
    fn congestion_on_identity_is_one() {
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone());
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        assert_eq!(congestion(&net, &t, &e), 1);
    }

    #[test]
    fn congestion_detects_hot_links() {
        // A path guest embedded in heap order funnels many edges through
        // the upper links.
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone());
        let t = generate::path(15);
        let e = heap_order_embedding(&t, 3);
        assert!(congestion(&net, &t, &e) >= 2);
    }

    #[test]
    fn compute_load_matches_embedding_load() {
        let x = XTree::new(2);
        let net = Network::new(x.graph().clone());
        let t = generate::path(7);
        let e = heap_order_embedding(&t, 2);
        assert_eq!(compute_load(&net, &t, &e), 1);
    }

    #[test]
    fn step_report_totals() {
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone());
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let step = simulate_step(&net, &t, &e);
        assert_eq!(step.compute_cycles, 1);
        assert!(step.exchange_cycles >= 1);
        assert_eq!(step.total(), step.compute_cycles + step.exchange_cycles);
    }

    #[test]
    fn sweep_matches_sequential() {
        let x = XTree::new(3);
        let net = Network::new(x.graph().clone());
        let cases: Vec<_> = (0..4)
            .map(|i| {
                let t = generate::caterpillar(10 + i);
                let e = heap_order_embedding(&t, 3);
                (t, e)
            })
            .collect();
        let par = sweep(&net, &cases);
        for (i, (t, e)) in cases.iter().enumerate() {
            assert_eq!(par[i], simulate_all(&net, t, e));
        }
    }
}

//! Resumable experiment sessions: the canonical four-workload run as an
//! explicit state machine.
//!
//! `stats::simulate_all_faulted_with` runs broadcast / reduce / exchange /
//! divide-and-conquer to completion in one call. A [`Session`] is the same
//! experiment unrolled into *rounds you can stop between*: it owns the
//! engine, the embedding (recovery repairs mutate it), the per-workload
//! [`FaultState`], and the partially-built reports, and it can
//! [`snapshot`](Session::snapshot) all of that into a compact byte blob at
//! any round boundary. [`Session::resume`] rebuilds the exact state, and
//! because every moving part is deterministic — engine, fault replay,
//! repair BFS, backoff clocks — a resumed run emits the *byte-identical*
//! telemetry trace the uninterrupted run would have (the checkpoint tests
//! diff the bytes).
//!
//! Rounds are regenerated from the **current** embedding just before they
//! run, so when a recovery pass migrates guests, every later round's
//! traffic automatically follows them — and a snapshot only ever needs the
//! current embedding, never the message backlog.
//!
//! Without a [`RecoveryPolicy`] the session drives the engine exactly like
//! `simulate_all_faulted_with` (same calls, same event stream, same
//! reports) — supervision is strictly opt-in.

use crate::engine::{BatchOutcome, Engine};
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultState};
use crate::network::Network;
use crate::recovery::{recover_batch_with, RecoveryEnd, RecoveryPolicy, RepairableHost};
use crate::stats::FaultSimReport;
use crate::workload::{rounds_for, WORKLOADS};
use xtree_core::XEmbedding;
use xtree_telemetry::varint::{decode_u64, encode_u64};
use xtree_telemetry::Sink;
use xtree_trees::BinaryTree;

/// Cross-round recovery totals of one session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryTotals {
    /// Supervisor retries across all rounds.
    pub retries: u64,
    /// Messages re-dispatched across all retries.
    pub requeued: u64,
    /// Guests migrated off dead vertices.
    pub migrated: u64,
    /// Messages proven permanently unreachable.
    pub stranded: u64,
}

/// Whether a bounded run finished the experiment or paused mid-way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    /// All four workloads are done; reports are complete.
    Complete,
    /// The round budget ran out first; snapshot and resume later.
    Paused,
}

/// A resumable run of the four canonical workloads under one fault plan.
pub struct Session<'a, M: RepairableHost> {
    net: &'a Network,
    tree: &'a BinaryTree,
    emb: M,
    plan: FaultPlan,
    policy: Option<RecoveryPolicy>,
    engine: Engine,
    faults: Option<FaultState>,
    workload_idx: usize,
    round_idx: usize,
    completed: Vec<FaultSimReport>,
    partial: FaultSimReport,
    totals: RecoveryTotals,
}

fn empty_report(idx: usize) -> FaultSimReport {
    FaultSimReport {
        workload: WORKLOADS[idx.min(WORKLOADS.len() - 1)],
        cycles: 0,
        ideal_cycles: 0,
        messages: 0,
        delivered: 0,
        stranded: 0,
        stalled: false,
    }
}

impl<'a, M: RepairableHost> Session<'a, M> {
    /// A fresh session at workload 0, round 0. The embedding is owned
    /// because recovery repairs mutate it; take it back with
    /// [`Session::into_embedding`] or inspect it via
    /// [`Session::embedding`].
    pub fn new(
        net: &'a Network,
        tree: &'a BinaryTree,
        emb: M,
        plan: FaultPlan,
        policy: Option<RecoveryPolicy>,
    ) -> Self {
        Session {
            net,
            tree,
            emb,
            plan,
            policy,
            engine: Engine::new(),
            faults: None,
            workload_idx: 0,
            round_idx: 0,
            completed: Vec::new(),
            partial: empty_report(0),
            totals: RecoveryTotals::default(),
        }
    }

    /// The embedding as it currently stands (repairs included).
    pub fn embedding(&self) -> &M {
        &self.emb
    }

    /// Consumes the session, returning the (possibly repaired) embedding.
    pub fn into_embedding(self) -> M {
        self.emb
    }

    /// Recovery totals so far.
    pub fn totals(&self) -> RecoveryTotals {
        self.totals
    }

    /// Reports of fully-finished workloads.
    pub fn reports(&self) -> &[FaultSimReport] {
        &self.completed
    }

    /// True when all four workloads are done.
    pub fn is_complete(&self) -> bool {
        self.workload_idx >= WORKLOADS.len()
    }

    /// Runs up to `budget` engine rounds (workload bookkeeping is free),
    /// reporting every event to `sink`.
    ///
    /// # Errors
    /// The engine errors of [`Engine::run_batch_faulted`].
    pub fn run_with<S: Sink>(
        &mut self,
        budget: usize,
        sink: &mut S,
    ) -> Result<SessionStatus, SimError> {
        let mut done = 0usize;
        while self.workload_idx < WORKLOADS.len() {
            let mut rounds = rounds_for(self.tree, &self.emb, self.workload_idx);
            if self.partial.stalled || self.round_idx >= rounds.len() {
                // Workload finished (or cut short): bank its report.
                let next = self.workload_idx + 1;
                self.completed
                    .push(std::mem::replace(&mut self.partial, empty_report(next)));
                self.workload_idx = next;
                self.round_idx = 0;
                self.faults = None;
                continue;
            }
            if done >= budget {
                return Ok(SessionStatus::Paused);
            }
            let batch = std::mem::take(&mut rounds[self.round_idx]);
            drop(rounds);
            if self.faults.is_none() {
                // Each workload replays the damage schedule from cycle 0,
                // matching `simulate_all_faulted_with`.
                self.faults = Some(FaultState::new(self.net.graph(), self.plan.clone())?);
            }
            let faults = self.faults.as_mut().expect("initialised above");
            match &self.policy {
                None => {
                    let out = self
                        .engine
                        .run_batch_faulted_with(self.net, &batch, faults, sink)?;
                    let s = out.stats();
                    self.partial.cycles += s.cycles;
                    self.partial.ideal_cycles += s.ideal_cycles;
                    self.partial.messages += s.messages;
                    self.partial.delivered += s.messages - out.undelivered().len();
                    self.partial.stranded += out.stranded().len();
                    if let BatchOutcome::Stalled { .. } = out {
                        self.partial.stalled = true;
                    }
                }
                Some(policy) => {
                    let out = recover_batch_with(
                        &mut self.engine,
                        self.net,
                        self.tree,
                        &mut self.emb,
                        &batch,
                        faults,
                        policy,
                        sink,
                    )?;
                    let undelivered = match &out.end {
                        RecoveryEnd::Delivered => 0,
                        RecoveryEnd::Unreachable { stranded } => stranded.len(),
                        RecoveryEnd::Exhausted {
                            undelivered,
                            stranded,
                        } => undelivered.len() + stranded.len(),
                    };
                    self.partial.cycles += out.stats.cycles;
                    self.partial.ideal_cycles += out.stats.ideal_cycles;
                    self.partial.messages += out.stats.messages;
                    self.partial.delivered += out.stats.messages - undelivered;
                    self.partial.stranded += out.stranded().len();
                    if matches!(out.end, RecoveryEnd::Exhausted { .. }) {
                        // Budget exhaustion is the supervised analogue of a
                        // stall: cut the workload short rather than feed
                        // more rounds into a wedged network.
                        self.partial.stalled = true;
                    }
                    self.totals.retries += u64::from(out.retries());
                    self.totals.requeued += out.requeued() as u64;
                    self.totals.stranded += out.stranded().len() as u64;
                    if let Some(r) = &out.repair {
                        self.totals.migrated += r.migrated as u64;
                    }
                }
            }
            self.round_idx += 1;
            done += 1;
        }
        Ok(SessionStatus::Complete)
    }

    /// Runs the whole experiment, returning the four workload reports.
    ///
    /// # Errors
    /// See [`Session::run_with`].
    pub fn run_to_completion_with<S: Sink>(
        mut self,
        sink: &mut S,
    ) -> Result<(Vec<FaultSimReport>, RecoveryTotals, M), SimError> {
        let status = self.run_with(usize::MAX, sink)?;
        debug_assert_eq!(status, SessionStatus::Complete);
        Ok((self.completed, self.totals, self.emb))
    }
}

/// A serialised session: everything [`Session::resume`] needs except the
/// pieces that are cheap or impossible to serialise (network, guest tree,
/// embedding, policy — the caller re-supplies those; the checkpoint
/// container stores the embedding alongside).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionSnapshot {
    data: Vec<u8>,
}

impl SessionSnapshot {
    /// The raw snapshot bytes (LEB128 words; see `Session::snapshot`).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Wraps raw bytes read from a checkpoint. Validation happens in
    /// [`Session::resume`].
    pub fn from_bytes(data: Vec<u8>) -> Self {
        SessionSnapshot { data }
    }
}

fn snap_word(bytes: &[u8], pos: &mut usize) -> Result<u64, SimError> {
    decode_u64(bytes, pos).ok_or_else(|| SimError::BadCheckpoint {
        reason: "session snapshot truncated".into(),
    })
}

fn encode_report(buf: &mut Vec<u8>, r: &FaultSimReport) {
    let idx = WORKLOADS
        .iter()
        .position(|&w| w == r.workload)
        .expect("reports only name canonical workloads");
    encode_u64(buf, idx as u64);
    encode_u64(buf, u64::from(r.cycles));
    encode_u64(buf, u64::from(r.ideal_cycles));
    encode_u64(buf, r.messages as u64);
    encode_u64(buf, r.delivered as u64);
    encode_u64(buf, r.stranded as u64);
    encode_u64(buf, u64::from(r.stalled));
}

fn decode_report(bytes: &[u8], pos: &mut usize) -> Result<FaultSimReport, SimError> {
    let idx = snap_word(bytes, pos)? as usize;
    if idx >= WORKLOADS.len() {
        return Err(SimError::BadCheckpoint {
            reason: format!("workload index {idx} out of range"),
        });
    }
    Ok(FaultSimReport {
        workload: WORKLOADS[idx],
        cycles: snap_word(bytes, pos)? as u32,
        ideal_cycles: snap_word(bytes, pos)? as u32,
        messages: snap_word(bytes, pos)? as usize,
        delivered: snap_word(bytes, pos)? as usize,
        stranded: snap_word(bytes, pos)? as usize,
        stalled: snap_word(bytes, pos)? != 0,
    })
}

impl<'a> Session<'a, XEmbedding> {
    /// Serialises the session at a round boundary: cursor, engine clock,
    /// the in-progress fault state, the plan, banked and partial reports,
    /// and the recovery totals. The embedding itself is *not* inside —
    /// the checkpoint container carries it next to this blob.
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut buf = Vec::new();
        encode_u64(&mut buf, self.engine.clock());
        encode_u64(&mut buf, self.workload_idx as u64);
        encode_u64(&mut buf, self.round_idx as u64);
        match &self.faults {
            None => encode_u64(&mut buf, 0),
            Some(f) => {
                encode_u64(&mut buf, 1);
                f.encode(&mut buf);
            }
        }
        self.plan.encode(&mut buf);
        encode_u64(&mut buf, self.completed.len() as u64);
        for r in &self.completed {
            encode_report(&mut buf, r);
        }
        encode_report(&mut buf, &self.partial);
        encode_u64(&mut buf, self.totals.retries);
        encode_u64(&mut buf, self.totals.requeued);
        encode_u64(&mut buf, self.totals.migrated);
        encode_u64(&mut buf, self.totals.stranded);
        SessionSnapshot { data: buf }
    }

    /// Rebuilds a session from a snapshot, the re-supplied surroundings,
    /// and the embedding stored beside it in the checkpoint. The restored
    /// session continues exactly where the snapshot was taken.
    ///
    /// # Errors
    /// [`SimError::BadCheckpoint`] on truncated or corrupt bytes;
    /// [`SimError::InvalidFault`] when the embedded plan does not fit
    /// `net`.
    pub fn resume(
        net: &'a Network,
        tree: &'a BinaryTree,
        emb: XEmbedding,
        policy: Option<RecoveryPolicy>,
        snap: &SessionSnapshot,
    ) -> Result<Self, SimError> {
        let bytes = &snap.data;
        let mut pos = 0usize;
        let engine_clock = snap_word(bytes, &mut pos)?;
        let workload_idx = snap_word(bytes, &mut pos)? as usize;
        let round_idx = snap_word(bytes, &mut pos)? as usize;
        let faults = match snap_word(bytes, &mut pos)? {
            0 => None,
            _ => Some(FaultState::decode(net.graph(), bytes, &mut pos)?),
        };
        let plan = FaultPlan::decode(bytes, &mut pos)?;
        // Validate the plan against this host even when no fault state was
        // in flight (later workloads will bind it).
        FaultState::new(net.graph(), plan.clone())?;
        let n_completed = snap_word(bytes, &mut pos)? as usize;
        if n_completed > WORKLOADS.len() {
            return Err(SimError::BadCheckpoint {
                reason: format!("{n_completed} completed workloads in a 4-workload run"),
            });
        }
        let mut completed = Vec::with_capacity(n_completed);
        for _ in 0..n_completed {
            completed.push(decode_report(bytes, &mut pos)?);
        }
        let partial = decode_report(bytes, &mut pos)?;
        let totals = RecoveryTotals {
            retries: snap_word(bytes, &mut pos)?,
            requeued: snap_word(bytes, &mut pos)?,
            migrated: snap_word(bytes, &mut pos)?,
            stranded: snap_word(bytes, &mut pos)?,
        };
        if pos != bytes.len() {
            return Err(SimError::BadCheckpoint {
                reason: format!(
                    "{} trailing bytes after the session snapshot",
                    bytes.len() - pos
                ),
            });
        }
        let mut engine = Engine::new();
        engine.restore_clock(engine_clock);
        Ok(Session {
            net,
            tree,
            emb,
            plan,
            policy,
            engine,
            faults,
            workload_idx,
            round_idx,
            completed,
            partial,
            totals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::simulate_all_faulted_with;
    use xtree_core::metrics::heap_order_embedding;
    use xtree_telemetry::{NopSink, TraceRecorder};
    use xtree_topology::{Graph, XTree};
    use xtree_trees::generate;

    fn setup(height: u8) -> (Network, BinaryTree, XEmbedding) {
        let x = XTree::new(height);
        let net = Network::xtree(&x);
        let tree = generate::left_complete(x.node_count());
        let emb = heap_order_embedding(&tree, height);
        (net, tree, emb)
    }

    #[test]
    fn unsupervised_session_matches_simulate_all_faulted() {
        let (net, tree, emb) = setup(4);
        let n = net.graph().node_count() as u32;
        let plan =
            FaultPlan::new()
                .link_down(0, (n - 2) / 2, n - 2)
                .link_up(40, (n - 2) / 2, n - 2);

        let mut direct_trace = TraceRecorder::new();
        let direct =
            simulate_all_faulted_with(&net, &tree, &emb, &plan, &mut direct_trace).unwrap();

        let mut session_trace = TraceRecorder::new();
        let session = Session::new(&net, &tree, emb, plan, None);
        let (reports, totals, _) = session.run_to_completion_with(&mut session_trace).unwrap();

        assert_eq!(reports, direct);
        assert_eq!(totals, RecoveryTotals::default());
        assert_eq!(
            session_trace.bytes(),
            direct_trace.bytes(),
            "a policy-free session must be event-for-event the plain run"
        );
    }

    #[test]
    fn session_pauses_on_budget_and_counts_rounds() {
        let (net, tree, emb) = setup(3);
        let mut s = Session::new(&net, &tree, emb, FaultPlan::new(), None);
        assert_eq!(s.run_with(2, &mut NopSink).unwrap(), SessionStatus::Paused);
        assert!(!s.is_complete());
        assert_eq!(
            s.run_with(usize::MAX, &mut NopSink).unwrap(),
            SessionStatus::Complete
        );
        assert!(s.is_complete());
        assert_eq!(s.reports().len(), 4);
        // Running a complete session is a no-op.
        assert_eq!(
            s.run_with(5, &mut NopSink).unwrap(),
            SessionStatus::Complete
        );
    }

    #[test]
    fn snapshot_resume_continues_identically_at_every_boundary() {
        // Oracle: an uninterrupted supervised session. Candidate: pause
        // after k rounds, snapshot, resume, finish. Reports, totals, and
        // repaired embeddings must agree for every k.
        let (net, tree, emb) = setup(3);
        let victim = emb.host_len() as u32 - 1;
        let plan = FaultPlan::new().node_down(1, victim);
        let policy = Some(RecoveryPolicy::default());

        let oracle = Session::new(&net, &tree, emb.clone(), plan.clone(), policy.clone());
        let (want_reports, want_totals, want_emb) =
            oracle.run_to_completion_with(&mut NopSink).unwrap();

        for k in 0..40 {
            let mut first = Session::new(&net, &tree, emb.clone(), plan.clone(), policy.clone());
            let status = first.run_with(k, &mut NopSink).unwrap();
            let snap = first.snapshot();
            let carried = first.into_embedding();
            let resumed = Session::resume(&net, &tree, carried, policy.clone(), &snap).unwrap();
            let (reports, totals, emb_after) =
                resumed.run_to_completion_with(&mut NopSink).unwrap();
            assert_eq!(reports, want_reports, "cut at {k}");
            assert_eq!(totals, want_totals, "cut at {k}");
            assert_eq!(emb_after.map, want_emb.map, "cut at {k}");
            if status == SessionStatus::Complete {
                break;
            }
        }
    }

    #[test]
    fn resume_rejects_corrupt_snapshots() {
        let (net, tree, emb) = setup(2);
        let mut s = Session::new(&net, &tree, emb.clone(), FaultPlan::new(), None);
        s.run_with(1, &mut NopSink).unwrap();
        let snap = s.snapshot();
        // Truncations error out; they never panic.
        for cut in 0..snap.bytes().len() {
            let broken = SessionSnapshot::from_bytes(snap.bytes()[..cut].to_vec());
            assert!(
                Session::resume(&net, &tree, emb.clone(), None, &broken).is_err(),
                "cut at {cut}"
            );
        }
        // Trailing garbage is rejected too.
        let mut long = snap.bytes().to_vec();
        long.push(0);
        assert!(matches!(
            Session::resume(&net, &tree, emb, None, &SessionSnapshot::from_bytes(long)),
            Err(SimError::BadCheckpoint { .. })
        ));
    }
}

//! The `XCKPT1` checkpoint container: a versioned binary file holding
//! everything needed to continue an interrupted experiment.
//!
//! Layout (all integers LEB128 via `xtree_telemetry::varint`, like the
//! trace format):
//!
//! ```text
//! "XCKPT1\n"                         magic + version
//! session blob    (len, bytes)       SessionSnapshot — cursor, engine
//!                                    clock, fault state, plan, reports
//! embedding       (height, n, ids)   the current XEmbedding, heap ids
//! config blob     (len, utf-8)       caller-defined (the CLI stores the
//!                                    flags needed to rebuild tree + host)
//! trace blob      (len, bytes)       the XTRACE1 telemetry stream so far
//! ```
//!
//! The trace bytes ride inside the checkpoint so a resumed run can append
//! to the *same* stream via `TraceRecorder::resume` — the property the
//! byte-identity tests pin down: run-to-completion and
//! run/checkpoint/resume produce identical trace files.

use crate::error::SimError;
use crate::session::SessionSnapshot;
use xtree_core::XEmbedding;
use xtree_telemetry::varint::{decode_u64, encode_u64};
use xtree_topology::Address;

/// File magic; the trailing digit is the format version.
pub const MAGIC: &[u8; 7] = b"XCKPT1\n";

/// A parsed checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// The serialised session (see [`SessionSnapshot`]).
    pub session: SessionSnapshot,
    /// The embedding at checkpoint time (repairs included).
    pub embedding: XEmbedding,
    /// Opaque caller payload; the CLI stores the run configuration here.
    pub config: String,
    /// The telemetry trace recorded up to the checkpoint.
    pub trace: Vec<u8>,
}

fn bad(reason: impl Into<String>) -> SimError {
    SimError::BadCheckpoint {
        reason: reason.into(),
    }
}

fn word(bytes: &[u8], pos: &mut usize) -> Result<u64, SimError> {
    decode_u64(bytes, pos).ok_or_else(|| bad("truncated"))
}

fn take<'b>(bytes: &'b [u8], pos: &mut usize, len: usize) -> Result<&'b [u8], SimError> {
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| bad(format!("blob of {len} bytes overruns the file")))?;
    let out = &bytes[*pos..end];
    *pos = end;
    Ok(out)
}

/// Serialises a checkpoint to its on-disk bytes.
pub fn encode_checkpoint(c: &Checkpoint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        MAGIC.len() + c.session.bytes().len() + c.embedding.map.len() * 2 + c.trace.len() + 64,
    );
    buf.extend_from_slice(MAGIC);
    encode_u64(&mut buf, c.session.bytes().len() as u64);
    buf.extend_from_slice(c.session.bytes());
    encode_u64(&mut buf, u64::from(c.embedding.height));
    encode_u64(&mut buf, c.embedding.map.len() as u64);
    for a in &c.embedding.map {
        encode_u64(&mut buf, a.heap_id() as u64);
    }
    encode_u64(&mut buf, c.config.len() as u64);
    buf.extend_from_slice(c.config.as_bytes());
    encode_u64(&mut buf, c.trace.len() as u64);
    buf.extend_from_slice(&c.trace);
    buf
}

/// Parses checkpoint bytes, validating framing and the embedding's shape
/// (full session validation happens in `Session::resume`).
///
/// # Errors
/// [`SimError::BadCheckpoint`] on a wrong magic, truncation, trailing
/// bytes, an out-of-host heap id, or non-UTF-8 config.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, SimError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(bad("missing XCKPT1 magic (not a checkpoint file?)"));
    }
    let mut pos = MAGIC.len();
    let session_len = word(bytes, &mut pos)? as usize;
    let session = SessionSnapshot::from_bytes(take(bytes, &mut pos, session_len)?.to_vec());
    let height = word(bytes, &mut pos)?;
    let height = u8::try_from(height)
        .ok()
        .filter(|&h| h <= 60)
        .ok_or_else(|| bad(format!("implausible X-tree height {height}")))?;
    let host_len = (1usize << (height + 1)) - 1;
    let n = word(bytes, &mut pos)? as usize;
    let mut map = Vec::new();
    for i in 0..n {
        let id = word(bytes, &mut pos)? as usize;
        if id >= host_len {
            return Err(bad(format!(
                "guest {i} mapped to heap id {id}, outside X({height})"
            )));
        }
        map.push(Address::from_heap_id(id));
    }
    let embedding = XEmbedding { height, map };
    let config_len = word(bytes, &mut pos)? as usize;
    let config = std::str::from_utf8(take(bytes, &mut pos, config_len)?)
        .map_err(|_| bad("config blob is not UTF-8"))?
        .to_owned();
    let trace_len = word(bytes, &mut pos)? as usize;
    let trace = take(bytes, &mut pos, trace_len)?.to_vec();
    if pos != bytes.len() {
        return Err(bad(format!("{} trailing bytes", bytes.len() - pos)));
    }
    Ok(Checkpoint {
        session,
        embedding,
        config,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            session: SessionSnapshot::from_bytes(vec![1, 2, 3, 42]),
            embedding: XEmbedding {
                height: 2,
                map: (0..7usize).map(Address::from_heap_id).collect(),
            },
            config: r#"{"tree":"complete","nodes":7}"#.into(),
            trace: b"XTRACE1\n-pretend-trace".to_vec(),
        }
    }

    #[test]
    fn round_trips_exactly() {
        let c = sample();
        let bytes = encode_checkpoint(&c);
        assert_eq!(&bytes[..7], MAGIC);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_wrong_magic_truncation_and_trailing_bytes() {
        assert!(decode_checkpoint(b"not a checkpoint").is_err());
        assert!(decode_checkpoint(b"XCKP").is_err());
        let bytes = encode_checkpoint(&sample());
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    decode_checkpoint(&bytes[..cut]),
                    Err(SimError::BadCheckpoint { .. })
                ),
                "cut at {cut}"
            );
        }
        let mut long = bytes.clone();
        long.push(7);
        assert!(decode_checkpoint(&long).is_err());
    }

    #[test]
    fn rejects_out_of_host_images() {
        let mut c = sample();
        c.embedding.map[3] = Address::from_heap_id(7); // X(2) has ids 0..7
        let bytes = encode_checkpoint(&c);
        let err = decode_checkpoint(&bytes).unwrap_err();
        assert!(err.to_string().contains("outside X(2)"), "{err}");
    }
}

//! Guest workloads: communication patterns of tree-structured programs.
//!
//! The paper motivates binary trees as "the type of program structure
//! found in common divide-and-conquer algorithms". These generators turn a
//! guest tree plus an embedding into the message rounds such programs
//! produce on the host:
//!
//! * [`broadcast_rounds`] — root-to-leaves, one round per tree level
//!   (problem distribution);
//! * [`reduce_rounds`] — leaves-to-root (result combination);
//! * [`exchange_round`] — every tree edge in both directions at once
//!   (one synchronous step of a tree-connected computation);
//! * [`divide_and_conquer_rounds`] — a broadcast followed by a reduce.

use crate::engine::Message;
use xtree_core::{QEmbedding, XEmbedding};
use xtree_trees::{BinaryTree, NodeId};

/// Maps each guest node to its host-vertex id under an embedding.
pub trait HostMap {
    /// Host-vertex id of guest node `v`.
    fn host_of(&self, v: NodeId) -> u32;
}

impl HostMap for XEmbedding {
    fn host_of(&self, v: NodeId) -> u32 {
        self.image(v).heap_id() as u32
    }
}

impl HostMap for QEmbedding {
    fn host_of(&self, v: NodeId) -> u32 {
        self.image(v) as u32
    }
}

/// A flat per-node host-vertex map — the uniform guest map the host
/// subsystem produces for every backend (`xtree_host::guest_map`).
impl HostMap for Vec<u32> {
    fn host_of(&self, v: NodeId) -> u32 {
        self[v.index()]
    }
}

fn depths(tree: &BinaryTree) -> (Vec<u32>, u32) {
    let mut depth = vec![0u32; tree.len()];
    let mut max = 0;
    for v in tree.preorder() {
        if let Some(p) = tree.parent(v) {
            depth[v.index()] = depth[p.index()] + 1;
            max = max.max(depth[v.index()]);
        }
    }
    (depth, max)
}

/// One round per guest level: parents send to their children.
pub fn broadcast_rounds<M: HostMap>(tree: &BinaryTree, emb: &M) -> Vec<Vec<Message>> {
    let (depth, max) = depths(tree);
    let mut rounds = vec![Vec::new(); max as usize];
    for (p, c) in tree.edges() {
        rounds[depth[c.index()] as usize - 1].push(Message {
            src: emb.host_of(p),
            dst: emb.host_of(c),
        });
    }
    rounds
}

/// One round per guest level, deepest first: children send to parents.
pub fn reduce_rounds<M: HostMap>(tree: &BinaryTree, emb: &M) -> Vec<Vec<Message>> {
    let mut rounds = broadcast_rounds(tree, emb);
    for round in rounds.iter_mut() {
        for m in round.iter_mut() {
            std::mem::swap(&mut m.src, &mut m.dst);
        }
    }
    rounds.reverse();
    rounds
}

/// A single synchronous step: every tree edge carries a message both ways.
pub fn exchange_round<M: HostMap>(tree: &BinaryTree, emb: &M) -> Vec<Message> {
    let mut out = Vec::with_capacity(2 * (tree.len() - 1));
    for (p, c) in tree.edges() {
        let (a, b) = (emb.host_of(p), emb.host_of(c));
        out.push(Message { src: a, dst: b });
        out.push(Message { src: b, dst: a });
    }
    out
}

/// A full divide-and-conquer sweep: broadcast down, then reduce up.
pub fn divide_and_conquer_rounds<M: HostMap>(tree: &BinaryTree, emb: &M) -> Vec<Vec<Message>> {
    let mut rounds = broadcast_rounds(tree, emb);
    rounds.extend(reduce_rounds(tree, emb));
    rounds
}

/// Canonical workload names, in the fixed order `simulate_all*` and the
/// session driver execute them.
pub const WORKLOADS: [&str; 4] = ["broadcast", "reduce", "exchange", "dnc"];

/// The round sequence of canonical workload `idx` (an index into
/// [`WORKLOADS`]), generated from the *current* embedding — callers that
/// mutate the embedding mid-experiment (recovery repairs) regenerate each
/// round from here so later traffic follows the migrated guests.
pub fn rounds_for<M: HostMap>(tree: &BinaryTree, emb: &M, idx: usize) -> Vec<Vec<Message>> {
    match idx {
        0 => broadcast_rounds(tree, emb),
        1 => reduce_rounds(tree, emb),
        2 => vec![exchange_round(tree, emb)],
        _ => divide_and_conquer_rounds(tree, emb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_core::metrics::heap_order_embedding;
    use xtree_trees::generate;

    #[test]
    fn broadcast_covers_all_edges_once() {
        let t = generate::left_complete(15);
        let e = heap_order_embedding(&t, 3);
        let rounds = broadcast_rounds(&t, &e);
        assert_eq!(rounds.len(), 3);
        assert_eq!(rounds.iter().map(Vec::len).sum::<usize>(), 14);
        assert_eq!(rounds[0].len(), 2);
        assert_eq!(rounds[2].len(), 8);
    }

    #[test]
    fn reduce_is_reversed_broadcast() {
        let t = generate::caterpillar(20);
        let e = heap_order_embedding(&t, 4);
        let b = broadcast_rounds(&t, &e);
        let r = reduce_rounds(&t, &e);
        assert_eq!(b.len(), r.len());
        let last = r.last().unwrap();
        let first_b = &b[0];
        assert_eq!(last.len(), first_b.len());
        for (mb, mr) in first_b.iter().zip(last.iter()) {
            assert_eq!((mb.src, mb.dst), (mr.dst, mr.src));
        }
    }

    #[test]
    fn exchange_has_two_messages_per_edge() {
        let t = generate::path(10);
        let e = heap_order_embedding(&t, 3);
        assert_eq!(exchange_round(&t, &e).len(), 18);
    }

    #[test]
    fn dnc_is_broadcast_plus_reduce() {
        let t = generate::broom(30);
        let e = heap_order_embedding(&t, 4);
        let d = divide_and_conquer_rounds(&t, &e);
        assert_eq!(
            d.len(),
            broadcast_rounds(&t, &e).len() + reduce_rounds(&t, &e).len()
        );
    }
}

//! A small, dependency-free JSON library for this workspace's machine
//! readable outputs (`xtree-cli --json`, `tables --json`, bench result
//! files).
//!
//! [`Value`] is built with explicit constructors ([`Value::object`],
//! [`Value::with`], [`Value::set`], `From`/`FromIterator` impls) rather
//! than a `json!`-style macro, printed with [`to_string_pretty`], and read
//! back with [`from_str`]. Object keys keep insertion order so output is
//! deterministic.

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every count this workspace serialises).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) `key`, builder-style.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        self.set(key, value);
        self
    }

    /// Inserts (or replaces) `key` in an object.
    ///
    /// Panics when `self` is not an object — constructing mixed shapes is
    /// a programming error, not an input error.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        let Value::Object(entries) = self else {
            panic!("Value::set on non-object {self:?}");
        };
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }

    /// Object member by key, or `Null` when absent or not an object.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The integer payload, if any.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                // Unsigned values past i64::MAX degrade to a float (with
                // the usual f64 precision loss) rather than aborting the
                // write mid-run — JSON has no integer width anyway.
                match i64::try_from(n) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Float(n as f64),
                }
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        v.into_iter().collect()
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

macro_rules! impl_eq_scalar {
    ($($t:ty => $variant:ident ($conv:expr)),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(clippy::redundant_closure_call)]
                match self {
                    Value::$variant(v) => *v == ($conv)(*other),
                    _ => false,
                }
            }
        }
    )*};
}

impl_eq_scalar!(
    bool => Bool(|b| b),
    i32 => Int(i64::from),
    i64 => Int(|n| n),
    u32 => Int(i64::from),
    u64 => Int(|n: u64| i64::try_from(n).unwrap_or(-1)),
    usize => Int(|n: usize| i64::try_from(n).unwrap_or(-1))
);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Renders with two-space indentation, keys in insertion order.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out
}

/// Renders compactly on one line.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_compact(v, &mut out);
    out
}

/// Writes `v` pretty-printed with a trailing newline to `path`, creating
/// parent directories first — the one way every bench/results file in this
/// workspace is produced.
///
/// # Errors
/// Propagates directory-creation and write failures.
pub fn write_pretty_file(path: impl AsRef<std::path::Path>, v: &Value) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, format!("{}\n", to_string_pretty(v)))
}

fn write_scalar(v: &Value, out: &mut String) -> bool {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats, so the
                // value re-parses as a float.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(_) | Value::Object(_) => return false,
    }
    true
}

fn write_compact(v: &Value, out: &mut String) {
    if write_scalar(v, out) {
        return;
    }
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
        _ => unreachable!(),
    }
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    if write_scalar(v, out) {
        return;
    }
    let pad = "  ".repeat(depth + 1);
    match v {
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Object(entries) if entries.is_empty() => out.push_str("{}"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_pretty(item, depth + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(depth));
            out.push(']');
        }
        Value::Object(entries) => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, depth + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(depth));
            out.push('}');
        }
        _ => unreachable!(),
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What was wrong there.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                }
                                self.expect(b'u')
                                    .map_err(|_| self.err("lone high surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let tail = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = tail.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_index() {
        let v = Value::object()
            .with(
                "guest",
                Value::object().with("family", "path").with("nodes", 112u64),
            )
            .with("injective", true)
            .with("expansion", 1.25)
            .with("map", (0..3u32).collect::<Value>());
        assert_eq!(v["guest"]["nodes"], 112);
        assert_eq!(v["guest"]["family"], "path");
        assert_eq!(v["injective"], true);
        assert_eq!(v["map"].as_array().unwrap().len(), 3);
        assert_eq!(v["map"][2], 2u64);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn oversized_unsigned_degrades_to_float_instead_of_panicking() {
        assert_eq!(Value::from(i64::MAX as u64), Value::Int(i64::MAX));
        let v = Value::from(u64::MAX);
        assert_eq!(v, Value::Float(u64::MAX as f64));
        // The degraded value still serializes.
        assert!(to_string(&v).parse::<f64>().is_ok());
        assert_eq!(Value::from(usize::MAX), Value::Float(usize::MAX as f64));
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut v = Value::object().with("a", 1);
        v.set("a", 2);
        assert_eq!(v["a"], 2);
        assert_eq!(to_string(&v), r#"{"a":2}"#);
    }

    #[test]
    fn pretty_round_trips() {
        let v = Value::object()
            .with("s", "quote \" backslash \\ newline \n")
            .with("n", -42)
            .with("f", 3.5)
            .with("whole", 2.0)
            .with("list", vec![Value::Null, Value::Bool(false)])
            .with("empty", Value::object());
        let text = to_string_pretty(&v);
        assert_eq!(from_str(&text).unwrap(), v);
        assert!(text.contains("\"whole\": 2.0"));
    }

    #[test]
    fn write_pretty_file_creates_dirs_and_round_trips() {
        let dir = std::env::temp_dir().join(format!("xtree-json-{}", std::process::id()));
        let path = dir.join("nested").join("doc.json");
        let v = Value::object()
            .with("a", 1)
            .with("b", vec![Value::Bool(true)]);
        write_pretty_file(&path, &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        assert_eq!(from_str(&text).unwrap(), v);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_nested_document() {
        let v = from_str(r#"{"a": [1, 2.5, "x", null, true], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2], "x");
        assert_eq!(v["b"]["c"].as_i64(), Some(-3));
    }

    #[test]
    fn parses_escapes() {
        let v = from_str(r#""tab\t quote\" unicodeé pair😀""#).unwrap();
        assert_eq!(v, "tab\t quote\" unicode\u{e9} pair\u{1F600}");
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(Value::Int(7).as_u64(), Some(7));
        assert_eq!(Value::Int(-7).as_u64(), None);
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_u64(), None);
    }
}

//! `faultbench` — graceful-degradation record for the fault-injection
//! subsystem, written to `results/BENCH_faults.json`.
//!
//! For each X-tree host it delivers the same seeded random batches under
//! increasing link-failure rates and reports the slowdown against the
//! fault-free engine, twice per rate:
//!
//! * **repaired** — every failed link comes back a fixed number of cycles
//!   later, so the survivor graph eventually heals and everything is
//!   delivered: the slowdown curve isolates the cost of detours and
//!   repair-waiting;
//! * **cut** — the same failures with no repairs: the delivery rate shows
//!   how much traffic strands permanently as the host partitions.
//!
//! A third sweep measures the **recovery supervisor** under node failures
//! at the same rates: the host's vertices double as guests of a
//! heap-order (identity) embedding, so the random batches gain guest
//! semantics and `recover_batch` can migrate them off dead vertices. The
//! curve reports delivery under the default policy against a no-retry
//! policy, and the extra cycles the retries cost; the no-retry run is
//! asserted cycle-identical to the bare engine — recovery is free when
//! disabled.
//!
//! Run with: `cargo run --release -p xtree-bench --bin faultbench`
//! (`--smoke` sweeps two tiny hosts and skips the results file — the CI
//! guard that the degraded engine terminates with sane numbers.)

use xtree_bench::seeded_batches;
use xtree_core::metrics::heap_order_embedding;
use xtree_core::XEmbedding;
use xtree_json::Value;
use xtree_sim::{
    recover_batch, Engine, FaultPlan, FaultState, Message, Network, RecoveryEnd, RecoveryPolicy,
};
use xtree_topology::{Graph, XTree};
use xtree_trees::{generate, BinaryTree};

/// Failure cycles are drawn from this window, so damage lands while the
/// batches are in flight.
const FAULT_WINDOW: u32 = 32;
/// Cycles from a link's failure to its repair in the repaired sweep.
const REPAIR_AFTER: u32 = 16;

struct Degraded {
    cycles: u64,
    messages: usize,
    delivered: usize,
}

/// Runs every batch from a fresh [`FaultState`], so each one replays the
/// damage schedule from cycle 0.
fn run_degraded(
    engine: &mut Engine,
    net: &Network,
    rounds: &[Vec<Message>],
    plan: &FaultPlan,
) -> Degraded {
    let mut d = Degraded {
        cycles: 0,
        messages: 0,
        delivered: 0,
    };
    for batch in rounds {
        let mut faults = FaultState::new(net.graph(), plan.clone()).expect("plan fits its host");
        let out = engine
            .run_batch_faulted(net, batch, &mut faults)
            .expect("faulted batch");
        assert!(
            !out.is_stalled(),
            "horizon {FAULT_WINDOW}+{REPAIR_AFTER} is far inside the idle-wait budget"
        );
        d.cycles += u64::from(out.stats().cycles);
        d.messages += out.stats().messages;
        d.delivered += out.stats().messages - out.undelivered().len();
    }
    d
}

struct Recovered {
    cycles: u64,
    messages: usize,
    delivered: usize,
    retries: u64,
    requeued: u64,
    migrated: u64,
}

/// Runs every batch under the recovery supervisor, each from a fresh
/// [`FaultState`] and a fresh copy of the pristine embedding — the same
/// replay semantics as [`run_degraded`], plus migrations and retries.
#[allow(clippy::too_many_arguments)]
fn run_recovered(
    engine: &mut Engine,
    net: &Network,
    tree: &BinaryTree,
    emb0: &XEmbedding,
    rounds: &[Vec<Message>],
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Recovered {
    let mut d = Recovered {
        cycles: 0,
        messages: 0,
        delivered: 0,
        retries: 0,
        requeued: 0,
        migrated: 0,
    };
    for batch in rounds {
        let mut faults = FaultState::new(net.graph(), plan.clone()).expect("plan fits its host");
        let mut emb = emb0.clone();
        let out = recover_batch(engine, net, tree, &mut emb, batch, &mut faults, policy)
            .expect("supervised batch");
        let lost = match &out.end {
            RecoveryEnd::Delivered => 0,
            RecoveryEnd::Unreachable { stranded } => stranded.len(),
            RecoveryEnd::Exhausted {
                undelivered,
                stranded,
            } => undelivered.len() + stranded.len(),
        };
        d.cycles += u64::from(out.stats.cycles);
        d.messages += out.stats.messages;
        d.delivered += out.stats.messages - lost;
        d.retries += u64::from(out.retries());
        d.requeued += out.requeued() as u64;
        d.migrated += out.repair.as_ref().map_or(0, |r| r.migrated as u64);
    }
    d
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base_seed = xtree_bench::seed_from_args(0x5EED_FA17);
    let heights: &[u8] = if smoke { &[5, 6] } else { &[8, 9, 10, 11, 12] };
    let rates = [0.0, 0.01, 0.02, 0.05, 0.1];
    let mut hosts = Vec::new();
    for &r in heights {
        let x = XTree::new(r);
        let n = x.node_count();
        let net = Network::xtree(&x);
        let batches = if smoke { 2 } else { 4 };
        let per_batch = (n / 2).min(512);
        let rounds = seeded_batches(base_seed, n as u64, batches, per_batch);
        // Every host vertex doubles as a guest under the heap-order
        // (identity) embedding, which gives the random host-level batches
        // guest semantics for the recovery sweep.
        let tree = generate::left_complete(n);
        let emb0 = heap_order_embedding(&tree, r);
        let mut engine = Engine::new();
        let clean: u64 = rounds
            .iter()
            .map(|b| u64::from(engine.run_batch(&net, b).expect("fault-free batch").cycles))
            .sum();

        let mut curve = Vec::new();
        for &rate in &rates {
            // Fault-plan seed derived from the base: the default base
            // reproduces the historical `0xFA17 + r` plans exactly.
            let seed = base_seed.wrapping_sub(0x5EED_0000) + u64::from(r);
            let repaired = run_degraded(
                &mut engine,
                &net,
                &rounds,
                &FaultPlan::random_links(net.graph(), rate, seed, FAULT_WINDOW, Some(REPAIR_AFTER))
                    .expect("rate is a probability"),
            );
            assert_eq!(
                repaired.delivered, repaired.messages,
                "repaired links leave nothing stranded"
            );
            let cut = run_degraded(
                &mut engine,
                &net,
                &rounds,
                &FaultPlan::random_links(net.graph(), rate, seed, FAULT_WINDOW, None)
                    .expect("rate is a probability"),
            );
            let slowdown = repaired.cycles as f64 / clean.max(1) as f64;
            let delivery = cut.delivered as f64 / cut.messages.max(1) as f64;

            // Recovery sweep: permanent *node* failures at the same rate,
            // with and without the supervisor. The no-retry supervised run
            // must match the bare engine exactly — recovery costs nothing
            // when it is switched off.
            let node_plan = FaultPlan::random_nodes(net.graph(), rate, seed, FAULT_WINDOW)
                .expect("rate is a probability");
            let bare = run_degraded(&mut engine, &net, &rounds, &node_plan);
            let off = run_recovered(
                &mut engine,
                &net,
                &tree,
                &emb0,
                &rounds,
                &node_plan,
                &RecoveryPolicy::none(),
            );
            assert_eq!(
                (off.cycles, off.delivered),
                (bare.cycles, bare.delivered),
                "a disabled supervisor must cost zero cycles and change nothing"
            );
            let on = run_recovered(
                &mut engine,
                &net,
                &tree,
                &emb0,
                &rounds,
                &node_plan,
                &RecoveryPolicy::default(),
            );
            assert!(
                on.delivered >= off.delivered,
                "migrating guests off dead vertices can only help delivery"
            );
            let delivery_off = off.delivered as f64 / off.messages.max(1) as f64;
            let delivery_on = on.delivered as f64 / on.messages.max(1) as f64;
            let extra_cycles = on.cycles as i64 - off.cycles as i64;

            eprintln!(
                "X({r}): rate {rate:.2} — slowdown {slowdown:.2}x (repaired), \
                 delivery {:.3} (no repairs, {} of {} stranded); \
                 node faults: delivery {delivery_off:.3} -> {delivery_on:.3} recovered \
                 (+{extra_cycles} cycles, {} migrated)",
                delivery,
                cut.messages - cut.delivered,
                cut.messages,
                on.migrated,
            );
            curve.push(
                Value::object()
                    .with("fault_rate", rate)
                    .with("cycles_faulted", repaired.cycles)
                    .with("slowdown_repaired", slowdown)
                    .with("delivered_no_repair", cut.delivered)
                    .with("stranded_no_repair", cut.messages - cut.delivered)
                    .with("delivery_rate_no_repair", delivery)
                    .with("delivery_rate_nodes_no_recovery", delivery_off)
                    .with("delivery_rate_nodes_recovered", delivery_on)
                    .with("recovery_extra_cycles", extra_cycles)
                    .with("recovery_retries", on.retries)
                    .with("recovery_requeued", on.requeued)
                    .with("recovery_migrated", on.migrated),
            );
        }
        hosts.push(
            Value::object()
                .with("host", format!("X({r})"))
                .with("vertices", n)
                .with("batches", batches)
                .with("messages_per_batch", per_batch)
                .with("cycles_clean", clean)
                .with("curve", Value::from(curve)),
        );
    }
    let doc = Value::object()
        .with("bench", "fault-degradation")
        .with("seed", base_seed)
        .with(
            "workload",
            "seeded uniform-random batches under random link failures; repaired runs \
             measure detour slowdown, unrepaired runs measure permanent stranding; \
             the recovery columns re-run the batches under permanent node failures as \
             guests of an identity embedding, default RecoveryPolicy vs none",
        )
        .with("fault_window", FAULT_WINDOW)
        .with("repair_after", REPAIR_AFTER)
        .with("hosts", Value::from(hosts));
    if !smoke {
        xtree_json::write_pretty_file("results/BENCH_faults.json", &doc)
            .expect("write BENCH_faults.json");
    }
    println!("{}", xtree_json::to_string_pretty(&doc));
}

//! `faultbench` — graceful-degradation record for the fault-injection
//! subsystem, written to `results/BENCH_faults.json`.
//!
//! For each X-tree host it delivers the same seeded random batches under
//! increasing link-failure rates and reports the slowdown against the
//! fault-free engine, twice per rate:
//!
//! * **repaired** — every failed link comes back a fixed number of cycles
//!   later, so the survivor graph eventually heals and everything is
//!   delivered: the slowdown curve isolates the cost of detours and
//!   repair-waiting;
//! * **cut** — the same failures with no repairs: the delivery rate shows
//!   how much traffic strands permanently as the host partitions.
//!
//! Run with: `cargo run --release -p xtree-bench --bin faultbench`
//! (`--smoke` sweeps two tiny hosts and skips the results file — the CI
//! guard that the degraded engine terminates with sane numbers.)

use xtree_bench::seeded_batches;
use xtree_json::Value;
use xtree_sim::{Engine, FaultPlan, FaultState, Message, Network};
use xtree_topology::{Graph, XTree};

/// Failure cycles are drawn from this window, so damage lands while the
/// batches are in flight.
const FAULT_WINDOW: u32 = 32;
/// Cycles from a link's failure to its repair in the repaired sweep.
const REPAIR_AFTER: u32 = 16;

struct Degraded {
    cycles: u64,
    messages: usize,
    delivered: usize,
}

/// Runs every batch from a fresh [`FaultState`], so each one replays the
/// damage schedule from cycle 0.
fn run_degraded(
    engine: &mut Engine,
    net: &Network,
    rounds: &[Vec<Message>],
    plan: &FaultPlan,
) -> Degraded {
    let mut d = Degraded {
        cycles: 0,
        messages: 0,
        delivered: 0,
    };
    for batch in rounds {
        let mut faults = FaultState::new(net.graph(), plan.clone()).expect("plan fits its host");
        let out = engine
            .run_batch_faulted(net, batch, &mut faults)
            .expect("faulted batch");
        assert!(
            !out.is_stalled(),
            "horizon {FAULT_WINDOW}+{REPAIR_AFTER} is far inside the idle-wait budget"
        );
        d.cycles += u64::from(out.stats().cycles);
        d.messages += out.stats().messages;
        d.delivered += out.stats().messages - out.undelivered().len();
    }
    d
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let heights: &[u8] = if smoke { &[5, 6] } else { &[8, 9, 10, 11, 12] };
    let rates = [0.0, 0.01, 0.02, 0.05, 0.1];
    let mut hosts = Vec::new();
    for &r in heights {
        let x = XTree::new(r);
        let n = x.node_count();
        let net = Network::xtree(&x);
        let batches = if smoke { 2 } else { 4 };
        let per_batch = (n / 2).min(512);
        let rounds = seeded_batches(0x5EED_FA17, n as u64, batches, per_batch);
        let mut engine = Engine::new();
        let clean: u64 = rounds
            .iter()
            .map(|b| u64::from(engine.run_batch(&net, b).expect("fault-free batch").cycles))
            .sum();

        let mut curve = Vec::new();
        for &rate in &rates {
            let seed = 0xFA17 + u64::from(r);
            let repaired = run_degraded(
                &mut engine,
                &net,
                &rounds,
                &FaultPlan::random_links(net.graph(), rate, seed, FAULT_WINDOW, Some(REPAIR_AFTER)),
            );
            assert_eq!(
                repaired.delivered, repaired.messages,
                "repaired links leave nothing stranded"
            );
            let cut = run_degraded(
                &mut engine,
                &net,
                &rounds,
                &FaultPlan::random_links(net.graph(), rate, seed, FAULT_WINDOW, None),
            );
            let slowdown = repaired.cycles as f64 / clean.max(1) as f64;
            let delivery = cut.delivered as f64 / cut.messages.max(1) as f64;
            eprintln!(
                "X({r}): rate {rate:.2} — slowdown {slowdown:.2}x (repaired), \
                 delivery {:.3} (no repairs, {} of {} stranded)",
                delivery,
                cut.messages - cut.delivered,
                cut.messages,
            );
            curve.push(
                Value::object()
                    .with("fault_rate", rate)
                    .with("cycles_faulted", repaired.cycles)
                    .with("slowdown_repaired", slowdown)
                    .with("delivered_no_repair", cut.delivered)
                    .with("stranded_no_repair", cut.messages - cut.delivered)
                    .with("delivery_rate_no_repair", delivery),
            );
        }
        hosts.push(
            Value::object()
                .with("host", format!("X({r})"))
                .with("vertices", n)
                .with("batches", batches)
                .with("messages_per_batch", per_batch)
                .with("cycles_clean", clean)
                .with("curve", Value::from(curve)),
        );
    }
    let doc = Value::object()
        .with("bench", "fault-degradation")
        .with(
            "workload",
            "seeded uniform-random batches under random link failures; repaired runs \
             measure detour slowdown, unrepaired runs measure permanent stranding",
        )
        .with("fault_window", FAULT_WINDOW)
        .with("repair_after", REPAIR_AFTER)
        .with("hosts", Value::from(hosts));
    if !smoke {
        xtree_json::write_pretty_file("results/BENCH_faults.json", &doc)
            .expect("write BENCH_faults.json");
    }
    println!("{}", xtree_json::to_string_pretty(&doc));
}

//! `telbench` — telemetry overhead record for the instrumented engine,
//! written to `results/BENCH_telemetry.json`.
//!
//! For each X-tree host it delivers the same seeded random batches through
//! five configurations of the cycle loop:
//!
//! * **baseline** — the pre-instrumentation flat-buffer loop, reproduced
//!   verbatim below (the same way `simbench` keeps `run_batch_legacy`), so
//!   the comparison is against code with no `Sink` parameter at all;
//! * **noop** — `Engine::run_batch`, i.e. the instrumented loop with
//!   [`NopSink`](xtree_sim::telemetry::NopSink): the number that must
//!   stay within ~2% of baseline,
//!   proving the statically-dispatched instrumentation compiles out;
//! * **counters** / **metrics** / **trace** — the loop paying for real
//!   sinks, so the cost of *enabled* telemetry is on record too.
//!
//! Modes are interleaved across repetitions and the per-mode minimum is
//! kept, which filters scheduler noise out of a percent-level comparison.
//!
//! Run with: `cargo run --release -p xtree-bench --bin telbench`
//! (`--smoke` sweeps two tiny hosts and skips the results file.)

use std::time::Instant;
use xtree_bench::seeded_batches;
use xtree_json::Value;
use xtree_sim::telemetry::{AtomicCounters, MetricsSink, TraceRecorder};
use xtree_sim::{Engine, Message, Network, SimError};
use xtree_topology::{Csr, Graph, XTree};

/// Acceptance threshold for the no-op sink: the instrumented loop may cost
/// at most this much over the pre-instrumentation baseline.
const NOOP_THRESHOLD_PCT: f64 = 2.0;

/// The fault-free engine exactly as it was before telemetry existed: the
/// same flat scratch buffers, epoch-stamped claims, and in-place
/// compaction, with no sink parameter anywhere.
#[derive(Default)]
struct Baseline {
    at: Vec<u32>,
    dst: Vec<u32>,
    active: Vec<u32>,
    hop_to: Vec<u32>,
    hop_edge: Vec<u32>,
    claim_msg: Vec<u32>,
    claim_epoch: Vec<u64>,
    epoch: u64,
    traffic: Vec<u32>,
    touched: Vec<u32>,
}

/// What both loops are compared on: enough totals to prove they did the
/// identical work.
#[derive(PartialEq, Eq, Debug, Default)]
struct Totals {
    cycles: u64,
    hops: u64,
}

impl Baseline {
    fn run_batch(&mut self, net: &Network, messages: &[Message]) -> Result<(u32, u64), SimError> {
        let graph: &Csr = net.graph();
        let links = graph.directed_edge_count();
        if self.claim_epoch.len() < links {
            self.claim_msg.resize(links, 0);
            self.claim_epoch.resize(links, 0);
            self.traffic.resize(links, 0);
        }
        self.at.clear();
        self.dst.clear();
        self.active.clear();
        if self.hop_to.len() < messages.len() {
            self.hop_to.resize(messages.len(), 0);
            self.hop_edge.resize(messages.len(), 0);
        }
        let mut ideal_cycles = 0u32;
        for (i, m) in messages.iter().enumerate() {
            self.at.push(m.src);
            self.dst.push(m.dst);
            if m.src != m.dst {
                self.active.push(i as u32);
                let to = net.next_hop(m.src, m.dst);
                self.hop_to[i] = to;
                self.hop_edge[i] = graph
                    .directed_edge_index(m.src, to)
                    .ok_or(SimError::RouterInvariant { at: m.src, to })?;
            }
            ideal_cycles = ideal_cycles.max(net.distance(m.src, m.dst));
        }
        let mut cycles = 0u32;
        let mut total_hops = 0u64;
        while !self.active.is_empty() {
            cycles += 1;
            if cycles > 4 * (ideal_cycles + 1) * (messages.len() as u32 + 1) {
                let undelivered = self.active.len();
                self.active.clear();
                for &e in &self.touched {
                    self.traffic[e as usize] = 0;
                }
                self.touched.clear();
                return Err(SimError::Diverged {
                    cycle: cycles,
                    undelivered,
                });
            }
            self.epoch += 1;
            for &i in &self.active {
                let e = self.hop_edge[i as usize] as usize;
                if self.claim_epoch[e] != self.epoch {
                    self.claim_epoch[e] = self.epoch;
                    self.claim_msg[e] = i;
                }
            }
            let mut w = 0usize;
            for k in 0..self.active.len() {
                let i = self.active[k];
                let e = self.hop_edge[i as usize] as usize;
                if self.claim_msg[e] == i {
                    let to = self.hop_to[i as usize];
                    self.at[i as usize] = to;
                    total_hops += 1;
                    if self.traffic[e] == 0 {
                        self.touched.push(e as u32);
                    }
                    self.traffic[e] += 1;
                    let dst = self.dst[i as usize];
                    if to == dst {
                        continue;
                    }
                    let next = net.next_hop(to, dst);
                    self.hop_to[i as usize] = next;
                    self.hop_edge[i as usize] = graph
                        .directed_edge_index(to, next)
                        .ok_or(SimError::RouterInvariant { at: to, to: next })?;
                }
                self.active[w] = i;
                w += 1;
            }
            self.active.truncate(w);
        }
        for &e in &self.touched {
            self.traffic[e as usize] = 0;
        }
        self.touched.clear();
        Ok((cycles, total_hops))
    }
}

/// Times one pass of `run` over every batch, returning elapsed seconds and
/// the accumulated totals.
fn time_pass(
    rounds: &[Vec<Message>],
    mut run: impl FnMut(&[Message]) -> (u32, u64),
) -> (f64, Totals) {
    let start = Instant::now();
    let mut t = Totals::default();
    for batch in rounds {
        let (cycles, hops) = run(batch);
        t.cycles += u64::from(cycles);
        t.hops += hops;
    }
    (start.elapsed().as_secs_f64().max(1e-9), t)
}

const MODES: [&str; 5] = ["baseline", "noop", "counters", "metrics", "trace"];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = xtree_bench::seed_from_args(0x5EED_7E1E);
    let heights: &[(u8, usize)] = if smoke {
        &[(5, 2), (6, 2)]
    } else {
        &[(8, 96), (9, 48), (10, 32), (11, 12), (12, 6)]
    };
    let reps = if smoke { 2 } else { 5 };
    let mut hosts = Vec::new();
    let mut x10_noop_overhead = None;
    for &(r, batches) in heights {
        let x = XTree::new(r);
        let n = x.node_count();
        let net = Network::xtree(&x);
        let per_batch = n / 2;
        let rounds = seeded_batches(seed, n as u64, batches, per_batch);

        let mut baseline = Baseline::default();
        let mut engine = Engine::new();
        let counters = AtomicCounters::new();
        let mut metrics = MetricsSink::new();
        let mut trace = TraceRecorder::new();
        // Warm every scratch buffer (and the trace's byte buffer) so the
        // timed passes all run in the steady state.
        baseline.run_batch(&net, &rounds[0]).expect("warmup");
        engine.run_batch(&net, &rounds[0]).expect("warmup");
        engine
            .run_batch_with(&net, &rounds[0], &mut trace)
            .expect("warmup");

        let mut best = [f64::INFINITY; MODES.len()];
        let mut reference: Option<Totals> = None;
        for _ in 0..reps {
            for (m, slot) in best.iter_mut().enumerate() {
                let (elapsed, totals) = match MODES[m] {
                    "baseline" => time_pass(&rounds, |b| baseline.run_batch(&net, b).unwrap()),
                    "noop" => time_pass(&rounds, |b| {
                        let s = engine.run_batch(&net, b).unwrap();
                        (s.cycles, s.total_hops)
                    }),
                    "counters" => time_pass(&rounds, |b| {
                        let mut sink = &counters;
                        let s = engine.run_batch_with(&net, b, &mut sink).unwrap();
                        (s.cycles, s.total_hops)
                    }),
                    "metrics" => time_pass(&rounds, |b| {
                        let s = engine.run_batch_with(&net, b, &mut metrics).unwrap();
                        (s.cycles, s.total_hops)
                    }),
                    _ => {
                        trace.clear();
                        time_pass(&rounds, |b| {
                            let s = engine.run_batch_with(&net, b, &mut trace).unwrap();
                            (s.cycles, s.total_hops)
                        })
                    }
                };
                // Every mode must do the identical work — a cheap guard
                // that instrumentation never perturbs the schedule.
                match &reference {
                    Some(t) => assert_eq!(t, &totals, "{} diverged", MODES[m]),
                    None => reference = Some(totals),
                }
                if elapsed < *slot {
                    *slot = elapsed;
                }
            }
        }

        let overhead = |m: usize| (best[m] - best[0]) / best[0] * 100.0;
        let mut modes = Value::object();
        for (m, name) in MODES.iter().enumerate().skip(1) {
            modes.set(
                name,
                Value::object()
                    .with("elapsed_ms", best[m] * 1e3)
                    .with("overhead_pct", overhead(m)),
            );
        }
        modes.set("trace_bytes_per_pass", trace.bytes().len());
        eprintln!(
            "X({r}): {n} vertices, {batches} batches x {per_batch} msgs — baseline {:.2} ms, \
             noop {:+.2}%, counters {:+.2}%, metrics {:+.2}%, trace {:+.2}%",
            best[0] * 1e3,
            overhead(1),
            overhead(2),
            overhead(3),
            overhead(4),
        );
        if r == 10 {
            x10_noop_overhead = Some(overhead(1));
        }
        hosts.push(
            Value::object()
                .with("host", format!("X({r})"))
                .with("vertices", n)
                .with("batches", batches)
                .with("messages_per_batch", per_batch)
                .with("baseline_ms", best[0] * 1e3)
                .with("modes", modes),
        );
    }
    let mut doc = Value::object()
        .with("bench", "telemetry-overhead")
        .with("seed", seed)
        .with(
            "workload",
            "seeded uniform-random batches; pre-instrumentation loop vs the Sink-parameterised \
             engine under no-op, counter, metrics, and trace sinks; min over interleaved reps",
        )
        .with("reps", reps)
        .with("hosts", Value::from(hosts));
    if let Some(pct) = x10_noop_overhead {
        doc.set(
            "acceptance",
            Value::object()
                .with("host", "X(10)")
                .with("noop_overhead_pct", pct)
                .with("threshold_pct", NOOP_THRESHOLD_PCT)
                .with("pass", pct <= NOOP_THRESHOLD_PCT),
        );
    }
    if !smoke {
        xtree_json::write_pretty_file("results/BENCH_telemetry.json", &doc)
            .expect("write BENCH_telemetry.json");
    }
    println!("{}", xtree_json::to_string_pretty(&doc));
    if let Some(pct) = x10_noop_overhead {
        assert!(
            pct <= NOOP_THRESHOLD_PCT,
            "no-op sink overhead {pct:.2}% exceeds {NOOP_THRESHOLD_PCT}% at X(10)"
        );
    }
}

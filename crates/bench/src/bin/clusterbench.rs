//! Cluster benchmark: shard-scaling curve plus a kill-a-shard failover
//! probe, written to `results/BENCH_cluster.json`.
//!
//! **Scaling.** For each roster size in {1, 2, 4} the bench spawns that
//! many in-process shard daemons (2 workers each) behind a
//! consistent-hash router and pushes a compute-bound workload through
//! it: every request a *distinct* `(family, nodes, seed)` key, so each
//! one costs a Theorem-1 construction and the cluster's throughput
//! tracks its aggregate worker count rather than its cache.
//!
//! **Failover.** A 2-shard cluster with test-speed detection (25 ms
//! probes, two-strike ejection) serves concurrent clients while one
//! shard is shut down a quarter of the way in. The probe asserts the
//! robustness contract — zero client-visible errors — and records the
//! failover column: replays, transport failures observed, and the p99
//! end-to-end latency of the requests that needed a replay.
//!
//! `--smoke` shrinks the workload and skips the results file.
//!
//! Run with: cargo run --release -p xtree-bench --bin clusterbench

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use xtree_json::Value;
use xtree_server::{
    Client, ReconnectPolicy, Request, Response, Router, RouterConfig, Server, ServerConfig,
};
use xtree_sim::Backoff;

/// `random-bst` in `TreeFamily::ALL`.
const FAMILY: u8 = 4;
/// 16(2^(r+1) - 1) with r = 6 — one Theorem-1 build per distinct key is
/// expensive enough that throughput measures compute, not framing.
const NODES: u64 = 2032;
/// Default key-space base; `--seed` moves it (DESIGN.md §15 convention).
const SEED_BASE: u64 = 7_000;

struct Opts {
    conns: usize,
    requests: usize,
    smoke: bool,
    seed: u64,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        conns: 8,
        requests: 32,
        smoke: false,
        seed: SEED_BASE,
        out: "results/BENCH_cluster.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--conns" => opts.conns = value("--conns").parse().expect("--conns"),
            "--requests" => opts.requests = value("--requests").parse().expect("--requests"),
            "--seed" => opts.seed = value("--seed").parse().expect("--seed"),
            "--out" => opts.out = value("--out"),
            "--smoke" => opts.smoke = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    if opts.smoke {
        opts.conns = opts.conns.min(4);
        opts.requests = opts.requests.min(6);
    }
    assert!(opts.conns >= 1 && opts.requests >= 1, "need work to do");
    opts
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// One measured run through a router: counts and client-side latency.
struct Run {
    requests: usize,
    ok: usize,
    errors: usize,
    wall_s: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

impl Run {
    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.wall_s
    }
}

/// Drive `conns` concurrent clients through `addr`, every request a
/// distinct embed key (`key_base` offsets the seed space so no phase
/// reuses another's keys). `mid_kill` — if given — fires exactly once, a
/// quarter of the way through the first connection's sequence.
fn drive(
    addr: SocketAddr,
    conns: usize,
    count: usize,
    key_base: u64,
    mid_kill: Option<&(dyn Fn() + Sync)>,
) -> Run {
    let fired = AtomicBool::new(false);
    let start = Instant::now();
    let per_conn: Vec<(usize, usize, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|conn| {
                let fired = &fired;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let (mut ok, mut errors) = (0, 0);
                    let mut latencies = Vec::with_capacity(count);
                    for i in 0..count {
                        if let Some(kill) = mid_kill {
                            if conn == 0 && i == count / 4 && !fired.swap(true, Ordering::SeqCst) {
                                kill();
                            }
                        }
                        let req = Request::Embed {
                            family: FAMILY,
                            nodes: NODES,
                            seed: key_base + (conn * count + i) as u64,
                            theorem: 1,
                        };
                        let sent = Instant::now();
                        let resp = client.call(&req).expect("call");
                        latencies.push(sent.elapsed().as_micros() as u64);
                        match resp {
                            Response::EmbedOk { .. } => ok += 1,
                            other => {
                                errors += 1;
                                eprintln!("clusterbench: unexpected response: {other:?}");
                            }
                        }
                    }
                    (ok, errors, latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let mut latencies: Vec<u64> = per_conn.iter().flat_map(|p| p.2.iter().copied()).collect();
    latencies.sort_unstable();
    Run {
        requests: conns * count,
        ok: per_conn.iter().map(|p| p.0).sum(),
        errors: per_conn.iter().map(|p| p.1).sum(),
        wall_s,
        p50_us: quantile(&latencies, 0.50),
        p95_us: quantile(&latencies, 0.95),
        p99_us: quantile(&latencies, 0.99),
    }
}

fn shard_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 64,
        cache_cap: 256,
        io_timeout: None,
        chaos: None,
        ..ServerConfig::default()
    }
}

fn spawn_cluster(shards: usize, config: &RouterConfig) -> (Vec<Server>, Router) {
    let servers: Vec<Server> = (0..shards)
        .map(|_| Server::spawn(&shard_config()).expect("bind shard"))
        .collect();
    let router = Router::spawn(&RouterConfig {
        shards: servers.iter().map(Server::local_addr).collect(),
        ..config.clone()
    })
    .expect("bind router");
    (servers, router)
}

fn drain_cluster(mut servers: Vec<Server>, mut router: Router) {
    let mut client = Client::connect(router.local_addr()).expect("connect for shutdown");
    client.call(&Request::Shutdown).expect("cluster shutdown");
    router.wait();
    for s in &mut servers {
        s.wait();
    }
}

/// One point of the scaling curve: `shards` shards, all healthy.
fn scaling_point(shards: usize, conns: usize, count: usize, seed: u64) -> Value {
    let (servers, router) = spawn_cluster(shards, &RouterConfig::default());
    let run = drive(
        router.local_addr(),
        conns,
        count,
        seed + ((shards as u64) << 32),
        None,
    );
    assert_eq!(run.errors, 0, "{shards}-shard run must not error");
    assert_eq!(run.ok, run.requests, "{shards}-shard run must serve all");
    let metrics = router.metrics();
    eprintln!(
        "{shards} shard(s): {} reqs in {:.2}s — {:.0} req/s, p50 {}us p95 {}us p99 {}us",
        run.requests,
        run.wall_s,
        run.throughput_rps(),
        run.p50_us,
        run.p95_us,
        run.p99_us
    );
    let point = Value::object()
        .with("shards", shards)
        .with("requests", run.requests)
        .with("wall_s", run.wall_s)
        .with("throughput_rps", run.throughput_rps())
        .with("latency_p50_us", run.p50_us)
        .with("latency_p95_us", run.p95_us)
        .with("latency_p99_us", run.p99_us)
        .with("routed", metrics.routed_total())
        .with("replayed", metrics.replayed_total());
    drain_cluster(servers, router);
    point
}

/// The kill-a-shard probe: 2 shards, one dies under load, nothing may
/// be lost. Returns the failover column.
fn failover_probe(conns: usize, count: usize, seed: u64) -> Value {
    let config = RouterConfig {
        probe_interval: Duration::from_millis(25),
        fail_after: 2,
        replay: ReconnectPolicy {
            max_retries: 10,
            backoff: Backoff::Fixed(20),
        },
        ..RouterConfig::default()
    };
    let (servers, router) = spawn_cluster(2, &config);
    let victim = &servers[0];
    let run = drive(
        router.local_addr(),
        conns,
        count,
        seed + (101u64 << 32),
        Some(&|| victim.shutdown()),
    );
    assert_eq!(
        run.errors, 0,
        "failover must be invisible to clients (got {} errors)",
        run.errors
    );
    assert_eq!(run.ok, run.requests, "every request must be served");
    let metrics = router.metrics();
    let shard_set = router.shard_set();
    assert_eq!(shard_set.live_count(), 1, "the victim must be ejected");
    assert_eq!(metrics.unreachable_total(), 0);
    assert_eq!(metrics.exhausted_total(), 0);
    let (failover_p99_us, failovers) = metrics.failover_quantile_us(0.99);
    eprintln!(
        "failover: {} reqs, {} replayed, {} transport failures, {} failovers, p99 {}us",
        run.requests,
        metrics.replayed_total(),
        metrics.failed_total(),
        failovers,
        failover_p99_us
    );
    let column = Value::object()
        .with("shards", 2)
        .with("requests", run.requests)
        .with("errors", run.errors)
        .with("wall_s", run.wall_s)
        .with("throughput_rps", run.throughput_rps())
        .with("latency_p99_us", run.p99_us)
        .with("failed", metrics.failed_total())
        .with("replayed", metrics.replayed_total())
        .with("unreachable", metrics.unreachable_total())
        .with("exhausted", metrics.exhausted_total())
        .with("failovers", failovers)
        .with("failover_p99_us", failover_p99_us);
    drain_cluster(servers, router);
    column
}

fn main() {
    let opts = parse_opts();
    let rosters: &[usize] = if opts.smoke { &[1, 2] } else { &[1, 2, 4] };

    let curve: Vec<Value> = rosters
        .iter()
        .map(|&m| scaling_point(m, opts.conns, opts.requests, opts.seed))
        .collect();
    let failover = failover_probe(opts.conns.max(4), opts.requests, opts.seed);

    let doc = Value::object()
        .with("bench", "cluster")
        .with("family", "random-bst")
        .with("nodes", NODES)
        .with("seed", opts.seed)
        .with("conns", opts.conns)
        .with("requests_per_conn", opts.requests)
        .with("workers_per_shard", 2)
        // Shard scaling is core scaling: on a 1-core host the curve is
        // honestly flat, so record what the curve had to work with.
        .with(
            "host_cores",
            std::thread::available_parallelism().map_or(0, usize::from),
        )
        .with("scaling", curve.into_iter().collect::<Value>())
        .with("failover", failover);

    if opts.smoke {
        eprintln!("smoke mode: skipping results file");
    } else {
        xtree_json::write_pretty_file(&opts.out, &doc).expect("write results");
        eprintln!("wrote {}", opts.out);
    }
}

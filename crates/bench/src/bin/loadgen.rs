//! Load generator for the `xtree-server` daemon.
//!
//! Two ways to run it:
//!
//! * **Spawn mode** (default): starts its own servers in-process and runs
//!   three phases — a *warm* run (4 workers, cache on) against a small
//!   repeated key pool, the identical *cold* run with the cache disabled
//!   (`cache_cap = 0`), and a *saturation* probe (1 worker, tiny queue)
//!   that must bounce requests as `Overloaded`. It asserts the serving
//!   layer's contract: warm hit rate > 90%, warm throughput strictly
//!   above cold, and saturation observably answered — never a hang.
//! * **`--addr HOST:PORT`**: drives an already-running daemon — or a
//!   cluster router, which speaks the same wire protocol (the CI smoke
//!   jobs do both) — with one bounded phase and leaves it up.
//!
//! `--via-router M` adds a phase that spawns M in-process shards behind
//! a consistent-hash router and drives the workload through it, folding
//! the router's failover column (routed/failed/replayed, failover p99)
//! into the results doc.
//!
//! Key distribution knobs: `--key-pool N` sets the distinct-key pool
//! (default 4 uniform / 64 skewed, preserving the historical workload);
//! `--traffic MODEL` draws keys from an `xtree-scenario` traffic model
//! (`zipf:1.1`, `hotspot:25:16`, `diurnal:4:8`, …) in an extra warm
//! phase; `--zipf s` is back-compat sugar for `--traffic zipf:s`;
//! `--seed N` moves every request stream (default = the historical
//! constant, DESIGN.md §15); `--host xtree|hypercube|universal` stamps
//! every request with a host-topology tag (absent = legacy frames,
//! byte-identical on the wire).
//!
//! Resilience knobs: `--deadline-ms T` runs every request under a
//! deadline budget (expired budgets come back as typed `ERR_DEADLINE`,
//! counted, never hung); `--chaos-seed S [--chaos-profile P]` wraps every
//! *client-side* connection in the seeded chaos transport, so the driver
//! itself delivers delays, short reads, corruption, and resets;
//! `--allow-typed-errors` switches the drive loop from "any failure
//! panics" to "every failure must land in a typed bucket" — the
//! invariant being that nothing is ever unclassified.
//!
//! Both modes report throughput, client-side p50/p95/p99 latency, and
//! the cache hit rate per (distribution, pool size), and write
//! `results/BENCH_server.json`. `--smoke` shrinks the workload and
//! skips the results file.
//!
//! Run with: cargo run --release -p xtree-bench --bin loadgen

use std::net::SocketAddr;
use std::time::{Duration, Instant};
use xtree_bench::seeded_batches;
use xtree_host::parse_host_label;
use xtree_json::Value;
use xtree_scenario::TrafficModel;
use xtree_server::{
    ChaosPlan, ChaosProfile, Client, ReconnectPolicy, Request, Response, Router, RouterConfig,
    Server, ServerConfig, WireStats, ERR_BAD_REQUEST, ERR_DEADLINE, ERR_EXHAUSTED,
    ERR_SHUTTING_DOWN, ERR_UNREACHABLE,
};

/// Key pool: `random-bst` in `TreeFamily::ALL`.
const FAMILY: u8 = 4;
/// 16(2^(r+1) - 1) with r = 6 — a mid-size guest, so one Theorem-1
/// construction is expensive enough for the cache to matter.
const NODES: u64 = 2032;
/// Default distinct keys in the repeated-key workload (override with
/// `--key-pool`). Every request maps to one of these keys, so a warm
/// cache serves all but the first builds.
const DEFAULT_POOL: u64 = 4;
const SEED_BASE: u64 = 1000;

/// Default key pool for the skewed (`--traffic`/`--zipf`) phase — much
/// larger than the uniform pool, so the distribution's tail actually
/// misses the cache and the hit rate tracks the head's skew.
const DEFAULT_TRAFFIC_POOL: u64 = 64;

/// Historical batch seed; `--seed` moves it (DESIGN.md §15 convention).
const DEFAULT_SEED: u64 = 0x5EED_10AD;

struct Opts {
    addr: Option<String>,
    conns: usize,
    requests: usize,
    smoke: bool,
    /// Key distribution for the skewed phase (`None` = uniform only).
    traffic: Option<TrafficModel>,
    /// `--key-pool`: distinct keys per phase. `None` keeps the
    /// historical defaults (4 uniform / 64 skewed).
    key_pool: Option<u64>,
    seed: u64,
    /// Shard count for the `--via-router` phase (`None` = skip it).
    via_router: Option<usize>,
    out: String,
    /// Client-side seeded fault injection (`--chaos-seed`).
    chaos_seed: Option<u64>,
    chaos_profile: String,
    /// Per-request deadline budget (`--deadline-ms`).
    deadline_ms: Option<u64>,
    /// Tolerate failures as long as every one lands in a typed bucket.
    allow_typed_errors: bool,
    /// Host topology tag every request is stamped with (`--host`);
    /// `None` keeps the frames bit-identical to pre-host traffic.
    host: Option<u8>,
}

impl Opts {
    /// Key-pool size of the uniform phases (default preserves the
    /// historical 4-key pool and its 99% warm hit rate).
    fn uniform_pool(&self) -> u64 {
        self.key_pool.unwrap_or(DEFAULT_POOL)
    }

    /// Key-pool size of the skewed-traffic phase.
    fn traffic_pool(&self) -> u64 {
        self.key_pool.unwrap_or(DEFAULT_TRAFFIC_POOL)
    }

    /// How the drive loop should ride over trouble, from the resilience
    /// flags.
    fn resilience(&self) -> Resilience {
        let chaos = self.chaos_seed.map(|seed| {
            let profile = ChaosProfile::parse(&self.chaos_profile)
                .unwrap_or_else(|e| panic!("--chaos-profile: {e}"));
            ChaosPlan::new(seed, profile)
        });
        Resilience {
            chaos,
            deadline: self.deadline_ms.map(Duration::from_millis),
            tolerant: self.allow_typed_errors || chaos.is_some() || self.deadline_ms.is_some(),
            host: self.host,
        }
    }
}

/// The drive loop's failure posture: which chaos plan wraps the client
/// sockets, what deadline budget each request carries, and whether typed
/// failures are survivable or fatal.
#[derive(Clone, Copy, Default)]
struct Resilience {
    chaos: Option<ChaosPlan>,
    deadline: Option<Duration>,
    /// `false` = historical behavior (any failure panics); `true` = every
    /// failure must classify into a typed bucket, and the phase asserts
    /// zero *unclassified* errors instead of zero errors.
    tolerant: bool,
    /// Host tag appended to every request frame (`None` = legacy bytes).
    host: Option<u8>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: None,
        conns: 8,
        requests: 64,
        smoke: false,
        traffic: None,
        key_pool: None,
        seed: DEFAULT_SEED,
        via_router: None,
        out: "results/BENCH_server.json".to_string(),
        chaos_seed: None,
        chaos_profile: "medium".to_string(),
        deadline_ms: None,
        allow_typed_errors: false,
        host: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = Some(value("--addr")),
            "--conns" => opts.conns = value("--conns").parse().expect("--conns"),
            "--requests" => opts.requests = value("--requests").parse().expect("--requests"),
            "--zipf" => {
                // Back-compat sugar for `--traffic zipf:s`.
                let s: f64 = value("--zipf").parse().expect("--zipf");
                assert!(s > 0.0 && s.is_finite(), "--zipf needs s > 0");
                opts.traffic = Some(TrafficModel::Zipf { s });
            }
            "--traffic" => {
                let label = value("--traffic");
                let model = TrafficModel::parse(&label)
                    .unwrap_or_else(|| panic!("--traffic: unknown model `{label}`"));
                opts.traffic = Some(model);
            }
            "--key-pool" => {
                let n: u64 = value("--key-pool").parse().expect("--key-pool");
                assert!(n >= 1, "--key-pool needs at least one key");
                opts.key_pool = Some(n);
            }
            "--seed" => opts.seed = value("--seed").parse().expect("--seed"),
            "--via-router" => {
                let m: usize = value("--via-router").parse().expect("--via-router");
                assert!((1..=64).contains(&m), "--via-router needs 1..=64 shards");
                opts.via_router = Some(m);
            }
            "--out" => opts.out = value("--out"),
            "--chaos-seed" => {
                opts.chaos_seed = Some(value("--chaos-seed").parse().expect("--chaos-seed"));
            }
            "--chaos-profile" => opts.chaos_profile = value("--chaos-profile"),
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().expect("--deadline-ms");
                assert!(ms >= 1, "--deadline-ms needs at least 1ms");
                opts.deadline_ms = Some(ms);
            }
            "--allow-typed-errors" => opts.allow_typed_errors = true,
            "--host" => {
                let label = value("--host");
                let tag = parse_host_label(&label).unwrap_or_else(|| {
                    panic!("--host: unknown host `{label}` (xtree|hypercube|universal)")
                });
                opts.host = Some(tag);
            }
            "--smoke" => opts.smoke = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    if opts.smoke {
        opts.conns = opts.conns.min(4);
        opts.requests = opts.requests.min(8);
    }
    assert!(opts.conns >= 1 && opts.requests >= 1, "need work to do");
    opts
}

/// One phase's key distribution: pool size plus an optional skew model
/// from `xtree-scenario` (which also drives the scenario matrix, so "the
/// bench saw Zipf traffic" means the same thing on both axes).
#[derive(Clone)]
struct KeyDist {
    pool: u64,
    traffic: Option<TrafficModel>,
    seed: u64,
}

impl KeyDist {
    fn uniform(opts: &Opts) -> KeyDist {
        KeyDist {
            pool: opts.uniform_pool(),
            traffic: None,
            seed: opts.seed,
        }
    }

    fn skewed(opts: &Opts, traffic: TrafficModel) -> KeyDist {
        KeyDist {
            pool: opts.traffic_pool(),
            traffic: Some(traffic),
            seed: opts.seed,
        }
    }

    fn label(&self) -> String {
        self.traffic
            .map_or_else(|| "uniform".to_string(), |t| t.label())
    }
}

/// Per-connection tally of where every request landed. Buckets are
/// mutually exclusive; `unclassified` is the one that must stay zero.
#[derive(Default)]
struct Tally {
    ok: usize,
    overloaded: usize,
    /// Typed `ERR_DEADLINE`: the budget died before an answer.
    deadline: usize,
    /// Typed `ERR_UNREACHABLE`/`ERR_EXHAUSTED`/`ERR_SHUTTING_DOWN`.
    unavailable: usize,
    /// Transport failures surviving the retry budget (refused / reset /
    /// timed out / closed), tolerated only under chaos or a deadline.
    transport: usize,
    /// Stream desync from injected byte corruption: a frame that decoded
    /// to garbage, or the peer bouncing our garbled bytes.
    corrupted: usize,
    /// Anything else — asserted zero in every mode.
    unclassified: usize,
}

/// What one phase of driving measured, client side plus server stats.
struct Phase {
    name: String,
    requests: usize,
    ok: usize,
    overloaded: usize,
    deadline: usize,
    unavailable: usize,
    transport: usize,
    corrupted: usize,
    errors: usize,
    wall_s: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    stats: WireStats,
}

impl Phase {
    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.wall_s
    }

    fn hit_rate(&self) -> f64 {
        let lookups = self.stats.cache_hits + self.stats.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.stats.cache_hits as f64 / lookups as f64
        }
    }

    fn report(&self) -> Value {
        Value::object()
            .with("phase", self.name.as_str())
            .with("requests", self.requests)
            .with("ok", self.ok)
            .with("overloaded", self.overloaded)
            .with("deadline_rejected", self.deadline)
            .with("unavailable", self.unavailable)
            .with("transport_errors", self.transport)
            .with("corrupted", self.corrupted)
            .with("errors", self.errors)
            .with("wall_s", self.wall_s)
            .with("throughput_rps", self.throughput_rps())
            .with("latency_p50_us", self.p50_us)
            .with("latency_p95_us", self.p95_us)
            .with("latency_p99_us", self.p99_us)
            .with("cache_hits", self.stats.cache_hits)
            .with("cache_misses", self.stats.cache_misses)
            .with("cache_hit_rate", self.hit_rate())
            .with("server_overloaded", self.stats.overloaded)
    }
}

/// The deterministic request sequence for connection `conn`: repeated
/// keys drawn from the distribution's pool — uniformly, or through the
/// scenario subsystem's `KeySampler` when a traffic model is set —
/// mixed 3:1 simulate:embed, cycling through the engine's four
/// workloads.
fn requests_for(
    conn: usize,
    conns: usize,
    count: usize,
    nodes: u64,
    dist: &KeyDist,
) -> Vec<Request> {
    let batches = seeded_batches(dist.seed, dist.pool, conns, count);
    // Per-connection sampler stream; the default base seed reproduces
    // the historical `0x21BF_0000 ^ (conn << 32)` zipf stream exactly.
    let sampler = dist.traffic.map(|t| {
        t.key_sampler(
            dist.pool as usize,
            0x21BF_0000 ^ ((conn as u64) << 32) ^ (dist.seed ^ DEFAULT_SEED),
        )
    });
    batches[conn]
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let seed = match &sampler {
                Some(s) => SEED_BASE + s.rank(i as u64) as u64,
                None => SEED_BASE + u64::from(m.src),
            };
            if m.dst % 4 == 3 {
                Request::Embed {
                    family: FAMILY,
                    nodes,
                    seed,
                    theorem: 1,
                }
            } else {
                Request::Simulate {
                    family: FAMILY,
                    nodes,
                    seed,
                    theorem: 1,
                    workload: (m.dst % 4) as u8,
                }
            }
        })
        .collect()
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// One connection's request loop. In the historical (intolerant) mode any
/// failure panics, exactly as before. In tolerant mode — chaos, a
/// deadline budget, or `--allow-typed-errors` — every outcome must land
/// in a typed [`Tally`] bucket: transport failures ride the retrying
/// client, decode errors and bounced garbage reconnect (the stream is
/// desynced), and only genuinely unexplained outcomes count as
/// `unclassified`.
fn drive_conn(
    conn: usize,
    addr: SocketAddr,
    reqs: Vec<Request>,
    resil: &Resilience,
) -> (Tally, Vec<u64>) {
    let chaos_conn = resil.chaos.map(|plan| plan.conn(conn as u64));
    let mut client = loop {
        match Client::connect_with_chaos(addr, chaos_conn.clone()) {
            Ok(c) => break c,
            // An injected connect refusal; the fault is consumed, dial again.
            Err(_) if chaos_conn.is_some() => continue,
            Err(e) => panic!("connect: {e}"),
        }
    };
    let policy = ReconnectPolicy::default();
    let mut tally = Tally::default();
    let mut latencies = Vec::with_capacity(reqs.len());
    for req in reqs {
        let sent = Instant::now();
        let result = client.call_retrying_deadline_host(&req, &policy, resil.deadline, resil.host);
        latencies.push(sent.elapsed().as_micros() as u64);
        if !resil.tolerant {
            match result.expect("call") {
                Response::EmbedOk { .. } | Response::SimulateOk { .. } => tally.ok += 1,
                Response::Overloaded { .. } => tally.overloaded += 1,
                other => {
                    tally.unclassified += 1;
                    eprintln!("loadgen: unexpected response: {other:?}");
                }
            }
            continue;
        }
        match result {
            Ok(Response::EmbedOk { .. } | Response::SimulateOk { .. }) => tally.ok += 1,
            Ok(Response::Overloaded { .. }) => tally.overloaded += 1,
            Ok(Response::Error { code, .. }) if code == ERR_DEADLINE => tally.deadline += 1,
            Ok(Response::Error { code, .. })
                if [ERR_UNREACHABLE, ERR_EXHAUSTED, ERR_SHUTTING_DOWN].contains(&code) =>
            {
                tally.unavailable += 1;
            }
            Ok(Response::Error { code, .. })
                if code == ERR_BAD_REQUEST && resil.chaos.is_some() =>
            {
                // The peer bounced our chaos-garbled bytes and is closing
                // the connection; resync with a fresh dial.
                tally.corrupted += 1;
                let _ = client.reconnect();
            }
            Ok(other) => {
                tally.unclassified += 1;
                eprintln!("loadgen: unexpected response: {other:?}");
            }
            Err(e) if e.is_transport() => tally.transport += 1,
            Err(e) if resil.chaos.is_some() => {
                // A decode failure under injected corruption: the stream
                // position is untrustworthy, so resync.
                tally.corrupted += 1;
                let _ = e;
                let _ = client.reconnect();
            }
            Err(e) => {
                tally.unclassified += 1;
                eprintln!("loadgen: unexpected error: {e}");
            }
        }
    }
    (tally, latencies)
}

/// Drive `conns` concurrent connections, `count` requests each, against
/// `addr`; fetch the server's stats afterwards through a fresh client.
fn drive(
    name: &str,
    addr: SocketAddr,
    conns: usize,
    count: usize,
    nodes: u64,
    dist: &KeyDist,
    resil: &Resilience,
) -> Phase {
    let start = Instant::now();
    let per_conn: Vec<(Tally, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|conn| {
                scope.spawn(move || {
                    let reqs = requests_for(conn, conns, count, nodes, dist);
                    drive_conn(conn, addr, reqs, resil)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);

    let mut latencies: Vec<u64> = per_conn.iter().flat_map(|p| p.1.iter().copied()).collect();
    latencies.sort_unstable();
    let stats = fetch_stats(addr, resil);
    Phase {
        name: name.to_string(),
        requests: conns * count,
        ok: per_conn.iter().map(|p| p.0.ok).sum(),
        overloaded: per_conn.iter().map(|p| p.0.overloaded).sum(),
        deadline: per_conn.iter().map(|p| p.0.deadline).sum(),
        unavailable: per_conn.iter().map(|p| p.0.unavailable).sum(),
        transport: per_conn.iter().map(|p| p.0.transport).sum(),
        corrupted: per_conn.iter().map(|p| p.0.corrupted).sum(),
        errors: per_conn.iter().map(|p| p.0.unclassified).sum(),
        wall_s,
        p50_us: quantile(&latencies, 0.50),
        p95_us: quantile(&latencies, 0.95),
        p99_us: quantile(&latencies, 0.99),
        stats,
    }
}

/// Stats snapshot over a clean (chaos-free) connection. Under a
/// server-side chaos profile even this clean dial can be disturbed, so
/// tolerant runs retry a few times and fall back to empty stats rather
/// than sinking the whole bench.
fn fetch_stats(addr: SocketAddr, resil: &Resilience) -> WireStats {
    for _ in 0..3 {
        let Ok(mut client) = Client::connect(addr) else {
            continue;
        };
        match client.call_retrying(&Request::Stats, &ReconnectPolicy::default()) {
            Ok(Response::StatsOk(stats)) => return stats,
            Ok(other) if !resil.tolerant => panic!("expected StatsOk, got {other:?}"),
            Err(e) if !resil.tolerant => panic!("stats call: {e}"),
            _ => continue,
        }
    }
    if !resil.tolerant {
        panic!("stats connection failed");
    }
    eprintln!("loadgen: stats snapshot unavailable under chaos; reporting zeros");
    WireStats::default()
}

/// Run one phase through a consistent-hash router fronting `shards`
/// throwaway in-process daemons, then drain the whole cluster via a wire
/// `Shutdown`. Returns the phase plus the router's failover column
/// (routed/failed/replayed counts and failover-latency tail) for the
/// results doc.
fn spawn_cluster_and_drive(
    shards: usize,
    conns: usize,
    count: usize,
    nodes: u64,
    dist: &KeyDist,
    resil: &Resilience,
) -> (Phase, Value) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 64,
        cache_cap: 256,
        io_timeout: None,
        chaos: None,
        ..ServerConfig::default()
    };
    let mut servers: Vec<Server> = (0..shards)
        .map(|_| Server::spawn(&config).expect("bind shard"))
        .collect();
    let mut router = Router::spawn(&RouterConfig {
        shards: servers.iter().map(Server::local_addr).collect(),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let phase = drive(
        "via-router",
        router.local_addr(),
        conns,
        count,
        nodes,
        dist,
        resil,
    );
    let metrics = router.metrics();
    let (failover_p99_us, failovers) = metrics.failover_quantile_us(0.99);
    let column = Value::object()
        .with("shards", shards)
        .with("routed", metrics.routed_total())
        .with("failed", metrics.failed_total())
        .with("timeouts", metrics.timeouts_total())
        .with("replayed", metrics.replayed_total())
        .with("unreachable", metrics.unreachable_total())
        .with("exhausted", metrics.exhausted_total())
        .with("deadline_rejects", metrics.deadline_rejects_total())
        .with("restarts", metrics.restarts_total())
        .with("warmup_keys", metrics.warmup_keys_total())
        .with("failovers", failovers)
        .with("failover_p99_us", failover_p99_us);
    let mut client = Client::connect(router.local_addr()).expect("connect for shutdown");
    client.call(&Request::Shutdown).expect("cluster shutdown");
    router.wait();
    for s in &mut servers {
        s.wait();
    }
    (phase, column)
}

/// Run one phase against a throwaway in-process server and tear it down.
fn spawn_and_drive(
    name: &str,
    config: &ServerConfig,
    conns: usize,
    count: usize,
    nodes: u64,
    dist: &KeyDist,
    resil: &Resilience,
) -> Phase {
    let mut server = Server::spawn(config).expect("bind ephemeral server");
    let addr = server.local_addr();
    let phase = drive(name, addr, conns, count, nodes, dist, resil);
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.call(&Request::Shutdown).expect("shutdown");
    server.wait();
    phase
}

fn print_phase(phase: &Phase) {
    eprintln!(
        "{:>10}: {} reqs in {:.2}s — {:.0} req/s, p50 {}us p95 {}us p99 {}us, \
         hit rate {:.1}%, {} overloaded, {} deadline, {} unavailable, \
         {} transport, {} corrupted, {} errors",
        phase.name,
        phase.requests,
        phase.wall_s,
        phase.throughput_rps(),
        phase.p50_us,
        phase.p95_us,
        phase.p99_us,
        phase.hit_rate() * 100.0,
        phase.overloaded,
        phase.deadline,
        phase.unavailable,
        phase.transport,
        phase.corrupted,
        phase.errors,
    );
}

fn main() {
    let opts = parse_opts();
    let resil = opts.resilience();
    let uniform = KeyDist::uniform(&opts);
    let skewed = opts.traffic.map(|t| KeyDist::skewed(&opts, t));
    let mut doc = Value::object()
        .with("bench", "server")
        .with("conns", opts.conns)
        .with("requests_per_conn", opts.requests)
        .with("family", "random-bst")
        .with("nodes", NODES)
        .with("seed", opts.seed)
        .with("seed_pool", uniform.pool);
    if resil.tolerant {
        let mut r = Value::object().with("allow_typed_errors", true);
        if let Some(seed) = opts.chaos_seed {
            r.set("chaos_seed", seed);
            r.set("chaos_profile", opts.chaos_profile.as_str());
        }
        if let Some(ms) = opts.deadline_ms {
            r.set("deadline_ms", ms);
        }
        doc.set("resilience", r);
    }

    let mut phases = Vec::new();
    if let Some(addr) = &opts.addr {
        // External mode: one bounded phase against a live daemon; leave
        // it running for whoever started it.
        let addr: SocketAddr = addr.parse().expect("--addr must be HOST:PORT");
        let phase = drive(
            "external",
            addr,
            opts.conns,
            opts.requests,
            NODES,
            skewed.as_ref().unwrap_or(&uniform),
            &resil,
        );
        print_phase(&phase);
        assert_eq!(
            phase.errors, 0,
            "external run must have zero unclassified errors"
        );
        if !resil.tolerant {
            assert!(phase.ok >= 1, "external run must serve something");
        }
        phases.push(phase);
    } else {
        let warm_config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            cache_cap: 256,
            io_timeout: None,
            chaos: None,
            ..ServerConfig::default()
        };
        let cold_config = ServerConfig {
            cache_cap: 0,
            ..warm_config.clone()
        };

        let warm = spawn_and_drive(
            "warm",
            &warm_config,
            opts.conns,
            opts.requests,
            NODES,
            &uniform,
            &resil,
        );
        print_phase(&warm);
        let cold = spawn_and_drive(
            "cold",
            &cold_config,
            opts.conns,
            opts.requests,
            NODES,
            &uniform,
            &resil,
        );
        print_phase(&cold);

        // Skewed-key phase: same warm server, keys drawn by the traffic
        // model over a (by default) 16x larger pool — the hit rate now
        // measures how much of the distribution's head the cache
        // captures instead of being a pool-size artifact.
        let warm_skewed = skewed.as_ref().map(|dist| {
            let p = spawn_and_drive(
                &format!("warm-{}", dist.label()),
                &warm_config,
                opts.conns,
                opts.requests,
                NODES,
                dist,
                &resil,
            );
            print_phase(&p);
            p
        });

        // Saturation probe: one worker, a queue of two, a burst of
        // distinct expensive keys — backpressure must be explicit.
        let tight = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_cap: 2,
            cache_cap: 0,
            io_timeout: None,
            chaos: None,
            ..ServerConfig::default()
        };
        let burst_conns = opts.conns.max(8);
        let saturation = spawn_and_drive(
            "saturation",
            &tight,
            burst_conns,
            2,
            NODES,
            &uniform,
            &resil,
        );
        print_phase(&saturation);

        // The contract the serving layer was built around. In --smoke the
        // workload is too small to promise a hit-rate or a speedup, but
        // backpressure must hold at any size. Under injected chaos or a
        // deadline budget the exact ok/overloaded split is fault-schedule
        // dependent, so only the zero-unclassified invariant stays hard.
        assert_eq!(
            warm.errors + cold.errors,
            0,
            "no request may fail unclassified"
        );
        if !resil.tolerant {
            assert_eq!(
                warm.overloaded + cold.overloaded,
                0,
                "sized queue must not bounce the throughput phases"
            );
        }
        if !opts.smoke && !resil.tolerant {
            // The 90% contract is stated for the default 4-key pool;
            // larger --key-pool runs exist precisely to measure how the
            // hit rate decays with pool size.
            if opts.key_pool.is_none() {
                assert!(
                    warm.hit_rate() > 0.9,
                    "repeated-key workload must hit the cache: {:.3}",
                    warm.hit_rate()
                );
            }
            assert!(
                warm.throughput_rps() > cold.throughput_rps(),
                "warm cache must out-run cold: {:.0} vs {:.0} req/s",
                warm.throughput_rps(),
                cold.throughput_rps()
            );
        }
        if !resil.tolerant {
            assert!(
                saturation.overloaded >= 1,
                "saturation probe must observe Overloaded"
            );
            assert_eq!(
                saturation.overloaded as u64, saturation.stats.overloaded,
                "client-observed bounces must match server telemetry"
            );
        }

        eprintln!(
            "warm/cold speedup: {:.2}x (hit rate {:.1}%)",
            warm.throughput_rps() / cold.throughput_rps(),
            warm.hit_rate() * 100.0
        );
        doc.set(
            "comparison",
            Value::object()
                .with("warm_rps", warm.throughput_rps())
                .with("cold_rps", cold.throughput_rps())
                .with("speedup", warm.throughput_rps() / cold.throughput_rps())
                .with("warm_hit_rate", warm.hit_rate()),
        );
        // Hit rate per (distribution, pool size), side by side — the
        // warm-cache number is only meaningful next to the pool it was
        // measured against.
        let mut dists = vec![Value::object()
            .with("distribution", "uniform")
            .with("keys", uniform.pool)
            .with("hit_rate", warm.hit_rate())];
        if let (Some(p), Some(dist)) = (&warm_skewed, &skewed) {
            if !opts.smoke && !resil.tolerant {
                assert!(
                    p.hit_rate() > 0.0,
                    "skewed head keys must repeat enough to hit"
                );
            }
            dists.push(
                Value::object()
                    .with("distribution", dist.label())
                    .with("keys", dist.pool)
                    .with("hit_rate", p.hit_rate()),
            );
        }
        doc.set("distributions", dists.into_iter().collect::<Value>());
        phases.extend([warm, cold, saturation]);
        phases.extend(warm_skewed);
    }

    if let Some(shards) = opts.via_router {
        // Cluster phase: the same workload through a consistent-hash
        // router over a fresh shard roster. A healthy roster must serve
        // everything with zero failovers; the column records the
        // counters either way.
        let (phase, column) =
            spawn_cluster_and_drive(shards, opts.conns, opts.requests, NODES, &uniform, &resil);
        print_phase(&phase);
        assert_eq!(phase.errors, 0, "via-router run must not fail unclassified");
        if !resil.tolerant {
            assert_eq!(phase.ok, phase.requests, "router must serve every request");
        }
        doc.set("cluster", column);
        phases.push(phase);
    }

    doc.set(
        "phases",
        phases.iter().map(Phase::report).collect::<Value>(),
    );
    if opts.smoke {
        eprintln!("smoke mode: skipping results file");
    } else {
        xtree_json::write_pretty_file(&opts.out, &doc).expect("write results");
        eprintln!("wrote {}", opts.out);
    }
}

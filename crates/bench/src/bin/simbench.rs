//! `simbench` — machine-readable throughput record for the simulation
//! engine, written to `results/BENCH_sim.json`.
//!
//! For each host size it delivers the same seeded random batches twice:
//!
//! * **new** — structured `O(1)` router + the allocation-free [`Engine`]
//!   with reused scratch buffers;
//! * **legacy** — the pre-optimisation pipeline, reproduced verbatim: a
//!   dense BFS next-hop table plus a HashMap-keyed cycle loop rebuilt per
//!   batch. Only measurable up to the old 2^13-vertex table cap, which is
//!   exactly why `X(13)` reports the new engine alone.
//!
//! Run with: `cargo run --release -p xtree-bench --bin simbench`

use std::collections::HashMap;
use std::time::Instant;
use xtree_bench::seeded_batches;
use xtree_json::Value;
use xtree_sim::{BatchStats, Engine, Message, Network};
use xtree_topology::{Graph, XTree};

/// The engine as it was before this optimisation pass: per-cycle hash maps
/// keyed by `(from, to)` vertex pairs, all state rebuilt every batch.
fn run_batch_legacy(net: &Network, messages: &[Message]) -> BatchStats {
    let mut at: Vec<u32> = messages.iter().map(|m| m.src).collect();
    let mut done: Vec<bool> = messages.iter().map(|m| m.src == m.dst).collect();
    let ideal_cycles = messages
        .iter()
        .map(|m| net.distance(m.src, m.dst))
        .max()
        .unwrap_or(0);
    let mut remaining = done.iter().filter(|&&d| !d).count();
    let mut cycles = 0u32;
    let mut total_hops = 0u64;
    let mut link_traffic: HashMap<(u32, u32), u32> = HashMap::new();
    let mut claimed: HashMap<(u32, u32), usize> = HashMap::new();
    while remaining > 0 {
        cycles += 1;
        claimed.clear();
        for (i, m) in messages.iter().enumerate() {
            if done[i] {
                continue;
            }
            claimed
                .entry((at[i], net.next_hop(at[i], m.dst)))
                .or_insert(i);
        }
        for (i, m) in messages.iter().enumerate() {
            if done[i] {
                continue;
            }
            let from = at[i];
            let to = net.next_hop(from, m.dst);
            if claimed.get(&(from, to)) != Some(&i) {
                continue;
            }
            at[i] = to;
            total_hops += 1;
            *link_traffic.entry((from, to)).or_insert(0) += 1;
            if to == m.dst {
                done[i] = true;
                remaining -= 1;
            }
        }
    }
    BatchStats {
        cycles,
        ideal_cycles,
        messages: messages.len(),
        max_link_traffic: link_traffic.values().copied().max().unwrap_or(0),
        total_hops,
    }
}

struct Measured {
    elapsed_s: f64,
    cycles: u64,
    hops: u64,
}

impl Measured {
    fn to_json(&self, batches: usize) -> Value {
        Value::object()
            .with("elapsed_ms", self.elapsed_s * 1e3)
            .with("cycles_per_sec", self.cycles as f64 / self.elapsed_s)
            .with("batches_per_sec", batches as f64 / self.elapsed_s)
            .with("hops_per_sec", self.hops as f64 / self.elapsed_s)
    }
}

fn measure(rounds: &[Vec<Message>], mut run: impl FnMut(&[Message]) -> BatchStats) -> Measured {
    let start = Instant::now();
    let (mut cycles, mut hops) = (0u64, 0u64);
    for batch in rounds {
        let s = run(batch);
        cycles += u64::from(s.cycles);
        hops += s.total_hops;
    }
    Measured {
        elapsed_s: start.elapsed().as_secs_f64().max(1e-9),
        cycles,
        hops,
    }
}

fn main() {
    let seed = xtree_bench::seed_from_args(0x5EED_BEEF);
    let mut hosts = Vec::new();
    for (r, batches) in [(8u8, 192usize), (10, 64), (13, 16)] {
        let x = XTree::new(r);
        let n = x.node_count();
        let per_batch = n / 2;
        let rounds = seeded_batches(seed, n as u64, batches, per_batch);

        let net = Network::xtree(&x);
        let mut engine = Engine::new();
        // Warm the scratch buffers so the measurement sees the steady state.
        engine
            .run_batch(&net, &rounds[0])
            .expect("warmup batch failed");
        let new = measure(&rounds, |b| {
            engine.run_batch(&net, b).expect("batch failed")
        });

        // The legacy pipeline only exists below the old table cap.
        let legacy = (n <= 1 << 13).then(|| {
            let table_net = Network::new(x.graph().clone()).expect("connected host");
            measure(&rounds, |b| run_batch_legacy(&table_net, b))
        });

        let speedup = legacy.as_ref().map(|l| l.elapsed_s / new.elapsed_s);
        let tail = match (&legacy, speedup) {
            (Some(l), Some(s)) => {
                format!(", legacy {:.1} ms, speedup {s:.2}x", l.elapsed_s * 1e3)
            }
            _ => ", legacy skipped (host beyond the old routing-table cap)".into(),
        };
        eprintln!(
            "X({r}): {n} vertices, {batches} batches x {per_batch} msgs — new {:.1} ms{tail}",
            new.elapsed_s * 1e3,
        );

        let mut host = Value::object()
            .with("host", format!("X({r})"))
            .with("vertices", n)
            .with("batches", batches)
            .with("messages_per_batch", per_batch)
            .with("new", new.to_json(batches));
        match (&legacy, speedup) {
            (Some(l), Some(s)) => {
                host.set("legacy", l.to_json(batches));
                host.set("speedup", s);
            }
            _ => {
                host.set("legacy", Value::Null);
                host.set("speedup", Value::Null);
            }
        }
        hosts.push(host);
    }
    let doc = Value::object()
        .with("bench", "simulation-engine")
        .with("seed", seed)
        .with(
            "workload",
            "seeded uniform-random batches, reusable engine, structured X-tree router vs \
             legacy dense-table + HashMap cycle loop",
        )
        .with("hosts", Value::from(hosts));
    xtree_json::write_pretty_file("results/BENCH_sim.json", &doc).expect("write BENCH_sim.json");
    println!("{}", xtree_json::to_string_pretty(&doc));
}

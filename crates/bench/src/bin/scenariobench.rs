//! `scenariobench` — the scenario-matrix sweep, written to
//! `results/BENCH_scenarios.json`.
//!
//! Every cell of a (tree family × traffic model × size) matrix is scored
//! by `xtree-scenario`: seeded tree, Theorem-1 embedding, and both the
//! classic unweighted congestion and the traffic-weighted congestion
//! (demand units crossing the busiest host link). The run is serial and
//! free of wall-clock data, so the output file is byte-identical across
//! runs of the same spec and seed — CI diffs it to catch silent
//! non-determinism.
//!
//! * default: the published matrix (`ScenarioSpec::default_matrix`);
//! * `--smoke`: the small CI matrix — still ≥ 4 families × ≥ 3 traffic
//!   models, and it still writes the results file (the smoke job asserts
//!   its contents);
//! * `--spec FILE`: a plain-text or JSON spec (see `xtree-scenario`'s
//!   `spec` module docs for the format);
//! * `--seed N`: overrides the spec's base seed;
//! * `--out FILE`: overrides the output path.
//!
//! Run with: cargo run --release -p xtree-bench --bin scenariobench

use xtree_scenario::{matrix_to_json, run_matrix, ScenarioSpec};

struct Opts {
    spec: ScenarioSpec,
    seed: Option<u64>,
    out: String,
}

fn parse_opts() -> Opts {
    let mut spec = None;
    let mut smoke = false;
    let mut opts = Opts {
        spec: ScenarioSpec::default_matrix(),
        seed: None,
        out: "results/BENCH_scenarios.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--spec" => {
                let path = value("--spec");
                let text =
                    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
                spec = Some(ScenarioSpec::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}")));
            }
            "--seed" => opts.seed = Some(value("--seed").parse().expect("--seed")),
            "--out" => opts.out = value("--out"),
            other => panic!("unknown argument: {other}"),
        }
    }
    assert!(
        !(smoke && spec.is_some()),
        "--smoke and --spec are mutually exclusive"
    );
    if let Some(spec) = spec {
        opts.spec = spec;
    } else if smoke {
        opts.spec = ScenarioSpec::smoke();
    }
    if let Some(seed) = opts.seed {
        opts.spec.seed = seed;
    }
    opts
}

fn main() {
    let opts = parse_opts();
    let reports = run_matrix(&opts.spec).expect("scenario cell failed");
    assert!(!reports.is_empty(), "matrix must have cells");

    eprintln!(
        "{:<14} {:<12} {:>2} {:>6} {:>6} {:>9} {:>9} {:>4} {:>4}",
        "family", "traffic", "r", "nodes", "cong", "weighted", "demand", "dil", "load"
    );
    for c in &reports {
        eprintln!(
            "{:<14} {:<12} {:>2} {:>6} {:>6} {:>9} {:>9} {:>4} {:>4}",
            c.family,
            c.traffic,
            c.r,
            c.nodes,
            c.congestion,
            c.weighted_congestion,
            c.demand_total,
            c.dilation,
            c.max_load
        );
    }

    let doc = matrix_to_json(&opts.spec, &reports);
    xtree_json::write_pretty_file(&opts.out, &doc)
        .unwrap_or_else(|e| panic!("write {}: {e}", opts.out));
    eprintln!("wrote {} ({} cells)", opts.out, reports.len());
}

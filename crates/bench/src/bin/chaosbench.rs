//! Chaos benchmark: proves the serving path degrades into *typed*
//! failures — and does so deterministically — under seeded fault
//! injection and deadline pressure.
//!
//! Three phases, each designed so the numbers in the results doc are a
//! pure function of `(--seed, --profile, workload shape)`:
//!
//! 1. **zero-budget** — raw XWIRE1 frames carrying an already-spent
//!    deadline (`budget_us = 0`) at a clean server. Admission control
//!    must bounce every one with `ERR_DEADLINE` before any work queues;
//!    the count equals the request count exactly.
//! 2. **client-chaos** — the seeded chaos transport wraps the *client*
//!    side of each connection to a clean in-process server. Connections
//!    run strictly sequentially and no deadline is set, so every fault
//!    fires at a deterministic byte position and every outcome lands in
//!    the same typed bucket on every run — the full tally is recorded
//!    and byte-compared across runs in CI.
//! 3. **server-chaos-cluster** — a consistent-hash router over two
//!    shards whose *server* sides inject faults. Here timing does shape
//!    which bucket each request lands in (failover races health
//!    probing), so the doc records only the timing-independent
//!    invariants: the drive completed, nothing was unclassified, and
//!    client + router accounting covered every request.
//!
//! Wall-clock timings go to stderr only; `results/BENCH_chaos.json`
//! holds nothing that can drift between identical runs.
//!
//! Run with: cargo run --release -p xtree-bench --bin chaosbench

use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use xtree_json::Value;
use xtree_server::wire::{decode_response, read_frame, write_request_budget};
use xtree_server::{
    ChaosPlan, ChaosProfile, Client, ReconnectPolicy, Request, Response, Router, RouterConfig,
    Server, ServerConfig, ERR_BAD_REQUEST, ERR_DEADLINE, ERR_EXHAUSTED, ERR_SHUTTING_DOWN,
    ERR_UNREACHABLE,
};

/// `random-bst` in `TreeFamily::ALL`.
const FAMILY: u8 = 4;
/// Small guests: the bench measures fault classification, not embedding
/// throughput, so compute stays cheap.
const NODES: u64 = 496;
const SEED_BASE: u64 = 3000;

struct Opts {
    seed: u64,
    profile: String,
    conns: usize,
    requests: usize,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        seed: 1991,
        profile: "heavy".into(),
        conns: 4,
        requests: 75,
        out: "results/BENCH_chaos.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = || args.next().unwrap_or_else(|| panic!("{arg} needs a value"));
        match arg.as_str() {
            "--seed" => opts.seed = take().parse().expect("--seed takes a u64"),
            "--profile" => opts.profile = take(),
            "--conns" => opts.conns = take().parse().expect("--conns takes a count"),
            "--requests" => opts.requests = take().parse().expect("--requests takes a count"),
            "--out" => opts.out = take(),
            other => panic!("unknown argument: {other}"),
        }
    }
    assert!(opts.conns >= 1 && opts.requests >= 1, "need work to do");
    opts
}

/// The deterministic request stream for connection `conn`: 3:1
/// simulate:embed over a small repeated key pool, cycling workloads.
fn requests_for(conn: usize, count: usize) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let seed = SEED_BASE + ((conn * 31 + i) % 4) as u64;
            if i % 4 == 3 {
                Request::Embed {
                    family: FAMILY,
                    nodes: NODES,
                    seed,
                    theorem: 1,
                }
            } else {
                Request::Simulate {
                    family: FAMILY,
                    nodes: NODES,
                    seed,
                    theorem: 1,
                    workload: (i % 3) as u8,
                }
            }
        })
        .collect()
}

/// Where every request of a phase landed. `unclassified` must be zero in
/// every phase; the other buckets are phase-specific.
#[derive(Default)]
struct Tally {
    ok: usize,
    overloaded: usize,
    deadline: usize,
    unavailable: usize,
    transport: usize,
    corrupted: usize,
    unclassified: usize,
}

impl Tally {
    fn total(&self) -> usize {
        self.ok
            + self.overloaded
            + self.deadline
            + self.unavailable
            + self.transport
            + self.corrupted
            + self.unclassified
    }

    fn classify(&mut self, result: Result<Response, xtree_server::WireError>, chaos: bool) -> bool {
        match result {
            Ok(Response::EmbedOk { .. } | Response::SimulateOk { .. }) => self.ok += 1,
            Ok(Response::Overloaded { .. }) => self.overloaded += 1,
            Ok(Response::Error { code, .. }) if code == ERR_DEADLINE => self.deadline += 1,
            Ok(Response::Error { code, .. })
                if [ERR_UNREACHABLE, ERR_EXHAUSTED, ERR_SHUTTING_DOWN].contains(&code) =>
            {
                self.unavailable += 1;
            }
            Ok(Response::Error { code, .. }) if code == ERR_BAD_REQUEST && chaos => {
                // The peer bounced our garbled bytes; the stream is
                // desynced and the caller must resync with a fresh dial.
                self.corrupted += 1;
                return true;
            }
            Ok(other) => {
                self.unclassified += 1;
                eprintln!("chaosbench: unexpected response: {other:?}");
            }
            Err(e) if e.is_transport() => self.transport += 1,
            Err(_) if chaos => {
                self.corrupted += 1;
                return true;
            }
            Err(e) => {
                self.unclassified += 1;
                eprintln!("chaosbench: unexpected error: {e}");
            }
        }
        false
    }
}

/// Phase 1: frames that arrive already out of budget. Raw wire calls —
/// no client-side deadline short-circuit — so the *server's* admission
/// control is what is being measured.
fn phase_zero_budget(requests: usize) -> Value {
    let mut server = Server::spawn(&ServerConfig::default()).expect("bind server");
    let addr = server.local_addr();
    let start = Instant::now();

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    let mut deadline_rejected = 0usize;
    let mut other = 0usize;
    for req in requests_for(0, requests) {
        write_request_budget(&mut writer, &req, Some(0)).expect("write spent frame");
        let bytes = read_frame(&mut reader)
            .expect("read response")
            .expect("server must answer, not hang");
        match decode_response(&bytes).expect("typed response") {
            Response::Error { code, .. } if code == ERR_DEADLINE => deadline_rejected += 1,
            resp => {
                other += 1;
                eprintln!("chaosbench: zero-budget frame got {resp:?}");
            }
        }
    }
    drop((reader, writer));

    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.call(&Request::Shutdown).expect("shutdown");
    server.wait();
    eprintln!(
        "zero-budget: {requests} spent frames in {:.2}s — {deadline_rejected} ERR_DEADLINE",
        start.elapsed().as_secs_f64()
    );
    assert_eq!(
        deadline_rejected, requests,
        "every spent frame must bounce at admission"
    );
    Value::object()
        .with("phase", "zero-budget")
        .with("requests", requests)
        .with("deadline_rejected", deadline_rejected)
        .with("other", other)
        .with("all_typed", other == 0)
}

/// Phase 2: client-side chaos against a clean server, connections run
/// strictly one after another so the fault schedule — and therefore the
/// tally — is identical on every run.
fn phase_client_chaos(plan: ChaosPlan, conns: usize, requests: usize) -> Value {
    let mut server = Server::spawn(&ServerConfig::default()).expect("bind server");
    let addr = server.local_addr();
    let policy = ReconnectPolicy {
        max_retries: 8,
        backoff: xtree_sim::Backoff::Fixed(5),
    };
    let start = Instant::now();
    let mut tally = Tally::default();
    let mut injected = xtree_server::ChaosCounts::default();
    for conn in 0..conns {
        let chaos = plan.conn(conn as u64);
        let mut client = loop {
            match Client::connect_with_chaos(addr, Some(chaos.clone())) {
                Ok(c) => break c,
                // An injected refusal; the fault is consumed, dial again.
                Err(_) => continue,
            }
        };
        for req in requests_for(conn, requests) {
            let resync = tally.classify(client.call_retrying(&req, &policy), true);
            if resync {
                while client.reconnect().is_err() {}
            }
        }
        drop(client);
        injected.add(&chaos.lock().expect("chaos counts").counts());
    }

    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.call(&Request::Shutdown).expect("shutdown");
    server.wait();
    let total = conns * requests;
    eprintln!(
        "client-chaos: {total} reqs in {:.2}s — {} ok, {} transport, {} corrupted, {} unclassified",
        start.elapsed().as_secs_f64(),
        tally.ok,
        tally.transport,
        tally.corrupted,
        tally.unclassified
    );
    assert_eq!(tally.total(), total, "every request must be accounted for");
    assert_eq!(tally.unclassified, 0, "no failure may go unclassified");
    Value::object()
        .with("phase", "client-chaos")
        .with("requests", total)
        .with("ok", tally.ok)
        .with("overloaded", tally.overloaded)
        .with("deadline_rejected", tally.deadline)
        .with("unavailable", tally.unavailable)
        .with("transport_errors", tally.transport)
        .with("corrupted", tally.corrupted)
        .with("unclassified", tally.unclassified)
        .with(
            "injected",
            Value::object()
                .with("delays", injected.delays)
                .with("shorts", injected.shorts)
                .with("corrupts", injected.corrupts)
                .with("resets", injected.resets)
                .with("truncates", injected.truncates)
                .with("refusals", injected.refusals),
        )
}

/// Phase 3: server-side chaos on every shard behind a clean router.
/// Failover timing makes the per-bucket split run-dependent, so only
/// timing-independent invariants are recorded.
fn phase_server_chaos_cluster(plan: ChaosPlan, conns: usize, requests: usize) -> Value {
    let shard_config = ServerConfig {
        chaos: Some(plan),
        ..ServerConfig::default()
    };
    let mut servers: Vec<Server> = (0..2)
        .map(|_| Server::spawn(&shard_config).expect("bind shard"))
        .collect();
    let mut router = Router::spawn(&RouterConfig {
        shards: servers.iter().map(Server::local_addr).collect(),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.local_addr();

    let start = Instant::now();
    let budget = Duration::from_secs(5);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|conn| {
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    let mut client = Client::connect(addr).expect("connect to router");
                    let policy = ReconnectPolicy::default();
                    for req in requests_for(conn, requests) {
                        let result = client.call_retrying_deadline(&req, &policy, Some(budget));
                        if tally.classify(result, true) {
                            while client.reconnect().is_err() {}
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut tally = Tally::default();
    for t in &tallies {
        tally.ok += t.ok;
        tally.overloaded += t.overloaded;
        tally.deadline += t.deadline;
        tally.unavailable += t.unavailable;
        tally.transport += t.transport;
        tally.corrupted += t.corrupted;
        tally.unclassified += t.unclassified;
    }
    let metrics = router.metrics();
    eprintln!(
        "server-chaos-cluster: {} reqs in {:.2}s — {} ok, {} deadline, {} unavailable, \
         {} transport, {} corrupted ({} routed, {} failed, {} replayed)",
        conns * requests,
        start.elapsed().as_secs_f64(),
        tally.ok,
        tally.deadline,
        tally.unavailable,
        tally.transport,
        tally.corrupted,
        metrics.routed_total(),
        metrics.failed_total(),
        metrics.replayed_total(),
    );

    // Drain: the router forwards Shutdown to every shard; under server
    // chaos the acknowledgement itself can be eaten, so fall back to
    // dropping the processes directly.
    if let Ok(mut client) = Client::connect(addr) {
        let _ = client.call_retrying(&Request::Shutdown, &ReconnectPolicy::default());
    }
    router.wait();
    for s in &mut servers {
        s.wait();
    }

    let total = conns * requests;
    assert_eq!(tally.total(), total, "every request must be accounted for");
    assert_eq!(tally.unclassified, 0, "no failure may go unclassified");
    Value::object()
        .with("phase", "server-chaos-cluster")
        .with("shards", 2)
        .with("requests", total)
        .with("completed", true)
        .with("unclassified", tally.unclassified)
        .with("all_accounted", tally.total() == total)
}

fn main() {
    let opts = parse_opts();
    let profile = ChaosProfile::parse(&opts.profile).unwrap_or_else(|e| panic!("--profile: {e}"));
    let plan = ChaosPlan::new(opts.seed, profile);

    let phases = vec![
        phase_zero_budget(opts.conns * opts.requests),
        phase_client_chaos(plan, opts.conns, opts.requests),
        phase_server_chaos_cluster(plan, opts.conns, opts.requests),
    ];

    let doc = Value::object()
        .with("bench", "chaos")
        .with("chaos_seed", opts.seed)
        .with("chaos_profile", opts.profile.as_str())
        .with("conns", opts.conns)
        .with("requests_per_conn", opts.requests)
        .with("phases", phases.into_iter().collect::<Value>());
    xtree_json::write_pretty_file(&opts.out, &doc).expect("write results");
    eprintln!("wrote {}", opts.out);
}

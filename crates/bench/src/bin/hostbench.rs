//! `hostbench` — the cross-host embedding matrix, written to
//! `results/BENCH_hosts.json`.
//!
//! Every cell embeds one seeded guest tree with Theorem 1 and then scores
//! the *same* embedding on all three servable host topologies — the
//! X-tree it was built for, the hypercube it composes into (Lemma 3 ∘
//! Theorem 1), and Theorem 4's universal graph `G_n` — through the one
//! generic `Host` pipeline the server uses: dilation as the max routed
//! distance over guest edges, max vertex load, and link congestion under
//! shortest-path routing. Side by side, the columns are the paper's
//! trade-off made measurable: the hypercube pays one extra hop of
//! dilation (Theorem 3), the universal graph pays bounded degree 415 for
//! hosting *every* `n`-node binary tree (Theorem 4).
//!
//! The run is serial and free of wall-clock data, so the output file is
//! byte-identical across runs of the same seed — CI runs it twice and
//! diffs (`host-smoke`).
//!
//! * `--smoke`: the small CI matrix (still all three hosts, still writes
//!   the results file);
//! * `--seed N`: moves the seeded guest trees (DESIGN.md §15);
//! * `--out FILE`: overrides the output path.
//!
//! Run with: cargo run --release -p xtree-bench --bin hostbench

use xtree_core::theorem1;
use xtree_host::{guest_map, AnyHost, Host, HOST_LABELS};
use xtree_json::Value;
use xtree_sim::{compute_load, congestion};
use xtree_trees::TreeFamily;

/// Default seed, so flag-less runs reproduce the published matrix.
const DEFAULT_SEED: u64 = 0x5EED_B057;

/// Guest families: the two deterministic extremes (path, complete), the
/// half-and-half caterpillar, and two random shapes.
const FAMILIES: [TreeFamily; 5] = [
    TreeFamily::Path,
    TreeFamily::LeftComplete,
    TreeFamily::Caterpillar,
    TreeFamily::RandomBst,
    TreeFamily::Balanced,
];

struct Opts {
    smoke: bool,
    seed: u64,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        seed: DEFAULT_SEED,
        out: "results/BENCH_hosts.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--seed" => opts.seed = value("--seed").parse().expect("--seed"),
            "--out" => opts.out = value("--out"),
            other => panic!("unknown argument: {other}"),
        }
    }
    opts
}

/// One host column of a cell: the embedding scored on host `tag`.
fn host_column(
    tag: u8,
    label: &str,
    tree: &xtree_trees::BinaryTree,
    emb: &xtree_core::XEmbedding,
) -> Value {
    let Some(net) = AnyHost::for_xtree_height(tag, emb.height) else {
        // The universal graph is built for heights up to its published
        // cap; record the hole rather than silently shrinking the matrix.
        return Value::object().with("host", label).with("available", false);
    };
    let map = guest_map(tag, emb).expect("tag comes from HOST_LABELS");
    let dilation = tree
        .edges()
        .map(|(p, c)| net.distance(map[p.index()], map[c.index()]))
        .max()
        .unwrap_or(0);
    let max_load = compute_load(&net, tree, &map);
    let cong = congestion(&net, tree, &map).expect("connected host");
    Value::object()
        .with("host", label)
        .with("available", true)
        .with("vertices", net.node_count())
        .with("degree_bound", net.degree_bound())
        .with("expansion", net.node_count() as f64 / tree.len() as f64)
        .with("dilation", dilation)
        .with("max_load", max_load)
        .with("congestion", cong)
}

fn main() {
    let opts = parse_opts();
    let sizes: &[usize] = if opts.smoke {
        &[112, 496]
    } else {
        &[496, 1008, 2032]
    };

    eprintln!(
        "{:<12} {:>6} {:>3}  {:<10} {:>9} {:>6} {:>9} {:>4} {:>4} {:>6}",
        "family", "nodes", "r", "host", "vertices", "deg≤", "expand", "dil", "load", "cong"
    );

    let mut cells = Vec::new();
    for family in FAMILIES {
        for (i, &n) in sizes.iter().enumerate() {
            // One seeded guest per cell: the stream index keeps cells
            // independent, the base seed keeps the whole matrix pinned.
            let cell_seed = opts
                .seed
                .wrapping_add((i as u64) << 8)
                .wrapping_add(family.name().len() as u64);
            let tree = family.generate_seeded(n, cell_seed);
            let emb = theorem1::embed(&tree).emb;
            let height = emb.height;
            let mut hosts = Vec::new();
            for (tag, label) in HOST_LABELS.iter().enumerate() {
                let col = host_column(tag as u8, label, &tree, &emb);
                if col.get("available").as_bool() == Some(true) {
                    eprintln!(
                        "{:<12} {:>6} {:>3}  {:<10} {:>9} {:>6} {:>9.3} {:>4} {:>4} {:>6}",
                        family.name(),
                        n,
                        height,
                        label,
                        col.get("vertices").as_u64().unwrap_or(0),
                        col.get("degree_bound").as_u64().unwrap_or(0),
                        col.get("expansion").as_f64().unwrap_or(0.0),
                        col.get("dilation").as_u64().unwrap_or(0),
                        col.get("max_load").as_u64().unwrap_or(0),
                        col.get("congestion").as_u64().unwrap_or(0),
                    );
                } else {
                    eprintln!(
                        "{:<12} {:>6} {:>3}  {:<10} (unavailable at this height)",
                        family.name(),
                        n,
                        height,
                        label
                    );
                }
                hosts.push(col);
            }
            cells.push(
                Value::object()
                    .with("family", family.name())
                    .with("nodes", n)
                    .with("xtree_height", height)
                    .with("seed", cell_seed)
                    .with("hosts", hosts.into_iter().collect::<Value>()),
            );
        }
    }

    let count = cells.len();
    let doc = Value::object()
        .with("bench", "hosts")
        .with("seed", opts.seed)
        .with(
            "hosts",
            HOST_LABELS
                .iter()
                .map(|&l| Value::from(l))
                .collect::<Value>(),
        )
        .with("cells", cells.into_iter().collect::<Value>());
    xtree_json::write_pretty_file(&opts.out, &doc)
        .unwrap_or_else(|e| panic!("write {}: {e}", opts.out));
    eprintln!(
        "wrote {} ({count} cells x {} hosts)",
        opts.out,
        HOST_LABELS.len()
    );
}

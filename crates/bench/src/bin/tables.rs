//! Regenerates every experiment table of the reproduction.
//!
//! Usage:
//!   tables all          — every experiment (T1–T4, L1–L3, IO, F1, F2, D, B1, B2, S1)
//!   tables t1 l2 …      — selected experiments
//!   tables --json all   — machine-readable output
//!
//! EXPERIMENTS.md records the paper-vs-measured comparison produced here.

use xtree_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<String> = args.into_iter().filter(|a| a != "--json").collect();
    if ids.is_empty() {
        eprintln!(
            "usage: tables [--json] all | t1 t2 t3 t4 l1 l2 l3 io f1 f2 delta b1 b2 a1 s1 s2"
        );
        std::process::exit(2);
    }
    let ids: Vec<String> = if ids.iter().any(|a| a == "all") {
        let mut v: Vec<String> = experiments::ALL_IDS.iter().map(|s| s.to_string()).collect();
        v.extend(experiments::SLOW_IDS.iter().map(|s| s.to_string()));
        v
    } else {
        ids
    };
    let mut tables = Vec::new();
    for id in &ids {
        match experiments::run(&id.to_lowercase()) {
            Some(t) => tables.push(t),
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
    if json {
        let doc: xtree_json::Value = tables.iter().map(|t| t.to_json()).collect();
        println!("{}", xtree_json::to_string_pretty(&doc));
    } else {
        for t in &tables {
            println!("{}", t.render());
        }
    }
}

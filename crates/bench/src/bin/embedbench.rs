//! `embedbench` — the Theorem-1 cold-path record, written to
//! `results/BENCH_embed.json`.
//!
//! For each size on the curve X(6)–X(12) it builds the same seeded
//! `random-bst` guest three ways:
//!
//! * **legacy** — the frozen pre-refactor builder
//!   (`xtree_bench::legacy_theorem1`), timed as the reference;
//! * **serial** — the rebuilt hot path (`embed_with_scratch`,
//!   `Parallel::Off`) through one long-lived scratch, the serving-layer
//!   cache-miss configuration;
//! * **parallel** — the same with `Parallel::Force`, exercising the
//!   two-phase ADJUST on worker threads.
//!
//! Every rep asserts the three embeddings are identical (the refactor's
//! byte-identical contract), reps are interleaved and summarised by their
//! median, and a counting global allocator reports allocations per build —
//! the number the refactor drives toward zero on the steady-state path.
//!
//! **`--gate`** is the CI perf-regression mode (the telbench ±2% pattern,
//! generalised to be machine-independent): at the serving size X(6) it
//! requires the serial rebuild to beat legacy by [`GATE_MIN_SPEEDUP`] and
//! the steady-state allocation count to stay within [`GATE_ALLOC_SLACK`]
//! of the checked-in `results/BENCH_embed_baseline.json`. Wall-clock is
//! only ever compared *within* one run, never across machines.
//! `--write-baseline` refreshes that baseline file; `--smoke` shrinks the
//! sweep and skips the results file.
//!
//! Run with: `cargo run --release -p xtree-bench --bin embedbench`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;
use xtree_bench::legacy_theorem1::embed_legacy;
use xtree_core::theorem1::{embed_with_scratch, EmbedOptions, Parallel, Theorem1Scratch};
use xtree_json::Value;
use xtree_trees::generate::{theorem1_size, TreeFamily};
use xtree_trees::BinaryTree;

/// Gate: minimum cold-build speedup of the rebuilt serial path over the
/// frozen legacy builder at the serving size (target from the issue: 2x;
/// the gate trips below 1.5x so scheduler noise cannot flake CI).
const GATE_MIN_SPEEDUP: f64 = 1.5;
/// Gate: allowed growth of steady-state allocations per build over the
/// checked-in baseline (counts, not bytes — fully machine-independent).
const GATE_ALLOC_SLACK: f64 = 1.10;
/// The serving size: X(6), 2032 nodes — what a cache miss builds.
const SERVING_R: u8 = 6;

/// Counting allocator: one relaxed increment per `alloc`/`realloc`. The
/// count is what the flat-SoA refactor is measured by — a steady-state
/// build through a warm scratch should allocate O(result), not O(rounds).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of one run of `f`.
fn count_allocs<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCS.load(Relaxed);
    let out = f();
    (ALLOCS.load(Relaxed) - before, out)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct SizeResult {
    r: u8,
    nodes: usize,
    legacy_p50_us: f64,
    serial_p50_us: f64,
    parallel_p50_us: f64,
    allocs_legacy: u64,
    allocs_serial: u64,
    allocs_parallel: u64,
}

impl SizeResult {
    fn speedup_serial(&self) -> f64 {
        self.legacy_p50_us / self.serial_p50_us
    }

    fn report(&self) -> Value {
        Value::object()
            .with("host", format!("X({})", self.r))
            .with("nodes", self.nodes)
            .with("legacy_p50_us", self.legacy_p50_us)
            .with("serial_p50_us", self.serial_p50_us)
            .with("parallel_p50_us", self.parallel_p50_us)
            .with("speedup_serial", self.speedup_serial())
            .with(
                "speedup_parallel",
                self.legacy_p50_us / self.parallel_p50_us,
            )
            .with("allocs_legacy", self.allocs_legacy)
            .with("allocs_serial", self.allocs_serial)
            .with("allocs_parallel", self.allocs_parallel)
    }
}

fn serving_tree(r: u8, base_seed: u64) -> BinaryTree {
    // Match the serving layer's key shape: random-bst, per-rank seed
    // derived from the base (default base = the historical constant).
    TreeFamily::RandomBst.generate_seeded(theorem1_size(r), base_seed + u64::from(r))
}

fn bench_size(r: u8, reps: usize, base_seed: u64) -> SizeResult {
    let tree = serving_tree(r, base_seed);
    let nodes = tree.len();
    let serial = EmbedOptions {
        parallel: Parallel::Off,
        ..Default::default()
    };
    let forced = EmbedOptions {
        parallel: Parallel::Force,
        ..Default::default()
    };
    // Long-lived scratches: the timed serial/parallel builds run in the
    // steady state, exactly like a worker thread's cache misses.
    let mut s1 = Theorem1Scratch::new();
    let mut s2 = Theorem1Scratch::new();
    let warm = embed_with_scratch(&tree, serial, &mut s1);
    embed_with_scratch(&tree, forced, &mut s2);

    let mut t_legacy = Vec::with_capacity(reps);
    let mut t_serial = Vec::with_capacity(reps);
    let mut t_parallel = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let a = embed_legacy(&tree, EmbedOptions::default());
        t_legacy.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let b = embed_with_scratch(&tree, serial, &mut s1);
        t_serial.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let c = embed_with_scratch(&tree, forced, &mut s2);
        t_parallel.push(t0.elapsed().as_secs_f64());

        // The byte-identical contract, checked on every rep.
        assert_eq!(a.emb, warm.emb, "X({r}): legacy embedding diverged");
        assert_eq!(b.emb, warm.emb, "X({r}): serial embedding diverged");
        assert_eq!(c.emb, warm.emb, "X({r}): parallel embedding diverged");
        assert_eq!(a.log, b.log, "X({r}): build logs diverged");
    }

    let (allocs_legacy, _) = count_allocs(|| embed_legacy(&tree, EmbedOptions::default()));
    let (allocs_serial, _) = count_allocs(|| embed_with_scratch(&tree, serial, &mut s1));
    let (allocs_parallel, _) = count_allocs(|| embed_with_scratch(&tree, forced, &mut s2));

    SizeResult {
        r,
        nodes,
        legacy_p50_us: median(&mut t_legacy) * 1e6,
        serial_p50_us: median(&mut t_serial) * 1e6,
        parallel_p50_us: median(&mut t_parallel) * 1e6,
        allocs_legacy,
        allocs_serial,
        allocs_parallel,
    }
}

fn print_size(s: &SizeResult) {
    eprintln!(
        "X({}): {} nodes — legacy {:.0}us, serial {:.0}us ({:.2}x), parallel {:.0}us, \
         allocs {} -> {} per build",
        s.r,
        s.nodes,
        s.legacy_p50_us,
        s.serial_p50_us,
        s.speedup_serial(),
        s.parallel_p50_us,
        s.allocs_legacy,
        s.allocs_serial,
    );
}

fn read_baseline(path: &str) -> u64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("gate needs the checked-in {path}: {e}"));
    let doc = xtree_json::from_str(&text).expect("baseline must parse");
    doc.get("serving")
        .get("allocs_serial")
        .as_u64()
        .expect("baseline must carry serving.allocs_serial")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate = args.iter().any(|a| a == "--gate");
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let base_seed = xtree_bench::seed_from_args(0x5EED_E3B3);
    let baseline_path = "results/BENCH_embed_baseline.json";

    let (sizes, reps): (&[u8], usize) = if smoke {
        (&[SERVING_R], 2)
    } else if gate || write_baseline {
        (&[SERVING_R], 9)
    } else {
        (&[6, 7, 8, 9, 10, 11, 12], 9)
    };

    let mut results = Vec::new();
    for &r in sizes {
        let reps = if r >= 11 { 3.min(reps) } else { reps };
        let s = bench_size(r, reps, base_seed);
        print_size(&s);
        results.push(s);
    }
    let serving = results
        .iter()
        .find(|s| s.r == SERVING_R)
        .expect("sweep always includes the serving size");

    let doc = Value::object()
        .with("bench", "embed-cold-path")
        .with("seed", base_seed)
        .with(
            "workload",
            "seeded random-bst guests, one Theorem-1 build per rep; legacy (frozen pre-refactor \
             builder) vs rebuilt serial (reused scratch) vs forced-parallel ADJUST; median over \
             interleaved reps; allocation counts from a counting global allocator",
        )
        .with("reps", reps)
        .with(
            "sizes",
            results.iter().map(SizeResult::report).collect::<Value>(),
        )
        .with(
            "acceptance",
            Value::object()
                .with("host", format!("X({SERVING_R})"))
                .with("cold_speedup_serial", serving.speedup_serial())
                .with("target_speedup", 2.0)
                .with("gate_min_speedup", GATE_MIN_SPEEDUP)
                .with("allocs_serial", serving.allocs_serial)
                .with("allocs_legacy", serving.allocs_legacy),
        );

    if write_baseline {
        let base = Value::object().with("bench", "embed-baseline").with(
            "serving",
            Value::object()
                .with("host", format!("X({SERVING_R})"))
                .with("allocs_serial", serving.allocs_serial),
        );
        xtree_json::write_pretty_file(baseline_path, &base).expect("write baseline");
        eprintln!("wrote {baseline_path}");
        return;
    }

    if gate {
        let base_allocs = read_baseline(baseline_path);
        let limit = (base_allocs as f64 * GATE_ALLOC_SLACK) as u64;
        eprintln!(
            "gate: speedup {:.2}x (min {GATE_MIN_SPEEDUP}), allocs {} (baseline {}, limit {})",
            serving.speedup_serial(),
            serving.allocs_serial,
            base_allocs,
            limit,
        );
        assert!(
            serving.speedup_serial() >= GATE_MIN_SPEEDUP,
            "perf gate: serial rebuild is only {:.2}x over legacy at X({SERVING_R}) \
             (minimum {GATE_MIN_SPEEDUP}x)",
            serving.speedup_serial(),
        );
        assert!(
            serving.allocs_serial <= limit,
            "perf gate: {} allocs per steady-state build exceeds baseline {} (+{:.0}%)",
            serving.allocs_serial,
            base_allocs,
            (GATE_ALLOC_SLACK - 1.0) * 100.0,
        );
        eprintln!("gate: pass");
        return;
    }

    if smoke {
        eprintln!("smoke mode: skipping results file");
    } else {
        xtree_json::write_pretty_file("results/BENCH_embed.json", &doc).expect("write results");
        eprintln!("wrote results/BENCH_embed.json");
    }
    println!("{}", xtree_json::to_string_pretty(&doc));
}

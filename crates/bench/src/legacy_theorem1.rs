//! Verbatim pre-refactor Theorem-1 builder, kept as the comparison
//! baseline for the perf rebuild of `xtree_core::theorem1`.
//!
//! This is the builder as it stood before the SoA/scratch/parallel
//! rework (commit 4f8b7c4), concatenated from the old
//! `theorem1/{mod,state,adjust,split,trace}.rs` with imports adjusted to
//! use the public `xtree_core` types. Two consumers depend on it:
//!
//! * `tests/golden_vs_legacy.rs` — full structural equality of
//!   `XEmbedding`, trace, mass trace, and `BuildLog` between the live
//!   builder and this copy (the byte-identical contract);
//! * `bin/embedbench.rs` — the cold-build speedup is measured against
//!   this copy, not against a checked-in wall-clock number, so the CI
//!   gate is machine-independent.
//!
//! Do not "improve" this module; its value is being frozen.

use smallvec::SmallVec;
use std::collections::HashMap;
use xtree_core::theorem1::{BuildLog, EmbedOptions, Theorem1Embedding};
use xtree_core::XEmbedding;
use xtree_topology::Address;
use xtree_trees::{lemma2_with, BinaryTree, NodeId, Separation, SeparatorScratch};

type IntId = u32;

#[derive(Clone, Debug)]
struct Interval {
    entry: NodeId,
    designated: SmallVec<[(NodeId, Address); 2]>,
    size: u32,
}

impl Interval {
    fn lemma_designated(&self) -> (NodeId, NodeId) {
        let r1 = self.designated[0].0;
        let r2 = self
            .designated
            .last()
            .expect("intervals have ≥ 1 designated")
            .0;
        (r1, r2)
    }

    fn min_anchor_level(&self) -> u8 {
        self.designated
            .iter()
            .map(|&(_, a)| a.level())
            .min()
            .unwrap()
    }
}

struct Builder<'t> {
    tree: &'t BinaryTree,
    opts: EmbedOptions,
    placed: Vec<bool>,
    assign: Vec<Address>,
    count: Vec<u16>,
    intervals: Vec<Option<Interval>>,
    att: HashMap<Address, Vec<IntId>>,
    mark: Vec<u32>,
    epoch: u32,
    scratch: SeparatorScratch,
    log: BuildLog,
    trace: Vec<Vec<u64>>,
    mass_trace: Vec<(u64, u64)>,
}

impl<'t> Builder<'t> {
    fn new(tree: &'t BinaryTree, r: u8, opts: EmbedOptions) -> Self {
        let n = tree.len();
        Builder {
            tree,
            opts,
            placed: vec![false; n],
            assign: vec![Address::ROOT; n],
            count: vec![0; (1usize << (r + 1)) - 1],
            intervals: Vec::new(),
            att: HashMap::new(),
            mark: vec![0; n],
            epoch: 0,
            scratch: SeparatorScratch::new(n),
            log: BuildLog::default(),
            trace: Vec::new(),
            mass_trace: Vec::new(),
        }
    }

    fn cap(&self) -> u16 {
        self.opts.capacity
    }

    fn free(&self, a: Address) -> u16 {
        self.cap() - self.count[a.heap_id()]
    }

    fn place(&mut self, v: NodeId, at: Address) {
        debug_assert!(!self.placed[v.index()], "{v:?} placed twice");
        assert!(
            self.count[at.heap_id()] < self.cap(),
            "capacity exceeded at {at}"
        );
        self.placed[v.index()] = true;
        self.assign[v.index()] = at;
        self.count[at.heap_id()] += 1;
    }

    fn attached_mass(&self, a: Address) -> u64 {
        self.att
            .get(&a)
            .map(|ids| {
                ids.iter()
                    .map(|&id| self.intervals[id as usize].as_ref().unwrap().size as u64)
                    .sum()
            })
            .unwrap_or(0)
    }

    fn attach(&mut self, id: IntId, at: Address) {
        self.att.entry(at).or_default().push(id);
    }

    fn detach_all(&mut self, at: Address) -> Vec<IntId> {
        self.att.remove(&at).unwrap_or_default()
    }

    fn interval(&self, id: IntId) -> &Interval {
        self.intervals[id as usize]
            .as_ref()
            .expect("stale interval handle")
    }

    fn remove_interval(&mut self, id: IntId) -> Interval {
        self.intervals[id as usize]
            .take()
            .expect("stale interval handle")
    }

    fn new_interval(&mut self, iv: Interval) -> IntId {
        self.intervals.push(Some(iv));
        (self.intervals.len() - 1) as IntId
    }

    fn flood(&mut self, start: NodeId) -> (Vec<NodeId>, SmallVec<[(NodeId, Address); 2]>) {
        let mut nodes = vec![start];
        let mut designated: SmallVec<[(NodeId, Address); 2]> = SmallVec::new();
        self.mark[start.index()] = self.epoch;
        let mut head = 0;
        while head < nodes.len() {
            let v = nodes[head];
            head += 1;
            let mut anchor: Option<Address> = None;
            for w in self.tree.neighbors(v) {
                if self.placed[w.index()] {
                    let a = self.assign[w.index()];
                    anchor = Some(match anchor {
                        Some(b) if b.level() <= a.level() => b,
                        _ => a,
                    });
                } else if self.mark[w.index()] != self.epoch {
                    self.mark[w.index()] = self.epoch;
                    nodes.push(w);
                }
            }
            if let Some(a) = anchor {
                designated.push((v, a));
            }
        }
        if designated.len() > 2 {
            self.log.multi_designated_components += 1;
        }
        (nodes, designated)
    }

    fn begin_sweep(&mut self) {
        self.epoch += 1;
    }

    fn rebuild_components<F>(&mut self, newly: &[NodeId], mut attach_for: F)
    where
        F: FnMut(&[NodeId]) -> Address,
    {
        self.begin_sweep();
        for &p in newly {
            for u in self.tree.neighbors(p) {
                if self.placed[u.index()] || self.mark[u.index()] == self.epoch {
                    continue;
                }
                let (nodes, designated) = self.flood(u);
                debug_assert!(!designated.is_empty());
                let at = attach_for(&nodes);
                let iv = Interval {
                    entry: nodes[0],
                    designated,
                    size: nodes.len() as u32,
                };
                let id = self.new_interval(iv);
                self.attach(id, at);
            }
        }
    }

    fn apply_separation(
        &mut self,
        id: IntId,
        sep: &Separation,
        v1: Address,
        v2: Address,
        att1: Address,
        att2: Address,
    ) {
        let _ = self.remove_interval(id);
        for &v in &sep.s1 {
            self.place(v, v1);
        }
        for &v in &sep.s2 {
            self.place(v, v2);
        }
        let part2: std::collections::HashSet<NodeId> = sep.part2.iter().copied().collect();
        let mut newly: Vec<NodeId> = sep.s1.clone();
        newly.extend_from_slice(&sep.s2);
        self.rebuild_components(&newly, |nodes| {
            if part2.contains(&nodes[0]) {
                att2
            } else {
                att1
            }
        });
    }

    fn absorb_interval(&mut self, id: IntId, at: Address) {
        let iv = self.remove_interval(id);
        self.begin_sweep();
        let (nodes, _) = self.flood(iv.entry);
        debug_assert_eq!(nodes.len() as u32, iv.size);
        for &v in &nodes {
            self.place(v, at);
        }
    }

    fn take_crown(&mut self, id: IntId, k: u32, place_at: Address, attach_rest_to: Address) {
        let at = place_at;
        let iv = self.remove_interval(id);
        assert!(
            k >= 1 && k < iv.size,
            "crown of {k} from interval of {}",
            iv.size
        );
        self.begin_sweep();
        let mut order: Vec<NodeId> = Vec::with_capacity(k as usize);
        for &(d, _) in &iv.designated {
            if order.len() == k as usize {
                break;
            }
            if self.mark[d.index()] != self.epoch {
                self.mark[d.index()] = self.epoch;
                order.push(d);
            }
        }
        let mut head = 0;
        while order.len() < k as usize {
            debug_assert!(head < order.len(), "crown BFS starved");
            let v = order[head];
            head += 1;
            for w in self.tree.neighbors(v) {
                if order.len() == k as usize {
                    break;
                }
                if !self.placed[w.index()] && self.mark[w.index()] != self.epoch {
                    self.mark[w.index()] = self.epoch;
                    order.push(w);
                }
            }
        }
        for &v in &order {
            self.place(v, at);
        }
        self.rebuild_components(&order.clone(), |_| attach_rest_to);
    }

    fn total_unplaced(&self) -> u64 {
        self.placed.iter().filter(|&&p| !p).count() as u64
    }
}

// ---- ADJUST ----

struct Fenwick {
    t: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick { t: vec![0; n + 1] }
    }

    fn add(&mut self, mut idx: usize, delta: i64) {
        idx += 1;
        while idx < self.t.len() {
            self.t[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
    }

    fn prefix(&self, mut idx: usize) -> i64 {
        let mut s = 0;
        while idx > 0 {
            s += self.t[idx];
            idx -= idx & idx.wrapping_neg();
        }
        s
    }

    fn range(&self, lo: usize, hi: usize) -> i64 {
        self.prefix(hi + 1) - self.prefix(lo)
    }
}

fn adjust_phase(b: &mut Builder<'_>, i: u8) {
    if i < 2 || !b.opts.adjust {
        return;
    }
    let l = i - 1;
    let width = 1usize << l;
    let mut fw = Fenwick::new(width);
    for a in Address::level_iter(l) {
        let m = b.attached_mass(a);
        if m > 0 {
            fw.add(a.index() as usize, m as i64);
        }
    }
    for j in 0..=(i - 2) {
        for alpha in Address::level_iter(j) {
            adjust_pair(b, &mut fw, alpha, i);
        }
    }
}

fn movable(b: &Builder<'_>, id: IntId, bd: Address) -> bool {
    let parent = bd.parent();
    b.interval(id)
        .designated
        .iter()
        .all(|&(_, anchor)| anchor == bd || Some(anchor) == parent)
}

fn adjust_pair(b: &mut Builder<'_>, fw: &mut Fenwick, alpha: Address, i: u8) {
    let l = i - 1;
    let a0 = alpha.child(0);
    let a1 = alpha.child(1);
    let range = |side: Address| {
        (
            side.leftmost_descendant(l).index() as usize,
            side.rightmost_descendant(l).index() as usize,
        )
    };
    let (lo0, hi0) = range(a0);
    let (lo1, hi1) = range(a1);
    let m0 = fw.range(lo0, hi0);
    let m1 = fw.range(lo1, hi1);
    let delta = (m0 - m1).abs() / 2;
    if delta == 0 {
        return;
    }
    let donor_left = m0 > m1;
    let (bd, br) = if donor_left {
        (a0.rightmost_descendant(l), a1.leftmost_descendant(l))
    } else {
        (a1.leftmost_descendant(l), a0.rightmost_descendant(l))
    };
    debug_assert!(bd.successor() == Some(br) || br.successor() == Some(bd));
    let (d0, r0) = if donor_left {
        (bd.child(1), br.child(0))
    } else {
        (bd.child(0), br.child(1))
    };
    b.log.adjust_calls += 1;

    let mut remaining = delta as u64;
    loop {
        if remaining == 0 {
            break;
        }
        let Some((pos, id)) = b
            .att
            .get(&bd)
            .into_iter()
            .flatten()
            .enumerate()
            .filter(|&(_, &id)| movable(b, id, bd))
            .max_by_key(|&(_, &id)| b.interval(id).size)
            .map(|(p, &id)| (p, id))
        else {
            break;
        };
        let size = b.interval(id).size as u64;
        if size <= remaining && b.opts.whole_moves {
            b.att.get_mut(&bd).unwrap().swap_remove(pos);
            b.attach(id, r0);
            fw.add(bd.index() as usize, -(size as i64));
            fw.add(br.index() as usize, size as i64);
            remaining -= size;
            b.log.adjust_whole_moves += 1;
        } else {
            if b.free(d0) < 5 || b.free(r0) < 5 {
                break;
            }
            let iv = b.interval(id);
            let (r1, r2) = iv.lemma_designated();
            let delta = remaining.min(size) as u32;
            let sep = lemma2_with(&mut b.scratch, b.tree, &b.placed, r1, r2, delta);
            b.att.get_mut(&bd).unwrap().swap_remove(pos);
            let moved = sep.part2.len() as i64;
            b.apply_separation(id, &sep, d0, r0, d0, r0);
            fw.add(bd.index() as usize, -moved);
            fw.add(br.index() as usize, moved);
            b.log.adjust_splits += 1;
            break;
        }
    }
}

// ---- SPLIT ----

fn split_phase(b: &mut Builder<'_>, i: u8) {
    let l = i - 1;
    for alpha in Address::level_iter(l) {
        assign_children(b, alpha);
    }
    for leaf in Address::level_iter(i) {
        force_due_placements(b, leaf, i);
    }
    record_mass(b, i);
    for leaf in Address::level_iter(i) {
        fill(b, leaf, i);
    }
}

fn assign_children(b: &mut Builder<'_>, alpha: Address) {
    let c0 = alpha.child(0);
    let c1 = alpha.child(1);
    let mut ids = b.detach_all(alpha);
    ids.sort_unstable_by_key(|&id| std::cmp::Reverse(b.interval(id).size));
    let mut w0 = b.count[c0.heap_id()] as u64 + b.attached_mass(c0);
    let mut w1 = b.count[c1.heap_id()] as u64 + b.attached_mass(c1);
    for id in ids {
        let size = b.interval(id).size as u64;
        if w0 <= w1 {
            b.attach(id, c0);
            w0 += size;
        } else {
            b.attach(id, c1);
            w1 += size;
        }
    }
    let (heavy, light, wh, wl) = if w0 >= w1 {
        (c0, c1, w0, w1)
    } else {
        (c1, c0, w1, w0)
    };
    let delta = (wh - wl) / 2;
    if !b.opts.fine_balance || delta < 2 || b.free(heavy) < 5 || b.free(light) < 5 {
        return;
    }
    let Some((pos, id)) = b
        .att
        .get(&heavy)
        .into_iter()
        .flatten()
        .enumerate()
        .max_by_key(|&(_, &id)| b.interval(id).size)
        .map(|(p, &id)| (p, id))
    else {
        return;
    };
    let size = b.interval(id).size as u64;
    if size <= delta {
        b.att.get_mut(&heavy).unwrap().swap_remove(pos);
        b.attach(id, light);
        return;
    }
    let (r1, r2) = b.interval(id).lemma_designated();
    let sep = lemma2_with(&mut b.scratch, b.tree, &b.placed, r1, r2, delta as u32);
    b.att.get_mut(&heavy).unwrap().swap_remove(pos);
    b.apply_separation(id, &sep, heavy, light, heavy, light);
    b.log.split_balances += 1;
}

fn force_due_placements(b: &mut Builder<'_>, leaf: Address, i: u8) {
    let Some(ids) = b.att.get(&leaf) else { return };
    let due: Vec<IntId> = ids
        .iter()
        .copied()
        .filter(|&id| b.interval(id).min_anchor_level() + 2 <= i)
        .collect();
    if due.is_empty() {
        return;
    }
    b.att.get_mut(&leaf).unwrap().retain(|id| !due.contains(id));
    for id in due {
        let k = b.interval(id).designated.len() as u16;
        let size = b.interval(id).size;
        let target = nearest_with_room(b, leaf, k, i);
        if target != leaf {
            b.log.spills += 1;
        }
        if size == u32::from(k) {
            b.absorb_interval(id, target);
        } else {
            let iv = b.remove_interval(id);
            let nodes: Vec<_> = iv.designated.iter().map(|&(d, _)| d).collect();
            for &d in &nodes {
                b.place(d, target);
            }
            b.rebuild_components(&nodes, |_| target);
        }
        b.log.forced_placements += k as usize;
    }
}

fn nearest_with_room(b: &Builder<'_>, leaf: Address, k: u16, i: u8) -> Address {
    if b.free(leaf) >= k {
        return leaf;
    }
    let width = 1i64 << i;
    for d in 1..width {
        for cand in [leaf.offset(-d), leaf.offset(d)].into_iter().flatten() {
            if b.free(cand) >= k {
                return cand;
            }
        }
    }
    panic!("no capacity left on level {i} for {k} nodes");
}

fn fill(b: &mut Builder<'_>, leaf: Address, i: u8) {
    while b.free(leaf) > 0 {
        let need = b.free(leaf) as u64;
        let Some((src, id, hops)) = find_source(b, leaf, i) else {
            return;
        };
        if hops > 0 {
            b.log.borrows += 1;
            b.log.max_borrow_hops = b.log.max_borrow_hops.max(hops);
        }
        let amount = if hops == 0 {
            need
        } else {
            let surplus = b.attached_mass(src).saturating_sub(b.free(src) as u64);
            need.min(surplus)
        };
        debug_assert!(amount >= 1);
        let size = b.interval(id).size as u64;
        let pos = b.att[&src].iter().position(|&x| x == id).unwrap();
        b.att.get_mut(&src).unwrap().swap_remove(pos);
        if size <= amount {
            b.absorb_interval(id, leaf);
            b.log.fills += size as usize;
        } else {
            b.take_crown(id, amount as u32, leaf, src);
            b.log.fills += amount as usize;
        }
    }
}

fn find_source(b: &Builder<'_>, leaf: Address, i: u8) -> Option<(Address, IntId, u32)> {
    if let Some(id) = pick(b, leaf, u64::MAX) {
        return Some((leaf, id, 0));
    }
    let width = 1i64 << i;
    for d in 1..width {
        for cand in [leaf.offset(-d), leaf.offset(d)].into_iter().flatten() {
            let surplus = b.attached_mass(cand).saturating_sub(b.free(cand) as u64);
            if surplus == 0 {
                continue;
            }
            if let Some(id) = pick(b, cand, surplus) {
                return Some((cand, id, d as u32));
            }
        }
    }
    None
}

fn pick(b: &Builder<'_>, src: Address, budget: u64) -> Option<IntId> {
    let ids = b.att.get(&src)?;
    if ids.is_empty() {
        return None;
    }
    ids.iter()
        .copied()
        .filter(|&id| b.interval(id).size as u64 <= budget)
        .max_by_key(|&id| b.interval(id).size)
        .or_else(|| ids.iter().copied().min_by_key(|&id| b.interval(id).size))
}

// ---- trace ----

fn record_mass(b: &mut Builder<'_>, i: u8) {
    let (mut nl, mut nh) = (u64::MAX, 0u64);
    for a in Address::level_iter(i) {
        let associated = u64::from(b.count[a.heap_id()]) + b.attached_mass(a);
        nl = nl.min(associated);
        nh = nh.max(associated);
    }
    b.mass_trace.push((nl, nh));
}

fn record_round(b: &mut Builder<'_>, i: u8) {
    let width = 1usize << i;
    let mut level: Vec<u64> = Address::level_iter(i).map(|a| b.attached_mass(a)).collect();
    let mut row = vec![0u64; i as usize + 1];
    for j in (1..=i).rev() {
        let parents = width >> (i - j + 1);
        let mut next = vec![0u64; parents];
        let mut worst = 0u64;
        for (p, slot) in next.iter_mut().enumerate() {
            let a = level[2 * p];
            let c = level[2 * p + 1];
            *slot = a + c;
            worst = worst.max(a.abs_diff(c) / 2);
        }
        row[j as usize] = worst;
        level = next;
    }
    debug_assert_eq!(b.trace.len(), i as usize - 1, "one trace row per round");
    b.trace.push(row);
}

// ---- driver ----

fn optimal_height_cap(n: usize, cap: u16) -> u8 {
    let cap = cap as usize;
    let mut r = 0u8;
    while cap * ((1usize << (r + 1)) - 1) < n {
        r += 1;
    }
    r
}

fn is_exact_size_cap(n: usize, cap: u16) -> bool {
    n == cap as usize * ((1usize << (optimal_height_cap(n, cap) + 1)) - 1)
}

/// Runs the frozen pre-refactor algorithm X-TREE (exact sizes only — the
/// consumers only ever feed Theorem-1 sizes).
pub fn embed_legacy(tree: &BinaryTree, opts: EmbedOptions) -> Theorem1Embedding {
    let n = tree.len();
    assert!(
        is_exact_size_cap(n, opts.capacity),
        "legacy baseline only handles exact Theorem-1 sizes"
    );
    let r = optimal_height_cap(n, opts.capacity);
    let mut b = Builder::new(tree, r, opts);

    let block = bfs_block(tree, tree.root(), (opts.capacity as usize).min(n));
    for &v in &block {
        b.place(v, Address::ROOT);
    }
    b.rebuild_components(&block, |_| Address::ROOT);

    for i in 1..=r {
        adjust_phase(&mut b, i);
        split_phase(&mut b, i);
        record_round(&mut b, i);
    }

    assert_eq!(b.total_unplaced(), 0, "algorithm left guest nodes unplaced");
    let cap = opts.capacity;
    assert!(
        b.count.iter().all(|&c| c == cap),
        "exact-size guest must fill every host vertex"
    );
    Theorem1Embedding {
        emb: XEmbedding {
            height: r,
            map: b.assign,
        },
        trace: b.trace,
        log: b.log,
        mass_trace: b.mass_trace,
    }
}

fn bfs_block(tree: &BinaryTree, start: NodeId, k: usize) -> Vec<NodeId> {
    let mut out = vec![start];
    let mut seen = vec![false; tree.len()];
    seen[start.index()] = true;
    let mut head = 0;
    while out.len() < k {
        let v = out[head];
        head += 1;
        for w in tree.neighbors(v) {
            if out.len() == k {
                break;
            }
            if !seen[w.index()] {
                seen[w.index()] = true;
                out.push(w);
            }
        }
    }
    out
}

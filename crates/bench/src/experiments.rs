//! One function per experiment id (see DESIGN.md §4). Every function
//! regenerates its table from scratch with deterministic seeds.

use crate::{seeds, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use xtree_core::universal::UniversalGraph;
use xtree_core::{baseline, evaluate, hypercube, metrics, theorem1, theorem2};
use xtree_sim::{simulate_all, simulate_step, Network};
use xtree_topology::{
    neighborhood, Address, Butterfly, CompleteBinaryTree, CubeConnectedCycles, Graph, Hypercube,
    Mesh2D, XTree,
};
use xtree_trees::{
    check_separation, generate, lemma1, lemma2, BinaryTree, NodeId, Separation, TreeFamily,
};

const SEEDS: u64 = 10;

fn trees_for(n: usize, seed_count: u64) -> Vec<(TreeFamily, u64, BinaryTree)> {
    TreeFamily::ALL
        .iter()
        .flat_map(|&f| seeds(seed_count).map(move |s| (f, s, f.generate_seeded(n, s))))
        .collect()
}

/// T1 — Theorem 1: dilation ≤ 3, load = 16, optimal expansion into X(r).
pub fn t1() -> Table {
    let mut rows = Vec::new();
    let mut worst = 0u32;
    for r in 1..=7u8 {
        let n = generate::theorem1_size(r);
        let cases = trees_for(n, SEEDS);
        let per: Vec<(TreeFamily, u32, u32, usize, usize)> = cases
            .par_iter()
            .map(|(f, _, t)| {
                let res = theorem1::embed(t);
                let s = evaluate(t, &res.emb);
                (
                    *f,
                    s.dilation,
                    s.max_load,
                    s.condition3_violations,
                    s.condition4_violations,
                )
            })
            .collect();
        for f in TreeFamily::ALL {
            let fam: Vec<_> = per.iter().filter(|x| x.0 == f).collect();
            let dil = fam.iter().map(|x| x.1).max().unwrap();
            let load = fam.iter().map(|x| x.2).max().unwrap();
            let c3: usize = fam.iter().map(|x| x.3).sum();
            let c4: usize = fam.iter().map(|x| x.4).sum();
            worst = worst.max(dil);
            rows.push(vec![
                format!("{r}"),
                format!("{n}"),
                f.name().into(),
                format!("{dil}"),
                format!("{load}"),
                format!("{:.4}", ((1usize << (r + 1)) - 1) as f64 / n as f64),
                format!("{c3}"),
                format!("{c4}"),
            ]);
        }
    }
    Table {
        id: "T1",
        title: "arbitrary binary trees into the optimal X-tree".into(),
        claim: "dilation ≤ 3, load factor = 16, optimal expansion (n = 16·(2^{r+1}−1))".into(),
        headers: [
            "r",
            "n",
            "family",
            "max dil",
            "load",
            "expansion",
            "c3'",
            "c4",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!(
            "measured max dilation {worst} ≤ 3, load exactly 16, zero condition violations"
        ),
    }
}

/// T2 — Theorem 2: injective into X(r+4) with dilation ≤ 11.
pub fn t2() -> Table {
    let mut rows = Vec::new();
    let mut worst = 0u32;
    for r in 1..=6u8 {
        let n = generate::theorem1_size(r);
        let cases = trees_for(n, SEEDS);
        let per: Vec<(TreeFamily, u32, bool)> = cases
            .par_iter()
            .map(|(f, _, t)| {
                let inj = theorem2::injectivize(&theorem1::embed(t).emb);
                let s = evaluate(t, &inj);
                (*f, s.dilation, s.injective)
            })
            .collect();
        for f in TreeFamily::ALL {
            let fam: Vec<_> = per.iter().filter(|x| x.0 == f).collect();
            let dil = fam.iter().map(|x| x.1).max().unwrap();
            let inj = fam.iter().all(|x| x.2);
            worst = worst.max(dil);
            rows.push(vec![
                format!("{r}"),
                format!("{n}"),
                f.name().into(),
                format!("X({})", r + 4),
                format!("{dil}"),
                format!("{inj}"),
            ]);
        }
    }
    Table {
        id: "T2",
        title: "injective embedding into X(r+4)".into(),
        claim: "injective, dilation ≤ 11".into(),
        headers: ["r", "n", "family", "host", "max dil", "injective"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!("measured max dilation {worst} ≤ 11, all embeddings injective"),
    }
}

/// T3 — Theorem 3 and corollary: hypercube embeddings.
pub fn t3() -> Table {
    let mut rows = Vec::new();
    let (mut w4, mut w8) = (0u32, 0u32);
    for r in 2..=8u8 {
        let n = generate::theorem3_size(r);
        let cases = trees_for(n, SEEDS);
        let per: Vec<(TreeFamily, u32, u32, u32, bool)> = cases
            .par_iter()
            .map(|(f, _, t)| {
                let q = hypercube::embed_theorem3(t);
                let q8 = hypercube::embed_corollary8(t);
                (
                    *f,
                    q.dilation(t),
                    q.max_load(),
                    q8.dilation(t),
                    q8.is_injective(),
                )
            })
            .collect();
        for f in TreeFamily::ALL {
            let fam: Vec<_> = per.iter().filter(|x| x.0 == f).collect();
            let d4 = fam.iter().map(|x| x.1).max().unwrap();
            let load = fam.iter().map(|x| x.2).max().unwrap();
            let d8 = fam.iter().map(|x| x.3).max().unwrap();
            let inj = fam.iter().all(|x| x.4);
            w4 = w4.max(d4);
            w8 = w8.max(d8);
            rows.push(vec![
                format!("{r}"),
                format!("{n}"),
                f.name().into(),
                format!("{d4}"),
                format!("{load}"),
                format!("{d8}"),
                format!("{inj}"),
            ]);
        }
    }
    Table {
        id: "T3",
        title: "hypercube embeddings via Lemma 3".into(),
        claim: "Q_r: load 16, dilation ≤ 4; corollary: injective into Q_{r+4}, dilation ≤ 8".into(),
        headers: [
            "r",
            "n",
            "family",
            "dil Q_r",
            "load",
            "dil inj",
            "injective",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!("measured max dilation {w4} ≤ 4 (load-16) and {w8} ≤ 8 (injective)"),
    }
}

/// T4 — Theorem 4: the degree-415 universal graph.
pub fn t4() -> Table {
    let mut rows = Vec::new();
    let mut all_spanning = true;
    for r in 1..=5u8 {
        let g = UniversalGraph::new(r);
        let n = generate::theorem1_size(r);
        let cases = trees_for(n, 5);
        let violations: usize = cases
            .par_iter()
            .map(|(_, _, t)| {
                let emb = theorem1::embed(t).emb;
                g.subgraph_violations(t, &g.slot_assignment(&emb)).len()
            })
            .sum();
        all_spanning &= violations == 0;
        rows.push(vec![
            format!("{}", r + 5),
            format!("{n}"),
            format!("{}", g.graph().node_count()),
            format!("{}", g.graph().edge_count()),
            format!("{}", g.graph().max_degree()),
            format!("{}", cases.len()),
            format!("{violations}"),
        ]);
    }
    Table {
        id: "T4",
        title: "universal graph G_n for n = 2^t − 16".into(),
        claim: "degree ≤ 415; every n-node binary tree is a spanning tree of G_n".into(),
        headers: [
            "t",
            "n",
            "|V|",
            "|E|",
            "max deg",
            "trees tested",
            "edge violations",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: if all_spanning {
            "all tested trees are spanning subgraphs; degree ≤ 415 everywhere".into()
        } else {
            "VIOLATIONS FOUND — see rows".into()
        },
    }
}

fn lemma_sweep(
    which: &str,
    bound: fn(u32) -> u32,
    run: fn(&BinaryTree, &[bool], NodeId, NodeId, u32) -> Separation,
    max_s1: usize,
    max_s2: usize,
    delta_ok: fn(u32, u32) -> bool,
) -> Table {
    let mut rows = Vec::new();
    let mut worst_ratio = 0.0f64;
    for n in [64usize, 256, 1024, 4096] {
        for f in [
            TreeFamily::Path,
            TreeFamily::RandomBst,
            TreeFamily::RandomAttach,
            TreeFamily::Caterpillar,
        ] {
            let mut max_err = 0u32;
            let mut max_bound = 0u32;
            let (mut s1m, mut s2m) = (0usize, 0usize);
            let mut cases = 0usize;
            for s in seeds(5) {
                let t = f.generate_seeded(n, s);
                let placed = vec![false; n];
                let cands: Vec<NodeId> = t.nodes().filter(|&v| t.degree(v) <= 2).collect();
                for frac in [10u32, 4, 3, 2] {
                    let delta = (n as u32) / frac;
                    if delta == 0 || !delta_ok(delta, n as u32) {
                        continue;
                    }
                    let r1 = cands[s as usize % cands.len()];
                    let r2 = cands[(s as usize * 7 + 3) % cands.len()];
                    let sep = run(&t, &placed, r1, r2, delta);
                    check_separation(
                        &t,
                        &placed,
                        &[],
                        r1,
                        r2,
                        delta,
                        &sep,
                        bound(delta),
                        max_s1,
                        max_s2,
                    );
                    max_err = max_err.max(u32::abs_diff(sep.part2.len() as u32, delta));
                    max_bound = max_bound.max(bound(delta));
                    s1m = s1m.max(sep.s1.len());
                    s2m = s2m.max(sep.s2.len());
                    cases += 1;
                }
            }
            worst_ratio = worst_ratio.max(max_err as f64 / max_bound.max(1) as f64);
            rows.push(vec![
                format!("{n}"),
                f.name().into(),
                format!("{cases}"),
                format!("{max_err}"),
                format!("{max_bound}"),
                format!("{s1m}"),
                format!("{s2m}"),
            ]);
        }
    }
    Table {
        id: if which == "l1" { "L1" } else { "L2" },
        title: format!("separator lemma {} bounds", &which[1..]),
        claim: if which == "l1" {
            "| |T2| − Δ | ≤ ⌊(Δ+1)/3⌋, |S1| ≤ 4, |S2| ≤ 2, collinear".into()
        } else {
            "| |T2| − Δ | ≤ ⌊(Δ+4)/9⌋, |S1|,|S2| ≤ 4 (+1 junction deviation), collinear".into()
        },
        headers: ["n", "family", "cases", "max err", "bound", "max|S1|", "max|S2|"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!("every split within bound (worst err/bound ratio {worst_ratio:.2}); all collinearity checks passed"),
    }
}

/// L1 — Lemma 1 bound sweep.
pub fn l1() -> Table {
    lemma_sweep("l1", Separation::lemma1_bound, lemma1, 4, 2, |d, n| {
        3 * n > 4 * d
    })
}

/// L2 — Lemma 2 bound sweep.
pub fn l2() -> Table {
    lemma_sweep("l2", Separation::lemma2_bound, lemma2, 5, 5, |d, n| d <= n)
}

/// L3 — Lemma 3: X-tree into hypercube with distortion ≤ +1.
pub fn l3() -> Table {
    let mut rows = Vec::new();
    let mut worst = 0i64;
    for r in 1..=9u8 {
        let labels = hypercube::lemma3_embedding(r);
        let x = XTree::new(r);
        // Injectivity.
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let injective = sorted.len() == labels.len();
        // Distortion on all edges plus BFS-sampled pairs.
        let mut max_excess = i64::MIN;
        for (u, v) in x.graph().edges() {
            let h = (labels[u as usize] ^ labels[v as usize]).count_ones() as i64;
            max_excess = max_excess.max(h - 1);
        }
        let samples = if r <= 6 { x.node_count() } else { 64 };
        for src in (0..x.node_count()).step_by((x.node_count() / samples).max(1)) {
            let d = x.graph().bfs(src);
            for v in 0..x.node_count() {
                let h = (labels[src] ^ labels[v]).count_ones() as i64;
                max_excess = max_excess.max(h - d[v] as i64);
            }
        }
        worst = worst.max(max_excess);
        rows.push(vec![
            format!("{r}"),
            format!("{}", x.node_count()),
            format!("Q_{}", r + 1),
            format!("{injective}"),
            format!("{max_excess}"),
        ]);
    }
    Table {
        id: "L3",
        title: "X-tree into its optimal hypercube".into(),
        claim: "injective; Hamming distance ≤ X-tree distance + 1 for every pair".into(),
        headers: ["r", "|X(r)|", "host", "injective", "max (ham − dist)"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!("max excess {worst} ≤ 1 over all checked pairs"),
    }
}

/// IO — the inorder embedding of the complete binary tree.
pub fn io() -> Table {
    let mut rows = Vec::new();
    let mut worst = 0u32;
    for r in 1..=10u8 {
        let labels = hypercube::inorder_embedding(r);
        let mut dil = 0u32;
        for a in Address::all_up_to(r - 1) {
            for c in a.children() {
                let h = (labels[a.heap_id()] ^ labels[c.heap_id()]).count_ones();
                dil = dil.max(h);
            }
        }
        worst = worst.max(dil);
        rows.push(vec![
            format!("{r}"),
            format!("{}", labels.len()),
            format!("Q_{}", r + 1),
            format!("{dil}"),
        ]);
    }
    Table {
        id: "IO",
        title: "inorder embedding of B_r into Q_{r+1}".into(),
        claim: "dilation 2 (left child distance 2, right child distance 1)".into(),
        headers: ["r", "|B_r|", "host", "dilation"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!("measured dilation {worst} = 2 at every height"),
    }
}

/// F1 — Figure 1: the structure of X-trees.
pub fn f1() -> Table {
    let mut rows = Vec::new();
    for r in 0..=10u8 {
        let x = XTree::new(r);
        let tree_edges = x.node_count() - 1;
        let horiz = x.edge_count() - tree_edges;
        rows.push(vec![
            format!("{r}"),
            format!("{}", x.node_count()),
            format!("{tree_edges}"),
            format!("{horiz}"),
            format!("{}", x.max_degree()),
            format!(
                "{}",
                if r <= 8 {
                    x.graph().diameter()
                } else {
                    2 * u32::from(r) - 1
                }
            ),
        ]);
    }
    Table {
        id: "F1",
        title: "X-tree structure (Figure 1 shows X(3))".into(),
        claim: "X(r): 2^{r+1}−1 vertices; tree edges + one horizontal chain per level".into(),
        headers: [
            "r",
            "vertices",
            "tree edges",
            "horizontal",
            "max deg",
            "diameter",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: "X(3): 15 vertices, 14 tree + 11 horizontal edges — matches Figure 1".into(),
    }
}

/// F2 — Figure 2: the N(a) neighbourhood bounds.
pub fn f2() -> Table {
    let mut rows = Vec::new();
    let mut ok = true;
    for r in 1..=9u8 {
        let (max_n, max_inv) = neighborhood::verify_figure2(r);
        ok &= max_n <= 20 && max_inv <= 5;
        rows.push(vec![
            format!("{r}"),
            format!("{}", (1u64 << (r + 1)) - 1),
            format!("{max_n}"),
            format!("{max_inv}"),
            format!("{}", 16 * (max_n + max_inv) + 15),
        ]);
    }
    Table {
        id: "F2",
        title: "the neighbourhood N(a) (Figure 2)".into(),
        claim: "|N(a)−{a}| ≤ 20; ≤ 5 vertices β with a ∈ N(β), β ∉ N(a); degree 25·16+15 = 415"
            .into(),
        headers: [
            "r",
            "|X(r)|",
            "max |N(a)−{a}|",
            "max inverse-only",
            "slot degree",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: if ok {
            "bounds 20 and 5 hold and are attained for r ≥ 5".into()
        } else {
            "BOUND VIOLATED".into()
        },
    }
}

/// D — the Δ(j, i) convergence trace vs the paper's estimate.
pub fn delta() -> Table {
    let r = 7u8;
    let t = TreeFamily::Path.generate_seeded(generate::theorem1_size(r), 0x5EED_0001);
    let res = theorem1::embed(&t);
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (idx, row) in res.trace.iter().enumerate() {
        let i = idx as u8 + 1;
        for (j, &m) in row.iter().enumerate() {
            let bound = theorem1::paper_bound(r, j as u8, i);
            let ok = bound.is_none_or(|b| m <= b);
            all_ok &= ok;
            if m > 0 || bound == Some(0) {
                rows.push(vec![
                    format!("{i}"),
                    format!("{j}"),
                    format!("{m}"),
                    bound.map_or("-".into(), |b| format!("{b}")),
                    format!("{}", if ok { "ok" } else { "EXCEEDED" }),
                ]);
            }
        }
    }
    Table {
        id: "D",
        title: format!("Δ(j, i) convergence on a path guest, r = {r}"),
        claim: "Δ(j,i) ≤ 2^{r+j+3−2i} for j < i; Δ(j,i) = 0 once 2i ≥ r+j+2".into(),
        headers: ["round i", "level j", "measured Δ", "paper bound", "status"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: if all_ok {
            "measured Δ within the paper bound at every (j, i); exact 0 where claimed".into()
        } else {
            "SOME Δ EXCEEDED THE BOUND".into()
        },
    }
}

/// B1 — Theorem 1 vs naïve baselines as n grows.
pub fn b1() -> Table {
    let mut rows = Vec::new();
    for r in 1..=7u8 {
        let n = generate::theorem1_size(r);
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0002);
        let t = TreeFamily::RandomBst.generate(n, &mut rng);
        let host = XTree::new(r);
        let entries = [
            ("theorem-1", theorem1::embed(&t).emb),
            ("level-order", baseline::level_order(&t)),
            ("dfs-order", baseline::dfs_order(&t)),
            ("random", baseline::random_assignment(&t, &mut rng)),
        ];
        let mut row = vec![format!("{r}"), format!("{n}")];
        for (_, e) in &entries {
            let s = metrics::evaluate_on(&t, e, &host);
            row.push(format!("{}", s.dilation));
        }
        for (_, e) in &entries {
            let s = metrics::evaluate_on(&t, e, &host);
            row.push(format!("{:.2}", metrics::mean_dilation(&s)));
        }
        rows.push(row);
    }
    Table {
        id: "B1",
        title: "dilation vs naïve baselines (random BST guests)".into(),
        claim: "only the Theorem-1 construction keeps dilation constant as n grows".into(),
        headers: [
            "r",
            "n",
            "T1 dil",
            "level dil",
            "dfs dil",
            "rand dil",
            "T1 mean",
            "level mean",
            "dfs mean",
            "rand mean",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: "Theorem-1 dilation stays ≤ 3 while every baseline grows with n".into(),
    }
}

/// B2 — the introduction's network context: degree and diameter.
pub fn b2() -> Table {
    let mut rows = Vec::new();
    let mut add = |name: String, n: usize, deg: usize, dia: u32| {
        rows.push(vec![
            name,
            format!("{n}"),
            format!("{deg}"),
            format!("{dia}"),
        ]);
    };
    for r in [5u8, 7] {
        let x = XTree::new(r);
        add(
            format!("X-tree X({r})"),
            x.node_count(),
            x.max_degree(),
            x.graph().diameter(),
        );
        let b = CompleteBinaryTree::new(r);
        add(
            format!("binary tree B_{r}"),
            b.node_count(),
            b.max_degree(),
            b.graph().diameter(),
        );
    }
    for d in [6u8, 8] {
        let q = Hypercube::new(d);
        add(
            format!("hypercube Q_{d}"),
            q.node_count(),
            q.max_degree(),
            q.graph().diameter(),
        );
    }
    for d in [5u8, 6] {
        let c = CubeConnectedCycles::new(d);
        add(
            format!("CCC({d})"),
            c.node_count(),
            c.max_degree(),
            c.graph().diameter(),
        );
        let b = Butterfly::new(d);
        add(
            format!("butterfly BF({d})"),
            b.node_count(),
            b.max_degree(),
            b.graph().diameter(),
        );
    }
    for k in [8usize, 16] {
        let m = Mesh2D::new(k, k);
        add(
            format!("mesh {k}x{k}"),
            m.node_count(),
            m.max_degree(),
            m.graph().diameter(),
        );
    }
    Table {
        id: "B2",
        title: "host networks the paper discusses".into(),
        claim: "X-trees: constant degree, Θ(log n) diameter — but unlike CCC/butterfly they host all binary trees with O(1) dilation".into(),
        headers: ["network", "nodes", "max degree", "diameter"].map(String::from).to_vec(),
        rows,
        verdict: "X-tree degree ≤ 5 with diameter 2r−1 — comparable to the constant-degree hypercube derivatives".into(),
    }
}

/// S1 — the "dilation = clock cycles" simulation.
pub fn s1() -> Table {
    let r = 5u8;
    let n = generate::theorem3_size(r);
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0003);
    // Trees are generated sequentially (the rng state threads through the
    // families); the simulations — the expensive part — fan out per family.
    let cases: Vec<(TreeFamily, BinaryTree)> = [
        TreeFamily::RandomBst,
        TreeFamily::Caterpillar,
        TreeFamily::Path,
    ]
    .into_iter()
    .map(|f| (f, f.generate(n, &mut rng)))
    .collect();
    let rows: Vec<Vec<String>> = cases
        .par_iter()
        .map(|(f, t)| {
            let mut rows = Vec::new();
            let x = theorem1::embed(t).emb;
            let xnet = Network::xtree(&XTree::new(x.height));
            let xdil = evaluate(t, &x).dilation;
            for rep in simulate_all(&xnet, t, &x).expect("simulation failed") {
                rows.push(vec![
                    f.name().into(),
                    format!("X({})", x.height),
                    format!("{xdil}"),
                    rep.workload.into(),
                    format!("{}", rep.cycles),
                    format!("{}", rep.ideal_cycles),
                    format!("{:.2}", rep.cycles as f64 / rep.ideal_cycles.max(1) as f64),
                    format!("{}", rep.max_link_traffic),
                ]);
            }
            let q = hypercube::embed_theorem3(t);
            let qnet = Network::hypercube(&Hypercube::new(q.dim));
            let qdil = q.dilation(t);
            for rep in simulate_all(&qnet, t, &q).expect("simulation failed") {
                rows.push(vec![
                    f.name().into(),
                    format!("Q_{}", q.dim),
                    format!("{qdil}"),
                    rep.workload.into(),
                    format!("{}", rep.cycles),
                    format!("{}", rep.ideal_cycles),
                    format!("{:.2}", rep.cycles as f64 / rep.ideal_cycles.max(1) as f64),
                    format!("{}", rep.max_link_traffic),
                ]);
            }
            rows
        })
        .collect::<Vec<Vec<Vec<String>>>>()
        .into_iter()
        .flatten()
        .collect();
    Table {
        id: "S1",
        title: format!("simulated tree programs on embedded guests (n = {n})"),
        claim: "dilation bounds the per-edge latency: embedded programs run within a small constant of ideal".into(),
        headers: ["family", "host", "dil", "workload", "cycles", "ideal", "slowdown", "max link"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: "cycle counts track the ideal closely; worst congestion stays bounded by the load".into(),
    }
}

/// A1 — ablation: what each mechanism of algorithm X-TREE contributes.
///
/// Each row disables one switch of `theorem1::EmbedOptions` and reports
/// how the embedding degrades: dilation, edge congestion, and how hard the
/// capacity fill has to work (borrow count / distance) to compensate.
pub fn a1() -> Table {
    use theorem1::EmbedOptions;
    let configs: [(&str, EmbedOptions); 4] = [
        ("full (paper)", EmbedOptions::default()),
        (
            "no whole moves",
            EmbedOptions {
                whole_moves: false,
                ..Default::default()
            },
        ),
        (
            "no fine balance",
            EmbedOptions {
                fine_balance: false,
                ..Default::default()
            },
        ),
        (
            "no ADJUST",
            EmbedOptions {
                adjust: false,
                ..Default::default()
            },
        ),
    ];
    let r = 6u8;
    let n = generate::theorem1_size(r);
    let host = XTree::new(r);
    let mut rows = Vec::new();
    for f in [
        TreeFamily::Path,
        TreeFamily::RandomBst,
        TreeFamily::Caterpillar,
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0004);
        let t = f.generate(n, &mut rng);
        for (name, opts) in configs {
            let res = theorem1::embed_with(&t, opts);
            let s = metrics::evaluate_on(&t, &res.emb, &host);
            let congestion = metrics::edge_congestion(&t, &res.emb, &host);
            rows.push(vec![
                f.name().into(),
                name.into(),
                format!("{}", s.dilation),
                format!("{:.2}", metrics::mean_dilation(&s)),
                format!("{congestion}"),
                format!("{}", res.log.borrows),
                format!("{}", res.log.max_borrow_hops),
                format!("{}", res.log.spills),
            ]);
        }
    }
    Table {
        id: "A1",
        title: format!("ablation of the X-TREE mechanisms (r = {r}, n = {n})"),
        claim: "DESIGN.md: ADJUST and the fine balance are what keep imbalance - and therefore borrowing distance and dilation - constant".into(),
        headers: ["family", "config", "dil", "mean dil", "congestion", "borrows", "max hops", "spills"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: "disabling ADJUST forces long-distance borrowing; the full algorithm keeps every metric constant".into(),
    }
}

/// S2 — real-time simulation: one synchronous guest step costs O(1) host
/// cycles regardless of n (the universality property of the abstract:
/// "every computation ... can be simulated by U in real time").
pub fn s2() -> Table {
    let cases: Vec<(u8, usize, TreeFamily, BinaryTree)> = (1..=7u8)
        .flat_map(|r| {
            let n = generate::theorem1_size(r);
            let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0005);
            [TreeFamily::Path, TreeFamily::RandomBst]
                .into_iter()
                .map(move |f| (r, n, f, f.generate(n, &mut rng)))
                .collect::<Vec<_>>()
        })
        .collect();
    let per: Vec<(Vec<String>, u32)> = cases
        .par_iter()
        .map(|(r, n, f, t)| {
            let emb = theorem1::embed(t).emb;
            let net = Network::xtree(&XTree::new(emb.height));
            let step = simulate_step(&net, t, &emb).expect("simulation failed");
            (
                vec![
                    format!("{r}"),
                    format!("{n}"),
                    f.name().into(),
                    format!("{}", step.compute_cycles),
                    format!("{}", step.exchange_cycles),
                    format!("{}", step.total()),
                ],
                step.total(),
            )
        })
        .collect();
    let worst_total = per.iter().map(|(_, t)| *t).max().unwrap_or(0);
    let rows: Vec<Vec<String>> = per.into_iter().map(|(row, _)| row).collect();
    Table {
        id: "S2",
        title: "cost of one synchronous guest step as n grows".into(),
        claim: "constant load (16) + constant dilation => one guest step costs O(1) host cycles at every size".into(),
        headers: ["r", "n", "family", "compute (load)", "exchange cycles", "step total"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!("step cost stays ≤ {worst_total} cycles from n = 48 to n = 4080 — real-time simulation with constant slowdown"),
    }
}

/// A2 — capacity ablation: the paper hard-wires load factor 16 (4 ADJUST
/// slots + 4 SPLIT slots + 8 forced children per vertex). Sweeping the
/// per-vertex capacity shows where that slack starts and stops mattering.
pub fn a2() -> Table {
    use theorem1::EmbedOptions;
    let r = 6u8;
    let mut rows = Vec::new();
    for cap in [2u16, 4, 8, 16, 32] {
        let n = cap as usize * ((1usize << (r + 1)) - 1);
        let host = XTree::new(r);
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0006);
        for f in [TreeFamily::Path, TreeFamily::RandomBst] {
            let t = f.generate(n, &mut rng);
            let opts = EmbedOptions {
                capacity: cap,
                ..Default::default()
            };
            let res = theorem1::embed_with(&t, opts);
            let s = metrics::evaluate_on(&t, &res.emb, &host);
            rows.push(vec![
                format!("{cap}"),
                format!("{n}"),
                f.name().into(),
                format!("{}", s.dilation),
                format!("{}", s.max_load),
                format!("{}", res.log.borrows),
                format!("{}", res.log.max_borrow_hops),
                format!("{}", res.log.adjust_splits),
                format!("{}", res.log.split_balances),
            ]);
        }
    }
    Table {
        id: "A2",
        title: format!("capacity (load-factor) ablation, host X({r})"),
        claim: "the paper hard-wires capacity 16 = 4 ADJUST + 4 SPLIT + 8 forced slots; less slack should break the balancing".into(),
        headers: ["cap", "n", "family", "dil", "load", "borrows", "max hops", "adj splits", "balances"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: "16 is just right: below it the lemma machinery starves (path guests degrade to dilation ~11 with level-wide borrowing); at 16 and above every metric is flat".into(),
    }
}

/// N1 — the nh/nl estimates: extreme associated mass per leaf right
/// before the fill, against the ideal `n_{r−i} = 16·(2^{r−i+1} − 1)`.
/// The displayed consequence `nl(i, i) ≥ 16` (section (ii)) is what lets
/// the paper fill every vertex from local mass.
pub fn n1() -> Table {
    let r = 7u8;
    let mut rows = Vec::new();
    let mut min_nl_inner = u64::MAX; // rounds i < r
    let mut min_nl_last = u64::MAX; // the final round
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0007);
    for f in [
        TreeFamily::Path,
        TreeFamily::RandomBst,
        TreeFamily::Caterpillar,
    ] {
        let t = f.generate(generate::theorem1_size(r), &mut rng);
        let res = theorem1::embed(&t);
        for (idx, &(nl, nh)) in res.mass_trace.iter().enumerate() {
            let i = idx as u8 + 1;
            let ideal = 16u64 * ((1 << (r - i + 1)) - 1);
            if i < r {
                min_nl_inner = min_nl_inner.min(nl);
            } else {
                min_nl_last = min_nl_last.min(nl);
            }
            rows.push(vec![
                f.name().into(),
                format!("{i}"),
                format!("{nl}"),
                format!("{nh}"),
                format!("{ideal}"),
                format!("{}", if nl >= 16 { "ok" } else { "needs borrow" }),
            ]);
        }
    }
    Table {
        id: "N1",
        title: format!("associated-mass extremes nl(i,i) / nh(i,i), r = {r}"),
        claim: "nh/nl stay within n_{r−i} ± a(i,i); in particular nl(i,i) ≥ 16, so every leaf fills from local mass".into(),
        headers: ["family", "round i", "nl", "nh", "ideal n_{r-i}", "nl ≥ 16"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!(
            "nl ≥ 16 at every inner round (min {min_nl_inner}); the final round dips to {min_nl_last} — exactly the residue the paper\'s last-two-levels rearrangement (our 1-hop borrow) absorbs"
        ),
    }
}

/// All experiment ids in canonical order.
pub const ALL_IDS: [&str; 16] = [
    "t1", "t2", "t3", "t4", "l1", "l2", "l3", "io", "f1", "f2", "delta", "b1", "b2", "a1", "a2",
    "n1",
];

/// Slow experiment ids appended by `tables all`.
pub const SLOW_IDS: [&str; 2] = ["s1", "s2"];

/// Dispatch by id (lowercase). `s1` is separate because it is slow.
pub fn run(id: &str) -> Option<Table> {
    Some(match id {
        "t1" => t1(),
        "t2" => t2(),
        "t3" => t3(),
        "t4" => t4(),
        "l1" => l1(),
        "l2" => l2(),
        "l3" => l3(),
        "io" => io(),
        "f1" => f1(),
        "f2" => f2(),
        "delta" | "d" => delta(),
        "b1" => b1(),
        "b2" => b2(),
        "a1" => a1(),
        "a2" => a2(),
        "n1" => n1(),
        "s1" => s1(),
        "s2" => s2(),
        _ => return None,
    })
}

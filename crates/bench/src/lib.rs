//! Experiment harness: one function per experiment in DESIGN.md's index,
//! each returning a printable [`Table`] whose rows are what EXPERIMENTS.md
//! records. The `tables` binary dispatches on experiment ids.

pub mod experiments;
pub mod legacy_theorem1;

use xtree_json::Value;
use xtree_sim::Message;

/// Seeded uniform-random message batches over `n` vertices from a cheap
/// LCG, so every bench binary (and every rerun) sees an identical workload
/// for a given `seed`. `simbench` seeds with `0x5EED_BEEF`, `faultbench`
/// with `0x5EED_FA17`, `telbench` with `0x5EED_7E1E`.
pub fn seeded_batches(seed: u64, n: u64, batches: usize, count: usize) -> Vec<Vec<Message>> {
    let mut state = seed;
    let mut rand = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..batches)
        .map(|_| {
            (0..count)
                .map(|_| Message {
                    src: (rand() % n) as u32,
                    dst: (rand() % n) as u32,
                })
                .collect()
        })
        .collect()
}

/// The `--seed N` convention shared by every bench binary (DESIGN.md
/// §15): scan argv for the flag, fall back to the bin's historical
/// constant, so flag-less runs keep reproducing the published numbers.
/// Derived streams (per-rank, per-phase) mix this base seed rather than
/// introducing fresh constants.
pub fn seed_from_args(default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--seed" {
            let v = args.next().expect("--seed needs a value");
            return v.parse().expect("--seed must be an integer");
        }
    }
    default
}

/// A formatted experiment result.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id (`T1`, `L2`, `F1`, …).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// What the paper claims, for the paper-vs-measured comparison.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// One-line verdict after measuring.
    pub verdict: String,
}

impl Table {
    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        out.push_str(&format!("   paper: {}\n", self.claim));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format!("   {}\n", fmt_row(&self.headers)));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&format!("   {}\n", "-".repeat(total.min(120))));
        for row in &self.rows {
            out.push_str(&format!("   {}\n", fmt_row(row)));
        }
        out.push_str(&format!("   => {}\n", self.verdict));
        out
    }

    /// The table as a JSON object (same field names `--json` always used).
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("id", self.id)
            .with("title", self.title.as_str())
            .with("claim", self.claim.as_str())
            .with(
                "headers",
                self.headers.iter().map(String::as_str).collect::<Value>(),
            )
            .with(
                "rows",
                self.rows
                    .iter()
                    .map(|row| row.iter().map(String::as_str).collect::<Value>())
                    .collect::<Value>(),
            )
            .with("verdict", self.verdict.as_str())
    }
}

/// The deterministic seeds used by every experiment sweep.
pub fn seeds(count: u64) -> impl Iterator<Item = u64> {
    (0..count).map(|i| 0x5EED_0000 + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = Table {
            id: "X",
            title: "demo".into(),
            claim: "none".into(),
            headers: vec!["a".into(), "bb".into()],
            rows: vec![vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
            verdict: "ok".into(),
        };
        let s = t.render();
        assert!(s.contains("== X — demo"));
        assert!(s.contains("=> ok"));
        assert_eq!(s.lines().count(), 7);
    }

    #[test]
    fn seeds_are_deterministic() {
        let a: Vec<u64> = seeds(5).collect();
        let b: Vec<u64> = seeds(5).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn seeded_batches_are_deterministic_and_in_range() {
        let a = seeded_batches(0x5EED_BEEF, 31, 3, 16);
        let b = seeded_batches(0x5EED_BEEF, 31, 3, 16);
        assert_eq!(a, b);
        assert_ne!(a, seeded_batches(0x5EED_FA17, 31, 3, 16));
        assert_eq!(a.len(), 3);
        for batch in &a {
            assert_eq!(batch.len(), 16);
            for m in batch {
                assert!(m.src < 31 && m.dst < 31);
            }
        }
    }
}

//! Byte-identical contract of the rebuilt Theorem-1 hot path: the refactor
//! (flat SoA interval storage, scratch reuse, two-phase parallel ADJUST)
//! must emit *exactly* the embeddings of the frozen pre-refactor builder —
//! same map, same Δ trace, same mechanism counters, same mass trace.
//!
//! The reference lives in `xtree_bench::legacy_theorem1`, a verbatim copy
//! of the builder as it stood before the rewrite. This test drives both
//! over seeded trees at X(6)–X(10): every family at X(6), spot checks at
//! the larger sizes, and — for the new builder — each of serial mode,
//! forced-parallel mode, and a reused scratch, all of which must agree.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree_bench::legacy_theorem1::embed_legacy;
use xtree_core::theorem1::{
    embed_with, embed_with_scratch, EmbedOptions, Parallel, Theorem1Embedding, Theorem1Scratch,
};
use xtree_trees::generate::{theorem1_size, TreeFamily};

fn assert_same(label: &str, new: &Theorem1Embedding, old: &Theorem1Embedding) {
    assert_eq!(new.emb, old.emb, "{label}: embedding differs");
    assert_eq!(new.trace, old.trace, "{label}: Δ trace differs");
    assert_eq!(new.log, old.log, "{label}: build log differs");
    assert_eq!(
        new.mass_trace, old.mass_trace,
        "{label}: mass trace differs"
    );
}

#[test]
fn new_builder_matches_legacy_in_every_mode() {
    let cases: &[(usize, u8, u64)] = &[
        (0, 6, 0xA11CE),
        (1, 6, 0xA11CE),
        (2, 6, 0xA11CE),
        (3, 6, 0xA11CE),
        (4, 6, 0xA11CE),
        (5, 6, 0xA11CE),
        (6, 6, 0xA11CE),
        (7, 6, 0xA11CE),
        (4, 7, 0xBEEF),
        (6, 7, 0xBEEF),
        (4, 8, 0xCAFE),
        (5, 8, 0xCAFE),
        (4, 9, 0xD00D),
        (4, 10, 0xE66),
    ];
    // One scratch across every case: reuse across differing sizes is part
    // of the contract (the serving pool hands one scratch many trees).
    let mut scratch = Theorem1Scratch::new();
    for &(f, r, seed) in cases {
        let family = TreeFamily::ALL[f];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tree = family.generate(theorem1_size(r), &mut rng);
        let old = embed_legacy(&tree, EmbedOptions::default());

        let serial = EmbedOptions {
            parallel: Parallel::Off,
            ..Default::default()
        };
        let forced = EmbedOptions {
            parallel: Parallel::Force,
            ..Default::default()
        };
        let label = format!("{family:?} X({r})");
        assert_same(&format!("{label} serial"), &embed_with(&tree, serial), &old);
        assert_same(
            &format!("{label} parallel"),
            &embed_with(&tree, forced),
            &old,
        );
        assert_same(
            &format!("{label} reused scratch"),
            &embed_with_scratch(&tree, serial, &mut scratch),
            &old,
        );
        assert_same(
            &format!("{label} reused scratch again"),
            &embed_with_scratch(&tree, serial, &mut scratch),
            &old,
        );
    }
}

//! Criterion bench for experiments L1/L2: the separator lemmas on large
//! pieces — the inner loop of algorithm X-TREE.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xtree_trees::{generate, lemma1, lemma2, NodeId, TreeFamily};

fn bench_separators(c: &mut Criterion) {
    let mut group = c.benchmark_group("separator_lemmas");
    for n in [1024usize, 16384, 131072] {
        group.throughput(Throughput::Elements(n as u64));
        let tree = TreeFamily::RandomBst.generate_seeded(n, 7);
        let placed = vec![false; n];
        let leaf = tree.nodes().find(|&v| tree.degree(v) == 1).unwrap();
        let delta = (n / 3) as u32;
        group.bench_with_input(BenchmarkId::new("lemma1", n), &n, |b, _| {
            b.iter(|| black_box(lemma1(&tree, &placed, leaf, leaf, delta)))
        });
        group.bench_with_input(BenchmarkId::new("lemma2", n), &n, |b, _| {
            b.iter(|| black_box(lemma2(&tree, &placed, leaf, leaf, delta)))
        });
        // Path guests stress the walk length.
        let path = generate::path(n);
        group.bench_with_input(BenchmarkId::new("lemma2_path", n), &n, |b, _| {
            b.iter(|| {
                black_box(lemma2(
                    &path,
                    &placed,
                    NodeId(0),
                    NodeId(n as u32 - 1),
                    delta,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_separators);
criterion_main!(benches);

//! Criterion bench for experiments F1/F2/B2: host-network construction,
//! distance oracles, and the N(a) neighbourhood computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtree_topology::{neighborhood, Address, Butterfly, CubeConnectedCycles, Hypercube, XTree};

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    for r in [8u8, 12] {
        group.bench_with_input(BenchmarkId::new("xtree_build", r), &r, |b, &r| {
            b.iter(|| black_box(XTree::new(r)))
        });
    }
    group.bench_function("hypercube_build_d14", |b| {
        b.iter(|| black_box(Hypercube::new(14)))
    });
    group.bench_function("ccc_build_d10", |b| {
        b.iter(|| black_box(CubeConnectedCycles::new(10)))
    });
    group.bench_function("butterfly_build_d10", |b| {
        b.iter(|| black_box(Butterfly::new(10)))
    });

    let x = XTree::new(12);
    let a = Address::parse("010101010101").unwrap();
    let bb = Address::parse("101010101010").unwrap();
    group.bench_function("xtree_distance_r12", |b| {
        b.iter(|| black_box(x.distance(a, bb)))
    });
    group.bench_function("neighborhood_r12", |b| {
        b.iter(|| black_box(neighborhood::neighborhood(a, 12)))
    });
    group.bench_function("figure2_verify_r8", |b| {
        b.iter(|| black_box(neighborhood::verify_figure2(8)))
    });
    group.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);

//! Criterion bench for experiment T2: the injectivisation blow-up and the
//! full tree → injective-X(r+4) pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use xtree_core::{theorem1, theorem2};
use xtree_trees::generate::{theorem1_size, TreeFamily};

fn bench_theorem2(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem2_injectivize");
    group.sample_size(10);
    for r in [4u8, 6, 8] {
        let n = theorem1_size(r);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let tree = TreeFamily::RandomAttach.generate(n, &mut rng);
        let base = theorem1::embed(&tree).emb;
        group.bench_with_input(BenchmarkId::new("blowup_only", n), &base, |b, e| {
            b.iter(|| black_box(theorem2::injectivize(e)))
        });
        group.bench_with_input(BenchmarkId::new("full_pipeline", n), &tree, |b, t| {
            b.iter(|| black_box(theorem2::injectivize(&theorem1::embed(t).emb)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_theorem2);
criterion_main!(benches);

//! Criterion bench for experiment B1: the Theorem-1 construction against
//! the naïve baselines, at equal guest sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use xtree_core::{baseline, theorem1};
use xtree_trees::generate::{theorem1_size, TreeFamily};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding_construction");
    group.sample_size(10);
    let n = theorem1_size(7);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let tree = TreeFamily::RandomBst.generate(n, &mut rng);
    group.bench_with_input(BenchmarkId::new("theorem1", n), &tree, |b, t| {
        b.iter(|| black_box(theorem1::embed(t)))
    });
    group.bench_with_input(BenchmarkId::new("level_order", n), &tree, |b, t| {
        b.iter(|| black_box(baseline::level_order(t)))
    });
    group.bench_with_input(BenchmarkId::new("dfs_order", n), &tree, |b, t| {
        b.iter(|| black_box(baseline::dfs_order(t)))
    });
    group.bench_with_input(BenchmarkId::new("random", n), &tree, |b, t| {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        b.iter(|| black_box(baseline::random_assignment(t, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);

//! Criterion bench for experiment T3: the hypercube route (Theorem-1 +
//! Lemma-3 composition) and the dilation-8 injective corollary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use xtree_core::hypercube;
use xtree_trees::generate::{theorem3_size, TreeFamily};

fn bench_theorem3(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem3_hypercube");
    group.sample_size(10);
    for r in [4u8, 6, 8] {
        let n = theorem3_size(r);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let tree = TreeFamily::RandomSplit.generate(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("load16_dil4", n), &tree, |b, t| {
            b.iter(|| black_box(hypercube::embed_theorem3(t)))
        });
        group.bench_with_input(BenchmarkId::new("injective_dil8", n), &tree, |b, t| {
            b.iter(|| black_box(hypercube::embed_corollary8(t)))
        });
    }
    // The Lemma-3 label map itself.
    group.bench_function("lemma3_labels_r10", |b| {
        b.iter(|| black_box(hypercube::lemma3_embedding(10)))
    });
    group.finish();
}

criterion_group!(benches, bench_theorem3);
criterion_main!(benches);

//! Criterion bench for experiment S1: the cycle-accurate simulator running
//! tree workloads on embedded guests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use xtree_core::theorem1;
use xtree_sim::{run_rounds, workload, Network};
use xtree_topology::XTree;
use xtree_trees::generate::{theorem1_size, TreeFamily};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    // X(10) was unreachable before the structured routers (the table build
    // alone dominated); it now benches like the small hosts.
    for r in [4u8, 6, 10] {
        let n = theorem1_size(r);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let tree = TreeFamily::RandomBst.generate(n, &mut rng);
        let emb = theorem1::embed(&tree).emb;
        let net = Network::xtree(&XTree::new(r));
        let bc = workload::broadcast_rounds(&tree, &emb);
        let ex = vec![workload::exchange_round(&tree, &emb)];
        group.bench_with_input(BenchmarkId::new("broadcast", n), &bc, |b, w| {
            b.iter(|| black_box(run_rounds(&net, w)))
        });
        group.bench_with_input(BenchmarkId::new("exchange", n), &ex, |b, w| {
            b.iter(|| black_box(run_rounds(&net, w)))
        });
        group.bench_with_input(BenchmarkId::new("routing_tables", n), &r, |b, &r| {
            b.iter(|| black_box(Network::new(XTree::new(r).graph().clone())))
        });
        group.bench_with_input(BenchmarkId::new("structured_router", n), &r, |b, &r| {
            b.iter(|| black_box(Network::xtree(&XTree::new(r))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);

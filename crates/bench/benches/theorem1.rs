//! Criterion bench for experiment T1: algorithm X-TREE across guest sizes
//! and families. Regenerates the Theorem-1 rows (dilation/load measured in
//! the harness; here we time the construction itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use xtree_core::theorem1;
use xtree_trees::generate::{theorem1_size, TreeFamily};

fn bench_theorem1(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_embed");
    group.sample_size(10);
    for r in [3u8, 5, 7, 9] {
        let n = theorem1_size(r);
        group.throughput(Throughput::Elements(n as u64));
        for family in [
            TreeFamily::Path,
            TreeFamily::RandomBst,
            TreeFamily::Caterpillar,
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let tree = family.generate(n, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(family.name(), format!("r{r}_n{n}")),
                &tree,
                |b, t| b.iter(|| black_box(theorem1::embed(t))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_theorem1);
criterion_main!(benches);

//! Criterion bench for experiment T4: building the degree-415 universal
//! graph and checking the spanning-subgraph property.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use xtree_core::{theorem1, universal::UniversalGraph};
use xtree_trees::generate::{theorem1_size, TreeFamily};

fn bench_theorem4(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem4_universal");
    group.sample_size(10);
    for r in [3u8, 5] {
        group.bench_with_input(BenchmarkId::new("build", r), &r, |b, &r| {
            b.iter(|| black_box(UniversalGraph::new(r)))
        });
        let g = UniversalGraph::new(r);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let tree = TreeFamily::RandomBst.generate(theorem1_size(r), &mut rng);
        let assignment = g.slot_assignment(&theorem1::embed(&tree).emb);
        group.bench_with_input(
            BenchmarkId::new("subgraph_check", r),
            &(&g, &tree, &assignment),
            |b, (g, t, a)| b.iter(|| black_box(g.subgraph_violations(t, a).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_theorem4);
criterion_main!(benches);

//! The paper's host-side bounds, asserted end to end on the servable
//! backends at the exact guest sizes the theorems are stated for.
//!
//! Theorem 1 fills `X(r)` at `n = 16·(2^{r+1} − 1)` guests; composing
//! with Lemma 3 (Theorem 3) the same guests land in `Q_{r+1}` with load
//! ≤ 16 and dilation ≤ 4. Theorem 4's universal graph `G_n` has
//! `16·(2^{r+1} − 1) = 2^{r+5} − 16` vertices — the `n = 2^t − 16` form —
//! and hosts every `n`-node binary tree with degree ≤ 415, one guest per
//! slot (so group load ≤ 16), and dilation ≤ 10.

use xtree_core::theorem1;
use xtree_host::{hypercube_guest_map, universal_guest_map, Host, HypercubeHost, UniversalHost};
use xtree_topology::Graph;
use xtree_trees::{theorem1_size, BinaryTree, TreeFamily};

/// Families covering the shape extremes; random families are seeded, so
/// the sweep is deterministic.
const FAMILIES: [TreeFamily; 5] = [
    TreeFamily::Path,
    TreeFamily::LeftComplete,
    TreeFamily::Caterpillar,
    TreeFamily::RandomBst,
    TreeFamily::Balanced,
];

/// Max routed distance over guest edges — the dilation the serving layer
/// reports.
fn dilation<H: Host>(net: &H, tree: &BinaryTree, map: &[u32]) -> u32 {
    tree.edges()
        .map(|(p, c)| net.distance(map[p.index()], map[c.index()]))
        .max()
        .unwrap_or(0)
}

/// Max number of guests sharing one host vertex.
fn max_load<H: Host>(net: &H, map: &[u32]) -> u32 {
    let mut load = vec![0u32; net.node_count()];
    for &h in map {
        load[h as usize] += 1;
    }
    load.into_iter().max().unwrap_or(0)
}

#[test]
fn theorem3_bounds_on_the_hypercube() {
    for r in 2..=5u8 {
        let n = theorem1_size(r);
        for family in FAMILIES {
            let tree = family.generate_seeded(n, 0x7E0_3000 + u64::from(r));
            let emb = theorem1::embed(&tree).emb;
            assert_eq!(emb.height, r, "{family:?} n={n} must fill X({r})");
            let net = HypercubeHost::for_xtree_height(emb.height);
            assert_eq!(
                usize::from(net.dim()),
                usize::from(r) + 1,
                "Lemma 3: Q_(r+1)"
            );
            let map = hypercube_guest_map(&emb);
            let load = max_load(&net, &map);
            let dil = dilation(&net, &tree, &map);
            assert!(
                load <= 16,
                "{family:?} n={n}: hypercube load {load} > 16 (Theorem 3)"
            );
            assert!(
                dil <= 4,
                "{family:?} n={n}: hypercube dilation {dil} > 4 (Theorem 3)"
            );
        }
    }
}

#[test]
fn theorem4_bounds_on_the_universal_graph() {
    for r in 2..=5u8 {
        // n = 16·(2^{r+1} − 1) = 2^{r+5} − 16: Theorem 4's 2^t − 16 form.
        let n = theorem1_size(r);
        assert_eq!(n, (1usize << (r + 5)) - 16);
        for family in FAMILIES {
            let tree = family.generate_seeded(n, 0x7E0_4000 + u64::from(r));
            let emb = theorem1::embed(&tree).emb;
            let net = UniversalHost::new(emb.height);
            // G_n holds exactly n slots when the X-tree is full.
            assert_eq!(net.node_count(), n);
            assert_eq!(net.degree_bound(), 415);
            assert!(
                net.csr().max_degree() as u32 <= 415,
                "built degree {} > 415 (Theorem 4)",
                net.csr().max_degree()
            );
            let map = universal_guest_map(&emb);
            // One guest per slot: the slot assignment is injective, so
            // each 16-clique group carries at most the paper's load 16.
            assert_eq!(max_load(&net, &map), 1, "{family:?} n={n}: slot reused");
            let mut groups = vec![0u32; net.node_count() / 16];
            for &h in &map {
                groups[h as usize / 16] += 1;
            }
            let group_load = groups.into_iter().max().unwrap_or(0);
            assert!(
                group_load <= 16,
                "{family:?} n={n}: group load {group_load}"
            );
            let dil = dilation(&net, &tree, &map);
            assert!(
                dil <= 10,
                "{family:?} n={n}: universal dilation {dil} > 10 (Theorem 4)"
            );
        }
    }
}

#[test]
fn partial_guests_keep_the_bounds() {
    // The theorems are stated at the exact filling sizes, but the serving
    // layer embeds arbitrary n — the bounds must not degrade when the
    // X-tree is only partially filled.
    for n in [100usize, 241, 500, 1000] {
        let tree = TreeFamily::RandomBst.generate_seeded(n, 0x7E0_5000 + n as u64);
        let emb = theorem1::embed(&tree).emb;

        let cube = HypercubeHost::for_xtree_height(emb.height);
        let qmap = hypercube_guest_map(&emb);
        assert!(max_load(&cube, &qmap) <= 16, "n={n}: hypercube load");
        assert!(
            dilation(&cube, &tree, &qmap) <= 4,
            "n={n}: hypercube dilation"
        );

        let uni = UniversalHost::new(emb.height);
        let umap = universal_guest_map(&emb);
        assert_eq!(max_load(&uni, &umap), 1, "n={n}: slot reused");
        assert!(
            dilation(&uni, &tree, &umap) <= 10,
            "n={n}: universal dilation"
        );
    }
}

//! One trait over the paper's three host topologies.
//!
//! The paper names three hosts for binary-tree guests: the X-tree of
//! Theorem 1 (load 16, dilation ≤ 3), the optimal hypercube reached by
//! composing Theorem 1 with Lemma 3 (Theorem 3: load 16, dilation ≤ 4),
//! and the degree-≤415 universal graph `G_n` of Theorem 4 (16 slots per
//! X-tree vertex, dilation ≤ 10 relative to a dilation-3 X-tree
//! embedding). [`Host`] makes all three servable behind one dispatch
//! point: a CSR view for edge-indexed congestion accumulation, an O(1)
//! `next_hop` honouring the smallest-id-downhill contract the simulator's
//! routers are pinned to, an exact `distance`, a degree bound, and a
//! stable label for the wire protocol and CLI.
//!
//! The guest side is uniform: [`guest_map`] turns the cached Theorem-1/2
//! [`XEmbedding`] into a `Vec<u32>` of host vertex ids for any backend
//! (heap ids on the X-tree, Lemma-3 labels on the hypercube, packed
//! slots on `G_n`), so the simulation and stats layers never see which
//! host they are scoring.

use xtree_core::hypercube::lemma3_label;
use xtree_core::universal::UniversalGraph;
use xtree_core::XEmbedding;
use xtree_topology::routing::{hypercube_next_hop, xtree_next_hop};
use xtree_topology::{analytic_distance, Address, Csr, Graph, Hypercube, XTree};

/// Wire/CLI tag for the X-tree backend.
pub const HOST_XTREE: u8 = 0;
/// Wire/CLI tag for the hypercube backend (Theorem 3).
pub const HOST_HYPERCUBE: u8 = 1;
/// Wire/CLI tag for the Theorem-4 universal-graph backend.
pub const HOST_UNIVERSAL: u8 = 2;

/// Stable labels, indexed by host tag.
pub const HOST_LABELS: [&str; 3] = ["xtree", "hypercube", "universal"];

/// The label for a wire tag, if the tag is known.
pub fn host_label(tag: u8) -> Option<&'static str> {
    HOST_LABELS.get(usize::from(tag)).copied()
}

/// Parses a CLI label (`xtree` / `hypercube` / `universal`) to its tag.
pub fn parse_host_label(s: &str) -> Option<u8> {
    HOST_LABELS.iter().position(|&l| l == s).map(|i| i as u8)
}

/// Tallest X-tree the universal backend will promote to a routable `G_n`:
/// the all-pairs quotient distance table is `(2^{h+1}-1)^2` u16 entries
/// (~8.4 MB at 10), and `G_n` itself reaches 32 752 vertices — plenty for
/// guests up to `2^15 − 16` while keeping construction sub-second.
pub const UNIVERSAL_MAX_HEIGHT: u8 = 10;

/// A routable host topology.
///
/// Contract (shared with `sim`'s routers, proven against BFS tables):
/// `next_hop(v, dst)` returns `v` when `v == dst` and otherwise the
/// **smallest-id neighbour of `v` strictly closer to `dst`** — so every
/// hop decreases `distance` by exactly one and the walk from `v` reaches
/// `dst` in exactly `distance(v, dst)` hops. `csr()` exposes the exact
/// same topology; its dense directed edge indices are the accumulation
/// slots for congestion statistics.
pub trait Host {
    /// The topology as a CSR graph over `0..node_count()`.
    fn csr(&self) -> &Csr;

    /// Stable backend label (`xtree` / `hypercube` / `universal` / ...).
    fn label(&self) -> &'static str;

    /// An upper bound on vertex degree (paper-level constant, not a
    /// per-instance measurement).
    fn degree_bound(&self) -> u32;

    /// Smallest-id neighbour of `v` strictly closer to `dst` (`v` if
    /// `v == dst`). O(1) for the closed-form hosts.
    fn next_hop(&self, v: u32, dst: u32) -> u32;

    /// Exact hop distance between `v` and `dst`.
    fn distance(&self, v: u32, dst: u32) -> u32;

    /// Number of host vertices.
    fn node_count(&self) -> usize {
        self.csr().node_count()
    }

    /// Number of directed edges — the size of an edge-indexed tally.
    fn directed_edge_count(&self) -> usize {
        self.csr().directed_edge_count()
    }

    /// Dense index of directed edge `u -> v`, if present.
    fn directed_edge_index(&self, u: u32, v: u32) -> Option<u32> {
        self.csr().directed_edge_index(u, v)
    }

    /// All vertex ids.
    fn vertices(&self) -> std::ops::Range<u32> {
        0..self.node_count() as u32
    }
}

/// Every `&H` is itself a host: lets call sites pass borrowed hosts into
/// generic engines without cloning.
impl<H: Host + ?Sized> Host for &H {
    fn csr(&self) -> &Csr {
        (**self).csr()
    }
    fn label(&self) -> &'static str {
        (**self).label()
    }
    fn degree_bound(&self) -> u32 {
        (**self).degree_bound()
    }
    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        (**self).next_hop(v, dst)
    }
    fn distance(&self, v: u32, dst: u32) -> u32 {
        (**self).distance(v, dst)
    }
}

/// The X-tree `X(height)` with the closed-form router of PR 1.
pub struct XTreeHost {
    xtree: XTree,
}

impl XTreeHost {
    /// Builds `X(height)`.
    pub fn new(height: u8) -> Self {
        Self {
            xtree: XTree::new(height),
        }
    }

    /// Host height.
    pub fn height(&self) -> u8 {
        self.xtree.height()
    }
}

impl Host for XTreeHost {
    fn csr(&self) -> &Csr {
        self.xtree.graph()
    }

    fn label(&self) -> &'static str {
        HOST_LABELS[HOST_XTREE as usize]
    }

    fn degree_bound(&self) -> u32 {
        // Parent, two children, and the two same-level siblings.
        5
    }

    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        let hop = xtree_next_hop(
            Address::from_heap_id(v as usize),
            Address::from_heap_id(dst as usize),
            self.xtree.height(),
        );
        hop.heap_id() as u32
    }

    fn distance(&self, v: u32, dst: u32) -> u32 {
        analytic_distance(
            Address::from_heap_id(v as usize),
            Address::from_heap_id(dst as usize),
        )
    }
}

/// The hypercube `Q_dim` — Theorem 3's host when `dim = height + 1`.
pub struct HypercubeHost {
    cube: Hypercube,
}

impl HypercubeHost {
    /// Builds `Q_dim`.
    pub fn new(dim: u8) -> Self {
        Self {
            cube: Hypercube::new(dim),
        }
    }

    /// The optimal hypercube for a height-`height` X-tree embedding:
    /// Lemma 3 maps `X(r)` into `Q_{r+1}`.
    pub fn for_xtree_height(height: u8) -> Self {
        Self::new(height + 1)
    }

    /// Hypercube dimension.
    pub fn dim(&self) -> u8 {
        self.cube.dim()
    }
}

impl Host for HypercubeHost {
    fn csr(&self) -> &Csr {
        self.cube.graph()
    }

    fn label(&self) -> &'static str {
        HOST_LABELS[HOST_HYPERCUBE as usize]
    }

    fn degree_bound(&self) -> u32 {
        u32::from(self.cube.dim())
    }

    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        hypercube_next_hop(u64::from(v), u64::from(dst)) as u32
    }

    fn distance(&self, v: u32, dst: u32) -> u32 {
        (v ^ dst).count_ones()
    }
}

/// Theorem 4's universal graph `G_n`, promoted from a proof artifact to a
/// routable backend.
///
/// Vertices are `(a, s)` pairs — X-tree vertex `a`, slot `s < 16` —
/// flattened as `heap_id(a) * 16 + s`. Routing exploits the quotient
/// structure: contracting each 16-slot group yields the *neighbourhood
/// graph* `H` over X-tree vertices, and because inter-group edges are
/// complete bipartite, `dist_{G_n}((a,s),(b,u)) = dist_H(a,b)` whenever
/// `a != b` (and 1 inside a group's clique). A precomputed all-pairs BFS
/// table on `H` therefore gives O(deg) smallest-id-downhill next hops on
/// `G_n` without ever materialising a `G_n`-sized table.
pub struct UniversalHost {
    universal: UniversalGraph,
    /// Quotient neighbourhood graph over X-tree vertices.
    quotient: Csr,
    /// All-pairs distances on the quotient, row-major `a * n_q + b`.
    qdist: Vec<u16>,
}

impl UniversalHost {
    /// Builds the routable `G_n` over `X(height)`.
    ///
    /// # Panics
    /// Panics if `height > UNIVERSAL_MAX_HEIGHT` (the all-pairs quotient
    /// table is quadratic in the X-tree size).
    pub fn new(height: u8) -> Self {
        assert!(
            height <= UNIVERSAL_MAX_HEIGHT,
            "universal host supports X-tree heights up to {UNIVERSAL_MAX_HEIGHT}, got {height}"
        );
        let universal = UniversalGraph::new(height);
        let n_q = (1usize << (height + 1)) - 1;

        // The quotient is exactly G_n with each slot group contracted:
        // derive it from the built graph so routing can never disagree
        // with the topology it routes on.
        let mut qedges: Vec<(u32, u32)> = universal
            .graph()
            .edges()
            .filter_map(|(u, v)| {
                let (a, b) = (u / 16, v / 16);
                (a != b).then(|| (a.min(b), a.max(b)))
            })
            .collect();
        qedges.sort_unstable();
        qedges.dedup();
        let quotient = Csr::from_edges(n_q, &qedges);

        let mut qdist = vec![0u16; n_q * n_q];
        for a in 0..n_q {
            let row = quotient.bfs(a);
            debug_assert!(row.iter().all(|&d| d <= u32::from(u16::MAX)));
            for (b, &d) in row.iter().enumerate() {
                qdist[a * n_q + b] = d as u16;
            }
        }

        Self {
            universal,
            quotient,
            qdist,
        }
    }

    /// Height of the underlying X-tree.
    pub fn height(&self) -> u8 {
        self.universal.height()
    }

    /// Number of X-tree vertices (slot groups).
    fn quotient_len(&self) -> usize {
        self.quotient.node_count()
    }

    fn qd(&self, a: u32, b: u32) -> u32 {
        u32::from(self.qdist[a as usize * self.quotient_len() + b as usize])
    }
}

impl Host for UniversalHost {
    fn csr(&self) -> &Csr {
        self.universal.graph()
    }

    fn label(&self) -> &'static str {
        HOST_LABELS[HOST_UNIVERSAL as usize]
    }

    fn degree_bound(&self) -> u32 {
        // Theorem 4: 15 clique edges + 16 per in-neighbourhood member
        // (|N(a)| ≤ 25), so degree ≤ 25·16 + 15 = 415.
        415
    }

    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        if v == dst {
            return v;
        }
        let (a, b) = (v / 16, dst / 16);
        // Same slot group: the clique edge is the only downhill step, and
        // when the groups are adjacent every slot of `b` is a neighbour,
        // so `dst` itself (distance 0) beats any distance-1 candidate.
        if a == b || self.qd(a, b) == 1 {
            return dst;
        }
        // Distance ≥ 2: downhill neighbours are exactly the full slot
        // groups of quotient-downhill vertices, so the smallest id is
        // slot 0 of the smallest such group (quotient neighbours are
        // sorted in CSR order).
        let d = self.qd(a, b);
        for &c in self.quotient.neighbors(a as usize) {
            if self.qd(c, b) + 1 == d {
                return c * 16;
            }
        }
        unreachable!("quotient BFS table inconsistent with quotient graph")
    }

    fn distance(&self, v: u32, dst: u32) -> u32 {
        if v == dst {
            return 0;
        }
        let (a, b) = (v / 16, dst / 16);
        if a == b {
            1
        } else {
            self.qd(a, b)
        }
    }
}

/// Static dispatch over the three backends — one value the serving layer
/// can build from a wire tag.
pub enum AnyHost {
    XTree(XTreeHost),
    Hypercube(HypercubeHost),
    Universal(UniversalHost),
}

impl AnyHost {
    /// The host a `tag`-backend serves a height-`height` X-tree embedding
    /// on: `X(height)` itself, Lemma 3's `Q_{height+1}`, or Theorem 4's
    /// `G_n`. `None` for unknown tags or a universal request above
    /// [`UNIVERSAL_MAX_HEIGHT`].
    pub fn for_xtree_height(tag: u8, height: u8) -> Option<AnyHost> {
        match tag {
            HOST_XTREE => Some(AnyHost::XTree(XTreeHost::new(height))),
            HOST_HYPERCUBE => Some(AnyHost::Hypercube(HypercubeHost::for_xtree_height(height))),
            HOST_UNIVERSAL => (height <= UNIVERSAL_MAX_HEIGHT)
                .then(|| AnyHost::Universal(UniversalHost::new(height))),
            _ => None,
        }
    }

    /// The wire tag of this backend.
    pub fn tag(&self) -> u8 {
        match self {
            AnyHost::XTree(_) => HOST_XTREE,
            AnyHost::Hypercube(_) => HOST_HYPERCUBE,
            AnyHost::Universal(_) => HOST_UNIVERSAL,
        }
    }
}

impl Host for AnyHost {
    fn csr(&self) -> &Csr {
        match self {
            AnyHost::XTree(h) => h.csr(),
            AnyHost::Hypercube(h) => h.csr(),
            AnyHost::Universal(h) => h.csr(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            AnyHost::XTree(h) => h.label(),
            AnyHost::Hypercube(h) => h.label(),
            AnyHost::Universal(h) => h.label(),
        }
    }

    fn degree_bound(&self) -> u32 {
        match self {
            AnyHost::XTree(h) => h.degree_bound(),
            AnyHost::Hypercube(h) => h.degree_bound(),
            AnyHost::Universal(h) => h.degree_bound(),
        }
    }

    fn next_hop(&self, v: u32, dst: u32) -> u32 {
        match self {
            AnyHost::XTree(h) => h.next_hop(v, dst),
            AnyHost::Hypercube(h) => h.next_hop(v, dst),
            AnyHost::Universal(h) => h.next_hop(v, dst),
        }
    }

    fn distance(&self, v: u32, dst: u32) -> u32 {
        match self {
            AnyHost::XTree(h) => h.distance(v, dst),
            AnyHost::Hypercube(h) => h.distance(v, dst),
            AnyHost::Universal(h) => h.distance(v, dst),
        }
    }
}

/// Guest map onto the X-tree backend: heap ids of the embedding images.
pub fn xtree_guest_map(emb: &XEmbedding) -> Vec<u32> {
    emb.map.iter().map(|a| a.heap_id() as u32).collect()
}

/// Guest map onto the hypercube backend: Lemma-3 labels of the images
/// (the exact map Theorem 3 composes with Theorem 1).
pub fn hypercube_guest_map(emb: &XEmbedding) -> Vec<u32> {
    let r = emb.height;
    emb.map
        .iter()
        .map(|&a| {
            let label = lemma3_label(a, r);
            debug_assert!(label <= u64::from(u32::MAX));
            label as u32
        })
        .collect()
}

/// Guest map onto the universal backend: each of the ≤ 16 guests sharing
/// an X-tree vertex takes a distinct slot in that vertex's 16-clique —
/// Theorem 4's subgraph assignment, reconstructed from the cached
/// embedding without re-running Theorem 1.
///
/// # Panics
/// Panics if some X-tree vertex carries more than 16 guests (a load-16
/// embedding never does).
pub fn universal_guest_map(emb: &XEmbedding) -> Vec<u32> {
    let mut used = vec![0u32; emb.host_len()];
    emb.map
        .iter()
        .map(|a| {
            let h = a.heap_id();
            let slot = used[h];
            assert!(slot < 16, "load exceeds 16 at X-tree vertex {h}");
            used[h] += 1;
            (h as u32) * 16 + slot
        })
        .collect()
}

/// The guest map for any backend tag. `None` for unknown tags.
pub fn guest_map(tag: u8, emb: &XEmbedding) -> Option<Vec<u32>> {
    match tag {
        HOST_XTREE => Some(xtree_guest_map(emb)),
        HOST_HYPERCUBE => Some(hypercube_guest_map(emb)),
        HOST_UNIVERSAL => Some(universal_guest_map(emb)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks `next_hop` from `v` to `dst`, asserting each hop is a real
    /// edge that shortens the distance by exactly one.
    fn walk<H: Host>(host: &H, v: u32, dst: u32) -> u32 {
        let mut at = v;
        let mut hops = 0;
        while at != dst {
            let next = host.next_hop(at, dst);
            assert!(
                host.csr().has_edge(at as usize, next as usize),
                "{}: hop {at}->{next} is not an edge",
                host.label()
            );
            assert_eq!(
                host.distance(next, dst) + 1,
                host.distance(at, dst),
                "{}: hop {at}->{next} toward {dst} is not downhill",
                host.label()
            );
            at = next;
            hops += 1;
        }
        hops
    }

    #[test]
    fn labels_and_tags_round_trip() {
        for (tag, &label) in HOST_LABELS.iter().enumerate() {
            assert_eq!(host_label(tag as u8), Some(label));
            assert_eq!(parse_host_label(label), Some(tag as u8));
        }
        assert_eq!(host_label(3), None);
        assert_eq!(parse_host_label("torus"), None);
    }

    #[test]
    fn xtree_host_walks_match_distance() {
        let host = XTreeHost::new(4);
        let n = host.node_count() as u32;
        for v in (0..n).step_by(3) {
            for dst in (0..n).step_by(5) {
                assert_eq!(walk(&host, v, dst), host.distance(v, dst));
            }
        }
        assert!(host.csr().max_degree() as u32 <= host.degree_bound());
    }

    #[test]
    fn hypercube_host_walks_match_distance() {
        let host = HypercubeHost::new(6);
        let n = host.node_count() as u32;
        for v in (0..n).step_by(5) {
            for dst in (0..n).step_by(7) {
                assert_eq!(walk(&host, v, dst), host.distance(v, dst));
            }
        }
        assert_eq!(host.degree_bound(), 6);
        assert_eq!(host.csr().max_degree(), 6);
    }

    #[test]
    fn universal_host_walks_match_distance() {
        let host = UniversalHost::new(3);
        let n = host.node_count() as u32;
        assert_eq!(n, 240); // 16 · (2^4 − 1)
        for v in (0..n).step_by(11) {
            for dst in (0..n).step_by(13) {
                assert_eq!(walk(&host, v, dst), host.distance(v, dst));
            }
        }
        assert!(host.csr().max_degree() as u32 <= host.degree_bound());
    }

    #[test]
    fn universal_distance_matches_bfs() {
        let host = UniversalHost::new(2);
        let g = host.csr();
        for v in 0..host.node_count() {
            let row = g.bfs(v);
            for (dst, &d) in row.iter().enumerate() {
                assert_eq!(
                    host.distance(v as u32, dst as u32),
                    d,
                    "distance({v}, {dst})"
                );
            }
        }
    }

    #[test]
    fn any_host_dispatches_by_tag() {
        for tag in 0..3u8 {
            let host = AnyHost::for_xtree_height(tag, 3).expect("known tag");
            assert_eq!(host.tag(), tag);
            assert_eq!(Some(host.label()), host_label(tag));
            assert!(host.node_count() > 0);
        }
        assert!(AnyHost::for_xtree_height(3, 3).is_none());
        assert!(AnyHost::for_xtree_height(HOST_UNIVERSAL, UNIVERSAL_MAX_HEIGHT + 1).is_none());
    }

    #[test]
    fn guest_maps_land_in_range() {
        use xtree_core::theorem1;
        use xtree_trees::generate;
        let tree = generate::caterpillar(240);
        let emb = theorem1::embed(&tree).emb;
        for tag in 0..3u8 {
            let host = AnyHost::for_xtree_height(tag, emb.height).unwrap();
            let map = guest_map(tag, &emb).unwrap();
            assert_eq!(map.len(), 240);
            for &h in &map {
                assert!((h as usize) < host.node_count(), "{tag}: {h} out of range");
            }
        }
        // The universal map is injective by construction.
        let mut uni = guest_map(HOST_UNIVERSAL, &emb).unwrap();
        uni.sort_unstable();
        uni.dedup();
        assert_eq!(uni.len(), 240);
    }
}

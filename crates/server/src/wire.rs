//! The `XWIRE1` wire protocol: length-prefixed binary frames carrying
//! typed requests and responses.
//!
//! Every frame on the stream is:
//!
//! ```text
//! "XWIRE1\n"            magic + version (like XCKPT1 / XTRACE1)
//! LEB128 payload_len    via xtree_telemetry::varint, capped at 1 MiB
//! payload               one tagged message
//! ```
//!
//! The payload starts with a one-byte tag (requests `1..=5`, responses
//! `128..`), followed by LEB128 fields in a fixed order. Strings are
//! `LEB128 len` + UTF-8 bytes. Decoding never panics: every malformed
//! input — wrong magic, truncation, an unknown tag, trailing bytes, an
//! oversized length — returns a typed [`WireError`], mirrored after the
//! `XCKPT1` decoder's discipline and pinned by the proptest suite.

use std::io::{Read, Write};
use xtree_telemetry::varint::{decode_u64, encode_u64};

/// Frame magic; the trailing digit is the protocol version.
pub const MAGIC: &[u8; 7] = b"XWIRE1\n";

/// Hard cap on one frame's payload: nothing the protocol speaks comes
/// close, so anything larger is a framing error, not a big message.
pub const MAX_PAYLOAD: u64 = 1 << 20;

/// `workload` value meaning "run all four canonical workloads".
pub const WORKLOAD_ALL: u8 = 255;

/// Everything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum WireError {
    /// The stream did not start a frame with `XWIRE1\n`.
    BadMagic,
    /// The frame or a field inside it ended early.
    Truncated,
    /// A declared length exceeds [`MAX_PAYLOAD`].
    TooLarge {
        /// The declared payload length.
        len: u64,
    },
    /// An unknown message tag.
    BadTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// The payload decoded cleanly but had bytes left over.
    Trailing {
        /// How many bytes were left.
        extra: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A field value does not fit its domain (e.g. a `u8` field > 255).
    BadField {
        /// Which field.
        field: &'static str,
    },
    /// The peer closed the connection mid-frame or before replying.
    Closed,
    /// The peer actively refused the connection: nothing is listening
    /// there (daemon gone, or a restart has not finished binding yet).
    Refused,
    /// An established connection was torn down mid-stream (peer killed,
    /// TCP reset, broken pipe).
    Reset,
    /// A socket read/write ran past its `SO_RCVTIMEO`/`SO_SNDTIMEO`
    /// budget: the peer is (still) connected but did not move bytes in
    /// time. Distinct from [`WireError::Reset`] so failure accounting can
    /// weigh "slow" differently from "dead".
    TimedOut,
    /// Any other underlying socket error.
    Io(std::io::Error),
}

impl WireError {
    /// True for transport-level failures a pure request can safely be
    /// replayed after (the peer never sent a response): connection
    /// refused/reset/closed and raw socket errors. Protocol-level errors
    /// (bad frames, bad fields) are *not* transport errors — replaying
    /// the same bytes would fail the same way.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            WireError::Closed
                | WireError::Refused
                | WireError::Reset
                | WireError::TimedOut
                | WireError::Io(_)
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "missing XWIRE1 magic (not an xtree-server peer?)"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::TooLarge { len } => {
                write!(f, "declared payload of {len} bytes exceeds {MAX_PAYLOAD}")
            }
            WireError::BadTag { tag } => write!(f, "unknown message tag {tag}"),
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after message"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::BadField { field } => write!(f, "field `{field}` out of range"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Refused => write!(f, "connection refused (peer not listening)"),
            WireError::Reset => write!(f, "connection reset mid-stream"),
            WireError::TimedOut => write!(f, "socket deadline elapsed (peer too slow)"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    /// Classifies the socket error: refused and reset/aborted/broken-pipe
    /// kinds get their own typed variants (the client's reconnect logic
    /// tells "peer not up yet" from "peer died under me"), expired
    /// `SO_RCVTIMEO`/`SO_SNDTIMEO` budgets become [`WireError::TimedOut`]
    /// (Unix reports them as `WouldBlock`, other platforms as `TimedOut`),
    /// and everything else stays an opaque [`WireError::Io`].
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::ConnectionRefused => WireError::Refused,
            ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe => {
                WireError::Reset
            }
            ErrorKind::WouldBlock | ErrorKind::TimedOut => WireError::TimedOut,
            _ => WireError::Io(e),
        }
    }
}

/// What a client asks the daemon to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Build (or fetch from cache) a Theorem-1/2 embedding and report its
    /// quality metrics.
    Embed {
        /// Index into `TreeFamily::ALL`.
        family: u8,
        /// Guest tree size.
        nodes: u64,
        /// Tree-generation seed.
        seed: u64,
        /// `1` = Theorem 1 (load 16), `2` = Theorem 2 (injectivized).
        theorem: u8,
    },
    /// Run canonical workloads on the (cached) embedding.
    Simulate {
        /// Index into `TreeFamily::ALL`.
        family: u8,
        /// Guest tree size.
        nodes: u64,
        /// Tree-generation seed.
        seed: u64,
        /// `1` = Theorem 1 (load 16), `2` = Theorem 2 (injectivized).
        theorem: u8,
        /// Workload index (`0..4`), or [`WORKLOAD_ALL`] for all four.
        workload: u8,
    },
    /// Snapshot the server's counters, cache, queue, and latency stats.
    Stats,
    /// Liveness probe.
    Health,
    /// Drain in-flight requests and stop the daemon.
    Shutdown,
}

/// One simulated workload's summary on the wire (a `SimReport` with the
/// workload as an index instead of a static string).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireReport {
    /// Index into `xtree_sim::workload::WORKLOADS`.
    pub workload: u8,
    /// Total cycles across all rounds.
    pub cycles: u64,
    /// Dilation-only lower bound.
    pub ideal_cycles: u64,
    /// Maximum traffic over a single directed link in any round.
    pub max_link_traffic: u64,
}

/// Load-signal fields carried by a [`Response::HealthOk`] since the
/// cluster tier landed: the router's liveness probe doubles as a load
/// probe, so one `Health` round-trip tells it both "alive" and "how
/// busy". Encoded as trailing LEB128 fields after the bare tag —
/// decoders that predate them stop at the tag, decoders from this
/// version on accept both shapes, so XWIRE1 stays one protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthInfo {
    /// Request-queue depth at probe time.
    pub queue_depth: u64,
    /// Embedding-cache hits so far.
    pub cache_hits: u64,
    /// Embedding-cache misses so far.
    pub cache_misses: u64,
    /// Whole seconds since the daemon started.
    pub uptime_s: u64,
}

/// The server-stats snapshot on the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Requests accepted (all types, Overloaded rejections included).
    pub requests: u64,
    /// `Embed` requests that reached a worker.
    pub embeds: u64,
    /// `Simulate` requests that reached a worker.
    pub simulates: u64,
    /// Requests bounced with [`Response::Overloaded`].
    pub overloaded: u64,
    /// Requests answered with [`Response::Error`].
    pub errors: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
    /// Embeddings currently cached.
    pub cache_entries: u64,
    /// Request-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Completed pooled requests the latency histogram has seen.
    pub latency_count: u64,
    /// Request latency percentiles, in microseconds (queue wait included).
    pub latency_p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub latency_p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub latency_p99_us: u64,
    /// Engine hops taken by worker simulations.
    pub sim_hops: u64,
    /// Messages delivered by worker simulations.
    pub sim_delivered: u64,
    /// True when this snapshot is an aggregate that could not reach every
    /// contributor (a shard timed out or was down), so the counters
    /// under-report. A single daemon always answers `false`. Encoded as a
    /// trailing field only when set — the `false` encoding is
    /// byte-identical to the pre-deadline protocol, like [`HealthInfo`].
    pub partial: bool,
}

/// What the daemon answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Result of an [`Request::Embed`].
    EmbedOk {
        /// Host X-tree height.
        height: u8,
        /// Measured dilation.
        dilation: u64,
        /// Measured load factor.
        max_load: u64,
        /// Directed-edge congestion of the embedding.
        congestion: u64,
        /// Whether the embedding is injective.
        injective: bool,
        /// True when the embedding came from the cache.
        cached: bool,
    },
    /// Result of a [`Request::Simulate`].
    SimulateOk {
        /// True when the embedding came from the cache.
        cached: bool,
        /// One summary per workload run.
        reports: Vec<WireReport>,
    },
    /// Result of a [`Request::Stats`].
    StatsOk(WireStats),
    /// The daemon is alive. `info` carries the optional trailing load
    /// fields (`None` when the peer predates them — the protocol accepts
    /// both shapes, see [`HealthInfo`]).
    HealthOk {
        /// Queue/cache/uptime load signals, when the peer sends them.
        info: Option<HealthInfo>,
    },
    /// Shutdown accepted; the queue is draining.
    ShutdownOk {
        /// Requests still queued when shutdown was accepted (they will be
        /// answered before the workers exit).
        pending: u64,
    },
    /// The bounded request queue is full — retry later. Never blocks.
    Overloaded {
        /// Queue depth at rejection time.
        depth: u64,
        /// The queue's capacity.
        cap: u64,
    },
    /// The request was understood but cannot be served.
    Error {
        /// Machine-readable code: 1 = bad request, 2 = internal failure,
        /// 3 = shutting down.
        code: u8,
        /// Human-readable explanation.
        message: String,
    },
}

/// Error code for a request with out-of-domain fields.
pub const ERR_BAD_REQUEST: u8 = 1;
/// Error code for an internal failure (engine error, dead worker).
pub const ERR_INTERNAL: u8 = 2;
/// Error code for work refused because the daemon is draining.
pub const ERR_SHUTTING_DOWN: u8 = 3;
/// Error code the cluster router returns when *no* shard is live to take
/// a request (every attempt found an empty ring).
pub const ERR_UNREACHABLE: u8 = 4;
/// Error code the cluster router returns when the replay budget ran out
/// before any shard answered (some shards were live but kept failing).
pub const ERR_EXHAUSTED: u8 = 5;
/// Error code for a request whose deadline budget expired before the work
/// could run (rejected at admission, in the queue, or mid-replay). The
/// typed reply replaces what would otherwise be an unbounded hang.
pub const ERR_DEADLINE: u8 = 6;

const TAG_EMBED: u8 = 1;
const TAG_SIMULATE: u8 = 2;
const TAG_STATS: u8 = 3;
const TAG_HEALTH: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_EMBED_OK: u8 = 128;
const TAG_SIMULATE_OK: u8 = 129;
const TAG_STATS_OK: u8 = 130;
const TAG_HEALTH_OK: u8 = 131;
const TAG_SHUTDOWN_OK: u8 = 132;
const TAG_OVERLOADED: u8 = 133;
const TAG_ERROR: u8 = 134;

fn word(bytes: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    decode_u64(bytes, pos).ok_or(WireError::Truncated)
}

fn byte_field(bytes: &[u8], pos: &mut usize, field: &'static str) -> Result<u8, WireError> {
    u8::try_from(word(bytes, pos)?).map_err(|_| WireError::BadField { field })
}

fn bool_field(bytes: &[u8], pos: &mut usize, field: &'static str) -> Result<bool, WireError> {
    match word(bytes, pos)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::BadField { field }),
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = word(bytes, pos)?;
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge { len });
    }
    let len = len as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(WireError::Truncated)?;
    let s = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| WireError::BadUtf8)?;
    *pos = end;
    Ok(s.to_owned())
}

/// Encodes a request payload (no frame header).
pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    match req {
        Request::Embed {
            family,
            nodes,
            seed,
            theorem,
        } => {
            buf.push(TAG_EMBED);
            encode_u64(buf, u64::from(*family));
            encode_u64(buf, *nodes);
            encode_u64(buf, *seed);
            encode_u64(buf, u64::from(*theorem));
        }
        Request::Simulate {
            family,
            nodes,
            seed,
            theorem,
            workload,
        } => {
            buf.push(TAG_SIMULATE);
            encode_u64(buf, u64::from(*family));
            encode_u64(buf, *nodes);
            encode_u64(buf, *seed);
            encode_u64(buf, u64::from(*theorem));
            encode_u64(buf, u64::from(*workload));
        }
        Request::Stats => buf.push(TAG_STATS),
        Request::Health => buf.push(TAG_HEALTH),
        Request::Shutdown => buf.push(TAG_SHUTDOWN),
    }
}

/// Encodes a request payload with an optional deadline budget: the
/// caller's remaining budget in microseconds, appended as one trailing
/// LEB128 word. `None` produces bytes identical to [`encode_request`] —
/// budget-free traffic stays on the pre-deadline encoding.
pub fn encode_request_budget(req: &Request, deadline_us: Option<u64>, buf: &mut Vec<u8>) {
    encode_request(req, buf);
    if let Some(us) = deadline_us {
        encode_u64(buf, us);
    }
}

/// Sentinel for "no deadline budget" in the two-word trailing encoding
/// produced by [`encode_request_host`]: the host field can only be
/// appended *after* a budget word (trailing fields decode positionally),
/// so a host-tagged request without a budget carries this in the budget
/// slot. Never a meaningful budget — a real `u64::MAX`-microsecond
/// deadline is ~585 millennia, and the encoder clamps one word below.
pub const NO_BUDGET: u64 = u64::MAX;

/// Encodes a request payload with optional deadline-budget and host-tag
/// trailing fields. The trailing encoding is positional, one word each:
///
/// * no budget, no host → the bare pre-deadline bytes ([`encode_request`]);
/// * budget only → one trailing word (the PR-9 shape,
///   [`encode_request_budget`]);
/// * host set → two trailing words: the budget (or [`NO_BUDGET`]) then
///   the host tag.
///
/// So every old frame stays byte-identical and every old decoder keeps
/// working on host-free traffic.
pub fn encode_request_host(
    req: &Request,
    deadline_us: Option<u64>,
    host: Option<u8>,
    buf: &mut Vec<u8>,
) {
    match host {
        None => encode_request_budget(req, deadline_us, buf),
        Some(h) => {
            encode_request(req, buf);
            let budget = match deadline_us {
                None => NO_BUDGET,
                // Clamp below the sentinel; a real u64::MAX budget is not
                // representable (and not meaningful either).
                Some(us) => us.min(NO_BUDGET - 1),
            };
            encode_u64(buf, budget);
            encode_u64(buf, u64::from(h));
        }
    }
}

/// Parses the request body after the tag byte, advancing `pos`.
fn request_body(tag: u8, rest: &[u8], pos: &mut usize) -> Result<Request, WireError> {
    Ok(match tag {
        TAG_EMBED => Request::Embed {
            family: byte_field(rest, pos, "family")?,
            nodes: word(rest, pos)?,
            seed: word(rest, pos)?,
            theorem: byte_field(rest, pos, "theorem")?,
        },
        TAG_SIMULATE => Request::Simulate {
            family: byte_field(rest, pos, "family")?,
            nodes: word(rest, pos)?,
            seed: word(rest, pos)?,
            theorem: byte_field(rest, pos, "theorem")?,
            workload: byte_field(rest, pos, "workload")?,
        },
        TAG_STATS => Request::Stats,
        TAG_HEALTH => Request::Health,
        TAG_SHUTDOWN => Request::Shutdown,
        tag => return Err(WireError::BadTag { tag }),
    })
}

/// Decodes a request payload. The whole slice must be consumed.
///
/// This is the strict, pre-deadline shape: a frame carrying the trailing
/// deadline field is rejected as [`WireError::Trailing`] here. Servers
/// and routers use [`decode_request_budget`], which accepts both shapes.
///
/// # Errors
/// [`WireError`] on truncation, an unknown tag, or trailing bytes.
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let (&tag, rest) = bytes.split_first().ok_or(WireError::Truncated)?;
    let mut pos = 0usize;
    let req = request_body(tag, rest, &mut pos)?;
    if pos != rest.len() {
        return Err(WireError::Trailing {
            extra: rest.len() - pos,
        });
    }
    Ok(req)
}

/// Decodes a request payload that may carry the optional trailing
/// deadline field: the client's remaining budget in microseconds at send
/// time. A bare request (every encoding before deadlines existed, and
/// every current encoding with no budget set) decodes to `None` — the two
/// shapes are one protocol, like [`HealthInfo`] on `HealthOk`.
///
/// # Errors
/// [`WireError`] on truncation, an unknown tag, or bytes beyond the
/// deadline field.
pub fn decode_request_budget(bytes: &[u8]) -> Result<(Request, Option<u64>), WireError> {
    let (&tag, rest) = bytes.split_first().ok_or(WireError::Truncated)?;
    let mut pos = 0usize;
    let req = request_body(tag, rest, &mut pos)?;
    if pos == rest.len() {
        return Ok((req, None));
    }
    let deadline_us = word(rest, &mut pos)?;
    if pos != rest.len() {
        return Err(WireError::Trailing {
            extra: rest.len() - pos,
        });
    }
    Ok((req, Some(deadline_us)))
}

/// Decodes a request payload that may carry the optional trailing budget
/// and host fields (see [`encode_request_host`] for the three shapes).
/// This is the decoder servers and routers run: it accepts every XWIRE1
/// request encoding ever produced, returning `None` for fields the peer
/// did not send.
///
/// # Errors
/// [`WireError`] on truncation, an unknown tag, a host tag beyond `u8`,
/// or bytes beyond the host field.
pub fn decode_request_host(bytes: &[u8]) -> Result<(Request, Option<u64>, Option<u8>), WireError> {
    let (&tag, rest) = bytes.split_first().ok_or(WireError::Truncated)?;
    let mut pos = 0usize;
    let req = request_body(tag, rest, &mut pos)?;
    if pos == rest.len() {
        return Ok((req, None, None));
    }
    let budget = word(rest, &mut pos)?;
    if pos == rest.len() {
        // One-word shape: a plain PR-9 deadline budget, no host.
        return Ok((req, Some(budget), None));
    }
    let host = byte_field(rest, &mut pos, "host")?;
    if pos != rest.len() {
        return Err(WireError::Trailing {
            extra: rest.len() - pos,
        });
    }
    let deadline_us = (budget != NO_BUDGET).then_some(budget);
    Ok((req, deadline_us, Some(host)))
}

/// Encodes a response payload (no frame header).
pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    match resp {
        Response::EmbedOk {
            height,
            dilation,
            max_load,
            congestion,
            injective,
            cached,
        } => {
            buf.push(TAG_EMBED_OK);
            encode_u64(buf, u64::from(*height));
            encode_u64(buf, *dilation);
            encode_u64(buf, *max_load);
            encode_u64(buf, *congestion);
            encode_u64(buf, u64::from(*injective));
            encode_u64(buf, u64::from(*cached));
        }
        Response::SimulateOk { cached, reports } => {
            buf.push(TAG_SIMULATE_OK);
            encode_u64(buf, u64::from(*cached));
            encode_u64(buf, reports.len() as u64);
            for r in reports {
                encode_u64(buf, u64::from(r.workload));
                encode_u64(buf, r.cycles);
                encode_u64(buf, r.ideal_cycles);
                encode_u64(buf, r.max_link_traffic);
            }
        }
        Response::StatsOk(s) => {
            buf.push(TAG_STATS_OK);
            for v in [
                s.requests,
                s.embeds,
                s.simulates,
                s.overloaded,
                s.errors,
                s.cache_hits,
                s.cache_misses,
                s.cache_entries,
                s.queue_depth,
                s.latency_count,
                s.latency_p50_us,
                s.latency_p95_us,
                s.latency_p99_us,
                s.sim_hops,
                s.sim_delivered,
            ] {
                encode_u64(buf, v);
            }
            // Trailing field, written only when set: the `false` encoding
            // is byte-identical to the pre-deadline 15-word shape.
            if s.partial {
                encode_u64(buf, 1);
            }
        }
        Response::HealthOk { info } => {
            buf.push(TAG_HEALTH_OK);
            if let Some(i) = info {
                for v in [i.queue_depth, i.cache_hits, i.cache_misses, i.uptime_s] {
                    encode_u64(buf, v);
                }
            }
        }
        Response::ShutdownOk { pending } => {
            buf.push(TAG_SHUTDOWN_OK);
            encode_u64(buf, *pending);
        }
        Response::Overloaded { depth, cap } => {
            buf.push(TAG_OVERLOADED);
            encode_u64(buf, *depth);
            encode_u64(buf, *cap);
        }
        Response::Error { code, message } => {
            buf.push(TAG_ERROR);
            encode_u64(buf, u64::from(*code));
            encode_u64(buf, message.len() as u64);
            buf.extend_from_slice(message.as_bytes());
        }
    }
}

/// Decodes a response payload. The whole slice must be consumed.
///
/// # Errors
/// [`WireError`] on truncation, an unknown tag, bad UTF-8, or trailing
/// bytes.
pub fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    let (&tag, rest) = bytes.split_first().ok_or(WireError::Truncated)?;
    let mut pos = 0usize;
    let resp = match tag {
        TAG_EMBED_OK => Response::EmbedOk {
            height: byte_field(rest, &mut pos, "height")?,
            dilation: word(rest, &mut pos)?,
            max_load: word(rest, &mut pos)?,
            congestion: word(rest, &mut pos)?,
            injective: bool_field(rest, &mut pos, "injective")?,
            cached: bool_field(rest, &mut pos, "cached")?,
        },
        TAG_SIMULATE_OK => {
            let cached = bool_field(rest, &mut pos, "cached")?;
            let count = word(rest, &mut pos)?;
            if count > MAX_PAYLOAD {
                return Err(WireError::TooLarge { len: count });
            }
            let mut reports = Vec::with_capacity(count as usize);
            for _ in 0..count {
                reports.push(WireReport {
                    workload: byte_field(rest, &mut pos, "workload")?,
                    cycles: word(rest, &mut pos)?,
                    ideal_cycles: word(rest, &mut pos)?,
                    max_link_traffic: word(rest, &mut pos)?,
                });
            }
            Response::SimulateOk { cached, reports }
        }
        TAG_STATS_OK => {
            let mut s = WireStats::default();
            for slot in [
                &mut s.requests,
                &mut s.embeds,
                &mut s.simulates,
                &mut s.overloaded,
                &mut s.errors,
                &mut s.cache_hits,
                &mut s.cache_misses,
                &mut s.cache_entries,
                &mut s.queue_depth,
                &mut s.latency_count,
                &mut s.latency_p50_us,
                &mut s.latency_p95_us,
                &mut s.latency_p99_us,
                &mut s.sim_hops,
                &mut s.sim_delivered,
            ] {
                *slot = word(rest, &mut pos)?;
            }
            // Optional trailing `partial` marker (aggregates that missed
            // a shard); absent means complete, the pre-deadline shape.
            if pos != rest.len() {
                s.partial = bool_field(rest, &mut pos, "partial")?;
            }
            Response::StatsOk(s)
        }
        // A bare tag is the pre-cluster shape; trailing fields are the
        // load signals. Both are valid XWIRE1.
        TAG_HEALTH_OK => Response::HealthOk {
            info: if rest.is_empty() {
                None
            } else {
                Some(HealthInfo {
                    queue_depth: word(rest, &mut pos)?,
                    cache_hits: word(rest, &mut pos)?,
                    cache_misses: word(rest, &mut pos)?,
                    uptime_s: word(rest, &mut pos)?,
                })
            },
        },
        TAG_SHUTDOWN_OK => Response::ShutdownOk {
            pending: word(rest, &mut pos)?,
        },
        TAG_OVERLOADED => Response::Overloaded {
            depth: word(rest, &mut pos)?,
            cap: word(rest, &mut pos)?,
        },
        TAG_ERROR => Response::Error {
            code: byte_field(rest, &mut pos, "code")?,
            message: string(rest, &mut pos)?,
        },
        tag => return Err(WireError::BadTag { tag }),
    };
    if pos != rest.len() {
        return Err(WireError::Trailing {
            extra: rest.len() - pos,
        });
    }
    Ok(resp)
}

/// Wraps a payload in a frame: magic, LEB128 length, payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 10 + payload.len());
    out.extend_from_slice(MAGIC);
    encode_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Writes one framed request to `w`.
///
/// # Errors
/// [`WireError::Io`] on socket failure.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> Result<(), WireError> {
    let mut payload = Vec::new();
    encode_request(req, &mut payload);
    w.write_all(&frame(&payload))?;
    w.flush()?;
    Ok(())
}

/// Writes one framed request carrying an optional deadline budget
/// (remaining microseconds at send time) to `w`. `None` writes the exact
/// bytes [`write_request`] would.
///
/// # Errors
/// [`WireError::Io`] on socket failure.
pub fn write_request_budget<W: Write>(
    w: &mut W,
    req: &Request,
    deadline_us: Option<u64>,
) -> Result<(), WireError> {
    let mut payload = Vec::new();
    encode_request_budget(req, deadline_us, &mut payload);
    w.write_all(&frame(&payload))?;
    w.flush()?;
    Ok(())
}

/// Writes one framed request carrying optional deadline-budget and host
/// fields to `w`. With both `None` this writes the exact bytes
/// [`write_request`] would.
///
/// # Errors
/// [`WireError::Io`] on socket failure.
pub fn write_request_host<W: Write>(
    w: &mut W,
    req: &Request,
    deadline_us: Option<u64>,
    host: Option<u8>,
) -> Result<(), WireError> {
    let mut payload = Vec::new();
    encode_request_host(req, deadline_us, host, &mut payload);
    w.write_all(&frame(&payload))?;
    w.flush()?;
    Ok(())
}

/// Writes one framed response to `w`.
///
/// # Errors
/// [`WireError::Io`] on socket failure.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> Result<(), WireError> {
    let mut payload = Vec::new();
    encode_response(resp, &mut payload);
    w.write_all(&frame(&payload))?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's payload from `r`. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer hung up between messages).
///
/// # Errors
/// [`WireError::BadMagic`] / [`WireError::Truncated`] /
/// [`WireError::TooLarge`] on framing violations, [`WireError::Io`] on
/// socket failure.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut magic = [0u8; 7];
    let mut got = 0usize;
    while got < magic.len() {
        match r.read(&mut magic[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if &magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    // The length varint, byte by byte (≤ 10 bytes for a u64).
    let mut len_bytes = Vec::with_capacity(2);
    let len = loop {
        let mut b = [0u8; 1];
        match r.read(&mut b) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(_) => {
                len_bytes.push(b[0]);
                if b[0] & 0x80 == 0 {
                    let mut pos = 0;
                    break decode_u64(&len_bytes, &mut pos).ok_or(WireError::Truncated)?;
                }
                if len_bytes.len() >= 10 {
                    return Err(WireError::Truncated);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    };
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(decode_request(&buf).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        assert_eq!(decode_response(&buf).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Embed {
            family: 3,
            nodes: 496,
            seed: u64::MAX,
            theorem: 2,
        });
        round_trip_request(Request::Simulate {
            family: 0,
            nodes: 1,
            seed: 0,
            theorem: 1,
            workload: WORKLOAD_ALL,
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Health);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::EmbedOk {
            height: 5,
            dilation: 3,
            max_load: 16,
            congestion: 40,
            injective: false,
            cached: true,
        });
        round_trip_response(Response::SimulateOk {
            cached: false,
            reports: vec![
                WireReport {
                    workload: 0,
                    cycles: 100,
                    ideal_cycles: 30,
                    max_link_traffic: 7,
                },
                WireReport {
                    workload: 3,
                    cycles: u64::MAX,
                    ideal_cycles: 0,
                    max_link_traffic: 1,
                },
            ],
        });
        round_trip_response(Response::StatsOk(WireStats {
            requests: 10,
            cache_hits: 9,
            latency_p99_us: 1 << 40,
            ..WireStats::default()
        }));
        round_trip_response(Response::HealthOk { info: None });
        round_trip_response(Response::HealthOk {
            info: Some(HealthInfo {
                queue_depth: 3,
                cache_hits: 1 << 40,
                cache_misses: 0,
                uptime_s: 86400,
            }),
        });
        round_trip_response(Response::ShutdownOk { pending: 4 });
        round_trip_response(Response::Overloaded { depth: 64, cap: 64 });
        round_trip_response(Response::Error {
            code: ERR_BAD_REQUEST,
            message: "unknown family 99 — héllo".into(),
        });
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let mut payload = Vec::new();
        encode_request(&Request::Health, &mut payload);
        let bytes = frame(&payload);
        assert_eq!(&bytes[..7], MAGIC);
        let mut cursor = std::io::Cursor::new(&bytes);
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, payload);
        // A second read at the clean boundary reports EOF, not an error.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn read_frame_rejects_garbage_and_truncation() {
        let mut garbage = std::io::Cursor::new(b"GARBAGE-NOT-A-FRAME".to_vec());
        assert!(matches!(read_frame(&mut garbage), Err(WireError::BadMagic)));
        let mut payload = Vec::new();
        encode_request(&Request::Stats, &mut payload);
        let bytes = frame(&payload);
        for cut in 1..bytes.len() {
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            assert!(
                matches!(read_frame(&mut cursor), Err(WireError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn read_frame_rejects_oversized_declarations() {
        let mut bytes = MAGIC.to_vec();
        encode_u64(&mut bytes, MAX_PAYLOAD + 1);
        let mut cursor = std::io::Cursor::new(&bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn decoders_reject_unknown_tags_and_trailing_bytes() {
        assert!(matches!(
            decode_request(&[200]),
            Err(WireError::BadTag { tag: 200 })
        ));
        assert!(matches!(decode_request(&[]), Err(WireError::Truncated)));
        let mut buf = Vec::new();
        encode_request(&Request::Health, &mut buf);
        buf.push(0);
        assert!(matches!(
            decode_request(&buf),
            Err(WireError::Trailing { extra: 1 })
        ));
        assert!(matches!(
            decode_response(&[TAG_ERROR, 1, 200]),
            Err(WireError::Truncated) | Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn bare_health_ok_still_decodes() {
        // A peer running the pre-cluster protocol sends just the tag; the
        // trailing load fields are optional by construction.
        assert_eq!(
            decode_response(&[TAG_HEALTH_OK]).unwrap(),
            Response::HealthOk { info: None }
        );
        // Partial trailing fields are a truncation, not a silent None.
        let mut buf = vec![TAG_HEALTH_OK];
        encode_u64(&mut buf, 3);
        assert!(matches!(decode_response(&buf), Err(WireError::Truncated)));
    }

    #[test]
    fn deadline_budget_is_an_optional_trailing_field() {
        let req = Request::Embed {
            family: 4,
            nodes: 2032,
            seed: 11,
            theorem: 1,
        };
        // No budget: byte-identical to the pre-deadline encoding, and the
        // strict decoder still accepts it.
        let mut bare = Vec::new();
        encode_request(&req, &mut bare);
        let mut none = Vec::new();
        encode_request_budget(&req, None, &mut none);
        assert_eq!(bare, none);
        assert_eq!(decode_request_budget(&bare).unwrap(), (req.clone(), None));
        // With a budget: round-trips through the lenient decoder, while
        // the strict decoder reports exactly the trailing bytes.
        let mut budgeted = Vec::new();
        encode_request_budget(&req, Some(250_000), &mut budgeted);
        assert_eq!(
            decode_request_budget(&budgeted).unwrap(),
            (req.clone(), Some(250_000))
        );
        assert!(matches!(
            decode_request(&budgeted),
            Err(WireError::Trailing { .. })
        ));
        // A zero budget (already expired at send time) is representable.
        let mut expired = Vec::new();
        encode_request_budget(&Request::Stats, Some(0), &mut expired);
        assert_eq!(
            decode_request_budget(&expired).unwrap(),
            (Request::Stats, Some(0))
        );
        // Bytes after the deadline word are still a protocol violation.
        budgeted.push(9);
        assert!(matches!(
            decode_request_budget(&budgeted),
            Err(WireError::Trailing { extra: 1 })
        ));
    }

    #[test]
    fn host_is_an_optional_trailing_field() {
        let req = Request::Embed {
            family: 4,
            nodes: 2032,
            seed: 11,
            theorem: 1,
        };
        // No host: byte-identical to the budget-only encodings, whatever
        // the budget, so host-free traffic never changes on the wire.
        for budget in [None, Some(250_000)] {
            let mut old = Vec::new();
            encode_request_budget(&req, budget, &mut old);
            let mut new = Vec::new();
            encode_request_host(&req, budget, None, &mut new);
            assert_eq!(old, new);
            assert_eq!(
                decode_request_host(&old).unwrap(),
                (req.clone(), budget, None)
            );
        }
        // Budget + host: both round-trip; older decoders reject cleanly.
        let mut both = Vec::new();
        encode_request_host(&req, Some(250_000), Some(2), &mut both);
        assert_eq!(
            decode_request_host(&both).unwrap(),
            (req.clone(), Some(250_000), Some(2))
        );
        assert!(matches!(
            decode_request(&both),
            Err(WireError::Trailing { .. })
        ));
        assert!(matches!(
            decode_request_budget(&both),
            Err(WireError::Trailing { .. })
        ));
        // Host without a budget: the sentinel word keeps the positions.
        let mut host_only = Vec::new();
        encode_request_host(&req, None, Some(1), &mut host_only);
        assert_eq!(
            decode_request_host(&host_only).unwrap(),
            (req.clone(), None, Some(1))
        );
        // A genuine u64::MAX budget is clamped rather than misread as
        // "no budget".
        let mut clamped = Vec::new();
        encode_request_host(&req, Some(u64::MAX), Some(0), &mut clamped);
        assert_eq!(
            decode_request_host(&clamped).unwrap(),
            (req.clone(), Some(u64::MAX - 1), Some(0))
        );
        // Bytes after the host word are still a protocol violation.
        both.push(7);
        assert!(matches!(
            decode_request_host(&both),
            Err(WireError::Trailing { extra: 1 })
        ));
        // A lone budget of u64::MAX (one-word shape) stays a real budget.
        let mut max_budget = Vec::new();
        encode_request_budget(&Request::Stats, Some(u64::MAX), &mut max_budget);
        assert_eq!(
            decode_request_host(&max_budget).unwrap(),
            (Request::Stats, Some(u64::MAX), None)
        );
    }

    #[test]
    fn stats_partial_marker_is_an_optional_trailing_field() {
        let complete = WireStats {
            requests: 10,
            ..WireStats::default()
        };
        let mut bare = Vec::new();
        encode_response(&Response::StatsOk(complete.clone()), &mut bare);
        // A complete snapshot encodes to the pre-deadline 15-word shape
        // and decodes with `partial: false`.
        assert_eq!(
            decode_response(&bare).unwrap(),
            Response::StatsOk(complete.clone())
        );
        let partial = WireStats {
            partial: true,
            ..complete
        };
        let mut marked = Vec::new();
        encode_response(&Response::StatsOk(partial.clone()), &mut marked);
        assert_eq!(marked.len(), bare.len() + 1);
        assert_eq!(
            decode_response(&marked).unwrap(),
            Response::StatsOk(partial)
        );
        // The marker is a bool: any other value is malformed.
        *marked.last_mut().unwrap() = 7;
        assert!(matches!(
            decode_response(&marked),
            Err(WireError::BadField { field: "partial" })
        ));
    }

    #[test]
    fn socket_timeouts_classify_as_timed_out() {
        use std::io::{Error, ErrorKind};
        for kind in [ErrorKind::WouldBlock, ErrorKind::TimedOut] {
            let e: WireError = Error::from(kind).into();
            assert!(matches!(e, WireError::TimedOut), "{kind:?}");
            assert!(e.is_transport());
        }
    }

    #[test]
    fn bool_and_byte_fields_are_domain_checked() {
        // An EmbedOk whose `injective` field is 7 is malformed.
        let mut buf = vec![TAG_EMBED_OK];
        for v in [5u64, 3, 16, 40, 7, 0] {
            encode_u64(&mut buf, v);
        }
        assert!(matches!(
            decode_response(&buf),
            Err(WireError::BadField { field: "injective" })
        ));
        // A request whose family field exceeds u8 is malformed.
        let mut buf = vec![TAG_EMBED];
        for v in [300u64, 496, 7, 1] {
            encode_u64(&mut buf, v);
        }
        assert!(matches!(
            decode_request(&buf),
            Err(WireError::BadField { field: "family" })
        ));
    }
}

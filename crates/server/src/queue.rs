//! A bounded multi-producer/multi-consumer job queue with explicit
//! backpressure.
//!
//! Producers never block: [`BoundedQueue::try_push`] fails immediately
//! with the job handed back when the queue is at capacity (the connection
//! handler turns that into a typed `Overloaded` response) or closed (the
//! daemon is draining). Consumers block in [`BoundedQueue::pop`] until a
//! job arrives or the queue is closed *and* empty — so closing the queue
//! is exactly the graceful-drain operation: already-accepted work is
//! finished, nothing new gets in, and every worker then sees `None` and
//! exits.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused, carrying the rejected item back to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue held `cap` items already.
    Full(T),
    /// [`BoundedQueue::close`] was called; the daemon is draining.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between connection handlers (producers)
/// and the worker pool (consumers).
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (`cap ≥ 1`).
    ///
    /// # Panics
    /// If `cap` is zero — a zero-capacity queue could never serve anything.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be ≥ 1");
        BoundedQueue {
            cap,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// The capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. On success returns the queue depth
    /// *after* the push (≥ 1); on failure hands the item back.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](BoundedQueue::close).
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut st = self.state.lock().expect("queue poisoned");
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed and
    /// drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    /// Like [`pop`](BoundedQueue::pop), but items failing `keep` are
    /// handed to `reject` instead of returned — the worker pool uses this
    /// to answer deadline-expired jobs with a typed error on the way past
    /// rather than burning a worker on work nobody is waiting for. Blocks
    /// until a keepable item arrives or the queue is closed and drained
    /// (rejecting any expired stragglers first).
    ///
    /// Both callbacks run under the queue lock and must not touch the
    /// queue re-entrantly; sending on an mpsc reply channel is fine.
    pub fn pop_filtered<K, R>(&self, mut keep: K, mut reject: R) -> Option<T>
    where
        K: FnMut(&T) -> bool,
        R: FnMut(T),
    {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            while let Some(item) = st.items.pop_front() {
                if keep(&item) {
                    return Some(item);
                }
                reject(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, queued items still drain,
    /// and blocked consumers wake (returning items until empty, then
    /// `None`).
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_and_depth() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        match q.try_push(2) {
            Err(PushError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping frees a slot again.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3).unwrap(), 1);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(v)) => assert_eq!(v, 3),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Queued work still drains in order, then pop reports the end.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_filtered_rejects_on_the_way_past() {
        let q = BoundedQueue::new(8);
        for v in [1, -2, -3, 4, -5] {
            q.try_push(v).unwrap();
        }
        let mut rejected = Vec::new();
        // Negative items are "expired": handed to the reject callback,
        // never returned.
        assert_eq!(q.pop_filtered(|v| *v > 0, |v| rejected.push(v)), Some(1));
        assert_eq!(q.pop_filtered(|v| *v > 0, |v| rejected.push(v)), Some(4));
        assert_eq!(rejected, vec![-2, -3]);
        q.close();
        // Draining rejects the final straggler before reporting the end.
        assert_eq!(q.pop_filtered(|v| *v > 0, |v| rejected.push(v)), None);
        assert_eq!(rejected, vec![-2, -3, -5]);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the consumers a moment to block, then feed two and close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        q.close();
        let mut got: Vec<Option<i32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, Some(7), Some(8)]);
    }
}

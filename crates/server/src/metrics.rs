//! Server-side observability, built on the same `xtree-telemetry`
//! primitives the simulation engine reports through.
//!
//! Request counters are relaxed atomics (handlers on many threads bump
//! them lock-free); request latency and queue depth go into
//! [`Histogram`]s behind short-lived mutexes; and the engine events of
//! every worker-run simulation land in one shared
//! [`AtomicCounters`] (`&AtomicCounters` is a `Sink`, so the workers pass
//! it straight into `simulate_*_with`). Exports reuse the telemetry
//! crate's exposition helpers, so `xtree_server_*` series render exactly
//! like the established `xtree_sim_*` ones.

use crate::cache::EmbeddingCache;
use crate::wire::WireStats;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use xtree_json::Value;
use xtree_telemetry::{histogram_jsonl, histogram_prometheus, AtomicCounters, Histogram};

/// Latency buckets: pow-2 microseconds up to ~134 s.
const LATENCY_BUCKETS: u32 = 28;
/// Queue-depth buckets, matching the sim metrics layout.
const QUEUE_DEPTH_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// All metrics one daemon accumulates over its lifetime.
pub struct ServerMetrics {
    requests: AtomicU64,
    embeds: AtomicU64,
    simulates: AtomicU64,
    stats_reqs: AtomicU64,
    healths: AtomicU64,
    overloaded: AtomicU64,
    errors: AtomicU64,
    /// Requests rejected with `ERR_DEADLINE` (budget expired at
    /// admission, in the queue, or before compute started).
    deadline_rejects: AtomicU64,
    /// Connections dropped because a socket read/write outran the
    /// configured I/O timeout (idle or stalled peers).
    io_timeouts: AtomicU64,
    latency_us: Mutex<Histogram>,
    /// Embed-construction latency on cache hits (lookup + evaluate).
    embed_hit_us: Mutex<Histogram>,
    /// Embed-construction latency on cache misses (full Theorem-1 build).
    embed_miss_us: Mutex<Histogram>,
    queue_depth: Mutex<Histogram>,
    /// Engine events from every simulation a worker runs.
    pub sim: AtomicCounters,
}

impl ServerMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        ServerMetrics {
            requests: AtomicU64::new(0),
            embeds: AtomicU64::new(0),
            simulates: AtomicU64::new(0),
            stats_reqs: AtomicU64::new(0),
            healths: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            deadline_rejects: AtomicU64::new(0),
            io_timeouts: AtomicU64::new(0),
            latency_us: Mutex::new(Histogram::pow2(LATENCY_BUCKETS)),
            embed_hit_us: Mutex::new(Histogram::pow2(LATENCY_BUCKETS)),
            embed_miss_us: Mutex::new(Histogram::pow2(LATENCY_BUCKETS)),
            queue_depth: Mutex::new(Histogram::new(QUEUE_DEPTH_BOUNDS)),
            sim: AtomicCounters::new(),
        }
    }

    /// Counts one accepted request of any type.
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Relaxed);
    }

    /// Counts one `Embed` dispatched to the pool.
    pub fn count_embed(&self) {
        self.embeds.fetch_add(1, Relaxed);
    }

    /// Counts one `Simulate` dispatched to the pool.
    pub fn count_simulate(&self) {
        self.simulates.fetch_add(1, Relaxed);
    }

    /// Counts one `Stats` request.
    pub fn count_stats(&self) {
        self.stats_reqs.fetch_add(1, Relaxed);
    }

    /// Counts one `Health` request.
    pub fn count_health(&self) {
        self.healths.fetch_add(1, Relaxed);
    }

    /// Counts one request bounced with `Overloaded`.
    pub fn count_overloaded(&self) {
        self.overloaded.fetch_add(1, Relaxed);
    }

    /// Counts one request answered with `Error`.
    pub fn count_error(&self) {
        self.errors.fetch_add(1, Relaxed);
    }

    /// Counts one request rejected because its deadline budget expired.
    pub fn count_deadline_reject(&self) {
        self.deadline_rejects.fetch_add(1, Relaxed);
    }

    /// Counts one connection dropped on an I/O timeout.
    pub fn count_io_timeout(&self) {
        self.io_timeouts.fetch_add(1, Relaxed);
    }

    /// Requests rejected with `ERR_DEADLINE` so far.
    pub fn deadline_rejects(&self) -> u64 {
        self.deadline_rejects.load(Relaxed)
    }

    /// Records one completed pooled request's end-to-end latency
    /// (queue wait + compute + reply), in microseconds.
    pub fn observe_latency_us(&self, us: u64) {
        self.latency_us
            .lock()
            .expect("latency poisoned")
            .observe(us);
    }

    /// Records the time one `Embed`/`Simulate` request spent resolving its
    /// embedding (cache lookup plus, on a miss, the full construction),
    /// split by whether the cache hit — the serving-side view of the
    /// cold-path rebuild.
    pub fn observe_embed_us(&self, us: u64, hit: bool) {
        let h = if hit {
            &self.embed_hit_us
        } else {
            &self.embed_miss_us
        };
        h.lock().expect("embed latency poisoned").observe(us);
    }

    /// Records the queue depth right after an enqueue.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth
            .lock()
            .expect("depth poisoned")
            .observe(depth);
    }

    /// Requests bounced with `Overloaded` so far.
    pub fn overloaded(&self) -> u64 {
        self.overloaded.load(Relaxed)
    }

    /// A wire-ready snapshot, pulling cache and queue state from their
    /// owners.
    pub fn snapshot(&self, cache: &EmbeddingCache, queue_depth: usize) -> WireStats {
        let lat = self.latency_us.lock().expect("latency poisoned");
        let sim = self.sim.snapshot();
        WireStats {
            requests: self.requests.load(Relaxed),
            embeds: self.embeds.load(Relaxed),
            simulates: self.simulates.load(Relaxed),
            overloaded: self.overloaded.load(Relaxed),
            errors: self.errors.load(Relaxed),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_entries: cache.entries() as u64,
            queue_depth: queue_depth as u64,
            latency_count: lat.count(),
            latency_p50_us: lat.quantile(0.50),
            latency_p95_us: lat.quantile(0.95),
            latency_p99_us: lat.quantile(0.99),
            sim_hops: sim.hops,
            sim_delivered: sim.delivered,
            // A single daemon always has the complete picture; only the
            // router's aggregate can be partial.
            partial: false,
        }
    }

    /// Prometheus text exposition of the server series plus the pooled
    /// simulations' engine counters — the same format (and histogram
    /// helper) as the sim `MetricsSink`.
    pub fn to_prometheus(&self, cache: &EmbeddingCache, queue_depth: usize) -> String {
        let s = self.snapshot(cache, queue_depth);
        let mut out = String::new();
        for (name, v) in [
            ("requests", s.requests),
            ("embeds", s.embeds),
            ("simulates", s.simulates),
            ("overloaded", s.overloaded),
            ("errors", s.errors),
            ("deadline_rejects", self.deadline_rejects.load(Relaxed)),
            ("io_timeouts", self.io_timeouts.load(Relaxed)),
            ("cache_hits", s.cache_hits),
            ("cache_misses", s.cache_misses),
            ("sim_hops", s.sim_hops),
            ("sim_delivered", s.sim_delivered),
        ] {
            out.push_str(&format!(
                "# TYPE xtree_server_{name}_total counter\nxtree_server_{name}_total {v}\n"
            ));
        }
        for (name, v) in [
            ("cache_entries", s.cache_entries),
            ("queue_depth", s.queue_depth),
        ] {
            out.push_str(&format!(
                "# TYPE xtree_server_{name} gauge\nxtree_server_{name} {v}\n"
            ));
        }
        histogram_prometheus(
            &mut out,
            "xtree_server_request_latency_us",
            &self.latency_us.lock().expect("latency poisoned"),
        );
        histogram_prometheus(
            &mut out,
            "xtree_server_embed_hit_latency_us",
            &self.embed_hit_us.lock().expect("embed latency poisoned"),
        );
        histogram_prometheus(
            &mut out,
            "xtree_server_embed_miss_latency_us",
            &self.embed_miss_us.lock().expect("embed latency poisoned"),
        );
        histogram_prometheus(
            &mut out,
            "xtree_server_queue_depth_observed",
            &self.queue_depth.lock().expect("depth poisoned"),
        );
        out
    }

    /// JSONL export: one counters object, then the latency and
    /// queue-depth histograms in the workspace's standard record shape.
    pub fn to_jsonl(&self, cache: &EmbeddingCache, queue_depth: usize) -> String {
        let s = self.snapshot(cache, queue_depth);
        let mut out = String::new();
        let counters = Value::object()
            .with("type", "counters")
            .with("requests", s.requests)
            .with("embeds", s.embeds)
            .with("simulates", s.simulates)
            .with("overloaded", s.overloaded)
            .with("errors", s.errors)
            .with("deadline_rejects", self.deadline_rejects.load(Relaxed))
            .with("io_timeouts", self.io_timeouts.load(Relaxed))
            .with("cache_hits", s.cache_hits)
            .with("cache_misses", s.cache_misses)
            .with("cache_entries", s.cache_entries)
            .with("queue_depth", s.queue_depth)
            .with("sim_hops", s.sim_hops)
            .with("sim_delivered", s.sim_delivered);
        out.push_str(&xtree_json::to_string(&counters));
        out.push('\n');
        for (name, h) in [
            ("request_latency_us", &self.latency_us),
            ("embed_hit_latency_us", &self.embed_hit_us),
            ("embed_miss_latency_us", &self.embed_miss_us),
            ("queue_depth_observed", &self.queue_depth),
        ] {
            let h = h.lock().expect("histogram poisoned");
            out.push_str(&xtree_json::to_string(&histogram_jsonl(name, &h)));
            out.push('\n');
        }
        out
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts_and_percentiles() {
        let m = ServerMetrics::new();
        let cache = EmbeddingCache::new(8);
        m.count_request();
        m.count_request();
        m.count_embed();
        m.count_overloaded();
        for us in [100, 200, 400, 800] {
            m.observe_latency_us(us);
        }
        let s = m.snapshot(&cache, 3);
        assert_eq!(s.requests, 2);
        assert_eq!(s.embeds, 1);
        assert_eq!(s.overloaded, 1);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.latency_count, 4);
        assert!(s.latency_p50_us <= s.latency_p95_us);
        assert!(s.latency_p95_us <= s.latency_p99_us);
        assert!(s.latency_p99_us >= 800);
    }

    #[test]
    fn exports_render_all_series() {
        let m = ServerMetrics::new();
        let cache = EmbeddingCache::new(8);
        m.count_request();
        m.observe_latency_us(50);
        m.observe_queue_depth(2);
        let prom = m.to_prometheus(&cache, 0);
        assert!(prom.contains("xtree_server_requests_total 1"), "{prom}");
        assert!(
            prom.contains("# TYPE xtree_server_request_latency_us histogram"),
            "{prom}"
        );
        assert!(prom.contains("xtree_server_request_latency_us_count 1"));
        assert!(prom.contains("xtree_server_queue_depth 0"));
        let jsonl = m.to_jsonl(&cache, 0);
        for line in jsonl.lines() {
            assert!(xtree_json::from_str(line).is_ok(), "bad JSONL: {line}");
        }
        assert!(jsonl.contains("\"name\":\"request_latency_us\""));
        assert!(jsonl.contains("\"name\":\"queue_depth_observed\""));
    }

    #[test]
    fn embed_latency_splits_by_cache_outcome() {
        let m = ServerMetrics::new();
        let cache = EmbeddingCache::new(8);
        m.observe_embed_us(30, true);
        m.observe_embed_us(5000, false);
        m.observe_embed_us(7000, false);
        let prom = m.to_prometheus(&cache, 0);
        assert!(
            prom.contains("xtree_server_embed_hit_latency_us_count 1"),
            "{prom}"
        );
        assert!(
            prom.contains("xtree_server_embed_miss_latency_us_count 2"),
            "{prom}"
        );
        let jsonl = m.to_jsonl(&cache, 0);
        assert!(jsonl.contains("\"name\":\"embed_hit_latency_us\""));
        assert!(jsonl.contains("\"name\":\"embed_miss_latency_us\""));
    }
}
